//! §VI-C fidelity: the design-time performance model's prediction must
//! stay within a sane error band of the runtime simulation (the paper
//! reports 5–14 % average error on the FPGA platform), and the model's
//! qualitative predictions (Fig. 9 trends) must hold.

use hyscale::core::{AcceleratorKind, HybridTrainer, PerfModel, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::{DatasetSpec, MAG240M_HOMO, OGBN_PAPERS100M, OGBN_PRODUCTS};
use hyscale::graph::features::Splits;

#[test]
fn prediction_error_within_band_on_functional_run() {
    // scaled functional run vs prediction targeted at the same stand-in
    let mut dataset = MAG240M_HOMO.materialize(8000, 42);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 7);
    let spec_scaled = DatasetSpec {
        num_vertices: dataset.graph.num_vertices() as u64,
        num_edges: dataset.graph.num_edges(),
        ..MAG240M_HOMO
    };
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    cfg.train.batch_per_trainer = 256;
    cfg.train.max_functional_iters = Some(3);
    let pm = PerfModel::new(&cfg);
    let predicted = pm.predict_epoch_time(&spec_scaled);
    let mut trainer = HybridTrainer::new(cfg, dataset);
    let actual = trainer.train_epoch().epoch_time_s;
    let err = (predicted - actual).abs() / actual;
    assert!(
        err < 0.35,
        "perf-model error {:.1}% (predicted {predicted:.3}s, actual {actual:.3}s)",
        err * 100.0
    );
}

#[test]
fn scalability_trends_match_fig9() {
    let counts = [1usize, 2, 4, 8, 16];
    let gcn = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&gcn);
    // products+GCN scales worst (PCIe-transfer bound, paper §VI-D)
    let s_products = pm.scalability(&OGBN_PRODUCTS, &counts);
    let s_papers = pm.scalability(&OGBN_PAPERS100M, &counts);
    let s_mag = pm.scalability(&MAG240M_HOMO, &counts);
    for s in [&s_products, &s_papers, &s_mag] {
        assert!((s[0].1 - 1.0).abs() < 1e-9);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.98, "speedup must not regress: {s:?}");
        }
        // saturation: 16 accelerators never reach linear speedup
        assert!(s[4].1 < 16.0);
    }
    let best16 = s_papers[4].1.max(s_mag[4].1);
    assert!(
        s_products[4].1 <= best16 * 1.15,
        "products+GCN should scale no better than the large graphs: {:.2} vs {:.2}",
        s_products[4].1,
        best16
    );
}

#[test]
fn throughput_metric_is_consistent() {
    // Eq. 5: MTEPS must equal edges/iteration / iteration-time
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
    let pm = PerfModel::new(&cfg);
    let mteps = pm.throughput_mteps(&OGBN_PAPERS100M);
    assert!(mteps > 1.0, "implausible throughput {mteps}");
    // more accelerators => more throughput
    let mut cfg8 = cfg.clone();
    cfg8.platform.num_accelerators = 8;
    let pm8 = PerfModel::new(&cfg8);
    assert!(pm8.throughput_mteps(&OGBN_PAPERS100M) > mteps);
}

#[test]
fn hidden_dim_raises_sync_and_model_cost() {
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&cfg);
    let small = pm.model_bytes(&OGBN_PRODUCTS);
    cfg.train.hidden_dim = 512;
    let pm_big = PerfModel::new(&cfg);
    assert!(pm_big.model_bytes(&OGBN_PRODUCTS) > small);
}
