//! Quickstart: train a GraphSAGE model with HyScale-GNN on a small
//! synthetic community graph using a hybrid CPU + 2-FPGA system.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hyscale::core::{AcceleratorKind, HybridTrainer, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::Dataset;

fn main() {
    // 1. A learnable dataset: 1000 vertices, 4 planted communities,
    //    features correlated with the community labels.
    let dataset = Dataset::toy(42);
    let test_seeds = dataset.splits.test.clone();

    // 2. The system: the paper's dual-EPYC node with 2 Alveo U250s,
    //    all optimizations on (hybrid + DRM + two-stage prefetching).
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
    cfg.platform.num_accelerators = 2;
    cfg.train.batch_per_trainer = 128;
    cfg.train.fanouts = vec![10, 5];
    cfg.train.hidden_dim = 32;
    cfg.train.learning_rate = 0.3;
    cfg.train.max_functional_iters = Some(4);

    // 3. Train.
    let mut trainer = HybridTrainer::new(cfg, dataset);
    println!(
        "initial mapping: cpu quota {} of {} seeds/iter",
        trainer.split().cpu_quota,
        trainer.split().total
    );
    println!(
        "test accuracy before training: {:.3}\n",
        trainer.evaluate(&test_seeds)
    );
    for report in trainer.train_epochs(8) {
        println!("{report}");
    }
    println!(
        "\ntest accuracy after training:  {:.3}",
        trainer.evaluate(&test_seeds)
    );
    println!(
        "final mapping: cpu quota {} seeds/iter, threads {:?}",
        trainer.split().cpu_quota,
        trainer.thread_alloc()
    );
}
