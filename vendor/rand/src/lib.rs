//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API surface the workspace uses: a seedable
//! [`rngs::SmallRng`] plus the [`Rng`]/[`SeedableRng`] traits with
//! `gen`, `gen_bool`, and `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation workloads and fully deterministic from a `u64`
//! seed, which is all the workspace's reproducibility contracts require.
//! Stream values differ from upstream `rand`'s `SmallRng`, which is fine:
//! no test in this workspace asserts specific draw values, only
//! determinism and distributional properties.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core of a generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator's standard distribution.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> f32 {
        // 24 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Debiased uniform integer in `[0, bound)` via multiply-shift rejection.
#[inline]
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound || low >= low.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full-width inclusive range
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of `T`'s standard distribution (`[0,1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let a_draws: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let c_draws: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(a_draws, c_draws);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5u32);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let g = rng.gen_range(f32::EPSILON..1.0);
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let p: f64 = (0..n)
            .map(|_| if rng.gen_bool(0.3) { 1.0 } else { 0.0 })
            .sum::<f64>()
            / n as f64;
        assert!((p - 0.3).abs() < 0.01, "bernoulli {p}");
    }
}
