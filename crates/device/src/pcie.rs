//! PCIe link model.
//!
//! Each accelerator hangs off a processor via PCIe (paper Fig. 2); the
//! performance model charges transfers at effective burst bandwidth
//! (Eq. 8) and the all-reduce at two crossings (Eq. 13).

use crate::calib;

/// A point-to-point PCIe link with effective bandwidth and fixed latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLink {
    /// Effective burst bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Per-transfer latency, seconds.
    pub latency_s: f64,
}

impl Default for PcieLink {
    fn default() -> Self {
        Self {
            bandwidth_gbs: calib::PCIE_EFF_BW_GBS,
            latency_s: calib::PCIE_LATENCY_S,
        }
    }
}

impl PcieLink {
    /// A link with explicit parameters.
    pub fn new(bandwidth_gbs: f64, latency_s: f64) -> Self {
        assert!(bandwidth_gbs > 0.0);
        Self {
            bandwidth_gbs,
            latency_s,
        }
    }

    /// Time to move `bytes` across the link (paper Eq. 8).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_s + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }

    /// All-reduce time for a model of `bytes`: gather + broadcast crosses
    /// the link twice (paper Eq. 13).
    pub fn allreduce_time(&self, bytes: u64) -> f64 {
        2.0 * self.transfer_time(bytes)
    }
}

/// A scheduled transfer on a link: when it starts moving bytes and when
/// the last byte lands in the device-side staging buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferWindow {
    /// Time the link started serving this transfer, seconds.
    pub start_s: f64,
    /// Time the transfer completed, seconds.
    pub end_s: f64,
}

impl TransferWindow {
    /// Time the transfer occupied the link.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Occupancy model of one PCIe link: transfers queue behind whatever is
/// already in flight, so the wire time of batch `i+1` can hide behind
/// the accelerator compute of batch `i` only while the link is free.
///
/// This is the timing-side twin of the executor's staging rings
/// (`hyscale-core`'s `StagingRing`): the ring bounds how many batches
/// may be in flight per accelerator; this model charges each of those
/// in-flight transfers for the link time it actually gets.
///
/// ```
/// use hyscale_device::pcie::{LinkOccupancy, PcieLink};
///
/// let mut link = LinkOccupancy::new(PcieLink::new(10.0, 0.0));
/// // batch 0 is ready at t=0 and moves 1 GB: occupies [0, 0.1]
/// let w0 = link.schedule(0.0, 1_000_000_000);
/// assert_eq!((w0.start_s, w0.end_s), (0.0, 0.1));
/// // batch 1 is ready at t=0.05 but the link is busy until 0.1
/// let w1 = link.schedule(0.05, 1_000_000_000);
/// assert_eq!(w1.start_s, 0.1);
/// assert_eq!(link.busy_until(), 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct LinkOccupancy {
    link: PcieLink,
    busy_until: f64,
}

impl LinkOccupancy {
    /// An idle link.
    pub fn new(link: PcieLink) -> Self {
        Self {
            link,
            busy_until: 0.0,
        }
    }

    /// The underlying link parameters.
    pub fn link(&self) -> &PcieLink {
        &self.link
    }

    /// Enqueue a transfer of `bytes` that becomes ready at `ready_s`:
    /// it starts as soon as both the data and the link are available and
    /// holds the link for [`PcieLink::transfer_time`].
    pub fn schedule(&mut self, ready_s: f64, bytes: u64) -> TransferWindow {
        let start_s = ready_s.max(self.busy_until);
        let end_s = start_s + self.link.transfer_time(bytes);
        self.busy_until = end_s;
        TransferWindow { start_s, end_s }
    }

    /// Time at which the link next becomes free.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Forget all in-flight transfers (e.g. a DRM `balance_work` drain
    /// discarding staged batches).
    pub fn reset(&mut self) {
        self.busy_until = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(PcieLink::default().transfer_time(0), 0.0);
    }

    #[test]
    fn occupancy_serializes_overlapping_transfers() {
        let mut occ = LinkOccupancy::new(PcieLink::new(10.0, 0.0));
        let w0 = occ.schedule(0.0, 500_000_000); // 0.05 s
        let w1 = occ.schedule(0.0, 500_000_000);
        assert_eq!(w0.end_s, w1.start_s, "second transfer queues behind");
        assert!((w1.duration_s() - 0.05).abs() < 1e-12);
        // a transfer ready after the link drained starts immediately
        let w2 = occ.schedule(1.0, 500_000_000);
        assert_eq!(w2.start_s, 1.0);
    }

    #[test]
    fn occupancy_reset_clears_in_flight() {
        let mut occ = LinkOccupancy::new(PcieLink::default());
        occ.schedule(0.0, 1_000_000_000);
        assert!(occ.busy_until() > 0.0);
        occ.reset();
        assert_eq!(occ.busy_until(), 0.0);
    }

    #[test]
    fn bandwidth_term_dominates_large_transfers() {
        let link = PcieLink::new(10.0, 1e-6);
        // 1 GB at 10 GB/s = 0.1 s
        let t = link.transfer_time(1_000_000_000);
        assert!((t - 0.1000010).abs() < 1e-6);
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let link = PcieLink::new(10.0, 1e-5);
        let t = link.transfer_time(100);
        assert!(t > 1e-5 && t < 2e-5);
    }

    #[test]
    fn allreduce_is_two_crossings() {
        let link = PcieLink::default();
        let b = 1_000_000;
        assert!((link.allreduce_time(b) - 2.0 * link.transfer_time(b)).abs() < 1e-12);
    }

    #[test]
    fn eq8_matches_paper_form() {
        // T_trans = |V0| * f0 * S_feat / BW_PCIe
        let link = PcieLink::new(12.0, 0.0);
        let v0 = 290_000u64;
        let f0 = 128u64;
        let bytes = v0 * f0 * 4;
        let expect = bytes as f64 / 12e9;
        assert!((link.transfer_time(bytes) - expect).abs() < 1e-9);
    }
}
