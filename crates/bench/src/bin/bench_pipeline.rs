//! Measured serial-vs-prefetched training throughput, emitted as
//! `BENCH_pipeline.json` so the perf trajectory of the real pipeline is
//! tracked from PR to PR.
//!
//! Runs a products-like workload (ogbn-products at reduced scale,
//! GraphSAGE, hybrid CPU+FPGA organization, int8 wire precision — the
//! paper's PCIe-bound regime where §VIII proposes quantization) twice
//! with identical seeds: once fully serial (`prefetch_depth = 0`) and
//! once with task-level feature prefetching through double-buffered
//! staging rings. It reports measured iterations/second and speedup,
//! the measured transfer-overlap ratio (the share of the wire
//! round-trip that executed behind propagation of an earlier batch),
//! plus the discrete-event simulator's predictions from the measured
//! serial stage walls — both the idealized steady-state bound and the
//! ring-gated walls at staging depths 1 and 2, whose gap is the
//! transfer time double buffering hides. On a single-core container the
//! measured speedup degenerates to ~1x (there is no second core to
//! overlap on; `cpus` in the JSON tells you which case you are looking
//! at), while the predicted numbers remain meaningful.
//!
//! ```sh
//! cargo run --release -p hyscale-bench --bin bench_pipeline
//! ```
//!
//! Workload knobs (for experiments; defaults are the tracked config):
//! `BENCH_SCALE`, `BENCH_HIDDEN`, `BENCH_BATCH`, `BENCH_PRECISION`
//! (`int8`|`f16`|`f32`), `BENCH_RING` (staging-ring depth). `BENCH_SMOKE=1`
//! shrinks the workload to a CI-sized smoke run (same JSON schema).

use hyscale_core::config::AcceleratorKind;
use hyscale_core::drm::{DrmEngine, WorkloadSplit};
use hyscale_core::pipeline::{
    simulate_pipeline, simulate_pipeline_multilane, simulate_pipeline_ringed, PipelineStageCosts,
};
use hyscale_core::{
    EpochReport, HybridTrainer, IterationFeed, MatrixPool, OptFlags, PrepareCtx, StagingRings,
    SystemConfig, ThreadAlloc, TransferLaneGate, WallStageTimes,
};
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::OGBN_PRODUCTS;
use hyscale_graph::features::Splits;
use hyscale_graph::Dataset;
use hyscale_sampler::{EpochBatcher, NeighborSampler};
use std::sync::Arc;

const DEPTH: usize = 2;

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn epochs() -> usize {
    if smoke() {
        2
    } else {
        3
    }
}

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn dataset() -> Dataset {
    let scale = env_or("BENCH_SCALE", if smoke() { 400 } else { 50 }) as u64;
    let mut dataset = OGBN_PRODUCTS.materialize(scale, 1);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 2);
    dataset
}

fn config(prefetch_depth: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
    // Static mapping: the tracked number is the settled steady state of
    // paper Eq. 6. DRM's balance_work moves invalidate the speculative
    // queue (that path is exercised by tests/equivalence.rs); with DRM
    // live the bench would mostly measure re-mapping churn.
    cfg.opt = OptFlags {
        hybrid: true,
        drm: false,
        tfp: true,
    };
    cfg.train.batch_per_trainer = env_or("BENCH_BATCH", if smoke() { 128 } else { 512 });
    cfg.train.hidden_dim = env_or("BENCH_HIDDEN", 32);
    cfg.train.max_functional_iters = Some(if smoke() { 3 } else { 6 });
    cfg.train.prefetch_depth = prefetch_depth;
    cfg.train.staging_ring_depth = env_or("BENCH_RING", 2);
    cfg.train.transfer_precision = match std::env::var("BENCH_PRECISION").as_deref() {
        Ok("f16") => hyscale_tensor::Precision::F16,
        Ok("f32") => hyscale_tensor::Precision::F32,
        _ => hyscale_tensor::Precision::Int8,
    };
    cfg
}

/// Train the configured epochs, returning the reports past the warm-up
/// epoch.
fn run(prefetch_depth: usize, dataset: &Dataset) -> Vec<EpochReport> {
    let mut trainer = HybridTrainer::new(config(prefetch_depth), dataset.clone());
    let mut reports = trainer.train_epochs(epochs());
    reports.remove(0); // warm-up: pool is cold, allocator untouched
    reports
}

fn functional_wall(reports: &[EpochReport]) -> f64 {
    reports.iter().map(|r| r.wall_s).sum()
}

/// Mid-epoch single-lane rebalance scenario (runs in smoke mode too):
/// a hybrid feed with three accelerator transfer lanes takes a *burst*
/// of two `balance_work` moves — both shifting seeds from lane 0 to
/// the CPU trainer, while lanes 1 and 2 keep their slices. The feed
/// must coalesce the burst into one re-slice against the final quotas,
/// salvage the untouched trainers' queued batches, and drain only lane
/// 0's ring and lane channel; the returned tuple is
/// `(batches_salvaged, batches_flushed, invalidation_cost_s,
/// remaps_coalesced)` for the bench JSON.
fn invalidation_scenario(dataset: &Dataset) -> (usize, usize, f64, usize) {
    let dataset = Arc::new(dataset.clone());
    let batcher = EpochBatcher::new(dataset.splits.train.clone(), 7);
    let order = Arc::new(batcher.epoch_order(0));
    let alloc = ThreadAlloc::default_for(8);
    let ctx = Arc::new(PrepareCtx {
        dataset,
        batcher,
        sampler: NeighborSampler::new(vec![5, 3], 11),
        precision: hyscale_tensor::Precision::Int8,
        hybrid: true,
        workers: Arc::new(hyscale_core::StageWorkers::from_alloc(&alloc)),
        numa_domains: 2,
        rings: Arc::new(StagingRings::new(3, 2)),
        transfer_gate: Arc::new(TransferLaneGate::new(alloc.loader, true)),
        origin: std::time::Instant::now(),
    });
    let pool = Arc::new(MatrixPool::new());
    let old_quotas = vec![12usize, 8, 8, 8];
    let mut feed = IterationFeed::new(
        Arc::clone(&ctx),
        order,
        0,
        usize::MAX,
        3,
        Arc::clone(&pool),
        old_quotas.clone(),
    );
    let first = feed.obtain(0, &old_quotas).expect("iteration 0");
    first.recycle(&pool);
    // Wait for the producer's steady fill (bounded: ~10 s): at ring
    // depth 2 exactly two iterations can be fully prepared — each holds
    // one slot per lane, the third blocks — so the salvage accounting
    // is deterministic: 2 settled trainers × 2 queued iterations. Fail
    // loudly on timeout: salvaging 0 batches here would otherwise only
    // surface as an opaque assert in the CI JSON check.
    let fill_deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while feed.buffered() < 2 {
        assert!(
            std::time::Instant::now() < fill_deadline,
            "producer never buffered 2 iterations (got {}) — bench raced its own producer",
            feed.buffered()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // burst of single-lane moves: [12, 8, 8, 8] -> [14, 6, 8, 8] ->
    // [16, 4, 8, 8]; the feed coalesces them into ONE re-slice against
    // the final quotas (diff oldest-kept vs newest), applied at the
    // next obtain
    feed.invalidate(1, vec![14usize, 6, 8, 8]);
    let new_quotas = vec![16usize, 4, 8, 8];
    feed.invalidate(1, new_quotas.clone());
    let second = feed.obtain(1, &new_quotas).expect("post-remap iteration");
    second.recycle(&pool);
    let (salvaged, flushed) = feed.salvage_stats();
    let cost = feed.invalidation_wall_s();
    let coalesced = feed.remaps_coalesced();
    assert_eq!(
        feed.rings().ring(0).channel_drains(),
        1,
        "the moved lane's channel must drain exactly once for the burst"
    );
    assert_eq!(
        feed.rings().ring(1).channel_drains() + feed.rings().ring(2).channel_drains(),
        0,
        "untouched lanes' channels must not drain"
    );
    feed.finish();
    (salvaged, flushed, cost, coalesced)
}

/// Overlap-aware DRM scenario: replay one Algorithm 1 decision on the
/// settled simulated stage times, once with the paper's bundled
/// `max(T_Tran, T_TA)` estimate and once charging the accelerator task
/// the *measured* visible (un-hidden) transfer share from the real
/// pipeline. Returns `(visible_ratio, quota_delta)` where `quota_delta`
/// is how many more seeds the overlap-aware engine parks on the CPU
/// trainer than the bundled one (positive = the measured overlap being
/// imperfect biased work away from the bandwidth-bound lanes).
fn drm_overlap_scenario(
    prefetched: &[EpochReport],
    measured_overlap_ratio: f64,
    cfg: &SystemConfig,
) -> (f64, isize) {
    let last = prefetched
        .last()
        .and_then(|r| r.trace.last())
        .expect("prefetched trace");
    let times = last.times;
    let total = cfg.total_batch();
    let engine = DrmEngine::new(true);
    let make_split = || {
        WorkloadSplit::new(
            last.cpu_quota.min(total),
            total,
            cfg.platform.num_accelerators,
        )
    };

    let mut bundled = make_split();
    let mut th1 = ThreadAlloc::default_for(cfg.platform.total_threads);
    engine.adjust(&times, &mut bundled, &mut th1);

    let visible_ratio = (1.0 - measured_overlap_ratio).clamp(0.0, 1.0);
    let mut aware = make_split();
    let mut th2 = ThreadAlloc::default_for(cfg.platform.total_threads);
    engine.adjust_with_visible(&times, times.transfer * visible_ratio, &mut aware, &mut th2);
    (
        visible_ratio,
        aware.cpu_quota as isize - bundled.cpu_quota as isize,
    )
}

fn iters(reports: &[EpochReport]) -> usize {
    reports.iter().map(|r| r.functional_iters).sum()
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cfg = config(DEPTH);
    let numa_domains = cfg.platform.numa_domains();
    // Report what actually runs: StagingRings clamps the depth to ≥ 1
    // (and 0 would mean "unbounded" in simulate_pipeline_ringed terms —
    // the opposite of a missing staging buffer).
    let ring_depth = cfg.train.staging_ring_depth.max(1);
    let dataset = dataset();
    eprintln!(
        "bench_pipeline: {} @ 1/{} scale, {} epochs ({} warm-up), prefetch depth {DEPTH}, \
         ring depth {ring_depth}, {cpus} cpu(s){}",
        dataset.spec.name,
        dataset.scale,
        epochs(),
        1,
        if smoke() { " [smoke]" } else { "" },
    );

    let serial = run(0, &dataset);
    let prefetched = run(DEPTH, &dataset);

    let serial_wall = functional_wall(&serial);
    let prefetch_wall = functional_wall(&prefetched);
    let serial_iters = iters(&serial) as f64;
    let prefetch_iters = iters(&prefetched) as f64;
    let serial_ips = serial_iters / serial_wall;
    let prefetch_ips = prefetch_iters / prefetch_wall;
    let speedup = prefetch_ips / serial_ips;

    // The discrete-event pipeline model on the measured serial stage
    // walls: the steady-state speedup this stage balance supports at
    // depth `DEPTH` once enough cores exist to actually overlap, plus
    // the ring-gated walls — depth-1 staging serializes transfer with
    // propagation, depth-2 double-buffers it, and the gap between the
    // two is the wire time the rings hide.
    let stage_means = WallStageTimes::mean_of(serial.iter().map(|r| &r.wall_stages));
    let costs = PipelineStageCosts::from_wall(&stage_means);
    let n = iters(&serial).max(2);
    let serial_sim = simulate_pipeline(&costs, n, 0).makespan;
    let predicted = serial_sim / simulate_pipeline(&costs, n, DEPTH).makespan;
    let ring1_wall = simulate_pipeline_ringed(&costs, n, DEPTH, 1).makespan;
    let ring2_wall = simulate_pipeline_ringed(&costs, n, DEPTH, 2).makespan;
    let predicted_hidden_per_iter = ((ring1_wall - ring2_wall) / n as f64).max(0.0);

    // Per-lane transfer model on the measured serial lane walls: what a
    // single serialized transfer thread would cost vs. concurrent
    // per-accelerator lanes (the gap is the wire time lane concurrency
    // folds away once the host has cores to run the lanes on).
    let lane_walls = stage_means.lane_transfer_s.clone();
    let lanes_serialized_wall =
        simulate_pipeline_multilane(&costs, &lane_walls, n, DEPTH, ring_depth, 1).makespan;
    let lanes_concurrent_wall = simulate_pipeline_multilane(
        &costs,
        &lane_walls,
        n,
        DEPTH,
        ring_depth,
        lane_walls.len().max(1),
    )
    .makespan;

    let prefetch_means = WallStageTimes::mean_of(prefetched.iter().map(|r| &r.wall_stages));
    let overlap = prefetch_means.overlap_factor();
    let transfer_overlap_ratio = prefetch_means.transfer_overlap_ratio();
    let transfer_lanes = prefetch_means.transfer_lanes.max(1);
    let restarts: usize = prefetched.iter().map(|r| r.prefetch_restarts).sum();
    // Settled worker-pool widths the producer dispatched on (the logical
    // ThreadAlloc; effective threads are capped by `cpus`).
    let alloc = prefetch_means.threads;
    let fmt_lanes = |xs: &[f64]| {
        let inner: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
        format!("[{}]", inner.join(", "))
    };
    let lane_transfer_json = fmt_lanes(&prefetch_means.lane_transfer_s);
    let lane_hidden_json = fmt_lanes(&prefetch_means.lane_transfer_hidden_s);

    // Surgical-invalidation scenario: mid-epoch single-lane rebalance
    // burst, coalesced into one re-slice.
    let (batches_salvaged, batches_flushed, invalidation_cost_s, remaps_coalesced) =
        invalidation_scenario(&dataset);

    // Overlap-aware DRM scenario: one Algorithm 1 decision with the
    // measured visible-transfer share vs. the bundled assumption.
    let (drm_visible_ratio, drm_quota_delta) =
        drm_overlap_scenario(&prefetched, transfer_overlap_ratio, &cfg);

    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"dataset\": \"{}\",\n  \"scale\": {},\n  \
         \"cpus\": {},\n  \"smoke\": {},\n  \
         \"epochs_measured\": {},\n  \"iters_measured\": {},\n  \"prefetch_depth\": {},\n  \
         \"ring_depth\": {},\n  \"transfer_lanes\": {},\n  \
         \"serial_iters_per_sec\": {:.4},\n  \"prefetch_iters_per_sec\": {:.4},\n  \
         \"serial_iter_wall_s\": {:.6},\n  \"prefetch_iter_wall_s\": {:.6},\n  \
         \"serial_stage_walls_s\": {{\"sample\": {:.6}, \"load\": {:.6}, \
         \"transfer\": {:.6}, \"train\": {:.6}}},\n  \
         \"speedup_vs_serial\": {:.4},\n  \"predicted_speedup\": {:.4},\n  \
         \"predicted_wall_ring1_s\": {:.6},\n  \"predicted_wall_ring2_s\": {:.6},\n  \
         \"predicted_transfer_hidden_per_iter_s\": {:.6},\n  \
         \"predicted_wall_lanes_serialized_s\": {:.6},\n  \
         \"predicted_wall_lanes_concurrent_s\": {:.6},\n  \
         \"overlap_factor\": {:.4},\n  \"transfer_overlap_ratio\": {:.4},\n  \
         \"transfer_hidden_s\": {:.6},\n  \
         \"lane_transfer_s\": {},\n  \"lane_transfer_hidden_s\": {},\n  \
         \"drm_queue_restarts\": {},\n  \
         \"batches_salvaged\": {},\n  \"batches_flushed\": {},\n  \
         \"invalidation_cost_s\": {:.6},\n  \"drm_remaps_coalesced\": {},\n  \
         \"drm_overlap_visible_ratio\": {:.4},\n  \"drm_overlap_quota_delta\": {},\n  \
         \"numa_domains\": {},\n  \"thread_alloc\": {{\"sampler\": {}, \"loader\": {}, \
         \"trainer\": {}}}\n}}\n",
        dataset.spec.name,
        dataset.scale,
        cpus,
        smoke(),
        serial.len(),
        iters(&serial),
        DEPTH,
        ring_depth,
        transfer_lanes,
        serial_ips,
        prefetch_ips,
        serial_wall / serial_iters,
        prefetch_wall / prefetch_iters,
        stage_means.sample_s,
        stage_means.load_s,
        stage_means.transfer_s,
        stage_means.train_s,
        speedup,
        predicted,
        ring1_wall,
        ring2_wall,
        predicted_hidden_per_iter,
        lanes_serialized_wall,
        lanes_concurrent_wall,
        overlap,
        transfer_overlap_ratio,
        prefetch_means.transfer_hidden_s,
        lane_transfer_json,
        lane_hidden_json,
        restarts,
        batches_salvaged,
        batches_flushed,
        invalidation_cost_s,
        remaps_coalesced,
        drm_visible_ratio,
        drm_quota_delta,
        numa_domains,
        alloc.sampler,
        alloc.loader,
        alloc.trainer,
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    print!("{json}");
    eprintln!(
        "measured {speedup:.2}x vs serial on {cpus} cpu(s); stage balance supports \
         {predicted:.2}x at depth {DEPTH}; ring 1 -> 2 hides \
         {:.1} ms of transfer per iteration (predicted); {transfer_lanes} transfer lane(s), \
         serialized -> concurrent lanes saves {:.1} ms over the epoch (predicted); \
         measured transfer overlap {:.0}%; burst rebalance salvaged {batches_salvaged} / \
         flushed {batches_flushed} batches in {:.1} ms ({remaps_coalesced} re-map \
         coalesced); overlap-aware DRM quota delta {drm_quota_delta}; wrote \
         BENCH_pipeline.json",
        predicted_hidden_per_iter * 1e3,
        (lanes_serialized_wall - lanes_concurrent_wall) * 1e3,
        transfer_overlap_ratio * 100.0,
        invalidation_cost_s * 1e3,
    );
}
