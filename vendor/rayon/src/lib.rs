//! Workspace-local stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the small parallel-iterator surface the workspace
//! uses — `par_iter`, `par_chunks_mut`, and the `zip`/`enumerate`/`map`/
//! `for_each`/`collect` combinators on top of them — with real
//! data-parallelism via `std::thread::scope` over contiguous index
//! ranges.
//!
//! Unlike rayon there is no work-stealing pool: each parallel call
//! spawns up to [`max_threads`] scoped threads and joins them before
//! returning. Small inputs (below [`SEQ_THRESHOLD`] items) run inline on
//! the caller thread, so fine-grained kernels (tiny GEMMs in gradient
//! checks) pay no spawn overhead. Results of `map`/`collect` preserve
//! input order, and every `for_each` partition owns a disjoint slice, so
//! parallel execution is deterministic wherever the closures are.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Items below this count run sequentially on the caller thread.
pub const SEQ_THRESHOLD: usize = 4;

/// Worker-thread cap for one parallel call: a [`ThreadPool::install`]
/// override on the current thread if active, else the machine's
/// available parallelism (overridable via `HYSCALE_RAYON_THREADS`).
pub fn max_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(|c| c.get());
    if overridden != 0 {
        return overridden;
    }
    static CACHE: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("HYSCALE_RAYON_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    CACHE.store(n, Ordering::Relaxed);
    n
}

/// Split `len` items into at most `max_threads()` contiguous ranges and
/// run `work(start, end)` for each, in parallel when worthwhile.
fn run_partitioned<F>(len: usize, work: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = max_threads().min(len);
    if threads <= 1 || len < SEQ_THRESHOLD {
        work(0, len);
        return;
    }
    let per = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let work = &work;
        let mut start = per; // range 0 runs on the caller thread
        for _ in 1..threads {
            let end = (start + per).min(len);
            if start >= end {
                break;
            }
            let (s, e) = (start, end);
            scope.spawn(move || work(s, e));
            start = end;
        }
        work(0, per.min(len));
    });
}

/// Parallel shared-reference iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIterEnumerate<'a, T> {
        ParIterEnumerate { items: self.items }
    }

    /// Apply `f` to every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let items = self.items;
        run_partitioned(items.len(), |s, e| {
            for item in &items[s..e] {
                f(item);
            }
        });
    }

    /// Map every item through `f` (applied in parallel, order-preserving
    /// on collect).
    pub fn map<R, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParIterMap {
            items: self.items,
            f,
        }
    }
}

/// Enumerated parallel iterator.
pub struct ParIterEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIterEnumerate<'a, T> {
    /// Map every `(index, item)` pair through `f`.
    pub fn map<R, F>(self, f: F) -> ParEnumMap<'a, T, F>
    where
        F: Fn((usize, &'a T)) -> R + Sync,
        R: Send,
    {
        ParEnumMap {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every `(index, item)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a T)) + Sync,
    {
        let items = self.items;
        run_partitioned(items.len(), |s, e| {
            for (i, item) in items[s..e].iter().enumerate() {
                f((s + i, item));
            }
        });
    }
}

/// Order-preserving parallel map over `(index, item)` pairs.
pub struct ParEnumMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn((usize, &'a T)) -> R + Sync> ParEnumMap<'a, T, F> {
    /// Materialize the mapped values in input order.
    pub fn collect<C: FromParVec<R>>(self) -> C {
        C::from_par_vec(collect_indexed(self.items.len(), |i| {
            (self.f)((i, &self.items[i]))
        }))
    }
}

/// Order-preserving parallel map over items.
pub struct ParIterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParIterMap<'a, T, F> {
    /// Materialize the mapped values in input order.
    pub fn collect<C: FromParVec<R>>(self) -> C {
        C::from_par_vec(collect_indexed(self.items.len(), |i| {
            (self.f)(&self.items[i])
        }))
    }
}

/// Run `produce(i)` for `0..len` in parallel, collecting results in order.
fn collect_indexed<R: Send, P: Fn(usize) -> R + Sync>(len: usize, produce: P) -> Vec<R> {
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let base = out.as_mut_ptr() as usize;
    run_partitioned(len, |s, e| {
        for i in s..e {
            // SAFETY: each index is written by exactly one partition, the
            // slot holds `None` (no drop needed), and `out` outlives the
            // scoped threads inside `run_partitioned`.
            unsafe {
                std::ptr::write((base as *mut Option<R>).add(i), Some(produce(i)));
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("parallel map slot filled"))
        .collect()
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Zip chunks with the items of `other` (stops at the shorter side).
    pub fn zip<'b, U: Sync>(self, other: ParIter<'b, U>) -> ParChunksZip<'a, 'b, T, U> {
        ParChunksZip {
            slice: self.slice,
            size: self.size,
            items: other.items,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: for<'c> Fn(&'c mut [T]) + Sync,
    {
        let size = self.size;
        let n = self.slice.len().div_ceil(size);
        let base = self.slice.as_mut_ptr() as usize;
        let total = self.slice.len();
        run_partitioned(n, |s, e| {
            for c in s..e {
                // SAFETY: chunk `c` spans [c*size, min((c+1)*size, total)),
                // ranges are disjoint across partitions, and the borrow of
                // `self.slice` outlives the scoped threads.
                let start = c * size;
                let end = ((c + 1) * size).min(total);
                let chunk = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                };
                f(chunk);
            }
        });
    }
}

/// Enumerated mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: for<'c> Fn((usize, &'c mut [T])) + Sync,
    {
        let size = self.size;
        let n = self.slice.len().div_ceil(size);
        let base = self.slice.as_mut_ptr() as usize;
        let total = self.slice.len();
        run_partitioned(n, |s, e| {
            for c in s..e {
                // SAFETY: disjoint chunks, see ParChunksMut::for_each.
                let start = c * size;
                let end = ((c + 1) * size).min(total);
                let chunk = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                };
                f((c, chunk));
            }
        });
    }
}

/// Mutable chunks zipped with shared items.
pub struct ParChunksZip<'a, 'b, T, U> {
    slice: &'a mut [T],
    size: usize,
    items: &'b [U],
}

impl<'a, 'b, T: Send, U: Sync> ParChunksZip<'a, 'b, T, U> {
    /// Apply `f` to every `(chunk, item)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: for<'c> Fn((&'c mut [T], &'b U)) + Sync,
    {
        let size = self.size;
        let n = self.slice.len().div_ceil(size).min(self.items.len());
        let base = self.slice.as_mut_ptr() as usize;
        let total = self.slice.len();
        let items = self.items;
        run_partitioned(n, |s, e| {
            for (c, item) in items.iter().enumerate().take(e).skip(s) {
                // SAFETY: disjoint chunks, see ParChunksMut::for_each.
                let start = c * size;
                let end = ((c + 1) * size).min(total);
                let chunk = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                };
                f((chunk, item));
            }
        });
    }
}

/// Builder for a scoped thread-pool configuration, mirroring
/// `rayon::ThreadPoolBuilder`. The shim has no persistent pool; the
/// built [`ThreadPool`] simply overrides [`max_threads`] (via the
/// `HYSCALE_RAYON_THREADS` mechanism's thread-local equivalent) for the
/// duration of an [`ThreadPool::install`] call.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

thread_local! {
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// A configured pool handle; see [`ThreadPoolBuilder`].
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `op` with this pool's thread-count cap applied to every
    /// parallel call `op` makes on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads.unwrap_or(0)));
        let out = op();
        THREAD_OVERRIDE.with(|c| c.set(prev));
        out
    }
}

/// Conversion from an order-preserving parallel collection result.
pub trait FromParVec<R> {
    /// Build the collection from per-index results.
    fn from_par_vec(v: Vec<R>) -> Self;
}

impl<R> FromParVec<R> for Vec<R> {
    fn from_par_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Extension trait providing `par_iter` on slices.
pub trait ParallelSlice<T> {
    /// Parallel shared iterator over the items.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Extension trait providing `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over disjoint mutable chunks of length `size`
    /// (last chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

/// The rayon prelude: extension traits for parallel iteration.
pub mod prelude {
    pub use crate::{FromParVec, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_zip_matches_serial() {
        let indices: Vec<u32> = (0..1000).map(|i| (i * 7) % 500).collect();
        let src: Vec<f32> = (0..500 * 8).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; indices.len() * 8];
        out.par_chunks_mut(8)
            .zip(indices.par_iter())
            .for_each(|(dst, &s)| {
                dst.copy_from_slice(&src[s as usize * 8..(s as usize + 1) * 8]);
            });
        for (i, &idx) in indices.iter().enumerate() {
            assert_eq!(out[i * 8], (idx * 8) as f32);
        }
    }

    #[test]
    fn enumerate_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..503).collect();
        let out: Vec<u64> = xs
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        assert_eq!(out.len(), 503);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * 3);
        }
    }

    #[test]
    fn chunks_enumerate_covers_all() {
        let mut data = vec![0usize; 1001];
        data.par_chunks_mut(64)
            .enumerate()
            .for_each(|(blk, chunk)| {
                for v in chunk.iter_mut() {
                    *v = blk + 1;
                }
            });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[1000], 1001usize.div_ceil(64));
    }

    #[test]
    fn map_collect_small_input_runs_inline() {
        let xs = [1, 2, 3];
        let out: Vec<i32> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9]);
    }
}
