//! Large-scale timing study: ogbn-papers100M (1.6 B edges at full
//! scale) on the CPU + 4-FPGA system, demonstrating the graph-in-CPU-
//! memory placement (paper §III-B) and watching the DRM engine settle.
//!
//! The full feature matrix (57 GB) cannot live in any device memory —
//! the memory model proves it — so the system streams mini-batches while
//! both CPU and FPGAs train.
//!
//! ```sh
//! cargo run --release --example papers100m_hybrid
//! ```

use hyscale::core::{AcceleratorKind, HybridTrainer, SystemConfig};
use hyscale::device::memory::{check_device_placement, check_host_placement};
use hyscale::device::spec::ALVEO_U250;
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::OGBN_PAPERS100M;
use hyscale::graph::features::Splits;
use hyscale::sampler::expected_workload;

fn main() {
    let spec = OGBN_PAPERS100M;

    // --- Motivation: placement feasibility (paper §I) ---
    let device_placement = check_device_placement(&spec, &ALVEO_U250);
    println!(
        "GraphACT/HP-GNN-style placement (graph in device memory): {} GB needed, fits U250: {}",
        device_placement.graph_bytes / 1_000_000_000,
        device_placement.fits
    );
    let stats = expected_workload(spec.num_vertices, spec.avg_degree(), 1024, &[25, 10]);
    let dims = [spec.f0, 256, spec.f2];
    let host = check_host_placement(&spec, &stats, &dims, 1_000_000, 4096.0, &ALVEO_U250);
    println!(
        "HyScale-GNN placement (graph in CPU memory, {} MB/batch streamed): fits: {}\n",
        host.minibatch_bytes / 1_000_000,
        host.fits
    );

    // --- Functional run at 1/2000 scale with DRM trace ---
    let mut dataset = spec.materialize(2000, 3);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 4);
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    cfg.train.batch_per_trainer = 512;
    cfg.train.max_functional_iters = Some(6);
    let mut trainer = HybridTrainer::new(cfg, dataset);

    println!("training GCN, CPU + 4x U250, batch 512/trainer, fanouts (25,10):");
    for report in trainer.train_epochs(3) {
        println!("{report}");
        for it in &report.trace {
            println!(
                "    iter {}: pipeline {:>7.2} ms  [samp {:>6.2} | load {:>6.2} | xfer {:>6.2} | prop {:>6.2}]  cpu quota {:>4}  {:?}",
                it.iter,
                it.iter_time_s * 1e3,
                it.times.sampling() * 1e3,
                it.times.load * 1e3,
                it.times.transfer * 1e3,
                it.times.propagation() * 1e3,
                it.cpu_quota,
                it.drm_action,
            );
        }
    }
    let iters = spec.train_vertices.div_ceil(trainer.split().total as u64);
    println!(
        "\nfull-scale projection: {} iterations/epoch ({} seeds each) at the settled mapping",
        iters,
        trainer.split().total
    );
}
