//! Training-run metrics: history, moving averages, early stopping.
//!
//! The paper argues its optimizations preserve convergence rate; these
//! helpers make convergence measurable across epochs in examples, tests
//! and the CLI.

use crate::report::EpochReport;

/// Accumulated per-epoch history of a training run.
#[derive(Debug, Default, Clone)]
pub struct TrainingHistory {
    /// Final loss per epoch.
    pub loss: Vec<f32>,
    /// Final training accuracy per epoch.
    pub accuracy: Vec<f32>,
    /// Validation accuracy per epoch (if recorded).
    pub val_accuracy: Vec<f32>,
    /// Simulated epoch time per epoch.
    pub epoch_time_s: Vec<f64>,
    /// Throughput per epoch.
    pub mteps: Vec<f64>,
}

impl TrainingHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an epoch report (and optionally a validation accuracy).
    pub fn record(&mut self, report: &EpochReport, val_accuracy: Option<f32>) {
        self.loss.push(report.loss);
        self.accuracy.push(report.accuracy);
        if let Some(v) = val_accuracy {
            self.val_accuracy.push(v);
        }
        self.epoch_time_s.push(report.epoch_time_s);
        self.mteps.push(report.mteps);
    }

    /// Number of recorded epochs.
    pub fn epochs(&self) -> usize {
        self.loss.len()
    }

    /// Best (maximum) validation accuracy so far.
    pub fn best_val_accuracy(&self) -> Option<f32> {
        self.val_accuracy
            .iter()
            .copied()
            .fold(None, |best, v| Some(best.map_or(v, |b: f32| b.max(v))))
    }

    /// Trailing mean of the last `k` losses.
    pub fn loss_tail_mean(&self, k: usize) -> Option<f32> {
        if self.loss.is_empty() {
            return None;
        }
        let k = k.min(self.loss.len()).max(1);
        Some(self.loss[self.loss.len() - k..].iter().sum::<f32>() / k as f32)
    }

    /// Mean simulated epoch time.
    pub fn mean_epoch_time(&self) -> Option<f64> {
        if self.epoch_time_s.is_empty() {
            return None;
        }
        Some(self.epoch_time_s.iter().sum::<f64>() / self.epoch_time_s.len() as f64)
    }
}

/// Patience-based early stopping on validation accuracy.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    min_delta: f32,
    best: f32,
    since_best: usize,
}

impl EarlyStopping {
    /// Stop after `patience` epochs without ≥ `min_delta` improvement.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        Self {
            patience,
            min_delta,
            best: f32::NEG_INFINITY,
            since_best: 0,
        }
    }

    /// Record an epoch's validation metric; returns `true` when training
    /// should stop.
    pub fn update(&mut self, metric: f32) -> bool {
        if metric > self.best + self.min_delta {
            self.best = metric;
            self.since_best = 0;
        } else {
            self.since_best += 1;
        }
        self.since_best >= self.patience
    }

    /// Best metric observed.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::EpochReport;

    fn report(loss: f32, acc: f32) -> EpochReport {
        EpochReport {
            epoch: 0,
            epoch_time_s: 1.0,
            mean_iter_time_s: 0.01,
            full_scale_iters: 100,
            functional_iters: 4,
            loss,
            accuracy: acc,
            mteps: 10.0,
            wall_s: 0.1,
            wall_stages: crate::report::WallStageTimes::default(),
            prefetch_depth: 0,
            prefetch_restarts: 0,
            trace: Vec::new(),
        }
    }

    #[test]
    fn history_records_and_summarizes() {
        let mut h = TrainingHistory::new();
        h.record(&report(1.0, 0.5), Some(0.55));
        h.record(&report(0.5, 0.7), Some(0.72));
        h.record(&report(0.4, 0.8), Some(0.70));
        assert_eq!(h.epochs(), 3);
        assert_eq!(h.best_val_accuracy(), Some(0.72));
        assert!((h.loss_tail_mean(2).unwrap() - 0.45).abs() < 1e-6);
        assert!((h.mean_epoch_time().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_history() {
        let h = TrainingHistory::new();
        assert_eq!(h.epochs(), 0);
        assert_eq!(h.best_val_accuracy(), None);
        assert_eq!(h.loss_tail_mean(3), None);
        assert_eq!(h.mean_epoch_time(), None);
    }

    #[test]
    fn early_stopping_trips_after_patience() {
        let mut es = EarlyStopping::new(2, 0.01);
        assert!(!es.update(0.5));
        assert!(!es.update(0.6)); // improvement
        assert!(!es.update(0.6)); // 1 stale
        assert!(es.update(0.605)); // 2 stale (below min_delta)
        assert!((es.best() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn early_stopping_resets_on_improvement() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.update(0.1));
        assert!(!es.update(0.05));
        assert!(!es.update(0.2)); // reset
        assert!(!es.update(0.15));
        assert!(es.update(0.15));
    }
}
