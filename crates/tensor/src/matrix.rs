//! Row-major dense `f32` matrix.
//!
//! A deliberately small surface: HyScale-GNN needs contiguous row-major
//! buffers (feature matrices are gathered row-wise, GEMM walks rows), not
//! a general tensor library.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense `f32` matrix.
///
/// Invariant: `data.len() == rows * cols` (checked on every constructor).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { data, rows, cols }
    }

    /// Matrix whose contents are unspecified — the caller must overwrite
    /// every element before reading. Exists so buffer-pool users can
    /// express "shape without meaningful contents"; the current
    /// implementation zero-fills (allocation via `calloc` is cheap and
    /// avoids undefined behaviour on `f32` reads).
    pub fn uninit(rows: usize, cols: usize) -> Self {
        Self::zeros(rows, cols)
    }

    /// Reshape in place to `rows × cols`, reusing the existing
    /// allocation when capacity allows. Contents are unspecified
    /// afterwards (elements carried over keep their old values, grown
    /// area is zero-filled) — callers are expected to overwrite every
    /// element, as the feature-gather hot path does.
    ///
    /// This is the buffer-pool primitive behind
    /// `gather_features_into`: steady-state training iterations reshape
    /// recycled matrices instead of allocating fresh ones.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Allocated capacity in elements (for pool-reuse diagnostics).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the whole row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the whole row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Element-wise `self += alpha * other` (AXPY).
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element, 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Copy `src` into row `r`.
    ///
    /// # Panics
    /// If `src.len() != cols`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row width mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Gather rows `indices` into a new `indices.len() × cols` matrix.
    ///
    /// This is the CPU feature-loader primitive (paper Fig. 3 "Feature
    /// Loader"): `X' = X[indices, :]`.
    pub fn gather_rows(&self, indices: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src as usize));
        }
        out
    }

    /// Vertically stack two matrices with equal column counts.
    ///
    /// # Panics
    /// On column mismatch.
    pub fn vstack(&self, bottom: &Matrix) -> Matrix {
        assert_eq!(self.cols, bottom.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + bottom.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&bottom.data);
        Matrix::from_vec(self.rows + bottom.rows, self.cols, data)
    }

    /// Horizontally concatenate two matrices with equal row counts.
    ///
    /// Used by the GraphSAGE update (`h_v || mean(h_u)`, paper Eq. 4).
    ///
    /// # Panics
    /// On row mismatch.
    pub fn hconcat(&self, right: &Matrix) -> Matrix {
        assert_eq!(self.rows, right.rows, "hconcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + right.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(right.row(r));
        }
        out
    }

    /// Split off the first `left_cols` columns, returning `(left, right)`.
    ///
    /// Inverse of [`Matrix::hconcat`]; used by the SAGE backward pass.
    ///
    /// # Panics
    /// If `left_cols > cols`.
    pub fn hsplit(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(left_cols <= self.cols, "hsplit out of range");
        let right_cols = self.cols - left_cols;
        let mut left = Matrix::zeros(self.rows, left_cols);
        let mut right = Matrix::zeros(self.rows, right_cols);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..left_cols]);
            right.row_mut(r).copy_from_slice(&self.row(r)[left_cols..]);
        }
        (left, right)
    }

    /// `true` when all elements differ by at most `tol` (absolute) or
    /// `tol` relative to magnitude, whichever is looser.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let diff = (a - b).abs();
            diff <= tol || diff <= tol * a.abs().max(b.abs())
        })
    }

    /// Size of the matrix payload in bytes (`4·rows·cols`).
    ///
    /// Used throughout the timing models (paper Eq. 7–8: traffic =
    /// `|V|·f·S_feat`).
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, " ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn index_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = 3.5;
        m[(1, 0)] = -1.0;
        assert_eq!(m[(0, 1)], 3.5);
        assert_eq!(m[(1, 0)], -1.0);
        assert_eq!(m.as_slice(), &[0.0, 3.5, -1.0, 0.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_values() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.as_slice(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn gather_rows_selects() {
        let x = Matrix::from_fn(5, 2, |r, c| (10 * r + c) as f32);
        let g = x.gather_rows(&[4, 0, 4]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), &[40., 41.]);
        assert_eq!(g.row(1), &[0., 1.]);
        assert_eq!(g.row(2), &[40., 41.]);
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f32 + 0.5);
        let cat = a.hconcat(&b);
        assert_eq!(cat.shape(), (3, 6));
        let (l, r) = cat.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn vstack_stacks() {
        let a = Matrix::full(1, 3, 1.0);
        let b = Matrix::full(2, 3, 2.0);
        let s = a.vstack(&b);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.row(0), &[1.0; 3]);
        assert_eq!(s.row(2), &[2.0; 3]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4.0; 4]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Matrix::full(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 1e-7;
        assert!(a.approx_eq(&b, 1e-5));
        b[(0, 0)] = 1.1;
        assert!(!a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn nbytes_counts_payload() {
        assert_eq!(Matrix::zeros(3, 5).nbytes(), 60);
    }

    #[test]
    fn resize_keeps_allocation_when_shrinking() {
        let mut m = Matrix::zeros(100, 8);
        let cap = m.capacity();
        m.resize(50, 8);
        assert_eq!(m.shape(), (50, 8));
        assert_eq!(m.capacity(), cap, "shrink must not reallocate");
        m.resize(100, 8);
        assert_eq!(m.shape(), (100, 8));
        assert_eq!(
            m.capacity(),
            cap,
            "regrow within capacity must not reallocate"
        );
    }

    #[test]
    fn uninit_has_shape() {
        let m = Matrix::uninit(4, 3);
        assert_eq!(m.shape(), (4, 3));
        assert_eq!(m.len(), 12);
    }
}
