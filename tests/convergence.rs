//! End-to-end convergence: the full hybrid system must train real models
//! to high accuracy on learnable synthetic data — the functional half of
//! the reproduction. Covers both models × both accelerator families.

use hyscale::core::{AcceleratorKind, HybridTrainer, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::Dataset;

fn config(accel: AcceleratorKind, model: GnnKind) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(accel, model);
    cfg.platform.num_accelerators = 2;
    cfg.train.batch_per_trainer = 96;
    cfg.train.fanouts = vec![8, 4];
    cfg.train.hidden_dim = 32;
    cfg.train.learning_rate = 0.3;
    cfg.train.max_functional_iters = Some(5);
    cfg
}

fn assert_converges(accel: AcceleratorKind, model: GnnKind) {
    let dataset = Dataset::toy(21);
    let test = dataset.splits.test.clone();
    let mut trainer = HybridTrainer::new(config(accel, model), dataset);
    let before = trainer.evaluate(&test);
    let reports = trainer.train_epochs(8);
    let after = trainer.evaluate(&test);
    assert!(
        after > 0.85,
        "{} on {}: test accuracy only {after} (started {before})",
        model.name(),
        trainer.config().platform.accelerator.label()
    );
    let first = reports.first().unwrap().loss;
    let last = reports.last().unwrap().loss;
    assert!(last < first, "loss rose: {first} -> {last}");
}

#[test]
fn gcn_converges_on_fpga_system() {
    assert_converges(AcceleratorKind::u250(), GnnKind::Gcn);
}

#[test]
fn sage_converges_on_fpga_system() {
    assert_converges(AcceleratorKind::u250(), GnnKind::GraphSage);
}

#[test]
fn gcn_converges_on_gpu_system() {
    assert_converges(AcceleratorKind::a5000(), GnnKind::Gcn);
}

#[test]
fn sage_converges_on_gpu_system() {
    assert_converges(AcceleratorKind::a5000(), GnnKind::GraphSage);
}

#[test]
fn training_reports_are_well_formed() {
    let dataset = Dataset::toy(5);
    let mut trainer = HybridTrainer::new(config(AcceleratorKind::u250(), GnnKind::Gcn), dataset);
    let r = trainer.train_epoch();
    assert!(r.functional_iters > 0);
    assert_eq!(r.trace.len(), r.functional_iters);
    assert!(r.mean_iter_time_s > 0.0);
    assert!(r.epoch_time_s >= r.mean_iter_time_s * r.full_scale_iters as f64);
    assert!(r.trace.iter().all(|t| t.iter_time_s > 0.0 && t.mteps > 0.0));
    // throughput metric consistency (Eq. 5): MTEPS * time == edges
    for t in &r.trace {
        assert!(t.mteps * t.iter_time_s * 1e6 > 0.0);
    }
}
