//! Property-based tests over the core data structures and kernels,
//! plus the randomized DRM-schedule equivalence harness: arbitrary
//! interleavings of `balance_work` / `balance_thread` / no-op events
//! must leave prefetched training bitwise-identical to serial.

use hyscale::core::drm::{DrmEngine, ScriptedDrm, ScriptedDrmEvent, ThreadAlloc, WorkloadSplit};
use hyscale::core::stages::Stage;
use hyscale::core::StageTimes;
use hyscale::core::{AcceleratorKind, HybridTrainer, OptFlags, SystemConfig};
use hyscale::gnn::aggregate::{
    aggregate_gcn, aggregate_gcn_backward, aggregate_mean, aggregate_mean_backward, GcnCoefficients,
};
use hyscale::gnn::Gradients;
use hyscale::graph::{CsrGraph, GraphBuilder};
use hyscale::sampler::{Block, NeighborSampler};
use hyscale::tensor::{gemm_nn, Matrix};
use proptest::prelude::*;

fn edge_list(max_v: usize, max_e: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_v).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..max_e);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR construction preserves the edge multiset.
    #[test]
    fn csr_preserves_edges((n, edges) in edge_list(64, 200)) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.num_edges() as usize, edges.len());
        let mut expect = edges.clone();
        expect.sort_unstable();
        let mut got = g.edges_by_source();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        g.validate().unwrap();
    }

    /// Reversing twice restores the edge multiset.
    #[test]
    fn reverse_is_involution((n, edges) in edge_list(48, 150)) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let rr = g.reverse().reverse();
        let mut a = g.edges_by_source();
        let mut b = rr.edges_by_source();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Symmetrize yields a graph equal to its own reverse.
    #[test]
    fn symmetrize_is_symmetric((n, edges) in edge_list(32, 100)) {
        let g = CsrGraph::from_edges(n, &edges).unwrap().symmetrize();
        let mut a = g.edges_by_source();
        let mut b = g.reverse().edges_by_source();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Builder dedup produces strictly unique edges.
    #[test]
    fn builder_dedup_unique((n, edges) in edge_list(32, 150)) {
        let mut b = GraphBuilder::new(n).dedup(true);
        b.add_edges(edges);
        let g = b.build().unwrap();
        let mut e = g.edges_by_source();
        let before = e.len();
        e.dedup();
        prop_assert_eq!(e.len(), before, "duplicate edges survived");
    }

    /// Sampled mini-batches always satisfy the structural invariants and
    /// fanout bounds, for arbitrary graphs/fanouts/seeds.
    #[test]
    fn sampler_output_always_valid(
        (n, edges) in edge_list(80, 400),
        fanout1 in 1usize..8,
        fanout2 in 1usize..8,
        seed in 0u64..1000,
    ) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let sampler = NeighborSampler::new(vec![fanout1, fanout2], seed);
        let seeds: Vec<u32> = (0..(n as u32).min(9)).collect();
        let mb = sampler.sample(&g, &seeds, seed);
        mb.validate().unwrap();
        // per-destination fanout bound on the seed-side block
        let top = mb.blocks.last().unwrap();
        for (d, deg) in top.dst_in_degrees().iter().enumerate() {
            prop_assert!(*deg as usize <= fanout1.min(g.out_degree(seeds[d])));
        }
    }

    /// GEMM distributes over addition: (A+B)C == AC + BC.
    #[test]
    fn gemm_distributes(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, s in 0u64..100,
    ) {
        let a1 = hyscale::tensor::init::randn(m, k, s);
        let a2 = hyscale::tensor::init::randn(m, k, s ^ 1);
        let b = hyscale::tensor::init::randn(k, n, s ^ 2);
        let mut sum = a1.clone();
        sum.add_assign(&a2);
        let lhs = gemm_nn(&sum, &b);
        let mut rhs = gemm_nn(&a1, &b);
        rhs.add_assign(&gemm_nn(&a2, &b));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3), "distributivity violated");
    }

    /// Aggregation adjoint identity <Cx, y> == <x, Cᵀy> on random blocks.
    #[test]
    fn aggregation_adjoint(
        num_src in 2usize..12,
        num_dst_raw in 1usize..12,
        edges_n in 0usize..30,
        f in 1usize..6,
        s in 0u64..100,
    ) {
        let num_dst = num_dst_raw.min(num_src);
        let edge_src: Vec<u32> = (0..edges_n).map(|i| ((i * 7 + s as usize) % num_src) as u32).collect();
        let edge_dst: Vec<u32> = (0..edges_n).map(|i| ((i * 11 + s as usize) % num_dst) as u32).collect();
        let block = Block { num_src, num_dst, edge_src, edge_dst };
        let x = hyscale::tensor::init::randn(num_src, f, s);
        let y = hyscale::tensor::init::randn(num_dst, f, s ^ 3);
        // GCN variant
        let coef = GcnCoefficients::from_block(&block);
        let cx = aggregate_gcn(&block, &x, &coef);
        let cty = aggregate_gcn_backward(&block, &y, &coef);
        let dot = |a: &Matrix, b: &Matrix| -> f64 {
            a.as_slice().iter().zip(b.as_slice()).map(|(p, q)| (*p as f64) * (*q as f64)).sum()
        };
        prop_assert!((dot(&cx, &y) - dot(&x, &cty)).abs() < 1e-3);
        // mean variant
        let mx = aggregate_mean(&block, &x);
        let mty = aggregate_mean_backward(&block, &y);
        prop_assert!((dot(&mx, &y) - dot(&x, &mty)).abs() < 1e-3);
    }

    /// Weighted gradient averaging is convex: every averaged entry lies
    /// within the min/max envelope of the inputs.
    #[test]
    fn weighted_average_is_convex(
        v1 in -5.0f32..5.0, v2 in -5.0f32..5.0,
        b1 in 1usize..100, b2 in 1usize..100,
    ) {
        let g = |v: f32, b: usize| Gradients {
            d_weights: vec![Matrix::full(2, 2, v)],
            d_biases: vec![vec![v; 2]],
            batch_size: b,
        };
        let avg = Gradients::weighted_average(&[g(v1, b1), g(v2, b2)]);
        let out = avg.d_weights[0][(0, 0)];
        prop_assert!(out >= v1.min(v2) - 1e-5 && out <= v1.max(v2) + 1e-5);
    }

    /// The FPGA kernel simulator matches the reference aggregation for
    /// arbitrary random blocks and coefficients, and its DRAM reads
    /// never exceed one row per distinct source.
    #[test]
    fn fpga_kernel_matches_reference_on_random_blocks(
        num_src in 2usize..16,
        num_dst_raw in 1usize..16,
        edges_n in 0usize..40,
        f in 1usize..8,
        s in 0u64..100,
    ) {
        use hyscale::device::fpga::kernel::{simulate_aggregation, FpgaKernelConfig};
        let num_dst = num_dst_raw.min(num_src);
        let edge_src: Vec<u32> =
            (0..edges_n).map(|i| ((i * 13 + s as usize) % num_src) as u32).collect();
        let edge_dst: Vec<u32> =
            (0..edges_n).map(|i| ((i * 17 + s as usize) % num_dst) as u32).collect();
        let block = Block { num_src, num_dst, edge_src, edge_dst };
        let h = hyscale::tensor::init::randn(num_src, f, s);
        let coef = GcnCoefficients::from_block(&block);
        let run = simulate_aggregation(
            &block, &h, &coef.edge, &coef.self_loop, &FpgaKernelConfig::default(), false,
        );
        let reference = aggregate_gcn(&block, &h, &coef);
        prop_assert!(run.result.approx_eq(&reference, 1e-4));
        // duplicator bound: at most one read per source row + self rows
        prop_assert!(run.dram_read_bytes <= ((num_src + num_dst) * f * 4) as u64);
    }

    /// Quantization round-trips stay within their precision's error
    /// envelope for arbitrary matrices.
    #[test]
    fn quantization_error_envelopes(rows in 1usize..10, cols in 1usize..20, s in 0u64..100) {
        use hyscale::tensor::Precision;
        let x = hyscale::tensor::init::randn(rows, cols, s);
        let f16 = Precision::F16.round_trip(&x);
        for (a, b) in x.as_slice().iter().zip(f16.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-3 * a.abs().max(6.2e-5), "f16: {a} vs {b}");
        }
        let i8rt = Precision::Int8.round_trip(&x);
        for r in 0..rows {
            let row = x.row(r);
            let (lo, hi) = row.iter().fold(
                (f32::INFINITY, f32::NEG_INFINITY),
                |(l, h), &v| (l.min(v), h.max(v)),
            );
            let step = (hi - lo) / 254.0;
            for (a, b) in row.iter().zip(i8rt.row(r)) {
                // + a relative term for f32 rounding on degenerate rows
                let tol = step + a.abs() * 1e-6 + 1e-7;
                prop_assert!((a - b).abs() <= tol, "int8: {a} vs {b} (tol {tol})");
            }
        }
        // wire ordering: int8 < f16 (once rows amortize the 8-byte
        // per-row metadata, i.e. cols > 8) < f32
        prop_assert!(
            Precision::Int8.wire_bytes(rows, cols) < Precision::F16.wire_bytes(rows, cols)
                || cols <= 8
        );
        prop_assert!(Precision::F16.wire_bytes(rows, cols) < Precision::F32.wire_bytes(rows, cols));
    }

    /// Degree-descending relabeling preserves degree multisets for any
    /// graph.
    #[test]
    fn relabeling_preserves_degrees((n, edges) in edge_list(40, 120)) {
        use hyscale::graph::reorder::Relabeling;
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let r = Relabeling::by_degree_desc(&g);
        let g2 = r.apply_graph(&g);
        let mut d1: Vec<usize> = (0..n as u32).map(|v| g.out_degree(v)).collect();
        let mut d2: Vec<usize> = (0..n as u32).map(|v| g2.out_degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    /// Edge-list text serialization round-trips any graph.
    #[test]
    fn edge_list_io_roundtrip((n, edges) in edge_list(32, 100)) {
        use hyscale::graph::io::{read_edge_list, write_edge_list};
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(n)).unwrap();
        prop_assert_eq!(g.offsets(), g2.offsets());
        prop_assert_eq!(g.targets(), g2.targets());
    }

    /// Surgical invalidation preserves the quota-sum invariant the
    /// salvage logic keys on: for random splits and random
    /// `balance_work` deltas, the per-trainer quota diff marks a
    /// trainer changed exactly when its slice `(prefix, len)` moved.
    #[test]
    fn quota_diff_matches_slice_comparison(
        cpu in 0usize..512,
        total_extra in 4usize..2048,
        accels in 1usize..6,
        delta in 0usize..600,
        to_cpu in 0u8..2,
    ) {
        use hyscale::core::drm::QuotaDiff;
        let total = cpu + total_extra.max(accels);
        let mut split = WorkloadSplit::new(cpu.min(total), total, accels);
        let old = split.quotas();
        if to_cpu == 1 { split.shift_to_cpu(delta); } else { split.shift_to_accel(delta); }
        let new = split.quotas();
        let diff = QuotaDiff::between(&old, &new);
        // reference: slice-by-slice comparison
        let prefix = |q: &[usize], t: usize| q[..t].iter().sum::<usize>();
        for t in 0..new.len() {
            let moved = prefix(&old, t) != prefix(&new, t) || old[t] != new[t];
            prop_assert_eq!(diff.trainer_changed(t), moved, "trainer {}", t);
        }
        prop_assert_eq!(diff.is_noop(), old == new);
    }

    /// Any sequence of DRM decisions conserves the seed total, the
    /// thread budget, and the sampling-share range.
    #[test]
    fn drm_invariants_under_random_times(
        times in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..30),
    ) {
        let drm = DrmEngine::new(true);
        let mut split = WorkloadSplit::new(512, 2048, 4);
        let mut threads = ThreadAlloc::default_for(64);
        let budget = threads.total();
        for (a, b, c, d, e, f) in times {
            let t = StageTimes {
                sample_cpu: a,
                sample_accel: b,
                load: c,
                transfer: d,
                train_cpu: e,
                train_accel: f,
                sync: 0.001,
            };
            drm.adjust(&t, &mut split, &mut threads);
            prop_assert_eq!(split.quotas().iter().sum::<usize>(), 2048);
            prop_assert_eq!(threads.total(), budget);
            prop_assert!(split.sampling_on_accel >= 0.0 && split.sampling_on_accel <= 1.0);
            prop_assert!(threads.sampler >= 1 && threads.loader >= 1 && threads.trainer >= 1);
        }
    }
}

/// Train two epochs of a small hybrid configuration under a scripted
/// DRM schedule, returning the flattened weights and per-epoch losses.
/// Every run of this function with the same `(depth, ring_depth,
/// transfer_lanes)` and schedule must agree bitwise; runs with
/// *different* depths and lane caps must agree too — that is the
/// property under test.
fn run_scheduled(
    depth: usize,
    ring_depth: usize,
    transfer_lanes: usize,
    schedule: &[ScriptedDrmEvent],
) -> (Vec<f32>, Vec<f32>) {
    let ds = hyscale::graph::Dataset::toy(41);
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), hyscale::gnn::GnnKind::Gcn);
    cfg.platform.num_accelerators = 2;
    cfg.opt = OptFlags {
        hybrid: true,
        drm: false, // the script is the only source of re-mapping
        tfp: true,
    };
    cfg.train.batch_per_trainer = 32;
    cfg.train.fanouts = vec![4, 3];
    cfg.train.hidden_dim = 8;
    cfg.train.max_functional_iters = Some(6);
    cfg.train.prefetch_depth = depth;
    cfg.train.staging_ring_depth = ring_depth;
    cfg.train.transfer_lanes = transfer_lanes;
    let mut t = HybridTrainer::new(cfg, ds);
    t.set_mapping(WorkloadSplit::new(32, 96, 2), ThreadAlloc::default_for(16));
    t.set_drm_schedule(schedule.to_vec());
    let reports = t.train_epochs(2);
    let losses = reports.iter().map(|r| r.loss).collect();
    (t.model().flatten_params(), losses)
}

proptest! {
    // Smoke-sized by default; the CI matrix deepens it with
    // PROPTEST_CASES=64 on main pushes.
    #![proptest_config(ProptestConfig::env_or(6))]

    /// The randomized DRM-schedule equivalence harness, extended to the
    /// multi-lane producer: a random interleaving of `balance_work`
    /// (random deltas, including explicit zero-diff moves),
    /// `balance_thread`, and no-op events at random iterations must
    /// train bitwise-identical weights and losses to serial execution
    /// for every transfer-lane cap {1, 2, 4} × prefetch depth {1, 2} ×
    /// staging-ring depth {1, 2}. This is what licenses the surgical
    /// invalidator to salvage queued batches instead of flushing them,
    /// and the lane gate to re-time round-trips freely.
    #[test]
    fn random_drm_schedules_are_bitwise_equivalent(
        raw in prop::collection::vec(
            // (epoch, iter, kind, delta, from, to)
            (0u64..2, 0usize..6, 0u8..4, 0usize..80, 0u8..3, 0u8..3),
            0..8,
        ),
    ) {
        const STAGES: [Stage; 3] = [Stage::SampleCpu, Stage::Load, Stage::TrainCpu];
        let schedule: Vec<ScriptedDrmEvent> = raw
            .iter()
            .map(|&(epoch, iter, kind, delta, from, to)| {
                let action = match kind {
                    // random-magnitude work shift in either direction
                    // (the split clamps it, so some land as zero-diff)
                    0 => ScriptedDrm::BalanceWork { to_cpu: delta as isize - 40 },
                    // explicit zero-delta balance_work: must be a no-op
                    1 => ScriptedDrm::BalanceWork { to_cpu: 0 },
                    2 => ScriptedDrm::BalanceThread { from: STAGES[from as usize], to: STAGES[to as usize] },
                    _ => ScriptedDrm::Noop,
                };
                ScriptedDrmEvent { epoch, iter, action }
            })
            .collect();
        let (serial_params, serial_losses) = run_scheduled(0, 2, 0, &schedule);
        for lanes in [1usize, 2, 4] {
            for ring_depth in [1usize, 2] {
                for depth in [1usize, 2] {
                    let (params, losses) = run_scheduled(depth, ring_depth, lanes, &schedule);
                    prop_assert_eq!(
                        &serial_params, &params,
                        "lanes {} depth {} ring {} diverged from serial under {:?}",
                        lanes, depth, ring_depth, schedule
                    );
                    prop_assert_eq!(
                        &serial_losses, &losses,
                        "lanes {} depth {} ring {} changed the loss trajectory under {:?}",
                        lanes, depth, ring_depth, schedule
                    );
                }
            }
        }
    }
}

/// The lane-starvation script: a scripted schedule that repeatedly
/// slams nearly the whole batch onto the CPU trainer (leaving each
/// accelerator lane the 1-seed minimum — fat CPU batches, starved lane
/// channels) and then back, at the tightest pipeline configuration
/// (prefetch 1, ring 1) where one lane's channel is full while the
/// others idle. Bitwise equivalence with serial must survive for every
/// transfer-lane cap, and so must a prefetch depth deep enough for the
/// channels to actually back up.
#[test]
fn lane_starvation_script_is_bitwise_equivalent() {
    let schedule: Vec<ScriptedDrmEvent> = vec![
        // slam to CPU: accel lanes drop to their 1-seed floor
        ScriptedDrmEvent {
            epoch: 0,
            iter: 1,
            action: ScriptedDrm::BalanceWork { to_cpu: 96 },
        },
        // and back toward the lanes
        ScriptedDrmEvent {
            epoch: 0,
            iter: 3,
            action: ScriptedDrm::BalanceWork { to_cpu: -96 },
        },
        // second epoch: slam and a zero-diff echo (coalescing no-op)
        ScriptedDrmEvent {
            epoch: 1,
            iter: 0,
            action: ScriptedDrm::BalanceWork { to_cpu: 96 },
        },
        ScriptedDrmEvent {
            epoch: 1,
            iter: 0,
            action: ScriptedDrm::BalanceWork { to_cpu: 0 },
        },
    ];
    let (serial_params, serial_losses) = run_scheduled(0, 2, 0, &schedule);
    for lanes in [1usize, 2, 4] {
        for (depth, ring_depth) in [(1usize, 1usize), (2, 1), (2, 2)] {
            let (params, losses) = run_scheduled(depth, ring_depth, lanes, &schedule);
            assert_eq!(
                serial_params, params,
                "starvation script: lanes {lanes} depth {depth} ring {ring_depth} \
                 diverged from serial"
            );
            assert_eq!(
                serial_losses, losses,
                "starvation script: lanes {lanes} depth {depth} ring {ring_depth} \
                 changed the loss trajectory"
            );
        }
    }
}
