//! The motivating memory constraint (paper §I): large graphs cannot be
//! device-resident; HyScale-GNN's host placement always fits.

use hyscale::device::memory::{
    check_device_placement, check_host_placement, graph_footprint_bytes, Placement,
};
use hyscale::device::spec::{ALVEO_U250, RTX_A5000, V100};
use hyscale::graph::dataset::{ALL_DATASETS, MAG240M_HOMO, OGBN_PAPERS100M, OGBN_PRODUCTS};
use hyscale::sampler::expected_workload;

#[test]
fn prior_work_placement_fails_on_large_graphs() {
    for ds in [OGBN_PAPERS100M, MAG240M_HOMO] {
        for dev in [RTX_A5000, ALVEO_U250, V100] {
            let r = check_device_placement(&ds, &dev);
            assert_eq!(r.placement, Placement::DeviceMemory);
            assert!(!r.fits, "{} should overflow {}", ds.name, dev.name);
        }
    }
}

#[test]
fn medium_graph_fits_device_memory() {
    // products is the medium-scale dataset prior work could handle
    let r = check_device_placement(&OGBN_PRODUCTS, &ALVEO_U250);
    assert!(r.fits);
}

#[test]
fn hyscale_placement_fits_all_datasets() {
    for ds in ALL_DATASETS {
        let stats = expected_workload(ds.num_vertices, ds.avg_degree(), 1024, &[25, 10]);
        let dims = [ds.f0, 256, ds.f2];
        for dev in [RTX_A5000, ALVEO_U250] {
            let r = check_host_placement(&ds, &stats, &dims, 2_000_000, 4096.0, &dev);
            assert!(
                r.fits,
                "{} on {}: graph {} GB, batch {} MB",
                ds.name,
                dev.name,
                r.graph_bytes / 1_000_000_000,
                r.minibatch_bytes / 1_000_000
            );
        }
    }
}

#[test]
fn footprints_scale_with_dataset() {
    let p = graph_footprint_bytes(&OGBN_PRODUCTS);
    let pp = graph_footprint_bytes(&OGBN_PAPERS100M);
    let m = graph_footprint_bytes(&MAG240M_HOMO);
    assert!(p < pp && pp < m, "footprint ordering broken: {p} {pp} {m}");
    // MAG240M raw f32 features alone exceed 300 GB
    assert!(m > 300_000_000_000);
}
