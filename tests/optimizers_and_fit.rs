//! Optimizer selection and the `fit` convenience runner.

use hyscale::core::config::OptimizerKind;
use hyscale::core::{AcceleratorKind, HybridTrainer, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::Dataset;

fn cfg(optimizer: OptimizerKind, lr: f32) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
    cfg.platform.num_accelerators = 2;
    cfg.train.batch_per_trainer = 96;
    cfg.train.fanouts = vec![8, 4];
    cfg.train.hidden_dim = 32;
    cfg.train.learning_rate = lr;
    cfg.train.optimizer = optimizer;
    cfg.train.max_functional_iters = Some(5);
    cfg
}

#[test]
fn all_optimizers_converge() {
    for (opt, lr) in [
        (OptimizerKind::Sgd, 0.3),
        (OptimizerKind::Momentum(0.9), 0.05),
        (OptimizerKind::Adam, 0.01),
    ] {
        let dataset = Dataset::toy(71);
        let test = dataset.splits.test.clone();
        let mut trainer = HybridTrainer::new(cfg(opt, lr), dataset);
        trainer.train_epochs(8);
        let acc = trainer.evaluate(&test);
        assert!(acc > 0.85, "{opt:?}: accuracy only {acc}");
    }
}

#[test]
fn fit_records_history_and_stops_early() {
    let dataset = Dataset::toy(72);
    let val = dataset.splits.val.clone();
    let mut trainer = HybridTrainer::new(cfg(OptimizerKind::Sgd, 0.3), dataset);
    // toy data converges fast: with patience 2, fit should stop well
    // before 40 epochs
    let history = trainer.fit(40, &val, Some(2));
    assert!(
        history.epochs() < 40,
        "early stopping never fired ({} epochs)",
        history.epochs()
    );
    assert!(history.best_val_accuracy().unwrap() > 0.85);
    assert_eq!(history.val_accuracy.len(), history.epochs());
    assert!(history.mean_epoch_time().unwrap() > 0.0);
}

#[test]
fn fit_without_patience_runs_all_epochs() {
    let dataset = Dataset::toy(73);
    let val = dataset.splits.val.clone();
    let mut trainer = HybridTrainer::new(cfg(OptimizerKind::Sgd, 0.3), dataset);
    let history = trainer.fit(3, &val, None);
    assert_eq!(history.epochs(), 3);
}
