//! Pipeline stages, their per-iteration timings, and the live worker
//! pools that execute the CPU-resident stages.
//!
//! HyScale-GNN decomposes training into four pipeline stages (paper
//! §III-B): Sampling, Feature Loading, Data Transfer, and GNN
//! Propagation. The DRM engine reasons about six measured times
//! (Algorithm 1's inputs): sampling on CPU/accelerator, loading,
//! transfer, and training on CPU/accelerator, plus synchronization.
//!
//! [`StageWorkers`] is where DRM decisions meet execution: one
//! [`rayon::WorkerGroup`] per CPU task (sampler / loader / trainer),
//! whose widths mirror the current [`ThreadAlloc`]
//! and are re-sized in place when a `balance_thread` move fires — so
//! thread re-allocations change *measured* stage walls, not only the
//! simulated [`StageTimes`].

use crate::drm::ThreadAlloc;
use rayon::WorkerGroup;

/// The tasks Algorithm 1 balances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Mini-batch sampling on the CPUs (`T_SC`).
    SampleCpu,
    /// Mini-batch sampling on the accelerators (`T_SA`).
    SampleAccel,
    /// Feature Loading from CPU memory (`T_Load`) — CPU-only stage.
    Load,
    /// GNN propagation on the CPU trainer (`T_TC`).
    TrainCpu,
    /// Bundled Data Transfer + accelerator training (`T_Accel =
    /// max(T_Tran, T_TA)`, Algorithm 1 line 1).
    Accel,
}

impl Stage {
    /// Whether this task consumes CPU worker threads (candidates for
    /// `balance_thread`).
    pub fn is_cpu_task(self) -> bool {
        matches!(self, Stage::SampleCpu | Stage::Load | Stage::TrainCpu)
    }
}

/// The live CPU worker pools, one [`WorkerGroup`] per CPU-resident task.
///
/// This is the execution-side twin of [`ThreadAlloc`]: the DRM engine
/// mutates a `ThreadAlloc` (its model of the thread budget), and the
/// executor [`apply`](Self::apply)s it here so the prefetch producer's
/// dispatches — socket-sharded feature gathers, per-accelerator
/// fan-out, sampler kernels — actually run at the budgeted widths.
/// Widths are atomics inside each group, so a re-size made by the
/// consumer thread is observed by the producer thread on its next
/// dispatch without draining the prefetch queue (prepared iterations
/// are bitwise-independent of widths).
///
/// ```
/// use hyscale_core::stages::{Stage, StageWorkers};
/// use hyscale_core::ThreadAlloc;
///
/// let workers = StageWorkers::from_alloc(&ThreadAlloc { sampler: 4, loader: 8, trainer: 20 });
/// assert_eq!(workers.loader().width(), 8);
/// // a DRM balance_thread move lands:
/// workers.apply(&ThreadAlloc { sampler: 3, loader: 9, trainer: 20 });
/// assert_eq!(workers.observed(), ThreadAlloc { sampler: 3, loader: 9, trainer: 20 });
/// ```
pub struct StageWorkers {
    sampler: WorkerGroup,
    loader: WorkerGroup,
    trainer: WorkerGroup,
}

impl StageWorkers {
    /// Build the three pools at the widths of `alloc`.
    pub fn from_alloc(alloc: &ThreadAlloc) -> Self {
        Self {
            sampler: WorkerGroup::new("sampler", alloc.sampler),
            loader: WorkerGroup::new("loader", alloc.loader),
            trainer: WorkerGroup::new("trainer", alloc.trainer),
        }
    }

    /// Re-size every pool to `alloc`'s widths (a `balance_thread` move,
    /// or restoring a checkpointed mapping). Concurrent dispatchers pick
    /// the new widths up on their next dispatch.
    pub fn apply(&self, alloc: &ThreadAlloc) {
        self.sampler.set_width(alloc.sampler);
        self.loader.set_width(alloc.loader);
        self.trainer.set_width(alloc.trainer);
    }

    /// The current logical widths as a [`ThreadAlloc`] — what the
    /// producer actually observes, recorded per iteration in
    /// [`WallStageTimes`](crate::report::WallStageTimes).
    pub fn observed(&self) -> ThreadAlloc {
        ThreadAlloc {
            sampler: self.sampler.width(),
            loader: self.loader.width(),
            trainer: self.trainer.width(),
        }
    }

    /// The Mini-batch Sampler pool.
    pub fn sampler(&self) -> &WorkerGroup {
        &self.sampler
    }

    /// The Feature Loader pool.
    pub fn loader(&self) -> &WorkerGroup {
        &self.loader
    }

    /// The CPU GNN Trainer pool.
    pub fn trainer(&self) -> &WorkerGroup {
        &self.trainer
    }

    /// The pool executing `stage`, if it is a CPU task.
    pub fn group(&self, stage: Stage) -> Option<&WorkerGroup> {
        match stage {
            Stage::SampleCpu => Some(&self.sampler),
            Stage::Load => Some(&self.loader),
            Stage::TrainCpu => Some(&self.trainer),
            Stage::SampleAccel | Stage::Accel => None,
        }
    }
}

/// Measured (simulated) execution time of each stage for one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTimes {
    /// Sampling on CPU, seconds.
    pub sample_cpu: f64,
    /// Sampling on accelerators, seconds.
    pub sample_accel: f64,
    /// Feature loading, seconds.
    pub load: f64,
    /// PCIe data transfer (max over parallel links), seconds.
    pub transfer: f64,
    /// CPU trainer propagation, seconds.
    pub train_cpu: f64,
    /// Accelerator trainer propagation (max over devices), seconds.
    pub train_accel: f64,
    /// Gradient all-reduce, seconds.
    pub sync: f64,
}

impl StageTimes {
    /// All-zero times.
    pub fn zero() -> Self {
        Self {
            sample_cpu: 0.0,
            sample_accel: 0.0,
            load: 0.0,
            transfer: 0.0,
            train_cpu: 0.0,
            train_accel: 0.0,
            sync: 0.0,
        }
    }

    /// Bundled accelerator time `T_Accel = max(T_Tran, T_TA)`
    /// (Algorithm 1 line 1: transfer and accelerator-training times are
    /// highly correlated). This is the paper's *perfect-overlap*
    /// assumption — equivalent to
    /// [`accel_with_visible`](Self::accel_with_visible) with the
    /// double-buffered visible share `(T_Tran - T_TA)⁺`.
    pub fn accel(&self) -> f64 {
        self.transfer.max(self.train_accel)
    }

    /// Overlap-aware accelerator time: propagation plus the *visible*
    /// (un-hidden) share of the wire transfer. The staging rings hide
    /// transfer time behind accelerator compute only when they are deep
    /// enough (ring depth ≥ 2); a single staging buffer, or a
    /// bandwidth-bound lane whose wire time exceeds its compute, leaves
    /// `visible` seconds on the accelerator's critical path — and that
    /// is what the DRM should balance against, not the optimistic
    /// `max(T_Tran, T_TA)` bundle. `visible = (T_Tran - T_TA)⁺`
    /// reproduces [`accel`](Self::accel) exactly.
    pub fn accel_with_visible(&self, visible_transfer: f64) -> f64 {
        self.train_accel + visible_transfer.max(0.0)
    }

    /// Combined sampling time (CPU and accelerator samplers run
    /// concurrently).
    pub fn sampling(&self) -> f64 {
        self.sample_cpu.max(self.sample_accel)
    }

    /// Combined propagation time (CPU and accelerator trainers run
    /// concurrently) plus synchronization.
    pub fn propagation(&self) -> f64 {
        self.train_cpu.max(self.train_accel) + self.sync
    }

    /// Pipelined iteration time with Two-stage Feature Prefetching
    /// (paper Eq. 6): stages run concurrently on different resources, so
    /// the steady-state iteration time is the slowest stage.
    pub fn pipelined_iteration(&self) -> f64 {
        self.sampling()
            .max(self.load)
            .max(self.transfer)
            .max(self.propagation())
    }

    /// Serial iteration time without TFP: communication stages do not
    /// overlap with compute (sampling → load → transfer → propagate →
    /// sync).
    pub fn serial_iteration(&self) -> f64 {
        self.sampling() + self.load + self.transfer + self.propagation()
    }

    /// The DRM view: `(stage, time)` pairs of Algorithm 1's five tasks.
    pub fn drm_tasks(&self) -> [(super::stages::Stage, f64); 5] {
        [
            (Stage::SampleCpu, self.sample_cpu),
            (Stage::SampleAccel, self.sample_accel),
            (Stage::Load, self.load),
            (Stage::TrainCpu, self.train_cpu),
            (Stage::Accel, self.accel()),
        ]
    }

    /// Element-wise running average helper: `self + (other - self)/n`.
    pub fn ewma_toward(&mut self, other: &StageTimes, alpha: f64) {
        let mix = |a: &mut f64, b: f64| *a += alpha * (b - *a);
        mix(&mut self.sample_cpu, other.sample_cpu);
        mix(&mut self.sample_accel, other.sample_accel);
        mix(&mut self.load, other.load);
        mix(&mut self.transfer, other.transfer);
        mix(&mut self.train_cpu, other.train_cpu);
        mix(&mut self.train_accel, other.train_accel);
        mix(&mut self.sync, other.sync);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> StageTimes {
        StageTimes {
            sample_cpu: 2.0,
            sample_accel: 1.0,
            load: 3.0,
            transfer: 4.0,
            train_cpu: 5.0,
            train_accel: 6.0,
            sync: 0.5,
        }
    }

    #[test]
    fn accel_bundles_transfer_and_training() {
        assert_eq!(t().accel(), 6.0);
        let mut x = t();
        x.transfer = 9.0;
        assert_eq!(x.accel(), 9.0);
    }

    #[test]
    fn accel_with_visible_generalizes_the_bundle() {
        let x = t(); // transfer 4, train_accel 6
                     // the perfect-overlap share reproduces the bundled max
        assert_eq!(
            x.accel_with_visible((x.transfer - x.train_accel).max(0.0)),
            x.accel()
        );
        // a fully-visible wire (ring depth 1) adds the whole transfer
        assert_eq!(x.accel_with_visible(x.transfer), 10.0);
        // a fully-hidden wire leaves only propagation
        assert_eq!(x.accel_with_visible(0.0), 6.0);
        // negative "visible" (measurement jitter) clamps to zero
        assert_eq!(x.accel_with_visible(-1.0), 6.0);
        let mut y = t();
        y.transfer = 9.0; // transfer-bound lane
        assert_eq!(
            y.accel_with_visible((y.transfer - y.train_accel).max(0.0)),
            y.accel()
        );
    }

    #[test]
    fn pipelined_is_max_serial_is_sum() {
        let x = t();
        // propagation = max(5,6)+0.5 = 6.5 -> pipeline bottleneck
        assert_eq!(x.pipelined_iteration(), 6.5);
        assert_eq!(x.serial_iteration(), 2.0 + 3.0 + 4.0 + 6.5);
        assert!(x.pipelined_iteration() <= x.serial_iteration());
    }

    #[test]
    fn drm_tasks_order_matches_algorithm_1() {
        let tasks = t().drm_tasks();
        assert_eq!(tasks[0].0, Stage::SampleCpu);
        assert_eq!(tasks[4].0, Stage::Accel);
        assert_eq!(tasks[4].1, 6.0);
    }

    #[test]
    fn cpu_task_classification() {
        assert!(Stage::SampleCpu.is_cpu_task());
        assert!(Stage::Load.is_cpu_task());
        assert!(Stage::TrainCpu.is_cpu_task());
        assert!(!Stage::SampleAccel.is_cpu_task());
        assert!(!Stage::Accel.is_cpu_task());
    }

    #[test]
    fn ewma_moves_toward_target() {
        let mut a = StageTimes::zero();
        a.ewma_toward(&t(), 0.5);
        assert_eq!(a.load, 1.5);
        a.ewma_toward(&t(), 1.0);
        assert_eq!(a.load, 3.0);
    }
}
