//! Workspace-local stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the small parallel-iterator surface the workspace
//! uses — `par_iter`, `par_chunks_mut`, and the `zip`/`enumerate`/`map`/
//! `for_each`/`collect` combinators on top of them — with real
//! data-parallelism via `std::thread::scope` over contiguous index
//! ranges.
//!
//! Unlike rayon there is no work-stealing pool: each parallel call
//! spawns up to [`max_threads`] scoped threads and joins them before
//! returning. Small inputs (below [`SEQ_THRESHOLD`] items) run inline on
//! the caller thread, so fine-grained kernels (tiny GEMMs in gradient
//! checks) pay no spawn overhead. Results of `map`/`collect` preserve
//! input order, and every `for_each` partition owns a disjoint slice, so
//! parallel execution is deterministic wherever the closures are.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Items below this count run sequentially on the caller thread.
pub const SEQ_THRESHOLD: usize = 4;

/// Worker threads the host can actually run concurrently: the
/// `HYSCALE_RAYON_THREADS` override if set, else available parallelism.
/// Unlike [`max_threads`] this ignores any [`ThreadPool::install`] /
/// [`WorkerGroup::install`] override active on the current thread.
///
/// The env override is re-read on every call (dispatches are coarse, so
/// the lookup is negligible); only the `available_parallelism` probe is
/// cached. This lets tests exercise the multi-threaded dispatch paths
/// on single-core hosts by setting the variable.
pub fn host_threads() -> usize {
    if let Some(n) = std::env::var("HYSCALE_RAYON_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    static CACHE: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    CACHE.store(n, Ordering::Relaxed);
    n
}

/// Worker-thread cap for one parallel call: a [`ThreadPool::install`]
/// override on the current thread if active, else the machine's
/// available parallelism (overridable via `HYSCALE_RAYON_THREADS`).
pub fn max_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(|c| c.get());
    if overridden != 0 {
        return overridden;
    }
    host_threads()
}

/// Apportion `total` threads across domains proportionally to
/// `weights`, by largest remainder (Hamilton's method): domain `d` gets
/// `⌊total·w_d/W⌋` plus at most one of the leftover threads, leftovers
/// going to the largest fractional remainders (ties to the lowest
/// index). Zero-weight domains get zero threads; the shares always sum
/// to `total` (when any weight is positive). Deterministic in
/// `(total, weights)` alone.
///
/// This is how [`WorkerGroup::run_sharded_weighted`] turns a NUMA
/// row-ownership histogram into per-socket thread shares:
///
/// ```
/// // 8 loader threads; socket 0 owns 300 of the sampled rows, socket 1
/// // owns 100 -> 3:1 thread split instead of the fair 4:4
/// assert_eq!(rayon::weighted_shares(8, &[300, 100]), vec![6, 2]);
/// // full skew: a socket owning nothing gets no threads at all
/// assert_eq!(rayon::weighted_shares(8, &[400, 0]), vec![8, 0]);
/// // equal weights reduce to the fair split (remainder to the front)
/// assert_eq!(rayon::weighted_shares(5, &[1, 1]), vec![3, 2]);
/// ```
pub fn weighted_shares(total: usize, weights: &[usize]) -> Vec<usize> {
    let w_sum: usize = weights.iter().sum();
    if w_sum == 0 {
        return vec![0; weights.len()];
    }
    let mut shares: Vec<usize> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, usize)> = Vec::with_capacity(weights.len()); // (rem, index)
    let mut assigned = 0usize;
    for (d, &w) in weights.iter().enumerate() {
        let exact = total * w;
        shares.push(exact / w_sum);
        assigned += exact / w_sum;
        remainders.push((exact % w_sum, d));
    }
    // largest remainder first; ties broken toward the lowest index
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, d) in remainders.iter().take(total - assigned) {
        shares[d] += 1;
    }
    shares
}

/// Split `len` items into at most `max_threads()` contiguous ranges and
/// run `work(start, end)` for each, in parallel when worthwhile.
fn run_partitioned<F>(len: usize, work: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = max_threads().min(len);
    if threads <= 1 || len < SEQ_THRESHOLD {
        work(0, len);
        return;
    }
    let per = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let work = &work;
        let mut start = per; // range 0 runs on the caller thread
        for _ in 1..threads {
            let end = (start + per).min(len);
            if start >= end {
                break;
            }
            let (s, e) = (start, end);
            scope.spawn(move || work(s, e));
            start = end;
        }
        work(0, per.min(len));
    });
}

/// Parallel shared-reference iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIterEnumerate<'a, T> {
        ParIterEnumerate { items: self.items }
    }

    /// Apply `f` to every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let items = self.items;
        run_partitioned(items.len(), |s, e| {
            for item in &items[s..e] {
                f(item);
            }
        });
    }

    /// Map every item through `f` (applied in parallel, order-preserving
    /// on collect).
    pub fn map<R, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParIterMap {
            items: self.items,
            f,
        }
    }
}

/// Enumerated parallel iterator.
pub struct ParIterEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIterEnumerate<'a, T> {
    /// Map every `(index, item)` pair through `f`.
    pub fn map<R, F>(self, f: F) -> ParEnumMap<'a, T, F>
    where
        F: Fn((usize, &'a T)) -> R + Sync,
        R: Send,
    {
        ParEnumMap {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every `(index, item)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a T)) + Sync,
    {
        let items = self.items;
        run_partitioned(items.len(), |s, e| {
            for (i, item) in items[s..e].iter().enumerate() {
                f((s + i, item));
            }
        });
    }
}

/// Order-preserving parallel map over `(index, item)` pairs.
pub struct ParEnumMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn((usize, &'a T)) -> R + Sync> ParEnumMap<'a, T, F> {
    /// Materialize the mapped values in input order.
    pub fn collect<C: FromParVec<R>>(self) -> C {
        C::from_par_vec(collect_indexed(self.items.len(), |i| {
            (self.f)((i, &self.items[i]))
        }))
    }
}

/// Order-preserving parallel map over items.
pub struct ParIterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParIterMap<'a, T, F> {
    /// Materialize the mapped values in input order.
    pub fn collect<C: FromParVec<R>>(self) -> C {
        C::from_par_vec(collect_indexed(self.items.len(), |i| {
            (self.f)(&self.items[i])
        }))
    }
}

/// Run `produce(i)` for `0..len` in parallel, collecting results in order.
fn collect_indexed<R: Send, P: Fn(usize) -> R + Sync>(len: usize, produce: P) -> Vec<R> {
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let base = out.as_mut_ptr() as usize;
    run_partitioned(len, |s, e| {
        for i in s..e {
            // SAFETY: each index is written by exactly one partition, the
            // slot holds `None` (no drop needed), and `out` outlives the
            // scoped threads inside `run_partitioned`.
            unsafe {
                std::ptr::write((base as *mut Option<R>).add(i), Some(produce(i)));
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("parallel map slot filled"))
        .collect()
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Zip chunks with the items of `other` (stops at the shorter side).
    pub fn zip<'b, U: Sync>(self, other: ParIter<'b, U>) -> ParChunksZip<'a, 'b, T, U> {
        ParChunksZip {
            slice: self.slice,
            size: self.size,
            items: other.items,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: for<'c> Fn(&'c mut [T]) + Sync,
    {
        let size = self.size;
        let n = self.slice.len().div_ceil(size);
        let base = self.slice.as_mut_ptr() as usize;
        let total = self.slice.len();
        run_partitioned(n, |s, e| {
            for c in s..e {
                // SAFETY: chunk `c` spans [c*size, min((c+1)*size, total)),
                // ranges are disjoint across partitions, and the borrow of
                // `self.slice` outlives the scoped threads.
                let start = c * size;
                let end = ((c + 1) * size).min(total);
                let chunk = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                };
                f(chunk);
            }
        });
    }
}

/// Enumerated mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: for<'c> Fn((usize, &'c mut [T])) + Sync,
    {
        let size = self.size;
        let n = self.slice.len().div_ceil(size);
        let base = self.slice.as_mut_ptr() as usize;
        let total = self.slice.len();
        run_partitioned(n, |s, e| {
            for c in s..e {
                // SAFETY: disjoint chunks, see ParChunksMut::for_each.
                let start = c * size;
                let end = ((c + 1) * size).min(total);
                let chunk = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                };
                f((c, chunk));
            }
        });
    }
}

/// Mutable chunks zipped with shared items.
pub struct ParChunksZip<'a, 'b, T, U> {
    slice: &'a mut [T],
    size: usize,
    items: &'b [U],
}

impl<'a, 'b, T: Send, U: Sync> ParChunksZip<'a, 'b, T, U> {
    /// Apply `f` to every `(chunk, item)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: for<'c> Fn((&'c mut [T], &'b U)) + Sync,
    {
        let size = self.size;
        let n = self.slice.len().div_ceil(size).min(self.items.len());
        let base = self.slice.as_mut_ptr() as usize;
        let total = self.slice.len();
        let items = self.items;
        run_partitioned(n, |s, e| {
            for (c, item) in items.iter().enumerate().take(e).skip(s) {
                // SAFETY: disjoint chunks, see ParChunksMut::for_each.
                let start = c * size;
                let end = ((c + 1) * size).min(total);
                let chunk = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                };
                f((chunk, item));
            }
        });
    }
}

/// A named worker group with a dynamically resizable *logical* width —
/// the shim's partitioned-pool primitive.
///
/// HyScale-GNN's DRM engine divides the host's CPU worker threads into
/// three task pools (sampler / loader / trainer) and migrates threads
/// between them (`balance_thread`). A `WorkerGroup` models one such
/// pool: its **logical width** is the thread budget the resource manager
/// assigned (resizable at any time via [`set_width`](Self::set_width),
/// visible immediately to concurrent readers), while the **effective
/// width** — the number of OS threads a dispatch actually spawns — is
/// the logical width capped by [`host_threads`], so a 64-thread logical
/// plan degrades gracefully on a 1-core container.
///
/// All dispatch methods partition work *deterministically* from
/// `(len, widths)` alone and require the closure to tolerate any
/// partitioning (disjoint writes), so results are bitwise-independent of
/// the width — resizing a group changes wall-clock, never output.
pub struct WorkerGroup {
    label: &'static str,
    width: AtomicUsize,
}

impl WorkerGroup {
    /// A group labelled `label` with logical width `width` (clamped ≥ 1).
    pub fn new(label: &'static str, width: usize) -> Self {
        Self {
            label,
            width: AtomicUsize::new(width.max(1)),
        }
    }

    /// The group's label (e.g. `"loader"`).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Current logical width (threads budgeted by the resource manager).
    pub fn width(&self) -> usize {
        self.width.load(Ordering::Acquire)
    }

    /// Re-size the logical width (clamped ≥ 1). Takes effect on the next
    /// dispatch, including dispatches issued from other threads — this is
    /// the entry point for DRM `balance_thread` moves.
    pub fn set_width(&self, width: usize) {
        self.width.store(width.max(1), Ordering::Release);
    }

    /// Threads a dispatch will actually spawn: logical width capped by
    /// the host's real parallelism.
    pub fn effective_width(&self) -> usize {
        self.width().min(host_threads()).max(1)
    }

    /// Split `len` items into `effective_width()` contiguous ranges and
    /// run `work(start, end)` for each, in parallel when worthwhile.
    pub fn run<F>(&self, len: usize, work: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        // run_partitioned's max_threads() reads the installed override,
        // so this runs the shared dispatch at this group's width.
        self.install(|| run_partitioned(len, work));
    }

    /// NUMA-sharded dispatch: divide this group's threads into
    /// `num_domains` contiguous sub-groups (domain `d` modeling the
    /// workers pinned to socket `d`), and have each domain's threads
    /// cover the full `0..len` item range split contiguously among them.
    /// `work(domain, start, end)` thus runs once per (domain, sub-range)
    /// pair; the caller must touch item `i` only from the domain that
    /// *owns* it (e.g. the socket holding the source feature row), which
    /// keeps writes disjoint and the result identical to a serial sweep.
    ///
    /// Thread shares are a fair split of the *effective* width (earlier
    /// domains take the remainder, each domain gets at least one), so
    /// the total spawned threads stay bounded by the host's real
    /// parallelism. With fewer effective threads than domains, domains
    /// run inline on the caller.
    pub fn run_sharded<F>(&self, len: usize, num_domains: usize, work: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        self.run_sharded_weighted(len, &vec![1usize; num_domains], work);
    }

    /// [`run_sharded`](Self::run_sharded) with *weighted* per-domain
    /// thread shares: domain `d` receives a share of the effective width
    /// proportional to `weights[d]` (largest-remainder apportionment,
    /// see [`weighted_shares`]). The intended weights are the item
    /// ownership histogram — how many of the `len` items each domain
    /// actually owns — so a skewed batch doesn't leave the lightly-owned
    /// domains' threads idle while the heavy domain crawls.
    ///
    /// `weights[d] == 0` asserts that domain `d` owns *no* items: its
    /// sweep is skipped entirely (owning nothing, it would write
    /// nothing), which keeps results identical to the unweighted
    /// dispatch. An all-zero `weights` falls back to the fair split.
    pub fn run_sharded_weighted<F>(&self, len: usize, weights: &[usize], work: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        let num_domains = weights.len();
        if len == 0 || num_domains == 0 {
            return;
        }
        if weights.iter().all(|&w| w == 0) {
            // Degenerate histogram (caller counted nothing): fair split.
            return self.run_sharded(len, num_domains, work);
        }
        let effective = self.effective_width();
        let active = weights.iter().filter(|&&w| w > 0).count();
        if effective < active.max(2) || len < SEQ_THRESHOLD {
            // Too few real threads to give every active domain one: run
            // the domains inline on the caller.
            for (d, &weight) in weights.iter().enumerate() {
                if weight > 0 {
                    work(d, 0, len);
                }
            }
            return;
        }
        // Weighted split of the *effective* width across the active
        // domains, so the total spawned tasks stay bounded by the host
        // even when the logical budget is large.
        let shares = weighted_shares(effective, weights);
        std::thread::scope(|scope| {
            let work = &work;
            let mut first: Option<(usize, usize, usize)> = None;
            let mut starved: Vec<usize> = Vec::new();
            for (d, &weight) in weights.iter().enumerate() {
                if weight == 0 {
                    continue; // owns nothing: nothing to sweep for
                }
                let threads = shares[d].min(len);
                if threads == 0 {
                    // active but below one thread's worth of weight:
                    // sweep inline on the caller after the spawns
                    starved.push(d);
                    continue;
                }
                let per = len.div_ceil(threads);
                let mut start = 0;
                while start < len {
                    let end = (start + per).min(len);
                    if first.is_none() {
                        first = Some((d, start, end)); // caller runs one task
                    } else {
                        let (s, e) = (start, end);
                        scope.spawn(move || work(d, s, e));
                    }
                    start = end;
                }
            }
            if let Some((d, s, e)) = first {
                work(d, s, e);
            }
            for d in starved {
                work(d, 0, len);
            }
        });
    }

    /// Fair sub-share of this group's **effective** width for lane
    /// `lane` of `lanes` concurrent lanes (earlier lanes take the
    /// remainder; every lane gets at least one thread). This is the
    /// width arithmetic behind [`fan_out`](Self::fan_out), exposed so
    /// long-lived per-accelerator lane threads (the prefetcher's
    /// transfer lanes) can size their nested dispatches the same way a
    /// transient fan-out would.
    pub fn sub_width(&self, lanes: usize, lane: usize) -> usize {
        let lanes = lanes.max(1);
        let effective = self.effective_width();
        (effective / lanes + usize::from(lane < effective % lanes)).max(1)
    }

    /// A detached sub-group of [`sub_width`](Self::sub_width) threads,
    /// carrying this group's label. The sub-group snapshots the width at
    /// creation; re-create it per dispatch to observe live re-sizes.
    pub fn sub_group(&self, lanes: usize, lane: usize) -> WorkerGroup {
        WorkerGroup::new(self.label, self.sub_width(lanes, lane))
    }

    /// Per-accelerator fan-out: process `n` independent items on up to
    /// `effective_width()` lanes. Lane `l` handles items `l, l + lanes,
    /// …` in order, and every item receives a *sub-group* whose width is
    /// a fair share of this group's **effective** width — so a 16-thread
    /// loader group serving 4 accelerator trainers hands each trainer's
    /// gather 4 threads, and nested dispatches across all lanes stay
    /// bounded by the host's real parallelism. Item→lane assignment is a
    /// pure function of `(n, lanes)`, so outputs stay deterministic.
    pub fn fan_out<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, &WorkerGroup) + Sync,
    {
        if n == 0 {
            return;
        }
        let effective = self.effective_width();
        let lanes = effective.min(n).max(1);
        let sub = |lane: usize| self.sub_group(lanes, lane);
        if lanes <= 1 {
            let g = sub(0);
            for i in 0..n {
                f(i, &g);
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            for lane in 1..lanes {
                let g = sub(lane);
                scope.spawn(move || {
                    let mut i = lane;
                    while i < n {
                        f(i, &g);
                        i += lanes;
                    }
                });
            }
            let g = sub(0);
            let mut i = 0;
            while i < n {
                f(i, &g);
                i += lanes;
            }
        });
    }

    /// Run `op` with this group's effective width applied as the
    /// thread-count cap for every nested `par_*` call `op` makes on the
    /// current thread — how a group's budget reaches parallel kernels
    /// (GEMMs, samplers) that use the plain rayon-style iterators.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.effective_width()));
        let out = op();
        THREAD_OVERRIDE.with(|c| c.set(prev));
        out
    }
}

/// Builder for a scoped thread-pool configuration, mirroring
/// `rayon::ThreadPoolBuilder`. The shim has no persistent pool; the
/// built [`ThreadPool`] simply overrides [`max_threads`] (via the
/// `HYSCALE_RAYON_THREADS` mechanism's thread-local equivalent) for the
/// duration of an [`ThreadPool::install`] call.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

thread_local! {
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// A configured pool handle; see [`ThreadPoolBuilder`].
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `op` with this pool's thread-count cap applied to every
    /// parallel call `op` makes on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads.unwrap_or(0)));
        let out = op();
        THREAD_OVERRIDE.with(|c| c.set(prev));
        out
    }
}

/// Conversion from an order-preserving parallel collection result.
pub trait FromParVec<R> {
    /// Build the collection from per-index results.
    fn from_par_vec(v: Vec<R>) -> Self;
}

impl<R> FromParVec<R> for Vec<R> {
    fn from_par_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Extension trait providing `par_iter` on slices.
pub trait ParallelSlice<T> {
    /// Parallel shared iterator over the items.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Extension trait providing `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over disjoint mutable chunks of length `size`
    /// (last chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

/// The rayon prelude: extension traits for parallel iteration.
pub mod prelude {
    pub use crate::{FromParVec, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_zip_matches_serial() {
        let indices: Vec<u32> = (0..1000).map(|i| (i * 7) % 500).collect();
        let src: Vec<f32> = (0..500 * 8).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; indices.len() * 8];
        out.par_chunks_mut(8)
            .zip(indices.par_iter())
            .for_each(|(dst, &s)| {
                dst.copy_from_slice(&src[s as usize * 8..(s as usize + 1) * 8]);
            });
        for (i, &idx) in indices.iter().enumerate() {
            assert_eq!(out[i * 8], (idx * 8) as f32);
        }
    }

    #[test]
    fn enumerate_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..503).collect();
        let out: Vec<u64> = xs
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        assert_eq!(out.len(), 503);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * 3);
        }
    }

    #[test]
    fn chunks_enumerate_covers_all() {
        let mut data = vec![0usize; 1001];
        data.par_chunks_mut(64)
            .enumerate()
            .for_each(|(blk, chunk)| {
                for v in chunk.iter_mut() {
                    *v = blk + 1;
                }
            });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[1000], 1001usize.div_ceil(64));
    }

    #[test]
    fn map_collect_small_input_runs_inline() {
        let xs = [1, 2, 3];
        let out: Vec<i32> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn worker_group_run_covers_range_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = super::WorkerGroup::new("test", 4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        g.run(hits.len(), |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_group_resize_is_observed() {
        let g = super::WorkerGroup::new("resize", 3);
        assert_eq!(g.width(), 3);
        g.set_width(7);
        assert_eq!(g.width(), 7);
        g.set_width(0); // clamped
        assert_eq!(g.width(), 1);
        assert!(g.effective_width() >= 1);
    }

    #[test]
    fn run_sharded_every_domain_sees_full_range() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = super::WorkerGroup::new("numa", 8);
        const DOMAINS: usize = 2;
        let len = 501;
        let per_domain: Vec<AtomicUsize> = (0..DOMAINS).map(|_| AtomicUsize::new(0)).collect();
        g.run_sharded(len, DOMAINS, |d, s, e| {
            per_domain[d].fetch_add(e - s, Ordering::Relaxed);
        });
        for d in &per_domain {
            assert_eq!(d.load(Ordering::Relaxed), len);
        }
    }

    #[test]
    fn weighted_shares_pin_the_skewed_split() {
        // the ROADMAP "NUMA gather skew" case: rows skew 3:1 to socket 0
        assert_eq!(super::weighted_shares(8, &[300, 100]), vec![6, 2]);
        assert_eq!(super::weighted_shares(8, &[100, 300]), vec![2, 6]);
        // full skew: the idle socket gets no threads
        assert_eq!(super::weighted_shares(16, &[997, 0]), vec![16, 0]);
        assert_eq!(super::weighted_shares(16, &[0, 997]), vec![0, 16]);
        // shares always sum to the total handed in
        for weights in [vec![1usize, 2, 3], vec![7, 1, 1, 1], vec![0, 5, 0, 3]] {
            for total in [1usize, 3, 8, 64] {
                let shares = super::weighted_shares(total, &weights);
                assert_eq!(shares.iter().sum::<usize>(), total, "{total} {weights:?}");
            }
        }
        // degenerate inputs
        assert_eq!(super::weighted_shares(8, &[0, 0]), vec![0, 0]);
        assert_eq!(super::weighted_shares(0, &[3, 1]), vec![0, 0]);
    }

    #[test]
    fn run_sharded_weighted_covers_active_domains_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        std::env::set_var("HYSCALE_RAYON_THREADS", "4");
        let g = super::WorkerGroup::new("numa", 8);
        let len = 743;
        // skewed ownership: domain 0 owns ~everything, domain 2 nothing
        let weights = [700usize, 43, 0];
        let per_domain: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        g.run_sharded_weighted(len, &weights, |d, s, e| {
            per_domain[d].fetch_add(e - s, Ordering::Relaxed);
        });
        // active domains sweep the full range exactly once...
        assert_eq!(per_domain[0].load(Ordering::Relaxed), len);
        assert_eq!(per_domain[1].load(Ordering::Relaxed), len);
        // ...and the zero-owner domain is skipped entirely
        assert_eq!(per_domain[2].load(Ordering::Relaxed), 0);

        // an all-zero histogram degrades to the fair sweep (every domain
        // covered — the caller counted nothing, so no domain may be
        // skipped)
        let fair: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        g.run_sharded_weighted(97, &[0, 0], |d, s, e| {
            fair[d].fetch_add(e - s, Ordering::Relaxed);
        });
        assert!(fair.iter().all(|d| d.load(Ordering::Relaxed) == 97));
        std::env::remove_var("HYSCALE_RAYON_THREADS");
    }

    #[test]
    fn fan_out_processes_each_item_once_with_fair_subwidths() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = super::WorkerGroup::new("loader", 9);
        let n = 5;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let width_sum = AtomicUsize::new(0);
        g.fan_out(n, |i, sub| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            assert!(sub.width() >= 1);
            width_sum.fetch_add(sub.width(), Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // every item carried a sub-group; logical shares stay ≥ 1
        assert!(width_sum.load(Ordering::Relaxed) >= n);
    }

    #[test]
    fn multithreaded_dispatch_paths_cover_exactly_once() {
        // Force real concurrency even on a 1-core host: host_threads()
        // re-reads the env override per call. Other tests in this binary
        // are width-independent, so a transient override is harmless.
        use std::sync::atomic::{AtomicUsize, Ordering};
        std::env::set_var("HYSCALE_RAYON_THREADS", "4");
        let g = super::WorkerGroup::new("mt", 8);
        assert_eq!(g.effective_width(), 4);

        // run: contiguous split across 4 real threads
        let hits: Vec<AtomicUsize> = (0..997).map(|_| AtomicUsize::new(0)).collect();
        g.run(hits.len(), |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));

        // run_sharded: 2 domains × 2 threads each, every domain covers
        // the full range exactly once
        let per_domain: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        g.run_sharded(997, 2, |d, s, e| {
            per_domain[d].fetch_add(e - s, Ordering::Relaxed);
        });
        assert!(per_domain.iter().all(|d| d.load(Ordering::Relaxed) == 997));

        // run_sharded inline fallback: more domains than real threads
        let wide: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        g.run_sharded(97, 8, |d, s, e| {
            wide[d].fetch_add(e - s, Ordering::Relaxed);
        });
        assert!(wide.iter().all(|d| d.load(Ordering::Relaxed) == 97));

        // fan_out: 3 items on up to 4 lanes, sub-widths sum ≤ effective
        let item_hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let width_sum = AtomicUsize::new(0);
        g.fan_out(3, |i, sub| {
            item_hits[i].fetch_add(1, Ordering::Relaxed);
            width_sum.fetch_add(sub.width(), Ordering::Relaxed);
        });
        assert!(item_hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(width_sum.load(Ordering::Relaxed) <= 4 + 3);
        std::env::remove_var("HYSCALE_RAYON_THREADS");
    }

    #[test]
    fn sub_widths_are_fair_and_positive() {
        let g = super::WorkerGroup::new("loader", 5);
        let effective = g.effective_width();
        for lanes in 1..=8 {
            let shares: Vec<usize> = (0..lanes).map(|l| g.sub_width(lanes, l)).collect();
            // every lane gets at least one thread
            assert!(shares.iter().all(|&s| s >= 1), "{shares:?}");
            // fair: earlier lanes take the remainder, spread stays ≤ 1
            let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(max - min <= 1, "{shares:?}");
            // shares cover the effective width exactly once lanes fit
            if lanes <= effective {
                assert_eq!(shares.iter().sum::<usize>(), effective, "{shares:?}");
            }
        }
        assert_eq!(g.sub_group(2, 0).label(), "loader");
        assert_eq!(g.sub_group(2, 0).width(), g.sub_width(2, 0));
        // degenerate lane count clamps to a single full-width lane
        assert_eq!(g.sub_width(0, 0), effective);
    }

    #[test]
    fn install_caps_nested_parallel_calls() {
        let g = super::WorkerGroup::new("sampler", 1);
        let inside = g.install(super::max_threads);
        assert_eq!(inside, 1);
        assert!(super::max_threads() >= 1);
    }
}
