//! Core identifier types and errors.

/// Vertex identifier. `u32` bounds materialized graphs at ~4.3 B vertices,
/// which covers every dataset in the paper (MAG240M homo: 122 M vertices)
/// while halving index memory vs `usize` (perf-book "smaller integers").
pub type VertexId = u32;

/// Edge counts can exceed `u32` (papers100M: 1.6 B edges), so use `u64`.
pub type EdgeCount = u64;

/// Errors raised by graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// CSR offsets are not monotonically non-decreasing.
    NonMonotonicOffsets {
        /// Index at which monotonicity is violated.
        at: usize,
    },
    /// Offset array length must be `num_vertices + 1`.
    BadOffsetLength {
        /// Actual length found.
        got: usize,
        /// Expected length.
        expected: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(f, "vertex {vertex} out of range (|V| = {num_vertices})")
            }
            GraphError::NonMonotonicOffsets { at } => {
                write!(f, "CSR offsets decrease at index {at}")
            }
            GraphError::BadOffsetLength { got, expected } => {
                write!(f, "CSR offset array length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 5,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));
    }
}
