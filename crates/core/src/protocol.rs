//! The Processor–Accelerator Training Protocol (paper §III-C, Listing 1).
//!
//! A faithful port of the paper's Pthreads handshake to
//! `parking_lot::{Mutex, Condvar}`:
//!
//! * each **trainer** produces gradients, increments `DONE`, signals the
//!   synchronizer, and blocks until the averaged gradients are broadcast;
//! * the **synchronizer** waits until `DONE == n`, gathers + averages,
//!   and broadcasts;
//! * each trainer then **ACK**s; the **runtime** proceeds to the next
//!   iteration once all ACKs have arrived.
//!
//! The protocol lives at the application layer: nothing here knows
//! whether a trainer is a CPU, GPU, FPGA, or custom accelerator.

use crate::sync::Synchronizer;
use hyscale_gnn::Gradients;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct State {
    /// Gradients deposited by trainers this iteration (`DONE` counter is
    /// the number of `Some` entries).
    slots: Vec<Option<Gradients>>,
    done: usize,
    averaged: Option<Arc<Gradients>>,
    acks: usize,
}

/// Shared handshake state for one training round of `n` trainers.
pub struct TrainingRound {
    n: usize,
    state: Mutex<State>,
    trainer_signal: Condvar,
    broadcast_signal: Condvar,
    ack_signal: Condvar,
}

impl TrainingRound {
    /// A round expecting `n` trainers.
    ///
    /// # Panics
    /// If `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one trainer");
        Self {
            n,
            state: Mutex::new(State {
                slots: (0..n).map(|_| None).collect(),
                done: 0,
                averaged: None,
                acks: 0,
            }),
            trainer_signal: Condvar::new(),
            broadcast_signal: Condvar::new(),
            ack_signal: Condvar::new(),
        }
    }

    /// Trainer side (Listing 1 `Trainer_threads`): deposit gradients,
    /// `DONE++`, signal, wait for the averaged broadcast.
    ///
    /// # Panics
    /// If `idx` is out of range or deposits twice.
    pub fn trainer_done(&self, idx: usize, grads: Gradients) -> Arc<Gradients> {
        let mut s = self.state.lock();
        assert!(idx < self.n, "trainer index out of range");
        assert!(s.slots[idx].is_none(), "trainer {idx} deposited twice");
        s.slots[idx] = Some(grads);
        s.done += 1;
        self.trainer_signal.notify_all();
        while s.averaged.is_none() {
            self.broadcast_signal.wait(&mut s);
        }
        Arc::clone(s.averaged.as_ref().expect("broadcast present"))
    }

    /// Synchronizer side (Listing 1 `Synchronizer_thread`): wait for
    /// `DONE == n`, gather, average, broadcast. Returns the average.
    pub fn synchronize(&self, sync: &Synchronizer) -> Arc<Gradients> {
        let mut s = self.state.lock();
        while s.done != self.n {
            self.trainer_signal.wait(&mut s);
        }
        let parts: Vec<Gradients> = s
            .slots
            .iter_mut()
            .map(|g| g.take().expect("gradient"))
            .collect();
        let avg = Arc::new(sync.all_reduce(&parts));
        s.averaged = Some(Arc::clone(&avg));
        self.broadcast_signal.notify_all();
        avg
    }

    /// Trainer acknowledgment after applying the weight update.
    pub fn trainer_ack(&self) {
        let mut s = self.state.lock();
        s.acks += 1;
        if s.acks == self.n {
            self.ack_signal.notify_all();
        }
    }

    /// Runtime side: block until every trainer has ACKed, then reset the
    /// round for the next iteration.
    pub fn runtime_wait_acks(&self) {
        let mut s = self.state.lock();
        while s.acks != self.n {
            self.ack_signal.wait(&mut s);
        }
        // reset for reuse
        s.done = 0;
        s.acks = 0;
        s.averaged = None;
        for slot in &mut s.slots {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_tensor::Matrix;
    use std::thread;

    fn grad(v: f32, batch: usize) -> Gradients {
        Gradients {
            d_weights: vec![Matrix::full(2, 2, v)],
            d_biases: vec![vec![v; 2]],
            batch_size: batch,
        }
    }

    #[test]
    fn full_round_handshake() {
        let round = Arc::new(TrainingRound::new(3));
        let sync = Synchronizer::new();
        thread::scope(|s| {
            for i in 0..3 {
                let round = Arc::clone(&round);
                s.spawn(move || {
                    let avg = round.trainer_done(i, grad(i as f32, 10));
                    // averaged value must be mean of 0,1,2 = 1.0
                    assert!((avg.d_weights[0][(0, 0)] - 1.0).abs() < 1e-6);
                    round.trainer_ack();
                });
            }
            let avg = round.synchronize(&sync);
            assert_eq!(avg.batch_size, 30);
            round.runtime_wait_acks();
        });
    }

    #[test]
    fn round_is_reusable_across_iterations() {
        let round = Arc::new(TrainingRound::new(2));
        let sync = Synchronizer::new();
        for iter in 0..3 {
            thread::scope(|s| {
                for i in 0..2 {
                    let round = Arc::clone(&round);
                    s.spawn(move || {
                        let avg = round.trainer_done(i, grad(iter as f32, 5));
                        assert!((avg.d_weights[0][(0, 0)] - iter as f32).abs() < 1e-6);
                        round.trainer_ack();
                    });
                }
                round.synchronize(&sync);
                round.runtime_wait_acks();
            });
        }
    }

    #[test]
    fn weighted_average_respects_batch_sizes() {
        let round = Arc::new(TrainingRound::new(2));
        let sync = Synchronizer::new();
        thread::scope(|s| {
            let r1 = Arc::clone(&round);
            s.spawn(move || {
                r1.trainer_done(0, grad(0.0, 30));
                r1.trainer_ack();
            });
            let r2 = Arc::clone(&round);
            s.spawn(move || {
                r2.trainer_done(1, grad(4.0, 10));
                r2.trainer_ack();
            });
            let avg = round.synchronize(&sync);
            // (30*0 + 10*4)/40 = 1.0
            assert!((avg.d_weights[0][(0, 0)] - 1.0).abs() < 1e-6);
            round.runtime_wait_acks();
        });
    }

    #[test]
    #[should_panic(expected = "need at least one trainer")]
    fn rejects_zero_trainers() {
        let _ = TrainingRound::new(0);
    }
}
