//! Cross-system comparison shape (paper Tables VI/VII, Fig. 10): who
//! wins, in which metric, must match the paper even though absolute
//! times come from simulation.

use hyscale::baselines::{BaselineSystem, DistDglV2, PaGraph, PygMultiGpu, SotaConfig, P3};
use hyscale::core::{AcceleratorKind, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::{OGBN_PAPERS100M, OGBN_PRODUCTS};
use hyscale_bench::{geo_mean, simulate_epoch, DRM_SETTLE_ITERS};

fn this_work(ds: &hyscale::graph::DatasetSpec, model: GnnKind, sota: &SotaConfig) -> f64 {
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
    cfg.train.fanouts = sota.fanouts.clone();
    cfg.train.hidden_dim = sota.hidden_dim;
    simulate_epoch(&cfg, ds, DRM_SETTLE_ITERS).epoch_time_s
}

/// This Work's platform peak TFLOPS (2× EPYC + 4× U250).
const OUR_TFLOPS: f64 = 2.0 * 3.6 + 4.0 * 0.6;

#[test]
fn fig10_ordering_holds() {
    // multi-GPU slowest, CPU+GPU middle, CPU+FPGA fastest — on every
    // dataset/model pair
    let pyg = PygMultiGpu::paper_baseline();
    let sota = SotaConfig::pagraph();
    for ds in [OGBN_PRODUCTS, OGBN_PAPERS100M] {
        for model in [GnnKind::Gcn, GnnKind::GraphSage] {
            let base = pyg.epoch_time(&ds, model, &sota);
            let gpu = {
                let cfg = SystemConfig::paper_default(AcceleratorKind::a5000(), model);
                simulate_epoch(&cfg, &ds, DRM_SETTLE_ITERS).epoch_time_s
            };
            let fpga = {
                let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
                simulate_epoch(&cfg, &ds, DRM_SETTLE_ITERS).epoch_time_s
            };
            assert!(
                fpga < gpu && gpu < base,
                "{} {}: ordering broken (base {base:.2}, gpu {gpu:.2}, fpga {fpga:.2})",
                ds.name,
                model.name()
            );
            let fpga_speedup = base / fpga;
            assert!(
                (3.0..40.0).contains(&fpga_speedup),
                "{} {}: FPGA speedup {fpga_speedup:.1} out of band",
                ds.name,
                model.name()
            );
        }
    }
}

#[test]
fn table_vi_we_beat_pagraph_and_p3() {
    let pagraph = PaGraph::paper_setup();
    let p3 = P3::paper_setup();
    let mut pagraph_speedups = Vec::new();
    let mut p3_speedups = Vec::new();
    for ds in [OGBN_PRODUCTS, OGBN_PAPERS100M] {
        for model in [GnnKind::Gcn, GnnKind::GraphSage] {
            let cfg_a = SotaConfig::pagraph();
            pagraph_speedups
                .push(pagraph.epoch_time(&ds, model, &cfg_a) / this_work(&ds, model, &cfg_a));
            let cfg_b = SotaConfig::p3();
            p3_speedups.push(p3.epoch_time(&ds, model, &cfg_b) / this_work(&ds, model, &cfg_b));
        }
    }
    let g_pagraph = geo_mean(&pagraph_speedups);
    let g_p3 = geo_mean(&p3_speedups);
    // paper: 1.76x vs PaGraph, 4.57x vs P3 (geo-mean)
    assert!(g_pagraph > 1.0, "should beat PaGraph, got {g_pagraph:.2}x");
    assert!(g_p3 > 1.0, "should beat P3, got {g_p3:.2}x");
    assert!(g_p3 > g_pagraph * 0.8, "P3 should be the easier target");
}

#[test]
fn table_vi_distdgl_wins_raw_but_loses_normalized() {
    // paper: DistDGLv2 with 64 T4s beats 4 FPGAs on raw epoch time
    // (0.45x) but loses 25x after normalizing by platform TFLOPS
    let dd = DistDglV2::paper_setup();
    let sota = SotaConfig::distdgl();
    let mut raw = Vec::new();
    let mut norm = Vec::new();
    for ds in [OGBN_PRODUCTS, OGBN_PAPERS100M] {
        let theirs = dd.epoch_time(&ds, GnnKind::GraphSage, &sota);
        let ours = this_work(&ds, GnnKind::GraphSage, &sota);
        raw.push(theirs / ours);
        norm.push((theirs * dd.platform_tflops()) / (ours * OUR_TFLOPS));
    }
    let g_norm = geo_mean(&norm);
    assert!(
        g_norm > 5.0,
        "normalized comparison must strongly favor this work, got {g_norm:.1}x"
    );
    // raw epoch-time speedup should be modest in either direction
    let g_raw = geo_mean(&raw);
    assert!(
        (0.1..10.0).contains(&g_raw),
        "raw DistDGLv2 comparison out of band: {g_raw:.2}x"
    );
}

#[test]
fn table_vii_normalized_favors_this_work_everywhere() {
    let pagraph = PaGraph::paper_setup();
    let p3 = P3::paper_setup();
    for ds in [OGBN_PRODUCTS, OGBN_PAPERS100M] {
        for model in [GnnKind::Gcn, GnnKind::GraphSage] {
            let cfg = SotaConfig::pagraph();
            let theirs = pagraph.normalized_epoch(&ds, model, &cfg);
            let ours = this_work(&ds, model, &cfg) * OUR_TFLOPS;
            assert!(
                theirs / ours > 2.0,
                "{} {}: normalized PaGraph ratio only {:.2}",
                ds.name,
                model.name(),
                theirs / ours
            );
            let cfg = SotaConfig::p3();
            let theirs = p3.normalized_epoch(&ds, model, &cfg);
            let ours = this_work(&ds, model, &cfg) * OUR_TFLOPS;
            assert!(theirs / ours > 2.0, "normalized P3 ratio too low");
        }
    }
}

#[test]
fn pagraph_cache_heuristic_tracks_measured_coverage() {
    // the sqrt(cache_fraction) hit-rate heuristic must be within ±0.25
    // of measured top-k edge coverage on a synthetic power-law graph
    use hyscale::graph::degree::top_k_edge_coverage;
    use hyscale::graph::generator::preferential_attachment;
    let g = preferential_attachment(20_000, 8, 3).symmetrize();
    for frac in [0.05f64, 0.2, 0.5] {
        let k = (g.num_vertices() as f64 * frac) as usize;
        let measured = top_k_edge_coverage(&g, k);
        let heuristic = frac.sqrt();
        assert!(
            (measured - heuristic).abs() < 0.25,
            "cache heuristic off at frac {frac}: measured {measured:.2} vs sqrt {heuristic:.2}"
        );
    }
}
