//! Graph partitioning for the multi-node baselines.
//!
//! P3 and DistDGL(v2) partition the input graph across nodes; the paper
//! (§VII) notes this causes workload imbalance and inter-node
//! communication. The baselines in `hyscale-baselines` use these
//! partitioners to derive edge-cut ratios that feed their network-traffic
//! models.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Assignment of each vertex to a partition `0..num_parts`.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Partition id per vertex.
    pub assignment: Vec<u32>,
    /// Number of partitions.
    pub num_parts: usize,
}

impl Partition {
    /// Hash partitioning (random, the DistDGL default fallback).
    pub fn hash(num_vertices: usize, num_parts: usize) -> Self {
        assert!(num_parts >= 1);
        // Fibonacci hashing for a deterministic pseudo-random spread.
        let assignment = (0..num_vertices as u64)
            .map(|v| ((v.wrapping_mul(11400714819323198485) >> 33) % num_parts as u64) as u32)
            .collect();
        Self {
            assignment,
            num_parts,
        }
    }

    /// Contiguous range partitioning (locality-preserving; a stand-in for
    /// METIS-quality partitions on community-ordered vertex ids).
    pub fn range(num_vertices: usize, num_parts: usize) -> Self {
        assert!(num_parts >= 1);
        let per = num_vertices.div_ceil(num_parts).max(1);
        let assignment = (0..num_vertices)
            .map(|v| ((v / per) as u32).min(num_parts as u32 - 1))
            .collect();
        Self {
            assignment,
            num_parts,
        }
    }

    /// Partition id of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of vertices in each partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Fraction of edges whose endpoints live in different partitions.
    /// This is the inter-node traffic multiplier for P3/DistDGL-style
    /// feature fetches.
    pub fn edge_cut_ratio(&self, graph: &CsrGraph) -> f64 {
        if graph.num_edges() == 0 {
            return 0.0;
        }
        let mut cut = 0u64;
        for s in 0..graph.num_vertices() as VertexId {
            let ps = self.part_of(s);
            for &t in graph.neighbors(s) {
                if self.part_of(t) != ps {
                    cut += 1;
                }
            }
        }
        cut as f64 / graph.num_edges() as f64
    }

    /// Load imbalance: `max(part_size) / mean(part_size)`.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let mean = self.assignment.len() as f64 / self.num_parts as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{sbm, SbmConfig};

    #[test]
    fn hash_covers_all_parts() {
        let p = Partition::hash(10_000, 4);
        let sizes = p.sizes();
        assert_eq!(sizes.len(), 4);
        assert!(sizes.iter().all(|&s| s > 2000), "unbalanced: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn range_is_contiguous() {
        let p = Partition::range(100, 3);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(99), 2);
        assert!(p.assignment.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn hash_cut_is_high_range_cut_lower_on_community_graph() {
        // SBM vertices are assigned to communities round-robin (v % k), so
        // *hash* partitioning scatters communities while *range* keeps
        // entire id blocks together. With k == parts aligned to ranges the
        // cut should not exceed the hash cut.
        let (g, _) = sbm(
            SbmConfig {
                num_vertices: 2000,
                communities: 4,
                avg_degree: 16,
                p_intra: 0.9,
            },
            3,
        );
        let hash_cut = Partition::hash(2000, 4).edge_cut_ratio(&g);
        assert!(hash_cut > 0.5, "hash cut unexpectedly low: {hash_cut}");
    }

    #[test]
    fn single_part_has_no_cut() {
        let (g, _) = sbm(SbmConfig::default(), 1);
        let p = Partition::hash(g.num_vertices(), 1);
        assert_eq!(p.edge_cut_ratio(&g), 0.0);
        assert!((p.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_at_least_one() {
        let p = Partition::hash(1000, 7);
        assert!(p.imbalance() >= 1.0);
    }
}
