//! # hyscale-gnn
//!
//! GNN models under the aggregate-update paradigm (paper §II-A, Eq. 1–2):
//!
//! ```text
//! a_v^l = AGGREGATE(h_u^{l-1} : u ∈ N(v) ∪ {v})
//! h_v^l = φ(UPDATE(a_v^l, W^l))
//! ```
//!
//! Two models from the paper's evaluation:
//! * **GCN** (Eq. 3) — degree-normalised sum with self-loop.
//! * **GraphSAGE** (Eq. 4) — `h_v ‖ mean(h_u)` concatenation.
//!
//! Both run over sampled [`hyscale_sampler::MiniBatch`] blocks with
//! hand-derived backward passes verified against finite differences
//! ([`gradcheck`]). Gradients are produced per trainer and averaged by
//! the synchronizer (synchronous SGD, paper §II-B); [`grads::Gradients`]
//! supports the *size-weighted* average that keeps unequal hybrid batch
//! splits semantically identical to one large batch.

#![warn(missing_docs)]

pub mod aggregate;
pub mod gradcheck;
pub mod grads;
pub mod inference;
pub mod model;

pub use aggregate::{
    aggregate_gcn, aggregate_gcn_backward, aggregate_mean, aggregate_mean_backward, GcnCoefficients,
};
pub use grads::Gradients;
pub use model::{GnnKind, GnnModel, StepOutput};
