//! CPU-side pipeline-stage models: sampling and feature loading.
//!
//! These are the stages whose *thread allocation* the DRM engine's
//! `balance_thread` move adjusts (paper §IV-A): loader throughput scales
//! with assigned threads until the socket DRAM bandwidth saturates —
//! exactly the saturation that caps scalability beyond 12 accelerators in
//! paper Fig. 9.

use crate::calib;
use crate::spec::DeviceSpec;
use hyscale_sampler::WorkloadStats;

/// Model of the CPU Feature Loader (paper Fig. 3).
#[derive(Debug, Clone, Copy)]
pub struct LoaderModel {
    /// Host CPU spec (per socket).
    pub cpu: DeviceSpec,
    /// Number of sockets.
    pub sockets: usize,
}

impl LoaderModel {
    /// Loader on the given host.
    pub fn new(cpu: DeviceSpec, sockets: usize) -> Self {
        Self { cpu, sockets }
    }

    /// Achievable gather throughput (bytes/s) with `threads` loader
    /// threads: linear in threads, capped by effective DRAM bandwidth.
    pub fn throughput(&self, threads: usize) -> f64 {
        let per_thread = threads as f64 * calib::GATHER_PER_THREAD_GBS * 1e9;
        let cap =
            self.cpu.mem_bandwidth_gbs * 1e9 * self.sockets as f64 * calib::CPU_GATHER_BW_FRACTION;
        per_thread.min(cap)
    }

    /// Feature-loading time for the merged per-iteration workload
    /// (paper Eq. 7: `Σ_i |V^0_i| · f0 · S_feat / BW_DDR`).
    pub fn load_time(&self, total: &WorkloadStats, f0: usize, threads: usize) -> f64 {
        total.feature_bytes(f0) as f64 / self.throughput(threads.max(1))
    }

    /// Threads at which the loader saturates DRAM; extra threads beyond
    /// this are wasted (DRM should reassign them).
    pub fn saturation_threads(&self) -> usize {
        let cap = self.cpu.mem_bandwidth_gbs * self.sockets as f64 * calib::CPU_GATHER_BW_FRACTION;
        (cap / calib::GATHER_PER_THREAD_GBS).ceil() as usize
    }
}

/// Model of the CPU Mini-batch Sampler (paper Fig. 3).
///
/// The paper profiles sampling rather than modelling it in closed form
/// (§V); this model is the reproduction's "profile": a per-thread edge
/// rate measured once and reused.
#[derive(Debug, Clone, Copy)]
pub struct SamplerModel {
    /// Edges sampled per second per thread.
    pub eps_per_thread: f64,
}

impl Default for SamplerModel {
    fn default() -> Self {
        Self {
            eps_per_thread: calib::CPU_SAMPLE_EPS_PER_THREAD,
        }
    }
}

impl SamplerModel {
    /// Time for CPU threads to sample workloads totalling `edges` edges.
    pub fn sample_time(&self, edges: u64, threads: usize) -> f64 {
        edges as f64 / (self.eps_per_thread * threads.max(1) as f64)
    }

    /// Time for an accelerator sampling at `device_eps` edges/second.
    pub fn accel_sample_time(&self, edges: u64, device_eps: f64) -> f64 {
        edges as f64 / device_eps.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EPYC_7763;

    fn workload() -> WorkloadStats {
        WorkloadStats {
            batch_size: 4096,
            input_nodes: 800_000,
            nodes_per_layer: vec![100_000, 4096],
            edges_per_layer: vec![1_000_000, 102_400],
        }
    }

    #[test]
    fn loader_scales_then_saturates() {
        let m = LoaderModel::new(EPYC_7763, 2);
        let t4 = m.load_time(&workload(), 128, 4);
        let t16 = m.load_time(&workload(), 128, 16);
        assert!(t16 < t4, "more threads should speed loading");
        // far past saturation there is no further gain
        let sat = m.saturation_threads();
        let a = m.load_time(&workload(), 128, sat);
        let b = m.load_time(&workload(), 128, sat * 4);
        assert!((a - b).abs() < 1e-12, "beyond saturation must be flat");
    }

    #[test]
    fn saturation_point_reasonable() {
        let m = LoaderModel::new(EPYC_7763, 2);
        let sat = m.saturation_threads();
        // 246 GB/s / 3 GB/s = 82 threads
        assert!(sat > 40 && sat < 128, "saturation at {sat}");
    }

    #[test]
    fn eq7_form() {
        let m = LoaderModel::new(EPYC_7763, 2);
        let w = workload();
        let t = m.load_time(&w, 128, 1_000_000); // fully saturated
        let bytes = w.feature_bytes(128) as f64;
        let bw = 205e9 * 2.0 * calib::CPU_GATHER_BW_FRACTION;
        assert!((t - bytes / bw).abs() / t < 1e-9);
    }

    #[test]
    fn sampler_linear_in_threads() {
        let s = SamplerModel::default();
        let t1 = s.sample_time(10_000_000, 1);
        let t8 = s.sample_time(10_000_000, 8);
        assert!((t1 / t8 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn accel_sampling() {
        let s = SamplerModel::default();
        let t = s.accel_sample_time(400_000_000, calib::GPU_SAMPLE_EPS);
        assert!((t - 1.0).abs() < 1e-9);
    }
}
