//! Training reports: per-iteration traces and per-epoch summaries.
//!
//! Two timing layers appear side by side: the *simulated* stage times
//! from the device models ([`StageTimes`], what the paper-reproduction
//! figures use) and the *measured* host wall-clock per stage
//! ([`WallStageTimes`], what the real prefetching pipeline actually
//! achieves on this machine).

use crate::drm::{DrmAction, ThreadAlloc};
use crate::stages::StageTimes;

/// Measured host wall-clock seconds per pipeline stage for one
/// iteration (or, in an [`EpochReport`], the per-iteration mean).
///
/// Under prefetching (`prefetch_depth > 0`) the producer stages
/// (`sample`/`load`/`transfer`) run on a background thread overlapped
/// with propagation, so `iter_s` approaches the slowest side rather than
/// the sum — compare [`WallStageTimes::serial_sum`] with `iter_s` to see
/// the realized overlap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WallStageTimes {
    /// Mini-batch sampling (producer side).
    pub sample_s: f64,
    /// Feature gathering from CPU memory (producer side).
    pub load_s: f64,
    /// Wire-precision round-trip, the functional stand-in for the PCIe
    /// transfer (producer side) — the *aggregate* wire work, i.e. the
    /// sum of every transfer lane's round-trip wall
    /// ([`lane_transfer_s`](Self::lane_transfer_s)).
    pub transfer_s: f64,
    /// Portion of `transfer_s` that executed while the consumer was
    /// concurrently inside GNN propagation of an *earlier* iteration —
    /// the wire time the staging ring actually hid, summed over lanes
    /// ([`lane_transfer_hidden_s`](Self::lane_transfer_hidden_s)). Zero
    /// in serial execution and at staging-ring depth 1 (a lane's
    /// transfer can only start once the previous batch's slot frees,
    /// i.e. after its propagation ends).
    pub transfer_hidden_s: f64,
    /// Concurrent transfer lanes the producer ran with: the
    /// per-accelerator lane count capped WorkerGroup-style by the live
    /// transfer budget. `1` in serial execution (inline round-trips)
    /// and `0` when unrecorded.
    pub transfer_lanes: usize,
    /// Per-accelerator-lane wire round-trip wall seconds (index =
    /// staging-ring index; empty when unrecorded or no accelerator
    /// batch shipped).
    pub lane_transfer_s: Vec<f64>,
    /// Per-lane share of [`lane_transfer_s`](Self::lane_transfer_s)
    /// that ran behind an earlier batch's propagation — the hidden wire
    /// time, per lane. With concurrent lanes the *busiest* lane
    /// ([`busiest_lane_transfer_s`](Self::busiest_lane_transfer_s)) is
    /// what actually gates the pipeline; the aggregate `transfer_s`
    /// overstates the critical path by the lane overlap.
    pub lane_transfer_hidden_s: Vec<f64>,
    /// GNN propagation + synchronization + weight update (consumer side).
    pub train_s: f64,
    /// End-to-end iteration wall-clock on the consumer thread.
    pub iter_s: f64,
    /// Per-trainer batches that survived this iteration's DRM
    /// re-mapping events untouched (their trainer's seed slice did not
    /// move): queued batch, pooled matrix, and staging slot all kept.
    /// Counters, not times — [`mean_of`](Self::mean_of) *sums* them, so
    /// an epoch summary carries epoch totals.
    pub batches_salvaged: usize,
    /// Per-trainer batches discarded (and, for still-active trainers,
    /// redone) by this iteration's re-mapping events. Summed like
    /// [`batches_salvaged`](Self::batches_salvaged) in `mean_of`.
    pub batches_flushed: usize,
    /// Wall-clock seconds spent inside DRM invalidation (producer
    /// shutdown + per-trainer re-slice + restart) this iteration.
    /// Summed, not averaged, by `mean_of` — the epoch summary is the
    /// total invalidation tax.
    pub invalidation_s: f64,
    /// The worker-pool widths the producer prepared this iteration
    /// under — the [`ThreadAlloc`] actually observed by the dispatches
    /// behind `sample_s`/`load_s`/`transfer_s`. A DRM `balance_thread`
    /// move shows up here as a shift in the recorded widths (the
    /// all-zero default means "unrecorded").
    pub threads: ThreadAlloc,
}

impl WallStageTimes {
    /// What the iteration would cost with no overlap at all.
    pub fn serial_sum(&self) -> f64 {
        self.sample_s + self.load_s + self.transfer_s + self.train_s
    }

    /// Realized overlap factor: serial cost over measured wall
    /// (`1.0` = fully serial, larger = pipelined). Returns 1.0 when the
    /// iteration time is unmeasured/zero.
    pub fn overlap_factor(&self) -> f64 {
        if self.iter_s > 0.0 {
            self.serial_sum() / self.iter_s
        } else {
            1.0
        }
    }

    /// Fraction of the wire-transfer time hidden behind accelerator
    /// compute (`transfer_hidden_s / transfer_s`, clamped to `[0, 1]`;
    /// `0.0` when no transfer time was measured). `1.0` means the
    /// staging ring hid the transfer completely.
    pub fn transfer_overlap_ratio(&self) -> f64 {
        if self.transfer_s > 0.0 {
            (self.transfer_hidden_s / self.transfer_s).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// The slowest single lane's wire round-trip wall — with concurrent
    /// transfer lanes this, not the aggregate `transfer_s`, is the
    /// transfer stage's contribution to the pipeline's critical path.
    pub fn busiest_lane_transfer_s(&self) -> f64 {
        self.lane_transfer_s.iter().copied().fold(0.0, f64::max)
    }

    /// How much wire wall the lane concurrency folded away: aggregate
    /// transfer work over the busiest single lane (`≥ 1.0`; `1.0` =
    /// one lane did everything, `n` = `n` perfectly-balanced concurrent
    /// lanes). Returns 1.0 when no lane walls were recorded.
    pub fn lane_overlap_factor(&self) -> f64 {
        let busiest = self.busiest_lane_transfer_s();
        if busiest > 0.0 {
            (self.transfer_s / busiest).max(1.0)
        } else {
            1.0
        }
    }

    /// Per-lane hidden-transfer ratio (`lane_transfer_hidden_s[a] /
    /// lane_transfer_s[a]`, clamped to `[0, 1]`; 0 for idle lanes).
    pub fn lane_overlap_ratios(&self) -> Vec<f64> {
        self.lane_transfer_s
            .iter()
            .zip(&self.lane_transfer_hidden_s)
            .map(|(&t, &h)| {
                if t > 0.0 {
                    (h / t).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Element-wise mean over a set of per-iteration measurements.
    pub fn mean_of<'a>(times: impl Iterator<Item = &'a WallStageTimes>) -> WallStageTimes {
        let mut acc = WallStageTimes::default();
        let mut n = 0usize;
        let add_lanes = |acc: &mut Vec<f64>, lanes: &[f64]| {
            if acc.len() < lanes.len() {
                acc.resize(lanes.len(), 0.0);
            }
            for (a, &l) in acc.iter_mut().zip(lanes) {
                *a += l;
            }
        };
        for t in times {
            acc.sample_s += t.sample_s;
            acc.load_s += t.load_s;
            acc.transfer_s += t.transfer_s;
            acc.transfer_hidden_s += t.transfer_hidden_s;
            add_lanes(&mut acc.lane_transfer_s, &t.lane_transfer_s);
            add_lanes(&mut acc.lane_transfer_hidden_s, &t.lane_transfer_hidden_s);
            // lane concurrency doesn't average meaningfully: keep the
            // settled (last-observed, non-zero) count
            if t.transfer_lanes > 0 {
                acc.transfer_lanes = t.transfer_lanes;
            }
            acc.train_s += t.train_s;
            acc.iter_s += t.iter_s;
            // salvage accounting accumulates: epoch summaries carry the
            // totals, not per-iteration means
            acc.batches_salvaged += t.batches_salvaged;
            acc.batches_flushed += t.batches_flushed;
            acc.invalidation_s += t.invalidation_s;
            // widths don't average meaningfully: keep the settled
            // (last-observed) allocation
            acc.threads = t.threads;
            n += 1;
        }
        if n > 0 {
            let inv = 1.0 / n as f64;
            acc.sample_s *= inv;
            acc.load_s *= inv;
            acc.transfer_s *= inv;
            acc.transfer_hidden_s *= inv;
            for l in acc
                .lane_transfer_s
                .iter_mut()
                .chain(acc.lane_transfer_hidden_s.iter_mut())
            {
                *l *= inv;
            }
            acc.train_s *= inv;
            acc.iter_s *= inv;
        }
        acc
    }
}

/// One iteration's record.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Iteration index within the epoch.
    pub iter: usize,
    /// Simulated stage times.
    pub times: StageTimes,
    /// Simulated iteration latency (pipelined or serial per config).
    pub iter_time_s: f64,
    /// Mean training loss across trainers (batch-weighted).
    pub loss: f32,
    /// Mean training accuracy across trainers (batch-weighted).
    pub accuracy: f32,
    /// CPU trainer seed quota at this iteration.
    pub cpu_quota: usize,
    /// DRM decision taken after this iteration.
    pub drm_action: DrmAction,
    /// Throughput in MTEPS (Eq. 5) for this iteration.
    pub mteps: f64,
    /// Measured host wall-clock per stage.
    pub wall: WallStageTimes,
}

/// One epoch's summary.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: u64,
    /// Simulated epoch time extrapolated to the full-scale dataset
    /// (iterations × mean iteration time + pipeline fill/flush).
    pub epoch_time_s: f64,
    /// Mean simulated iteration latency.
    pub mean_iter_time_s: f64,
    /// Full-scale iterations per epoch.
    pub full_scale_iters: u64,
    /// Functional iterations actually executed.
    pub functional_iters: usize,
    /// Final training loss of the epoch.
    pub loss: f32,
    /// Final training accuracy of the epoch.
    pub accuracy: f32,
    /// Mean throughput in MTEPS.
    pub mteps: f64,
    /// Host wall-clock seconds spent on the functional work.
    pub wall_s: f64,
    /// Mean measured host wall-clock per stage across the epoch's
    /// iterations.
    pub wall_stages: WallStageTimes,
    /// Task-level Feature Prefetching depth this epoch executed with
    /// (`0` = fully serial stages).
    pub prefetch_depth: usize,
    /// Producer restarts forced by DRM re-mapping events this epoch.
    pub prefetch_restarts: usize,
    /// Per-iteration traces.
    pub trace: Vec<IterationReport>,
}

impl EpochReport {
    /// Fixed-width summary line for harness output.
    pub fn summary_line(&self) -> String {
        format!(
            "epoch {:>3}  sim {:>9.3}s  iter {:>8.4}s  loss {:>7.4}  acc {:>6.3}  {:>9.1} MTEPS",
            self.epoch,
            self.epoch_time_s,
            self.mean_iter_time_s,
            self.loss,
            self.accuracy,
            self.mteps
        )
    }
}

impl std::fmt::Display for EpochReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.summary_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_formats() {
        let r = EpochReport {
            epoch: 2,
            epoch_time_s: 1.5,
            mean_iter_time_s: 0.005,
            full_scale_iters: 300,
            functional_iters: 8,
            loss: 1.23,
            accuracy: 0.78,
            mteps: 123.4,
            wall_s: 0.9,
            wall_stages: WallStageTimes::default(),
            prefetch_depth: 2,
            prefetch_restarts: 0,
            trace: Vec::new(),
        };
        let line = r.summary_line();
        assert!(line.contains("epoch   2"));
        assert!(line.contains("1.230"));
        assert!(line.contains("MTEPS"));
        assert_eq!(format!("{r}"), line);
    }

    #[test]
    fn wall_stage_means_and_overlap() {
        let a = WallStageTimes {
            sample_s: 1.0,
            load_s: 2.0,
            transfer_s: 3.0,
            train_s: 4.0,
            iter_s: 5.0,
            ..Default::default()
        };
        let b = WallStageTimes {
            sample_s: 3.0,
            load_s: 4.0,
            transfer_s: 5.0,
            transfer_hidden_s: 0.0,
            train_s: 6.0,
            iter_s: 9.0,
            batches_salvaged: 3,
            batches_flushed: 1,
            invalidation_s: 0.25,
            threads: ThreadAlloc {
                sampler: 2,
                loader: 3,
                trainer: 5,
            },
            ..Default::default()
        };
        let b_threads = b.threads;
        let m = WallStageTimes::mean_of([a, b].iter());
        assert_eq!(m.sample_s, 2.0);
        assert_eq!(m.train_s, 5.0);
        assert_eq!(m.transfer_hidden_s, 0.0);
        // counters and invalidation tax are totals, not means
        assert_eq!(m.batches_salvaged, 3);
        assert_eq!(m.batches_flushed, 1);
        assert_eq!(m.invalidation_s, 0.25);
        // widths keep the settled (last-observed) allocation
        assert_eq!(m.threads, b_threads);
        assert_eq!(m.iter_s, 7.0);
        assert!((m.serial_sum() - 14.0).abs() < 1e-12);
        assert!((m.overlap_factor() - 2.0).abs() < 1e-12);
        assert_eq!(WallStageTimes::default().overlap_factor(), 1.0);
        assert_eq!(
            WallStageTimes::mean_of([].iter()),
            WallStageTimes::default()
        );
    }

    #[test]
    fn transfer_overlap_ratio_bounds() {
        let mut w = WallStageTimes {
            transfer_s: 4.0,
            transfer_hidden_s: 3.0,
            ..Default::default()
        };
        assert!((w.transfer_overlap_ratio() - 0.75).abs() < 1e-12);
        // clamped: measurement jitter can't push the ratio past 1
        w.transfer_hidden_s = 9.0;
        assert_eq!(w.transfer_overlap_ratio(), 1.0);
        // no transfer measured -> defined as zero overlap
        assert_eq!(WallStageTimes::default().transfer_overlap_ratio(), 0.0);
        // hidden time averages like the other stages
        let a = WallStageTimes {
            transfer_s: 2.0,
            transfer_hidden_s: 1.0,
            ..Default::default()
        };
        let b = WallStageTimes {
            transfer_s: 4.0,
            transfer_hidden_s: 3.0,
            ..Default::default()
        };
        let m = WallStageTimes::mean_of([a, b].iter());
        assert!((m.transfer_hidden_s - 2.0).abs() < 1e-12);
        assert!((m.transfer_overlap_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lane_metrics_and_means() {
        let a = WallStageTimes {
            transfer_s: 3.0,
            transfer_hidden_s: 1.0,
            transfer_lanes: 2,
            lane_transfer_s: vec![2.0, 1.0],
            lane_transfer_hidden_s: vec![1.0, 0.0],
            ..Default::default()
        };
        // the busiest lane, not the aggregate, gates the pipeline
        assert_eq!(a.busiest_lane_transfer_s(), 2.0);
        assert!((a.lane_overlap_factor() - 1.5).abs() < 1e-12);
        assert_eq!(a.lane_overlap_ratios(), vec![0.5, 0.0]);

        // means: element-wise over lanes, ragged lengths zero-padded
        let b = WallStageTimes {
            transfer_s: 1.0,
            transfer_lanes: 2,
            lane_transfer_s: vec![1.0],
            lane_transfer_hidden_s: vec![1.0],
            ..Default::default()
        };
        let m = WallStageTimes::mean_of([a, b].iter());
        assert_eq!(m.lane_transfer_s, vec![1.5, 0.5]);
        assert_eq!(m.lane_transfer_hidden_s, vec![1.0, 0.0]);
        assert_eq!(m.transfer_lanes, 2, "settled lane count survives");

        // unrecorded lanes: factor degenerates to 1, ratios empty
        let zero = WallStageTimes::default();
        assert_eq!(zero.lane_overlap_factor(), 1.0);
        assert_eq!(zero.busiest_lane_transfer_s(), 0.0);
        assert!(zero.lane_overlap_ratios().is_empty());
    }
}
