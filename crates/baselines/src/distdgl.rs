//! DistDGLv2 system model (paper Table V/VI; Zheng et al., KDD'22).
//!
//! 8 nodes, each 96 vCPU + 8× T4, 3-layer GraphSAGE with fanout
//! (15, 10, 5). DistDGLv2 *does* train hybrid (CPU + GPU collaborate,
//! like HyScale-GNN) but with a static task mapping, and the graph is
//! METIS-partitioned across nodes, so a fraction of every mini-batch's
//! input features is fetched from remote KVStores. With 64 T4s it posts
//! the strongest absolute numbers in Table VI (the paper reaches 0.45×
//! of it with 4 FPGAs — a win after normalization, Table VII).

use crate::common::{gpu_propagation_time, BaselineSystem, SotaConfig, DGL_FRAMEWORK_OVERHEAD_S};
use hyscale_device::calib;
use hyscale_device::pcie::PcieLink;
use hyscale_device::spec::{DeviceSpec, T4};
use hyscale_device::stage::{LoaderModel, SamplerModel};
use hyscale_device::timing::GpuTiming;
use hyscale_gnn::GnnKind;
use hyscale_graph::DatasetSpec;

/// A generic cloud-node CPU standing in for "96 vCPU" (Table V).
const CLOUD_CPU: DeviceSpec = DeviceSpec {
    name: "96 vCPU (cloud)",
    kind: hyscale_device::spec::DeviceKind::Cpu,
    peak_tflops: 2.4,
    mem_bandwidth_gbs: 160.0,
    mem_capacity_gb: 384.0,
    freq_ghz: 2.5,
    onchip_mb: 36.0,
    cores: 48,
};

/// DistDGLv2 system model.
pub struct DistDglV2 {
    /// GPU spec (T4).
    pub gpu: DeviceSpec,
    /// GPUs per node (8).
    pub gpus_per_node: usize,
    /// Node count (8).
    pub nodes: usize,
    /// Fraction of sampled input vertices resident on remote partitions
    /// (METIS keeps ~70 % local on power-law graphs).
    pub remote_fraction: f64,
    /// NIC bandwidth, GB/s.
    pub nic_gbs: f64,
}

impl DistDglV2 {
    /// The Table V configuration.
    pub fn paper_setup() -> Self {
        Self {
            gpu: T4,
            gpus_per_node: 8,
            nodes: 8,
            remote_fraction: 0.3,
            nic_gbs: calib::NIC_BW_GBS,
        }
    }
}

impl BaselineSystem for DistDglV2 {
    fn name(&self) -> &'static str {
        "DistDGLv2"
    }

    fn platform_tflops(&self) -> f64 {
        (self.gpu.peak_tflops * self.gpus_per_node as f64 + CLOUD_CPU.peak_tflops)
            * self.nodes as f64
    }

    fn total_batch(&self, cfg: &SotaConfig) -> usize {
        cfg.batch_per_trainer * self.gpus_per_node * self.nodes
    }

    fn iteration_time(&self, ds: &DatasetSpec, model: GnnKind, cfg: &SotaConfig) -> f64 {
        let per_gpu = cfg.workload(ds);
        let dims = cfg.layer_dims(ds);
        let sampler = SamplerModel::default();
        // distributed sampling across all nodes' vCPUs
        let node_edges = per_gpu.total_edges() * self.gpus_per_node as u64;
        let t_samp = sampler.sample_time(node_edges, CLOUD_CPU.cores)
            // sampling RPCs to remote partition stores
            + self.remote_fraction * DGL_FRAMEWORK_OVERHEAD_S;
        // remote feature fetch over NIC, local over DRAM
        let feat_bytes = per_gpu.feature_bytes(ds.f0);
        let remote_bytes =
            (feat_bytes as f64 * self.remote_fraction * self.gpus_per_node as f64) as u64;
        let t_net = remote_bytes as f64 / (self.nic_gbs * 1e9);
        let loader = LoaderModel::new(CLOUD_CPU, 1);
        let mut local = per_gpu.clone();
        local.input_nodes = (local.input_nodes as f64 * (1.0 - self.remote_fraction)) as usize;
        let t_load = loader.load_time(&local, ds.f0, CLOUD_CPU.cores) * self.gpus_per_node as f64;
        // PCIe to each GPU (pinned; DGL v2 uses pinned buffers)
        let pcie = PcieLink::new(calib::PCIE_EFF_BW_GBS, calib::PCIE_LATENCY_S);
        let t_trans = pcie.transfer_time(feat_bytes + per_gpu.total_edges() * 8);
        // hybrid static: GPU propagation with DGL overhead; the CPU takes
        // a fixed ~15 % of the batch (static mapping, paper §VI-E2)
        let gpu = GpuTiming::new(self.gpu);
        let mut gpu_stats = per_gpu.clone();
        gpu_stats.batch_size = (gpu_stats.batch_size as f64 * 0.85) as usize;
        let t_gpu = gpu_propagation_time(&gpu, &gpu_stats, &dims, model, DGL_FRAMEWORK_OVERHEAD_S);
        // async pipeline (DistDGLv2's improvement over v1): fetch overlaps
        // compute; sampling remains on the critical path
        t_samp + (t_net + t_load).max(t_trans + t_gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::dataset::{OGBN_PAPERS100M, OGBN_PRODUCTS};

    #[test]
    fn tflops_dominate_every_other_system() {
        // 64 T4 + 8 cloud CPUs: the biggest platform in Table V
        let d = DistDglV2::paper_setup();
        assert!(d.platform_tflops() > 500.0);
    }

    #[test]
    fn huge_total_batch_shortens_epochs() {
        let d = DistDglV2::paper_setup();
        let cfg = SotaConfig::distdgl();
        assert_eq!(d.total_batch(&cfg), 64 * 1024);
        // products: only 196k train vertices -> very few iterations
        let iters = OGBN_PRODUCTS
            .train_vertices
            .div_ceil(d.total_batch(&cfg) as u64);
        assert!(iters <= 4);
    }

    #[test]
    fn epoch_band() {
        // paper Table VI: DistDGLv2 products SAGE 0.30s, papers SAGE 4.16s
        let d = DistDglV2::paper_setup();
        let cfg = SotaConfig::distdgl();
        let products = d.epoch_time(&OGBN_PRODUCTS, GnnKind::GraphSage, &cfg);
        let papers = d.epoch_time(&OGBN_PAPERS100M, GnnKind::GraphSage, &cfg);
        assert!(products > 0.05 && products < 5.0, "products {products}");
        assert!(papers > products, "papers {papers}");
    }
}
