//! Regenerates paper Table II: specifications of the platforms.

use hyscale_bench::Table;
use hyscale_device::spec::table_ii;

fn main() {
    println!("Table II: Specifications of the platforms\n");
    let mut t = Table::new(&[
        "Platform",
        "Kind",
        "Freq (GHz)",
        "Peak (TFLOPS)",
        "On-chip (MB)",
        "Mem BW (GB/s)",
    ]);
    for d in table_ii() {
        t.row(vec![
            d.name.to_string(),
            format!("{:?}", d.kind),
            format!("{:.2}", d.freq_ghz),
            format!("{:.1}", d.peak_tflops),
            format!("{:.0}", d.onchip_mb),
            format!("{:.0}", d.mem_bandwidth_gbs),
        ]);
    }
    t.print();
    println!("\npaper: EPYC 7763 2.45GHz/3.6TF/256MB/205GBs, A5000 2.0GHz/27.8TF/6MB/768GBs,");
    println!("       U250 0.3GHz/0.6TF/54MB/77GBs");
}
