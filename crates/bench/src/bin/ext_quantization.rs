//! Extension study (paper §VIII): data quantization to relieve PCIe
//! pressure. The paper names transfer-bound configurations (e.g.
//! products + GCN, Fig. 9 discussion) as its main limitation and proposes
//! quantization as future work — this binary quantifies that proposal.
//!
//! Timing: wire bytes shrink 2× (f16) or ~4× (int8). Functional: the
//! executor really round-trips features through the quantizer, so the
//! accuracy cost is measured, not assumed.

use hyscale_bench::{simulate_epoch, Table, DRM_SETTLE_ITERS};
use hyscale_core::config::AcceleratorKind;
use hyscale_core::{HybridTrainer, SystemConfig};
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::ALL_DATASETS;
use hyscale_graph::features::Splits;
use hyscale_graph::Dataset;
use hyscale_tensor::Precision;

fn main() {
    println!("Extension (paper §VIII): feature quantization on the PCIe transfer\n");
    println!("Epoch time (s), CPU + 4x U250, GCN:\n");
    let precisions = [Precision::F32, Precision::F16, Precision::Int8];
    let mut t = Table::new(&["Dataset", "f32", "f16", "int8", "int8 speedup"]);
    for ds in ALL_DATASETS {
        let mut epochs = Vec::new();
        for p in precisions {
            let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
            cfg.train.transfer_precision = p;
            epochs.push(simulate_epoch(&cfg, &ds, DRM_SETTLE_ITERS).epoch_time_s);
        }
        t.row(vec![
            ds.name.to_string(),
            format!("{:.3}", epochs[0]),
            format!("{:.3}", epochs[1]),
            format!("{:.3}", epochs[2]),
            format!("{:.2}x", epochs[0] / epochs[2]),
        ]);
    }
    t.print();

    // functional accuracy check: does quantization hurt convergence?
    println!("\nFunctional accuracy after 6 epochs (toy community dataset, GraphSAGE):\n");
    let mut acc_table = Table::new(&["precision", "test accuracy"]);
    for p in precisions {
        let dataset = Dataset::toy(77);
        let test = dataset.splits.test.clone();
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
        cfg.platform.num_accelerators = 2;
        cfg.train.batch_per_trainer = 96;
        cfg.train.fanouts = vec![8, 4];
        cfg.train.hidden_dim = 32;
        cfg.train.learning_rate = 0.3;
        cfg.train.max_functional_iters = Some(5);
        cfg.train.transfer_precision = p;
        let mut trainer = HybridTrainer::new(cfg, dataset);
        trainer.train_epochs(6);
        acc_table.row(vec![
            format!("{p:?}"),
            format!("{:.3}", trainer.evaluate(&test)),
        ]);
    }
    acc_table.print();

    // the limitation case: single FPGA on a transfer-bound config
    println!("\nTransfer-bound limitation case (products, 1 FPGA, no hybrid):\n");
    let mut lim = Table::new(&["precision", "iter (ms)", "transfer share"]);
    for p in precisions {
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
        cfg.platform.num_accelerators = 1;
        cfg.opt.hybrid = false;
        cfg.opt.drm = false;
        cfg.train.transfer_precision = p;
        let run = simulate_epoch(&cfg, &ALL_DATASETS[0], 0);
        lim.row(vec![
            format!("{p:?}"),
            format!("{:.2}", run.iter_time_s * 1e3),
            format!("{:.0}%", run.times.transfer / run.iter_time_s * 100.0),
        ]);
    }
    lim.print();
    println!("\npaper §VIII: \"we plan to exploit techniques like data quantization to");
    println!("relieve the stress on the PCIe bandwidth\" — int8 removes the transfer");
    println!("bottleneck the DRM engine could not fix.");
    let _ = Splits::random(10, 0.5, 0.25, 1); // keep the import in one binary path
}
