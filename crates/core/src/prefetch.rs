//! Task-level Feature Prefetching — the *real* pipeline.
//!
//! The paper's headline optimization (§IV-B, Fig. 7) overlaps the
//! CPU-side producer stages — Mini-batch Sampling, Feature Loading, and
//! the wire-precision round-trip standing in for Data Transfer — with
//! GNN Propagation. [`crate::pipeline`] *simulates* that overlap with a
//! discrete-event model; this module *executes* it: a background
//! producer thread walks the epoch's batch plan, prepares iterations,
//! and feeds them through a bounded channel of depth `d`
//! (`TrainConfig::prefetch_depth`) to the consuming trainer.
//!
//! ## Determinism contract
//!
//! A prepared iteration is a pure function of `(epoch_order, epoch,
//! iter, quotas)`: seed slicing comes from
//! [`EpochBatcher::plan`](hyscale_sampler::EpochBatcher) and every
//! sampler draw is keyed by `(seed, epoch, iter, trainer)` streams, so a
//! batch prepared three iterations ahead on a worker thread is
//! bitwise-identical to one prepared inline. The one hazard is the DRM
//! engine re-balancing `quotas` mid-epoch: prepared iterations carry the
//! quotas they were built under, and [`IterationFeed`] drains and
//! invalidates the queue (restarting the producer with the new quotas)
//! whenever they disagree with what the consumer currently wants —
//! `tests/equivalence.rs` pins weights bitwise across depths {0, 1, 2,
//! 4} including across re-mapping events.
//!
//! ## Allocation discipline
//!
//! Feature matrices cycle through a [`MatrixPool`]: the producer gathers
//! into recycled buffers (NUMA-sharded `gather_features_numa_into` + an
//! in-place precision round-trip) and the consumer returns them after
//! propagation, so steady-state iterations perform zero feature-matrix
//! allocations.
//!
//! ## Thread budget (DRM `balance_thread`)
//!
//! The producer dispatches its stages on the shared
//! [`StageWorkers`] pools: sampling runs
//! under the sampler pool's width, and the `n` per-trainer feature
//! matrices fan out across loader lanes
//! ([`rayon::WorkerGroup::fan_out`]) whose gathers are sharded across
//! the feature matrix's NUMA row domains. A DRM `balance_thread` move
//! re-sizes the pools in place ([`IterationFeed::rebalance_threads`]);
//! widths only change wall-clock, so the queue keeps its prepared
//! iterations, and each [`PreparedIteration`] records the
//! [`ThreadAlloc`] it was built under so traces show the shift land.

use crate::drm::ThreadAlloc;
use crate::stages::StageWorkers;
use hyscale_graph::features::gather_features_numa_into;
use hyscale_graph::Dataset;
use hyscale_sampler::{EpochBatcher, MiniBatch, NeighborSampler};
use hyscale_tensor::{Matrix, Precision};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A recycling pool of feature-matrix buffers shared between the
/// producer thread and the consuming trainer.
///
/// ```
/// use hyscale_core::MatrixPool;
///
/// let pool = MatrixPool::new();
/// let mut x = pool.acquire();      // arbitrary shape — overwrite before reading
/// x.resize(128, 16);
/// pool.release(x);                 // back to the pool after propagation
/// assert_eq!(pool.idle(), 1);
/// assert_eq!(pool.acquire().shape(), (128, 16)); // allocation reused
/// ```
#[derive(Default)]
pub struct MatrixPool {
    free: Mutex<Vec<Matrix>>,
}

impl MatrixPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a buffer (arbitrary shape/contents) or mint an empty one.
    /// Callers must `resize`/overwrite before reading — `gather_features_into`
    /// does both.
    pub fn acquire(&self) -> Matrix {
        self.free
            .lock()
            .pop()
            .unwrap_or_else(|| Matrix::uninit(0, 0))
    }

    /// Return a buffer for reuse.
    pub fn release(&self, m: Matrix) {
        self.free.lock().push(m);
    }

    /// Number of buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

/// Everything the producer needs to prepare iterations without touching
/// the trainer's mutable state.
pub struct PrepareCtx {
    /// Shared dataset (graph + CPU-resident features + labels).
    pub dataset: Arc<Dataset>,
    /// Epoch seed scheduler (pure slicing; cheap clone of the trainer's).
    pub batcher: EpochBatcher,
    /// Seeded neighbor sampler (streams keyed per (epoch, iter, trainer)).
    pub sampler: NeighborSampler,
    /// Wire precision applied to accelerator-bound feature matrices.
    pub precision: Precision,
    /// Whether trainer 0 is the CPU trainer (reads host memory directly,
    /// skipping the precision round-trip).
    pub hybrid: bool,
    /// Live worker pools whose widths mirror the DRM's [`ThreadAlloc`].
    /// Shared with the executor: a `balance_thread` move re-sizes these
    /// in place and the producer observes the new widths on its next
    /// dispatch — no queue invalidation needed, because prepared
    /// iterations are bitwise-independent of pool widths.
    pub workers: Arc<StageWorkers>,
    /// NUMA domains of the CPU feature matrix (one per socket): the
    /// gather is sharded so each socket's rows are copied by that
    /// socket's share of the loader pool.
    pub numa_domains: usize,
}

/// One fully-prepared training iteration: sampled mini-batches plus
/// gathered (and precision-round-tripped) feature matrices, with the
/// producer-side wall-clock stage timings.
pub struct PreparedIteration {
    /// Iteration index within the epoch.
    pub iter: usize,
    /// The per-trainer seed quotas this iteration was prepared under —
    /// the consumer validates these against the live workload split.
    pub quotas: Vec<usize>,
    /// Per-trainer seed sets (empty for idle trainers).
    pub seed_sets: Vec<Vec<u32>>,
    /// Per-trainer sampled mini-batches (`None` for idle trainers).
    pub batches: Vec<Option<MiniBatch>>,
    /// Per-trainer gathered feature matrices, pool-backed.
    pub features: Vec<Option<Matrix>>,
    /// Wall-clock seconds spent sampling.
    pub sample_wall_s: f64,
    /// Wall-clock seconds of the loader fan-out attributed to feature
    /// gathering (the block's wall split between loading and transfer
    /// by their busy-time shares, since lanes run concurrently).
    pub load_wall_s: f64,
    /// Wall-clock seconds of the loader fan-out attributed to the
    /// precision round-trip (the functional stand-in for the PCIe
    /// transfer).
    pub transfer_wall_s: f64,
    /// The worker-pool widths (the DRM [`ThreadAlloc`]) this iteration
    /// was prepared under — the measured-wall twin of the simulated
    /// thread model, surfaced in
    /// [`WallStageTimes`](crate::report::WallStageTimes).
    pub threads: ThreadAlloc,
}

impl PreparedIteration {
    /// Return every pooled buffer for reuse.
    pub fn recycle(self, pool: &MatrixPool) {
        for m in self.features.into_iter().flatten() {
            pool.release(m);
        }
    }
}

/// Prepare iteration `iter` of `epoch`: slice seeds under `quotas`,
/// sample one mini-batch per non-idle trainer, gather features into
/// pooled buffers, and round-trip accelerator-bound matrices at the wire
/// precision. Returns `None` once the epoch's seeds are exhausted.
///
/// This is the single implementation of the producer stages — the
/// serial (`depth = 0`) and pipelined paths both call it, which is what
/// makes them bitwise-identical by construction.
pub fn prepare_iteration(
    ctx: &PrepareCtx,
    order: &[u32],
    epoch: u64,
    iter: usize,
    quotas: &[usize],
    pool: &MatrixPool,
) -> Option<PreparedIteration> {
    let (plan_iter, seed_sets) = ctx.batcher.plan(order, iter, quotas).next()?;
    debug_assert_eq!(plan_iter, iter);
    // Pool widths as budgeted right now — recorded with the iteration so
    // the trace shows when a balance_thread move reached the producer.
    let threads = ctx.workers.observed();

    // --- Sampling: n mini-batches, one per (non-empty) trainer, drawn
    // under the sampler pool's width (nested parallel draws inherit it) ---
    let sample_start = Instant::now();
    let stream_base = epoch.wrapping_mul(1 << 20) + iter as u64 * 64;
    let seed_refs: Vec<&[u32]> = seed_sets.iter().map(|s| s.as_slice()).collect();
    let batches: Vec<Option<MiniBatch>> = {
        let non_empty: Vec<&[u32]> = seed_refs
            .iter()
            .copied()
            .filter(|s| !s.is_empty())
            .collect();
        let mut sampled = ctx
            .workers
            .sampler()
            .install(|| {
                ctx.sampler
                    .sample_many(&ctx.dataset.graph, &non_empty, stream_base)
            })
            .into_iter();
        seed_refs
            .iter()
            .map(|s| if s.is_empty() { None } else { sampled.next() })
            .collect()
    };
    let sample_wall_s = sample_start.elapsed().as_secs_f64();

    // --- Feature Loading into pooled buffers: the n trainer matrices
    // fan out across loader lanes (one per accelerator/CPU trainer, up
    // to the pool's width), and each lane's gather is itself sharded
    // across the NUMA row domains of `X`. Accelerator batches
    // additionally pass through the wire-precision round-trip (identity
    // at F32; the §VIII quantization extension) ---
    let cpu_trainer_idx = if ctx.hybrid { Some(0) } else { None };
    let active: Vec<(usize, &MiniBatch)> = batches
        .iter()
        .enumerate()
        .filter_map(|(idx, b)| b.as_ref().map(|mb| (idx, mb)))
        .collect();
    let gathered: Mutex<Vec<(usize, Matrix)>> = Mutex::new(Vec::with_capacity(active.len()));
    let walls = Mutex::new((0.0f64, 0.0f64));
    let fan_out_start = Instant::now();
    ctx.workers.loader().fan_out(active.len(), |k, lane| {
        let (idx, mb) = active[k];
        let load_start = Instant::now();
        let mut x = pool.acquire();
        gather_features_numa_into(
            &mut x,
            &ctx.dataset.data.features,
            &mb.input_nodes,
            ctx.numa_domains,
            lane,
        );
        let load_s = load_start.elapsed().as_secs_f64();
        let mut transfer_s = 0.0;
        if Some(idx) != cpu_trainer_idx {
            let transfer_start = Instant::now();
            lane.install(|| ctx.precision.round_trip_in_place(&mut x));
            transfer_s = transfer_start.elapsed().as_secs_f64();
        }
        {
            let mut w = walls.lock();
            w.0 += load_s;
            w.1 += transfer_s;
        }
        gathered.lock().push((idx, x));
    });
    let fan_out_wall_s = fan_out_start.elapsed().as_secs_f64();
    let mut features: Vec<Option<Matrix>> = batches.iter().map(|_| None).collect();
    for (idx, x) in gathered.into_inner() {
        features[idx] = Some(x);
    }
    // Lanes run concurrently, so per-lane elapsed times are busy time,
    // not wall. Report wall-clock stage times (what the pipeline model
    // consumes) by apportioning the fan-out block's wall between loading
    // and transfer in proportion to their busy shares.
    let (load_busy_s, transfer_busy_s) = walls.into_inner();
    let busy = load_busy_s + transfer_busy_s;
    let (load_wall_s, transfer_wall_s) = if busy > 0.0 {
        (
            fan_out_wall_s * load_busy_s / busy,
            fan_out_wall_s * transfer_busy_s / busy,
        )
    } else {
        (fan_out_wall_s, 0.0)
    };

    Some(PreparedIteration {
        iter,
        quotas: quotas.to_vec(),
        seed_sets,
        batches,
        features,
        sample_wall_s,
        load_wall_s,
        transfer_wall_s,
        threads,
    })
}

/// Handle to one background producer run (one contiguous span of
/// iterations under fixed quotas).
struct Prefetcher {
    rx: Receiver<PreparedIteration>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn a producer covering `start_iter..end_iter` under `quotas`,
    /// buffering at most `depth` prepared iterations.
    #[allow(clippy::too_many_arguments)]
    fn spawn(
        ctx: Arc<PrepareCtx>,
        order: Arc<Vec<u32>>,
        epoch: u64,
        start_iter: usize,
        end_iter: usize,
        quotas: Vec<usize>,
        depth: usize,
        pool: Arc<MatrixPool>,
    ) -> Self {
        let (tx, rx) = sync_channel(depth.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("hyscale-prefetch".into())
            .spawn(move || {
                for iter in start_iter..end_iter {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    match prepare_iteration(&ctx, &order, epoch, iter, &quotas, &pool) {
                        // A closed channel means the consumer moved on;
                        // recycle the rejected iteration's buffers so a
                        // restart doesn't force fresh allocations.
                        Some(prep) => {
                            if let Err(rejected) = tx.send(prep) {
                                rejected.0.recycle(&pool);
                                break;
                            }
                        }
                        None => break, // epoch seeds exhausted
                    }
                }
            })
            .expect("spawn prefetch producer");
        Self {
            rx,
            stop,
            handle: Some(handle),
        }
    }

    /// Blocking receive; `None` when the producer finished the epoch.
    fn recv(&self) -> Option<PreparedIteration> {
        self.rx.recv().ok()
    }

    /// Stop the producer, recycling every buffered iteration.
    fn shutdown(mut self, pool: &MatrixPool) {
        self.stop.store(true, Ordering::Release);
        // Drain whatever is buffered so a producer blocked on a full
        // channel can complete its send, observe `stop`, and exit.
        while let Ok(prep) = self.rx.try_recv() {
            prep.recycle(pool);
        }
        // Close the channel: any in-flight send now errors out (the
        // producer recycles the rejected iteration's buffers itself).
        drop(self.rx);
        if let Some(h) = self.handle.take() {
            // Bounded wait: at most one in-flight prepare_iteration —
            // the same work the consumer would do inline anyway before
            // it can proceed under the new quotas.
            let _ = h.join();
        }
    }
}

/// The executor's iteration source: serial preparation at `depth = 0`,
/// a background producer pipeline otherwise. Transparently restarts the
/// producer when the consumer's quotas change (DRM re-mapping).
pub struct IterationFeed {
    ctx: Arc<PrepareCtx>,
    order: Arc<Vec<u32>>,
    epoch: u64,
    end_iter: usize,
    depth: usize,
    pool: Arc<MatrixPool>,
    pipeline: Option<Prefetcher>,
    restarts: usize,
}

impl IterationFeed {
    /// Create the feed for one epoch, spawning the producer at iteration
    /// 0 when `depth > 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ctx: Arc<PrepareCtx>,
        order: Arc<Vec<u32>>,
        epoch: u64,
        end_iter: usize,
        depth: usize,
        pool: Arc<MatrixPool>,
        initial_quotas: Vec<usize>,
    ) -> Self {
        let mut feed = Self {
            ctx,
            order,
            epoch,
            end_iter,
            depth,
            pool,
            pipeline: None,
            restarts: 0,
        };
        if depth > 0 {
            feed.pipeline = Some(feed.spawn_at(0, initial_quotas));
        }
        feed
    }

    fn spawn_at(&self, start_iter: usize, quotas: Vec<usize>) -> Prefetcher {
        Prefetcher::spawn(
            Arc::clone(&self.ctx),
            Arc::clone(&self.order),
            self.epoch,
            start_iter,
            self.end_iter,
            quotas,
            self.depth,
            Arc::clone(&self.pool),
        )
    }

    /// Obtain iteration `iter` prepared under exactly `quotas`.
    /// Returns `None` once the epoch's seeds are exhausted.
    pub fn obtain(&mut self, iter: usize, quotas: &[usize]) -> Option<PreparedIteration> {
        if self.depth == 0 {
            return prepare_iteration(&self.ctx, &self.order, self.epoch, iter, quotas, &self.pool);
        }
        loop {
            let prep = self.pipeline.as_ref().expect("pipeline alive").recv();
            match prep {
                Some(prep) if prep.iter == iter && prep.quotas == quotas => return Some(prep),
                Some(stale) => {
                    // Produced under an outdated plan (missed DRM event or
                    // an out-of-band `set_mapping`): invalidate and redo.
                    stale.recycle(&self.pool);
                    self.restart(iter, quotas.to_vec());
                }
                None => return None,
            }
        }
    }

    /// Proactively restart the producer at `next_iter` under new
    /// `quotas` — called by the executor the moment a DRM `balance_work`
    /// decision changes the split, before the change takes effect.
    pub fn invalidate(&mut self, next_iter: usize, quotas: Vec<usize>) {
        if self.depth > 0 {
            self.restart(next_iter, quotas);
        }
    }

    /// Apply a DRM `balance_thread` re-allocation: re-size the shared
    /// worker pools so the producer's next dispatch runs at the new
    /// widths. Unlike [`invalidate`](Self::invalidate) this is an
    /// immediate cross-thread atomic store, not a message through the
    /// queue — it is unordered with respect to in-flight iterations and
    /// deliberately does *not* drain them: pool widths change
    /// wall-clock, never bytes, so already-prepared iterations remain
    /// valid (`tests/equivalence.rs` pins this bitwise).
    pub fn rebalance_threads(&self, alloc: &ThreadAlloc) {
        self.ctx.workers.apply(alloc);
    }

    /// The live worker pools this feed's producer dispatches on.
    pub fn workers(&self) -> &StageWorkers {
        &self.ctx.workers
    }

    fn restart(&mut self, start_iter: usize, quotas: Vec<usize>) {
        if let Some(p) = self.pipeline.take() {
            p.shutdown(&self.pool);
        }
        self.restarts += 1;
        self.pipeline = Some(self.spawn_at(start_iter, quotas));
    }

    /// Number of producer restarts this epoch (DRM invalidations).
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// Tear down the producer, recycling buffered iterations.
    pub fn finish(mut self) {
        if let Some(p) = self.pipeline.take() {
            p.shutdown(&self.pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_tensor::init::randn;

    fn ctx() -> (Arc<PrepareCtx>, Arc<Vec<u32>>) {
        let dataset = Arc::new(Dataset::toy(5));
        let batcher = EpochBatcher::new(dataset.splits.train.clone(), 99);
        let order = Arc::new(batcher.epoch_order(0));
        let ctx = PrepareCtx {
            dataset,
            batcher,
            sampler: NeighborSampler::new(vec![4, 3], 17),
            precision: Precision::F32,
            hybrid: true,
            workers: Arc::new(StageWorkers::from_alloc(&ThreadAlloc::default_for(8))),
            numa_domains: 2,
        };
        (Arc::new(ctx), order)
    }

    #[test]
    fn pool_recycles_buffers() {
        let pool = MatrixPool::new();
        let mut m = pool.acquire();
        assert_eq!(pool.idle(), 0);
        m.resize(8, 4);
        pool.release(m);
        assert_eq!(pool.idle(), 1);
        let m2 = pool.acquire();
        assert_eq!(m2.shape(), (8, 4), "recycled buffer keeps its allocation");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn prepare_is_deterministic_and_pool_independent() {
        let (ctx, order) = ctx();
        let pool = MatrixPool::new();
        let quotas = [16usize, 16, 16];
        let a = prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).unwrap();
        // poison the pool with stale buffers of wrong shapes
        pool.release(randn(200, 3, 1));
        pool.release(Matrix::full(1, 1, f32::NAN));
        let b = prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).unwrap();
        assert_eq!(a.seed_sets, b.seed_sets);
        for (x, y) in a.features.iter().zip(&b.features) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.as_slice(), y.as_slice()),
                (None, None) => {}
                _ => panic!("feature presence diverged"),
            }
        }
    }

    #[test]
    fn prepare_ends_after_epoch_exhausted() {
        let (ctx, order) = ctx();
        let pool = MatrixPool::new();
        let n = order.len();
        let quotas = [n / 2 + 1, n / 2 + 1]; // 1 iteration consumes all
        assert!(prepare_iteration(&ctx, &order, 0, 0, &quotas, &pool).is_some());
        assert!(prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).is_none());
    }

    #[test]
    fn feed_pipelined_matches_serial() {
        let (ctx, order) = ctx();
        let quotas = vec![8usize, 8, 8];
        let serial_pool = Arc::new(MatrixPool::new());
        let mut serial = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            0,
            Arc::clone(&serial_pool),
            quotas.clone(),
        );
        let piped_pool = Arc::new(MatrixPool::new());
        let mut piped = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            3,
            Arc::clone(&piped_pool),
            quotas.clone(),
        );
        let mut iter = 0;
        loop {
            let a = serial.obtain(iter, &quotas);
            let b = piped.obtain(iter, &quotas);
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.iter, b.iter);
                    assert_eq!(a.seed_sets, b.seed_sets);
                    for (x, y) in a.features.iter().zip(&b.features) {
                        if let (Some(x), Some(y)) = (x, y) {
                            assert_eq!(x.as_slice(), y.as_slice());
                        }
                    }
                    a.recycle(&serial_pool);
                    b.recycle(&piped_pool);
                }
                (None, None) => break,
                _ => panic!("serial and pipelined feeds disagree on epoch length"),
            }
            iter += 1;
        }
        assert!(iter >= 2, "epoch too short to exercise the pipeline");
        piped.finish();
        serial.finish();
    }

    #[test]
    fn rebalance_resizes_pools_the_producer_observes() {
        // A balance_thread move must change the partition widths the
        // producer dispatches on — not only the simulated StageTimes.
        let (ctx, order) = ctx();
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize, 8, 8];
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            1,
            Arc::clone(&pool),
            quotas.clone(),
        );
        let before = feed.obtain(0, &quotas).expect("first iteration");
        assert_eq!(before.threads, ThreadAlloc::default_for(8));
        before.recycle(&pool);

        // DRM moves two threads from the trainer pool to the loader pool.
        let moved = ThreadAlloc {
            sampler: 2,
            loader: 4,
            trainer: 2,
        };
        feed.rebalance_threads(&moved);
        assert_eq!(feed.workers().observed(), moved);
        assert_eq!(feed.workers().loader().width(), 4);

        // Subsequent prepared iterations carry (and ran under) the new
        // widths, without the queue having been invalidated. At depth 1
        // up to two iterations (one buffered, one in flight) may predate
        // the re-size; the move must land within a few more.
        let mut landed = false;
        for iter in 1..=4 {
            let prep = feed
                .obtain(iter, &quotas)
                .expect("post-rebalance iteration");
            let threads = prep.threads;
            prep.recycle(&pool);
            if threads == moved {
                landed = true;
                break;
            }
        }
        assert!(landed, "producer never observed the balance_thread move");
        assert_eq!(feed.restarts(), 0, "thread moves must not drain the queue");
        feed.finish();
    }

    #[test]
    fn feed_restarts_on_quota_change() {
        let (ctx, order) = ctx();
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize, 8, 8];
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            2,
            Arc::clone(&pool),
            quotas.clone(),
        );
        let first = feed.obtain(0, &quotas).expect("first iteration");
        first.recycle(&pool);
        // consumer re-balances: 4 seeds move from trainer 1 to trainer 0
        let new_quotas = vec![12usize, 4, 8];
        feed.invalidate(1, new_quotas.clone());
        let second = feed.obtain(1, &new_quotas).expect("post-remap iteration");
        assert_eq!(second.quotas, new_quotas);
        assert_eq!(second.seed_sets[0].len(), 12);
        assert_eq!(second.seed_sets[1].len(), 4);
        // bitwise identical to preparing serially under the new quotas
        let reference =
            prepare_iteration(&ctx, &order, 0, 1, &new_quotas, &pool).expect("reference");
        assert_eq!(second.seed_sets, reference.seed_sets);
        for (x, y) in second.features.iter().zip(&reference.features) {
            if let (Some(x), Some(y)) = (x, y) {
                assert_eq!(x.as_slice(), y.as_slice());
            }
        }
        assert!(feed.restarts() >= 1);
        second.recycle(&pool);
        reference.recycle(&pool);
        feed.finish();
    }
}
