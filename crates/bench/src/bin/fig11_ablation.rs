//! Regenerates paper Fig. 11: impact of the optimizations — normalized
//! speedup of Baseline → Hybrid (static) → +DRM → +DRM+TFP on the
//! CPU-FPGA platform, all datasets and models.

use hyscale_bench::{simulate_epoch, Table, DRM_SETTLE_ITERS};
use hyscale_core::config::{AcceleratorKind, OptFlags};
use hyscale_core::SystemConfig;
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::ALL_DATASETS;

fn main() {
    println!("Fig. 11: impact of optimizations (normalized speedup over Baseline), CPU-FPGA\n");
    let variants: [(&str, OptFlags); 4] = [
        ("Baseline", OptFlags::baseline()),
        ("Hybrid (static)", OptFlags::hybrid_static()),
        ("Hybrid+DRM", OptFlags::hybrid_drm()),
        ("Hybrid+DRM+TFP", OptFlags::full()),
    ];
    let mut t = Table::new(&[
        "Dataset",
        "Model",
        "Baseline",
        "Hybrid (static)",
        "Hybrid+DRM",
        "Hybrid+DRM+TFP",
    ]);
    for ds in ALL_DATASETS {
        for model in [GnnKind::Gcn, GnnKind::GraphSage] {
            let mut epochs = Vec::new();
            for (_, opt) in &variants {
                let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
                cfg.opt = *opt;
                epochs.push(simulate_epoch(&cfg, &ds, DRM_SETTLE_ITERS).epoch_time_s);
            }
            let base = epochs[0];
            let mut row = vec![ds.name.to_string(), model.name().to_string()];
            row.extend(epochs.iter().map(|e| format!("{:.2}x", base / e)));
            t.row(row);
        }
    }
    t.print();
    println!("\npaper: hybrid static up to 1.13x, +DRM up to 1.33x, +TFP up to 1.79x;");
    println!("       TFP gives no speedup when propagation dominates (papers100M SAGE).");
}
