//! Device specifications (paper Table II plus the baselines' hardware
//! from Table V).

/// Processor / accelerator class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Multi-core CPU.
    Cpu,
    /// GPU accelerator.
    Gpu,
    /// FPGA accelerator.
    Fpga,
    /// Any other AI accelerator attached via the generic protocol.
    Custom,
}

/// Static description of a device, the inputs to every timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Device class.
    pub kind: DeviceKind,
    /// Peak FP32 throughput in TFLOPS.
    pub peak_tflops: f64,
    /// Device memory bandwidth in GB/s (CPU: per-socket DRAM).
    pub mem_bandwidth_gbs: f64,
    /// Device memory capacity in GB (CPU: per-socket DRAM).
    pub mem_capacity_gb: f64,
    /// Operating frequency in GHz.
    pub freq_ghz: f64,
    /// On-chip memory in MB (LLC / L2 / BRAM+URAM).
    pub onchip_mb: f64,
    /// Physical cores (CPU) or a nominal lane count (accelerators).
    pub cores: usize,
}

impl DeviceSpec {
    /// Peak multiply-accumulate rate (MAC/s) — the `N × freq` denominator
    /// of paper Eq. 12 (1 MAC = 2 FLOPs).
    pub fn macs_per_sec(&self) -> f64 {
        self.peak_tflops * 1e12 / 2.0
    }
}

/// AMD EPYC 7763 (Table II): 2.45 GHz, 3.6 TFLOPS, 256 MB L3, 205 GB/s.
/// The evaluation platform is dual-socket (7.2 TFLOPS total, paper §I).
pub const EPYC_7763: DeviceSpec = DeviceSpec {
    name: "AMD EPYC 7763",
    kind: DeviceKind::Cpu,
    peak_tflops: 3.6,
    mem_bandwidth_gbs: 205.0,
    mem_capacity_gb: 1024.0,
    freq_ghz: 2.45,
    onchip_mb: 256.0,
    cores: 64,
};

/// Nvidia RTX A5000 (Table II): 2.0 GHz, 27.8 TFLOPS, 6 MB L2, 768 GB/s,
/// 24 GB GDDR6.
pub const RTX_A5000: DeviceSpec = DeviceSpec {
    name: "Nvidia RTX A5000",
    kind: DeviceKind::Gpu,
    peak_tflops: 27.8,
    mem_bandwidth_gbs: 768.0,
    mem_capacity_gb: 24.0,
    freq_ghz: 2.0,
    onchip_mb: 6.0,
    cores: 8192,
};

/// Xilinx Alveo U250 (Table II): 300 MHz, 0.6 TFLOPS, 54 MB on-chip,
/// 77 GB/s DDR4, 64 GB device DRAM.
pub const ALVEO_U250: DeviceSpec = DeviceSpec {
    name: "Xilinx Alveo U250",
    kind: DeviceKind::Fpga,
    peak_tflops: 0.6,
    mem_bandwidth_gbs: 77.0,
    mem_capacity_gb: 64.0,
    freq_ghz: 0.3,
    onchip_mb: 54.0,
    cores: 12288, // DSP slices
};

/// Nvidia V100 (PaGraph's accelerator, Table V): 15.7 TFLOPS, 900 GB/s.
pub const V100: DeviceSpec = DeviceSpec {
    name: "Nvidia V100",
    kind: DeviceKind::Gpu,
    peak_tflops: 15.7,
    mem_bandwidth_gbs: 900.0,
    mem_capacity_gb: 16.0,
    freq_ghz: 1.53,
    onchip_mb: 6.0,
    cores: 5120,
};

/// Nvidia P100 (P3's accelerator, Table V): 9.3 TFLOPS, 732 GB/s.
pub const P100: DeviceSpec = DeviceSpec {
    name: "Nvidia P100",
    kind: DeviceKind::Gpu,
    peak_tflops: 9.3,
    mem_bandwidth_gbs: 732.0,
    mem_capacity_gb: 16.0,
    freq_ghz: 1.33,
    onchip_mb: 4.0,
    cores: 3584,
};

/// Nvidia T4 (DistDGLv2's accelerator, Table V): 8.1 TFLOPS, 320 GB/s.
pub const T4: DeviceSpec = DeviceSpec {
    name: "Nvidia T4",
    kind: DeviceKind::Gpu,
    peak_tflops: 8.1,
    mem_bandwidth_gbs: 320.0,
    mem_capacity_gb: 16.0,
    freq_ghz: 1.59,
    onchip_mb: 4.0,
    cores: 2560,
};

/// Intel Xeon Platinum 8163 (PaGraph's host, Table V).
pub const XEON_8163: DeviceSpec = DeviceSpec {
    name: "Intel Xeon Platinum 8163",
    kind: DeviceKind::Cpu,
    peak_tflops: 1.9,
    mem_bandwidth_gbs: 119.0,
    mem_capacity_gb: 512.0,
    freq_ghz: 2.5,
    onchip_mb: 33.0,
    cores: 24,
};

/// Intel Xeon E5-2690 (P3's host, Table V).
pub const XEON_E5_2690: DeviceSpec = DeviceSpec {
    name: "Intel Xeon E5-2690",
    kind: DeviceKind::Cpu,
    peak_tflops: 0.7,
    mem_bandwidth_gbs: 76.8,
    mem_capacity_gb: 256.0,
    freq_ghz: 2.6,
    onchip_mb: 35.0,
    cores: 14,
};

/// Paper Table II as printable rows (used by the `tab02_platforms`
/// harness binary).
pub fn table_ii() -> [DeviceSpec; 3] {
    [EPYC_7763, RTX_A5000, ALVEO_U250]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        assert_eq!(EPYC_7763.peak_tflops, 3.6);
        assert_eq!(EPYC_7763.mem_bandwidth_gbs, 205.0);
        assert_eq!(EPYC_7763.onchip_mb, 256.0);
        assert_eq!(RTX_A5000.peak_tflops, 27.8);
        assert_eq!(RTX_A5000.mem_bandwidth_gbs, 768.0);
        assert_eq!(ALVEO_U250.peak_tflops, 0.6);
        assert_eq!(ALVEO_U250.mem_bandwidth_gbs, 77.0);
        assert_eq!(ALVEO_U250.freq_ghz, 0.3);
    }

    #[test]
    fn hybrid_speedup_motivation() {
        // Paper §I: dual 7763 (7.2 TF) + A5000 (27.8 TF) => potential
        // (7.2+27.8)/27.8 = 1.26x over GPU-only.
        let cpu2 = 2.0 * EPYC_7763.peak_tflops;
        let ratio = (cpu2 + RTX_A5000.peak_tflops) / RTX_A5000.peak_tflops;
        assert!((ratio - 1.259).abs() < 0.01);
    }

    #[test]
    fn macs_rate() {
        assert!((ALVEO_U250.macs_per_sec() - 0.3e12).abs() < 1e9);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents spec invariants
    fn gpu_beats_fpga_on_paper_compute() {
        // sanity: speedups must come from the system design, not specs
        assert!(RTX_A5000.peak_tflops > 40.0 * ALVEO_U250.peak_tflops);
    }
}
