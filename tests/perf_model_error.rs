//! §VI-C fidelity: the design-time performance model's prediction must
//! stay within a sane error band of the runtime simulation (the paper
//! reports 5–14 % average error on the FPGA platform), and the model's
//! qualitative predictions (Fig. 9 trends) must hold.

use hyscale::core::{AcceleratorKind, HybridTrainer, PerfModel, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::{DatasetSpec, MAG240M_HOMO, OGBN_PAPERS100M, OGBN_PRODUCTS};
use hyscale::graph::features::Splits;

#[test]
fn prediction_error_within_band_on_functional_run() {
    // scaled functional run vs prediction targeted at the same stand-in
    let mut dataset = MAG240M_HOMO.materialize(8000, 42);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 7);
    let spec_scaled = DatasetSpec {
        num_vertices: dataset.graph.num_vertices() as u64,
        num_edges: dataset.graph.num_edges(),
        ..MAG240M_HOMO
    };
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    cfg.train.batch_per_trainer = 256;
    cfg.train.max_functional_iters = Some(3);
    let pm = PerfModel::new(&cfg);
    let predicted = pm.predict_epoch_time(&spec_scaled);
    let mut trainer = HybridTrainer::new(cfg, dataset);
    let actual = trainer.train_epoch().epoch_time_s;
    let err = (predicted - actual).abs() / actual;
    assert!(
        err < 0.35,
        "perf-model error {:.1}% (predicted {predicted:.3}s, actual {actual:.3}s)",
        err * 100.0
    );
}

#[test]
fn scalability_trends_match_fig9() {
    let counts = [1usize, 2, 4, 8, 16];
    let gcn = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&gcn);
    // products+GCN scales worst (PCIe-transfer bound, paper §VI-D)
    let s_products = pm.scalability(&OGBN_PRODUCTS, &counts);
    let s_papers = pm.scalability(&OGBN_PAPERS100M, &counts);
    let s_mag = pm.scalability(&MAG240M_HOMO, &counts);
    for s in [&s_products, &s_papers, &s_mag] {
        assert!((s[0].1 - 1.0).abs() < 1e-9);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.98, "speedup must not regress: {s:?}");
        }
        // saturation: 16 accelerators never reach linear speedup
        assert!(s[4].1 < 16.0);
    }
    let best16 = s_papers[4].1.max(s_mag[4].1);
    assert!(
        s_products[4].1 <= best16 * 1.15,
        "products+GCN should scale no better than the large graphs: {:.2} vs {:.2}",
        s_products[4].1,
        best16
    );
}

/// Per-lane transfer model: with ≥ 2 accelerators in a transfer-bound
/// regime, concurrent per-accelerator transfer lanes must predict a
/// *strictly* smaller epoch wall than the serialized single-transfer-
/// thread model (which pays the sum of the lane times per iteration);
/// with 1 accelerator the two models must agree exactly.
#[test]
fn concurrent_lanes_beat_serialized_transfer_when_transfer_bound() {
    use hyscale::core::pipeline::{
        simulate_pipeline_multilane, simulate_pipeline_ringed, PipelineStageCosts,
    };

    // products + GCN is the paper's PCIe-bound regime (§VI-D); the
    // model's own per-lane wire times drive the comparison
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&cfg);
    let (split, threads) = pm.initial_mapping(&OGBN_PRODUCTS);
    let times = pm.stage_times(&OGBN_PRODUCTS, &split, &threads);
    let lane_times = pm.lane_transfer_times(&OGBN_PRODUCTS, &split);
    assert!(lane_times.len() >= 2, "paper node has 4 accelerators");

    let costs = PipelineStageCosts {
        sample: times.sampling(),
        load: times.load,
        transfer: 0.0, // replaced by the lane times below
        propagate: times.propagation(),
    };
    // transfer-bound for the serialized thread: the summed wire time
    // exceeds every other stage
    let summed: f64 = lane_times.iter().sum();
    assert!(
        summed > costs.sample && summed > costs.load && summed > costs.propagate,
        "fixture is not transfer-bound: sum {summed} vs {costs:?}"
    );

    let n = 40;
    for (depth, ring) in [(2usize, 2usize), (3, 2), (2, 1)] {
        let serialized =
            simulate_pipeline_multilane(&costs, &lane_times, n, depth, ring, 1).makespan;
        let concurrent =
            simulate_pipeline_multilane(&costs, &lane_times, n, depth, ring, lane_times.len())
                .makespan;
        assert!(
            concurrent < serialized - 1e-9,
            "depth {depth} ring {ring}: concurrent lanes must strictly beat the \
             serialized transfer thread when ≥2 lanes are transfer-bound: \
             {concurrent} vs {serialized}"
        );
    }

    // 1 accelerator: lane concurrency is vacuous — the multilane model
    // must agree with the serialized (ringed) model exactly, at any cap
    let mut cfg1 = cfg.clone();
    cfg1.platform.num_accelerators = 1;
    let pm1 = PerfModel::new(&cfg1);
    let (split1, threads1) = pm1.initial_mapping(&OGBN_PRODUCTS);
    let times1 = pm1.stage_times(&OGBN_PRODUCTS, &split1, &threads1);
    let lanes1 = pm1.lane_transfer_times(&OGBN_PRODUCTS, &split1);
    assert_eq!(lanes1.len(), 1);
    let costs1 = PipelineStageCosts {
        sample: times1.sampling(),
        load: times1.load,
        transfer: lanes1[0],
        propagate: times1.propagation(),
    };
    let reference = simulate_pipeline_ringed(&costs1, n, 2, 2);
    for cap in [1usize, 4] {
        let lane_run = simulate_pipeline_multilane(&costs1, &lanes1, n, 2, 2, cap);
        assert_eq!(
            reference.completions, lane_run.completions,
            "single-accelerator models must agree exactly (cap {cap})"
        );
    }
}

#[test]
fn throughput_metric_is_consistent() {
    // Eq. 5: MTEPS must equal edges/iteration / iteration-time
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
    let pm = PerfModel::new(&cfg);
    let mteps = pm.throughput_mteps(&OGBN_PAPERS100M);
    assert!(mteps > 1.0, "implausible throughput {mteps}");
    // more accelerators => more throughput
    let mut cfg8 = cfg.clone();
    cfg8.platform.num_accelerators = 8;
    let pm8 = PerfModel::new(&cfg8);
    assert!(pm8.throughput_mteps(&OGBN_PAPERS100M) > mteps);
}

#[test]
fn hidden_dim_raises_sync_and_model_cost() {
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&cfg);
    let small = pm.model_bytes(&OGBN_PRODUCTS);
    cfg.train.hidden_dim = 512;
    let pm_big = PerfModel::new(&cfg);
    assert!(pm_big.model_bytes(&OGBN_PRODUCTS) > small);
}
