//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the benchmark-harness surface the workspace's benches
//! use: `Criterion`, `benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery it runs a short
//! warm-up, then a fixed number of timed samples, and prints
//! median/mean per-iteration timings (plus derived throughput) in a
//! criterion-like one-line format. Good enough to track relative perf
//! from run to run; not a replacement for criterion's rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `f`, repeatedly: a warm-up call, then `target_samples` timed
    /// calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        self.report(&id.id, &b.samples);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.id, &b.samples);
        self
    }

    /// Finish the group (reports are printed as benchmarks run).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id:<40} no samples", self.name);
            return;
        }
        let mut sorted: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let thrpt = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.3} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.3} Melem/s", n as f64 / median / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<40} median {}  mean {}{thrpt}",
            self.name,
            fmt_time(median),
            fmt_time(mean)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>9.4} s ")
    } else if secs >= 1e-3 {
        format!("{:>9.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>9.4} µs", secs * 1e6)
    } else {
        format!("{:>9.4} ns", secs * 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Define a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from benchmark group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("gather", 128);
        assert_eq!(id.id, "gather/128");
    }
}
