//! Regenerates paper Table VII: *normalized* epoch time
//! (seconds × platform peak TFLOPS) — the efficiency comparison that
//! removes the hardware-scale advantage of the multi-node systems.

use hyscale_baselines::{BaselineSystem, DistDglV2, PaGraph, SotaConfig, P3};
use hyscale_bench::{geo_mean, simulate_epoch, Table, DRM_SETTLE_ITERS};
use hyscale_core::config::AcceleratorKind;
use hyscale_core::SystemConfig;
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::{DatasetSpec, OGBN_PAPERS100M, OGBN_PRODUCTS};

/// This Work's platform peak: 2× EPYC 7763 + 4× U250.
const THIS_WORK_TFLOPS: f64 = 2.0 * 3.6 + 4.0 * 0.6;

const DATASETS: [DatasetSpec; 2] = [OGBN_PRODUCTS, OGBN_PAPERS100M];
const MODELS: [GnnKind; 2] = [GnnKind::Gcn, GnnKind::GraphSage];

fn this_work_norm(ds: &DatasetSpec, model: GnnKind, sota: &SotaConfig) -> f64 {
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
    cfg.train.fanouts = sota.fanouts.clone();
    cfg.train.hidden_dim = sota.hidden_dim;
    cfg.train.batch_per_trainer = sota.batch_per_trainer;
    simulate_epoch(&cfg, ds, DRM_SETTLE_ITERS).epoch_time_s * THIS_WORK_TFLOPS
}

fn push_block(t: &mut Table, name: &str, sota: &SotaConfig, system: &dyn BaselineSystem) {
    let theirs: Vec<f64> = DATASETS
        .iter()
        .flat_map(|ds| MODELS.map(|m| system.normalized_epoch(ds, m, sota)))
        .collect();
    let ours: Vec<f64> = DATASETS
        .iter()
        .flat_map(|ds| MODELS.map(|m| this_work_norm(ds, m, sota)))
        .collect();
    let speedups: Vec<f64> = theirs.iter().zip(&ours).map(|(a, b)| a / b).collect();
    t.row(vec![
        name.into(),
        format!("{:.1}", theirs[0]),
        format!("{:.1}", theirs[1]),
        format!("{:.1}", theirs[2]),
        format!("{:.1}", theirs[3]),
        "1x".into(),
    ]);
    t.row(vec![
        "This Work".into(),
        format!("{:.1}", ours[0]),
        format!("{:.1}", ours[1]),
        format!("{:.1}", ours[2]),
        format!("{:.1}", ours[3]),
        format!("{:.0}x", geo_mean(&speedups)),
    ]);
}

fn main() {
    println!("Table VII: normalized epoch time (s x TFLOPS) vs state-of-the-art\n");
    let mut t = Table::new(&[
        "System",
        "products GCN",
        "products SAGE",
        "papers GCN",
        "papers SAGE",
        "geo-mean speedup",
    ]);

    push_block(
        &mut t,
        "PaGraph",
        &SotaConfig::pagraph(),
        &PaGraph::paper_setup(),
    );
    push_block(&mut t, "P3", &SotaConfig::p3(), &P3::paper_setup());

    // DistDGLv2 (SAGE only, as in the paper)
    let dd = DistDglV2::paper_setup();
    let sota = SotaConfig::distdgl();
    let theirs: Vec<f64> = DATASETS
        .iter()
        .map(|ds| dd.normalized_epoch(ds, GnnKind::GraphSage, &sota))
        .collect();
    let ours: Vec<f64> = DATASETS
        .iter()
        .map(|ds| this_work_norm(ds, GnnKind::GraphSage, &sota))
        .collect();
    let speedups: Vec<f64> = theirs.iter().zip(&ours).map(|(a, b)| a / b).collect();
    t.row(vec![
        "DistDGLv2".into(),
        "-".into(),
        format!("{:.1}", theirs[0]),
        "-".into(),
        format!("{:.1}", theirs[1]),
        "1x".into(),
    ]);
    t.row(vec![
        "This Work".into(),
        "-".into(),
        format!("{:.1}", ours[0]),
        "-".into(),
        format!("{:.1}", ours[1]),
        format!("{:.0}x", geo_mean(&speedups)),
    ]);

    t.print();
    println!("\npaper: 21x vs PaGraph, 71x vs P3, 25x vs DistDGLv2 (geo-mean, normalized)");
}
