//! Finite-difference gradient checking.
//!
//! The backward passes in [`crate::model`] are hand-derived; this module
//! verifies them numerically on small instances. Exposed as a library
//! function (not just a test helper) so downstream crates can gate
//! device-trainer implementations on the same check.

use crate::model::{GnnKind, GnnModel};
use hyscale_sampler::MiniBatch;
use hyscale_tensor::{softmax_cross_entropy, Matrix};

/// Result of a gradient check: worst relative error observed.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// max |analytic − numeric| / max(1, |analytic|, |numeric|)
    pub max_rel_error: f32,
    /// Number of parameters probed.
    pub checked: usize,
}

/// Compare analytic gradients against central finite differences for a
/// subsample of parameters (every `stride`-th weight) of every layer.
///
/// Uses f32 arithmetic, so tolerances of ~1e-2 relative are expected for
/// deep compositions; the test suite asserts `< 2e-2`.
pub fn check_gradients(
    kind: GnnKind,
    dims: &[usize],
    mb: &MiniBatch,
    x: &Matrix,
    labels: &[u32],
    stride: usize,
    seed: u64,
) -> GradCheckReport {
    let model = GnnModel::new(kind, dims, seed);
    let analytic = model.train_step(mb, x, labels).grads;

    let mut max_rel = 0.0f32;
    let mut checked = 0usize;
    let eps = 2e-2f32;

    let base = model.flatten_params();
    let mut offset = 0usize;
    for (layer, shape) in model.weight_shapes().into_iter().enumerate() {
        let w_len = shape.0 * shape.1;
        let b_len = analytic.d_biases[layer].len();
        for idx in (0..w_len).step_by(stride.max(1)) {
            let an = analytic.d_weights[layer].as_slice()[idx];
            let num = numeric_grad(kind, dims, mb, x, labels, seed, &base, offset + idx, eps);
            let rel = (an - num).abs() / an.abs().max(num.abs()).max(1.0);
            if rel > max_rel {
                max_rel = rel;
            }
            checked += 1;
        }
        // probe a couple of biases too
        for bi in (0..b_len).step_by((b_len / 2).max(1)) {
            let an = analytic.d_biases[layer][bi];
            let num = numeric_grad(
                kind,
                dims,
                mb,
                x,
                labels,
                seed,
                &base,
                offset + w_len + bi,
                eps,
            );
            let rel = (an - num).abs() / an.abs().max(num.abs()).max(1.0);
            if rel > max_rel {
                max_rel = rel;
            }
            checked += 1;
        }
        offset += w_len + b_len;
    }
    GradCheckReport {
        max_rel_error: max_rel,
        checked,
    }
}

/// Loss of a model whose flattened parameters are `params` with one entry
/// perturbed; rebuilt from scratch each call (slow, test-only scale).
fn loss_with_params(
    kind: GnnKind,
    dims: &[usize],
    mb: &MiniBatch,
    x: &Matrix,
    labels: &[u32],
    seed: u64,
    params: &[f32],
) -> f32 {
    let mut model = GnnModel::new(kind, dims, seed);
    model.load_flat_params(params);
    let logits = model.forward(mb, x);
    softmax_cross_entropy(&logits, labels).loss
}

#[allow(clippy::too_many_arguments)]
fn numeric_grad(
    kind: GnnKind,
    dims: &[usize],
    mb: &MiniBatch,
    x: &Matrix,
    labels: &[u32],
    seed: u64,
    base: &[f32],
    idx: usize,
    eps: f32,
) -> f32 {
    let mut plus = base.to_vec();
    plus[idx] += eps;
    let mut minus = base.to_vec();
    minus[idx] -= eps;
    let lp = loss_with_params(kind, dims, mb, x, labels, seed, &plus);
    let lm = loss_with_params(kind, dims, mb, x, labels, seed, &minus);
    (lp - lm) / (2.0 * eps)
}

impl GnnModel {
    /// Load parameters from a flat buffer produced by
    /// [`GnnModel::flatten_params`]. Test/checkpoint utility.
    ///
    /// # Panics
    /// If the buffer length does not match the parameter count.
    pub fn load_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "flat parameter size mismatch"
        );
        let mut offset = 0usize;
        let shapes = self.weight_shapes();
        for (l, &(r, c)) in shapes.iter().enumerate() {
            let w_len = r * c;
            let w = Matrix::from_vec(r, c, flat[offset..offset + w_len].to_vec());
            offset += w_len;
            let b_len = c;
            let b = flat[offset..offset + b_len].to_vec();
            offset += b_len;
            self.set_layer_params(l, w, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::features::gather_features;
    use hyscale_graph::Dataset;
    use hyscale_sampler::NeighborSampler;

    fn gradcheck_case(kind: GnnKind) -> GradCheckReport {
        let ds = Dataset::toy(5);
        let sampler = NeighborSampler::new(vec![4, 3], 1);
        let seeds: Vec<u32> = ds.splits.train[..6].to_vec();
        let mb = sampler.sample(&ds.graph, &seeds, 0);
        let x = gather_features(&ds.data.features, &mb.input_nodes);
        let labels: Vec<u32> = seeds.iter().map(|&s| ds.data.labels[s as usize]).collect();
        check_gradients(kind, &[16, 8, 4], &mb, &x, &labels, 23, 3)
    }

    #[test]
    fn gcn_gradients_match_finite_difference() {
        let rep = gradcheck_case(GnnKind::Gcn);
        assert!(rep.checked > 10);
        assert!(
            rep.max_rel_error < 2e-2,
            "GCN gradcheck error {}",
            rep.max_rel_error
        );
    }

    #[test]
    fn sage_gradients_match_finite_difference() {
        let rep = gradcheck_case(GnnKind::GraphSage);
        assert!(rep.checked > 10);
        assert!(
            rep.max_rel_error < 2e-2,
            "SAGE gradcheck error {}",
            rep.max_rel_error
        );
    }

    #[test]
    fn gin_gradients_match_finite_difference() {
        let rep = gradcheck_case(GnnKind::Gin);
        assert!(rep.checked > 10);
        assert!(
            rep.max_rel_error < 2e-2,
            "GIN gradcheck error {}",
            rep.max_rel_error
        );
    }

    #[test]
    fn flat_param_roundtrip() {
        let mut m = GnnModel::new(GnnKind::Gcn, &[6, 5, 3], 2);
        let flat = m.flatten_params();
        m.load_flat_params(&flat);
        assert_eq!(m.flatten_params(), flat);
    }
}
