//! FPGA resource model reproducing paper Table IV.
//!
//! Table IV reports, for parallelism `(n, m) = (8, 2048)` on the U250:
//! LUTs 72 %, DSPs 90 %, URAM 48 %, BRAM 40 %. The model below is a
//! linear cost per PE/MAC plus a fixed platform-shell base, calibrated
//! once so that the Table IV point lands within a couple of percent; the
//! value of the model is exploring *other* `(n, m)` points (which
//! configurations fit) rather than absolute accuracy.

/// Physical resources of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaResources {
    /// Look-up tables.
    pub luts: u64,
    /// DSP slices.
    pub dsps: u64,
    /// UltraRAM blocks.
    pub urams: u64,
    /// Block-RAM (36 Kb) tiles.
    pub brams: u64,
}

/// Xilinx Alveo U250 totals.
pub const U250_RESOURCES: FpgaResources = FpgaResources {
    luts: 1_728_000,
    dsps: 12_288,
    urams: 1_280,
    brams: 2_688,
};

/// Utilization of a kernel configuration, as fractions of the device.
#[derive(Debug, Clone, Copy)]
pub struct ResourceUsage {
    /// LUT fraction used (0..=1+).
    pub lut: f64,
    /// DSP fraction used.
    pub dsp: f64,
    /// URAM fraction used.
    pub uram: f64,
    /// BRAM fraction used.
    pub bram: f64,
}

impl ResourceUsage {
    /// Estimate utilization for an `(n, m)` kernel on `device`.
    ///
    /// Cost model (calibrated to Table IV):
    /// * LUTs: shell 100 K + 30 K per S-PE/G-PE pair (routing network,
    ///   accumulators) + 450 per MAC (datapath glue).
    /// * DSPs: 5.4 per MAC (fp32 multiply-add) + 16 per PE pair.
    /// * URAM: 64 per PE pair (feature duplicator + result buffers) + 100
    ///   for the weight buffer.
    /// * BRAM: m/4 (systolic skew FIFOs) + 16 per PE + 437 shell.
    pub fn estimate(n_pes: usize, m_macs: usize, device: &FpgaResources) -> Self {
        let n = n_pes as f64;
        let m = m_macs as f64;
        let lut_used = 100_000.0 + n * 30_000.0 + m * 450.0;
        let dsp_used = m * 5.4 + n * 16.0;
        let uram_used = n * 64.0 + 100.0;
        let bram_used = m / 4.0 + n * 16.0 + 437.0;
        Self {
            lut: lut_used / device.luts as f64,
            dsp: dsp_used / device.dsps as f64,
            uram: uram_used / device.urams as f64,
            bram: bram_used / device.brams as f64,
        }
    }

    /// Whether the configuration fits on the device.
    pub fn fits(&self) -> bool {
        self.lut <= 1.0 && self.dsp <= 1.0 && self.uram <= 1.0 && self.bram <= 1.0
    }

    /// Largest (n, m) with `m = 256·k` that fits the device, scanning n
    /// in powers of two — a miniature design-space explorer.
    pub fn max_config(device: &FpgaResources) -> (usize, usize) {
        let mut best = (1, 256);
        for np in [1usize, 2, 4, 8, 16, 32] {
            for k in 1..=32 {
                let m = 256 * k;
                let u = Self::estimate(np, m, device);
                if u.fits() && np * m > best.0 * best.1 {
                    best = (np, m);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_point() {
        let u = ResourceUsage::estimate(8, 2048, &U250_RESOURCES);
        // Table IV: 72% LUT, 90% DSP, 48% URAM, 40% BRAM (±4 pts)
        assert!((u.lut - 0.72).abs() < 0.04, "LUT {:.3}", u.lut);
        assert!((u.dsp - 0.90).abs() < 0.04, "DSP {:.3}", u.dsp);
        assert!((u.uram - 0.48).abs() < 0.04, "URAM {:.3}", u.uram);
        assert!((u.bram - 0.40).abs() < 0.04, "BRAM {:.3}", u.bram);
        assert!(u.fits());
    }

    #[test]
    fn monotone_in_parallelism() {
        let a = ResourceUsage::estimate(4, 1024, &U250_RESOURCES);
        let b = ResourceUsage::estimate(8, 2048, &U250_RESOURCES);
        assert!(a.lut < b.lut && a.dsp < b.dsp && a.uram < b.uram && a.bram < b.bram);
    }

    #[test]
    fn oversized_config_rejected() {
        let u = ResourceUsage::estimate(32, 8192, &U250_RESOURCES);
        assert!(!u.fits());
    }

    #[test]
    fn explorer_finds_table_iv_scale_design() {
        let (n, m) = ResourceUsage::max_config(&U250_RESOURCES);
        // the paper's (8, 2048) should be near the frontier
        assert!(n * m >= 8 * 2048, "explorer found only ({n}, {m})");
    }
}
