//! Feature quantization for communication relief.
//!
//! The paper's §VIII names data quantization as the planned remedy for
//! PCIe-bound configurations ("we plan to exploit techniques like data
//! quantization to relieve the stress on the PCIe bandwidth"). This
//! module implements that extension: half-precision (IEEE 754 binary16)
//! and affine int8 row quantization of feature matrices. The functional
//! path really quantizes and dequantizes (so accuracy effects are
//! measurable), and the timing layer scales transfer bytes accordingly.

use crate::matrix::Matrix;

/// Transfer precision for mini-batch feature matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full 4-byte floats (the paper's evaluated system).
    #[default]
    F32,
    /// IEEE 754 half precision: 2 bytes/element, ~1e-3 relative error.
    F16,
    /// Affine per-row int8: 1 byte/element (+ per-row scale/zero-point).
    Int8,
}

impl Precision {
    /// Bytes per element on the wire.
    pub fn bytes_per_element(self) -> f64 {
        match self {
            Precision::F32 => 4.0,
            Precision::F16 => 2.0,
            Precision::Int8 => 1.0,
        }
    }

    /// Wire size of an `n`-element payload (per-row metadata included
    /// for int8: one f32 scale + one f32 offset per row).
    pub fn wire_bytes(self, rows: usize, cols: usize) -> u64 {
        let payload = (rows * cols) as f64 * self.bytes_per_element();
        let metadata = match self {
            Precision::Int8 => rows as u64 * 8,
            _ => 0,
        };
        payload as u64 + metadata
    }

    /// Simulate a transfer round-trip: quantize + dequantize `x` at this
    /// precision (identity for F32).
    pub fn round_trip(self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.round_trip_in_place(&mut out);
        out
    }

    /// In-place transfer round-trip: quantize + dequantize `x` at this
    /// precision without allocating (identity for F32). Bitwise
    /// equivalent to [`Precision::round_trip`] — the prefetching
    /// executor's buffer-pooled hot path relies on that.
    pub fn round_trip_in_place(self, x: &mut Matrix) {
        match self {
            Precision::F32 => {}
            Precision::F16 => {
                for v in x.as_mut_slice() {
                    *v = f16_to_f32(f32_to_f16(*v));
                }
            }
            Precision::Int8 => {
                for r in 0..x.rows() {
                    let row = x.row_mut(r);
                    let (scale, offset) = int8_row_params(row);
                    for v in row.iter_mut() {
                        *v = int8_round_trip_value(*v, scale, offset);
                    }
                }
            }
        }
    }
}

/// Per-row affine int8 parameters `(scale, offset)` with the degenerate
/// range fixed up. Single source of truth shared by
/// [`QuantizedMatrix::quantize_int8`] and
/// [`Precision::round_trip_in_place`] — the prefetch determinism
/// contract requires the two paths to stay bitwise-identical.
fn int8_row_params(row: &[f32]) -> (f32, f32) {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in row {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() || lo == hi {
        lo = if lo.is_finite() { lo } else { 0.0 };
        hi = lo + 1.0;
    }
    let scale = (hi - lo) / 254.0;
    let offset = lo + 127.0 * scale;
    (scale, offset)
}

/// Quantize one value to int8 under `(scale, offset)`.
#[inline]
fn int8_quantize_value(v: f32, scale: f32, offset: f32) -> i8 {
    ((v - offset) / scale).round().clamp(-127.0, 127.0) as i8
}

/// Quantize-then-dequantize one value under `(scale, offset)`.
#[inline]
fn int8_round_trip_value(v: f32, scale: f32, offset: f32) -> f32 {
    f32::from(int8_quantize_value(v, scale, offset)) * scale + offset
}

/// Convert f32 to IEEE 754 binary16 bits (round-to-nearest-even).
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // inf / NaN
        let nan = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow to inf
    }
    if unbiased >= -14 {
        // normal
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_mant = (mant >> 13) as u16;
        // round to nearest even on the truncated bits
        let round_bits = mant & 0x1fff;
        let mut out = sign | half_exp | half_mant;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (half_mant & 1) == 1) {
            out += 1;
        }
        return out;
    }
    if unbiased >= -24 {
        // subnormal half: q = full_mant × 2^(unbiased+1), i.e. a right
        // shift of -(unbiased+1) ∈ [14, 23]
        let shift = (-unbiased - 1) as u32;
        let full_mant = mant | 0x0080_0000;
        let half_mant = (full_mant >> shift) as u16;
        let round = 1u32 << (shift - 1);
        let sticky = full_mant & (round - 1);
        let mut out_m = half_mant;
        if (full_mant & round) != 0 && (sticky != 0 || (half_mant & 1) == 1) {
            out_m += 1;
        }
        return sign | out_m;
    }
    sign // underflow to zero
}

/// Convert IEEE 754 binary16 bits to f32.
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits >> 15) << 31;
    let exp = (bits >> 10) & 0x1f;
    let mant = u32::from(bits & 0x3ff);
    let out = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // subnormal: value = mant × 2⁻²⁴; renormalize around the MSB
            let k = 31 - mant.leading_zeros();
            let exp32 = k + 103; // (k - 24) + 127
            let mant32 = (mant << (23 - k)) & 0x007f_ffff;
            sign | (exp32 << 23) | mant32
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        // add the f32 bias before removing the f16 bias so the
        // intermediate never underflows (exp >= 1)
        let exp32 = u32::from(exp) + 127 - 15;
        sign | (exp32 << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// An int8-quantized matrix with per-row affine parameters.
pub struct QuantizedMatrix {
    data: Vec<i8>,
    scales: Vec<f32>,
    offsets: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl QuantizedMatrix {
    /// Per-row affine quantization: `q = round((x - offset) / scale)`.
    pub fn quantize_int8(x: &Matrix) -> Self {
        let (rows, cols) = x.shape();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        let mut offsets = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = x.row(r);
            let (scale, offset) = int8_row_params(row);
            scales.push(scale);
            offsets.push(offset);
            for &v in row {
                data.push(int8_quantize_value(v, scale, offset));
            }
        }
        Self {
            data,
            scales,
            offsets,
            rows,
            cols,
        }
    }

    /// Reconstruct the f32 matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let scale = self.scales[r];
            let offset = self.offsets[r];
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &q) in out.row_mut(r).iter_mut().zip(src) {
                *o = f32::from(q) * scale + offset;
            }
        }
        out
    }

    /// Wire size in bytes (payload + per-row scale/offset).
    pub fn nbytes(&self) -> usize {
        self.data.len() + self.rows * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn;

    #[test]
    fn f16_roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -0.25] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "exact half value {v}");
        }
    }

    #[test]
    fn f16_roundtrip_relative_error() {
        let x = randn(50, 20, 3);
        let rt = Precision::F16.round_trip(&x);
        for (a, b) in x.as_slice().iter().zip(rt.as_slice()) {
            let rel = (a - b).abs() / a.abs().max(1e-3);
            assert!(rel < 2e-3, "f16 error too large: {a} vs {b}");
        }
    }

    #[test]
    fn f16_specials() {
        assert!(f16_to_f32(f32_to_f16(f32::INFINITY)).is_infinite());
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(
            f16_to_f32(f32_to_f16(1e9)),
            f32::INFINITY,
            "overflow saturates"
        );
        assert_eq!(f16_to_f32(f32_to_f16(1e-20)), 0.0, "underflow flushes");
        // subnormal half survives
        let sub = 3.0e-6f32;
        let rt = f16_to_f32(f32_to_f16(sub));
        assert!((rt - sub).abs() / sub < 0.1, "subnormal {sub} -> {rt}");
    }

    #[test]
    fn int8_roundtrip_error_bounded() {
        let x = randn(30, 64, 5);
        let rt = Precision::Int8.round_trip(&x);
        for r in 0..30 {
            let row = x.row(r);
            let (lo, hi) = row
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                    (l.min(v), h.max(v))
                });
            let step = (hi - lo) / 254.0;
            for (a, b) in row.iter().zip(rt.row(r)) {
                assert!(
                    (a - b).abs() <= step * 0.75 + 1e-6,
                    "int8 error beyond half step: {a} vs {b} (step {step})"
                );
            }
        }
    }

    #[test]
    fn int8_constant_row() {
        let x = Matrix::full(2, 4, 3.5);
        let rt = Precision::Int8.round_trip(&x);
        for v in rt.as_slice() {
            assert!((v - 3.5).abs() < 0.01);
        }
    }

    #[test]
    fn wire_bytes_ratios() {
        assert_eq!(Precision::F32.wire_bytes(10, 100), 4000);
        assert_eq!(Precision::F16.wire_bytes(10, 100), 2000);
        assert_eq!(Precision::Int8.wire_bytes(10, 100), 1000 + 80);
    }

    #[test]
    fn quantized_nbytes() {
        let x = randn(8, 16, 1);
        let q = QuantizedMatrix::quantize_int8(&x);
        assert_eq!(q.nbytes(), 8 * 16 + 8 * 8);
    }

    #[test]
    fn f32_round_trip_is_identity() {
        let x = randn(5, 5, 9);
        assert_eq!(Precision::F32.round_trip(&x).as_slice(), x.as_slice());
    }

    #[test]
    fn in_place_round_trip_bitwise_matches_allocating() {
        let x = randn(17, 23, 11);
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            let allocated = match p {
                // exercise the historical allocating paths explicitly
                Precision::Int8 => QuantizedMatrix::quantize_int8(&x).dequantize(),
                _ => p.round_trip(&x),
            };
            let mut in_place = x.clone();
            p.round_trip_in_place(&mut in_place);
            assert_eq!(
                allocated.as_slice(),
                in_place.as_slice(),
                "{p:?} in-place round trip diverged"
            );
        }
    }
}
