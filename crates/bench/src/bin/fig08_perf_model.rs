//! Regenerates paper Fig. 8: predicted vs. actual epoch time on
//! MAG240M (homo) for GCN and GraphSAGE under a varying number of FPGAs.
//!
//! "Predicted" is the pure Eq. 5–13 performance model: analytic expected
//! workloads, no launch or pipeline-flush overheads. "Actual" runs the
//! functional executor on a materialized (scaled) MAG240M stand-in:
//! stage times are driven by the *measured* workloads of really-sampled
//! mini-batches, plus kernel-launch and flush overheads — the paper's
//! §VI-C error sources. The paper reports 5–14 % average error.

use hyscale_bench::Table;
use hyscale_core::config::AcceleratorKind;
use hyscale_core::{HybridTrainer, PerfModel, SystemConfig};
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::MAG240M_HOMO;
use hyscale_graph::features::Splits;

fn main() {
    println!("Fig. 8: predicted vs actual epoch time, MAG240M (homo), 1-4 FPGAs\n");
    // Functional stand-in: 1/4000-scale MAG240M with a widened train
    // split so full-size mini-batches can be drawn.
    let mut dataset = MAG240M_HOMO.materialize(4000, 42);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 7);
    // Predict the *same* system the executor measures: the stand-in
    // graph's statistics with the full-scale iteration count (the paper
    // predicts and measures one system, not two).
    let spec_scaled = hyscale_graph::DatasetSpec {
        num_vertices: dataset.graph.num_vertices() as u64,
        num_edges: dataset.graph.num_edges(),
        ..MAG240M_HOMO
    };

    for model in [GnnKind::Gcn, GnnKind::GraphSage] {
        println!("{}:", model.name());
        let mut t = Table::new(&["FPGAs", "predicted (s)", "actual (s)", "error"]);
        let mut errs = Vec::new();
        for n in 1..=4usize {
            let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
            cfg.platform.num_accelerators = n;
            cfg.train.batch_per_trainer = 512;
            // enough iterations for the runtime DRM to settle from the
            // coarse design-time mapping (the paper measures steady runs)
            cfg.train.max_functional_iters = Some(12);
            let pm = PerfModel::new(&cfg);
            let predicted = pm.predict_epoch_time(&spec_scaled);
            let mut trainer = HybridTrainer::new(cfg, dataset.clone());
            let actual = trainer.train_epoch().epoch_time_s;
            let err = (predicted - actual).abs() / actual;
            errs.push(err);
            t.row(vec![
                n.to_string(),
                format!("{predicted:.3}"),
                format!("{actual:.3}"),
                format!("{:.1}%", err * 100.0),
            ]);
        }
        t.print();
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        println!("average error: {:.1}%  (paper: 5-14%)\n", avg * 100.0);
    }
    println!("error sources (paper §VI-C): accelerator kernel-launch latency and pipeline");
    println!("flush are unmodelled; here additionally the analytic workload estimate vs");
    println!("the measured sampled-batch workloads.");
}
