//! End-to-end functional hybrid-training iteration (sampling → loading →
//! protocol-coordinated propagation → weighted all-reduce → update), and
//! the design-time mapping cost itself.

use criterion::{criterion_group, criterion_main, Criterion};
use hyscale_core::config::{AcceleratorKind, OptFlags, PlatformConfig, SystemConfig, TrainConfig};
use hyscale_core::{HybridTrainer, PerfModel};
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::OGBN_PAPERS100M;
use hyscale_graph::Dataset;
use std::hint::black_box;

fn config() -> SystemConfig {
    SystemConfig {
        platform: PlatformConfig::paper_node(AcceleratorKind::u250(), 2),
        opt: OptFlags::full(),
        train: TrainConfig {
            model: GnnKind::GraphSage,
            batch_per_trainer: 64,
            fanouts: vec![10, 5],
            hidden_dim: 32,
            learning_rate: 0.1,
            optimizer: hyscale_core::config::OptimizerKind::Sgd,
            seed: 3,
            max_functional_iters: Some(1),
            transfer_precision: hyscale_tensor::Precision::F32,
            prefetch_depth: 0,
            staging_ring_depth: 2,
            transfer_lanes: 0,
        },
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    let ds = Dataset::toy(1);
    g.bench_function("functional_iteration", |b| {
        let mut trainer = HybridTrainer::new(config(), ds.clone());
        b.iter(|| black_box(trainer.train_epoch()))
    });
    g.bench_function("perf_model_initial_mapping", |b| {
        let pm = PerfModel::new(&config());
        b.iter(|| black_box(pm.initial_mapping(&OGBN_PAPERS100M)))
    });
    g.finish();
}

/// Serial (`prefetch_depth = 0`) vs. really-prefetched epochs: same
/// batches, same weights, different wall-clock — the Task-level Feature
/// Prefetching win measured end to end rather than simulated.
fn bench_prefetch_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetch_epoch");
    g.sample_size(10);
    let ds = Dataset::toy(2);
    let mut cfg = config();
    cfg.train.max_functional_iters = Some(4);
    for depth in [0usize, 1, 2, 4] {
        let mut cfg = cfg.clone();
        cfg.train.prefetch_depth = depth;
        let id = format!("depth_{depth}");
        g.bench_function(id.as_str(), |b| {
            let mut trainer = HybridTrainer::new(cfg.clone(), ds.clone());
            b.iter(|| black_box(trainer.train_epoch()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_prefetch_overlap);
criterion_main!(benches);
