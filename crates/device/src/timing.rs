//! Per-trainer propagation-time models (paper §V, Eq. 9–12).
//!
//! One training iteration's propagation on a device is
//!
//! ```text
//! T_trainer = t_fwd + t_bwd
//!           = Σ_{l=1..L} ⊕(t_agg^l, t_upd^l)          (forward, Eq. 10)
//!           + t_upd^1 + Σ_{l=2..L} ⊕(t_agg^l, t_upd^l) (backward)
//! t_agg^l = |E^{l-1}| · f^l · S_feat / BW_mem           (Eq. 11)
//! t_upd^l = |V^l| · f^l · f^{l+1} / (N · freq)          (Eq. 12)
//! ```
//!
//! with `⊕ = max` when aggregation and update are pipelined (the FPGA
//! kernel) and `⊕ = Σ` otherwise (CPU, GPU).

use crate::calib;
use crate::spec::{DeviceSpec, ALVEO_U250, EPYC_7763, RTX_A5000};
use hyscale_sampler::WorkloadStats;

/// Per-layer workload slice extracted from [`WorkloadStats`] + model dims.
#[derive(Debug, Clone, Copy)]
pub struct LayerWork {
    /// `|E^l|` — edges aggregated by this layer.
    pub edges: usize,
    /// `|V^l|` — destination vertices updated by this layer.
    pub dst_nodes: usize,
    /// `|V^{l-1}|` — distinct source vertices (FPGA reuse bound).
    pub src_nodes: usize,
    /// Input feature width.
    pub f_in: usize,
    /// Output feature width.
    pub f_out: usize,
}

/// Slice `stats` + `dims` into per-layer work items. `width_factor` is 2
/// for GraphSAGE (concatenated update input), 1 for GCN.
///
/// # Panics
/// If `dims.len() != layers + 1`.
pub fn layer_work(stats: &WorkloadStats, dims: &[usize], width_factor: usize) -> Vec<LayerWork> {
    let layers = stats.nodes_per_layer.len();
    assert_eq!(dims.len(), layers + 1, "dims must have layers+1 entries");
    (0..layers)
        .map(|l| LayerWork {
            edges: stats.edges_per_layer[l],
            dst_nodes: stats.nodes_per_layer[l],
            src_nodes: if l == 0 {
                stats.input_nodes
            } else {
                stats.nodes_per_layer[l - 1]
            },
            f_in: dims[l] * width_factor,
            f_out: dims[l + 1],
        })
        .collect()
}

/// A device-specific propagation-time model.
pub trait TrainerTiming: Send + Sync {
    /// The underlying device.
    fn spec(&self) -> &DeviceSpec;

    /// Aggregation time of one layer (Eq. 11).
    fn aggregate_time(&self, work: &LayerWork) -> f64;

    /// Update time of one layer (Eq. 12).
    fn update_time(&self, work: &LayerWork) -> f64;

    /// Whether aggregation and update overlap (⊕ = max).
    fn pipelined(&self) -> bool;

    /// Fixed per-iteration overhead *not* in the paper's performance
    /// model (kernel launch; §VI-C names it as a prediction-error source).
    fn launch_overhead(&self) -> f64 {
        0.0
    }

    /// Full forward+backward propagation time for one mini-batch
    /// (Eq. 10), excluding `launch_overhead`.
    fn propagation_time(&self, stats: &WorkloadStats, dims: &[usize], width_factor: usize) -> f64 {
        let work = layer_work(stats, dims, width_factor);
        let combine = |a: f64, u: f64| if self.pipelined() { a.max(u) } else { a + u };
        let forward: f64 = work
            .iter()
            .map(|w| combine(self.aggregate_time(w), self.update_time(w)))
            .sum();
        // backward (Eq. 10): update of layer 1, then agg⊕update for 2..L
        let backward: f64 = self.update_time(&work[0])
            + work[1..]
                .iter()
                .map(|w| combine(self.aggregate_time(w), self.update_time(w)))
                .sum::<f64>();
        forward + backward
    }

    /// On-device neighbour-sampling rate in edges/second; `None` when the
    /// device cannot sample (pure-offload accelerators).
    fn sampling_eps(&self) -> Option<f64> {
        None
    }

    /// End-to-end compute time the device holds a staging-ring slot for:
    /// propagation plus the per-iteration launch overhead. This is the
    /// `compute_s` input of
    /// [`StagingModel`](crate::stage::StagingModel) — the window a
    /// double-buffered wire transfer of the *next* batch can hide
    /// behind.
    fn iteration_compute_time(
        &self,
        stats: &WorkloadStats,
        dims: &[usize],
        width_factor: usize,
    ) -> f64 {
        self.propagation_time(stats, dims, width_factor) + self.launch_overhead()
    }
}

/// CPU trainer: Rayon GEMM + gather from CPU DRAM. Not pipelined.
///
/// Compute scales with the thread share the DRM engine assigns; memory
/// bandwidth is the full socket complement (gathers stream regardless of
/// thread count once a few threads are active).
#[derive(Debug, Clone)]
pub struct CpuTiming {
    spec: DeviceSpec,
    /// Sockets on the node (paper platform: 2).
    pub sockets: usize,
    /// Worker threads assigned to the CPU trainer.
    pub threads: usize,
    /// Total hardware threads available for trainer work.
    pub total_threads: usize,
}

impl CpuTiming {
    /// Dual-socket EPYC 7763 with `threads` of `total_threads` assigned.
    pub fn epyc_dual(threads: usize, total_threads: usize) -> Self {
        Self::new(EPYC_7763, 2, threads, total_threads)
    }

    /// Custom CPU platform.
    ///
    /// # Panics
    /// If thread counts are inconsistent.
    pub fn new(spec: DeviceSpec, sockets: usize, threads: usize, total_threads: usize) -> Self {
        assert!(threads >= 1 && threads <= total_threads);
        Self {
            spec,
            sockets,
            threads,
            total_threads,
        }
    }

    fn flops(&self) -> f64 {
        self.spec.peak_tflops
            * 1e12
            * self.sockets as f64
            * (self.threads as f64 / self.total_threads as f64)
            * calib::CPU_GEMM_EFFICIENCY
    }

    fn mem_bw(&self) -> f64 {
        self.spec.mem_bandwidth_gbs * 1e9 * self.sockets as f64 * calib::CPU_GATHER_BW_FRACTION
    }
}

impl TrainerTiming for CpuTiming {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn aggregate_time(&self, w: &LayerWork) -> f64 {
        // Eq. 11: gather |E| source rows of f_in floats from DRAM
        (w.edges as f64 * w.f_in as f64 * 4.0) / self.mem_bw()
    }

    fn update_time(&self, w: &LayerWork) -> f64 {
        // Eq. 12: |V| · f_in · f_out MACs = 2 FLOPs each
        (w.dst_nodes as f64 * w.f_in as f64 * w.f_out as f64 * 2.0) / self.flops()
    }

    fn pipelined(&self) -> bool {
        false
    }

    fn sampling_eps(&self) -> Option<f64> {
        Some(self.threads as f64 * calib::CPU_SAMPLE_EPS_PER_THREAD)
    }
}

/// GPU trainer: fast GEMM, cache-hostile gather, and the per-iteration
/// framework overhead of a PyTorch-stack implementation (the paper builds
/// both its baseline and its CPU-GPU design in PyTorch, §VI-A1). Not
/// pipelined (separate kernel launches per op).
#[derive(Debug, Clone)]
pub struct GpuTiming {
    spec: DeviceSpec,
    /// DRAM efficiency on random row gathers.
    pub gather_bw_eff: f64,
    /// DRAM efficiency on streaming access.
    pub stream_bw_eff: f64,
    /// Per-iteration framework/launch overhead (seconds).
    pub framework_overhead_s: f64,
}

impl GpuTiming {
    /// RTX A5000 with the calibrated efficiencies.
    pub fn a5000() -> Self {
        Self::new(RTX_A5000)
    }

    /// Any GPU spec with the calibrated efficiencies.
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            spec,
            gather_bw_eff: calib::GPU_GATHER_BW_EFF,
            stream_bw_eff: calib::GPU_STREAM_BW_EFF,
            framework_overhead_s: calib::GPU_FRAMEWORK_OVERHEAD_S,
        }
    }
}

impl TrainerTiming for GpuTiming {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn aggregate_time(&self, w: &LayerWork) -> f64 {
        let bw = self.spec.mem_bandwidth_gbs * 1e9;
        // Eq. 11 with the PyG execution reality: a random gather of |E|
        // source rows at gather efficiency, per-edge message
        // materialisation (write + re-read for the segment reduce), and
        // the result write — intermediates all round-trip DRAM.
        let edge_bytes = w.edges as f64 * w.f_in as f64 * 4.0;
        let gather = edge_bytes / (bw * self.gather_bw_eff);
        let messages = 2.0 * edge_bytes / (bw * self.stream_bw_eff);
        let write = w.dst_nodes as f64 * w.f_in as f64 * 4.0 / (bw * self.stream_bw_eff);
        gather + messages + write
    }

    fn update_time(&self, w: &LayerWork) -> f64 {
        (w.dst_nodes as f64 * w.f_in as f64 * w.f_out as f64 * 2.0)
            / (self.spec.peak_tflops * 1e12 * calib::GPU_GEMM_EFFICIENCY)
    }

    fn pipelined(&self) -> bool {
        false
    }

    fn launch_overhead(&self) -> f64 {
        self.framework_overhead_s
    }

    fn sampling_eps(&self) -> Option<f64> {
        Some(calib::GPU_SAMPLE_EPS)
    }
}

/// FPGA trainer implementing the paper's kernel design (§IV-C):
///
/// * edges sorted by source + feature duplicator → each distinct source
///   feature is read from device DRAM **once** (traffic `O(|V^{l-1}|)`
///   instead of `O(|E^l|)`);
/// * aggregation and the systolic update array are pipelined (⊕ = max);
/// * intermediate results stay on-chip — no write-back between layers.
#[derive(Debug, Clone)]
pub struct FpgaTiming {
    spec: DeviceSpec,
    /// Scatter-gather PE count `n` (Table IV: 8).
    pub n_pes: usize,
    /// Systolic MAC count `m` (Table IV: 2048).
    pub m_macs: usize,
    /// Vector lanes per PE.
    pub vec_lanes: usize,
}

impl FpgaTiming {
    /// Alveo U250 with the Table IV configuration (n, m) = (8, 2048).
    pub fn u250() -> Self {
        Self {
            spec: ALVEO_U250,
            n_pes: 8,
            m_macs: 2048,
            vec_lanes: calib::FPGA_VEC_LANES,
        }
    }

    /// Custom configuration.
    ///
    /// # Panics
    /// If any parallelism parameter is zero.
    pub fn new(spec: DeviceSpec, n_pes: usize, m_macs: usize) -> Self {
        assert!(n_pes > 0 && m_macs > 0);
        Self {
            spec,
            n_pes,
            m_macs,
            vec_lanes: calib::FPGA_VEC_LANES,
        }
    }
}

impl TrainerTiming for FpgaTiming {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn aggregate_time(&self, w: &LayerWork) -> f64 {
        // memory side: each distinct source row read once (duplicator)
        let mem = (w.src_nodes as f64 * w.f_in as f64 * 4.0) / (self.spec.mem_bandwidth_gbs * 1e9);
        // compute side: n PEs each consume one edge per ceil(f/lanes) cycles
        let cycles_per_edge = (w.f_in as f64 / self.vec_lanes as f64).ceil();
        let compute =
            w.edges as f64 * cycles_per_edge / (self.n_pes as f64 * self.spec.freq_ghz * 1e9);
        mem.max(compute)
    }

    fn update_time(&self, w: &LayerWork) -> f64 {
        // m MAC units at kernel frequency (Eq. 12 with N = m)
        (w.dst_nodes as f64 * w.f_in as f64 * w.f_out as f64)
            / (self.m_macs as f64 * self.spec.freq_ghz * 1e9)
    }

    fn pipelined(&self) -> bool {
        true
    }

    fn launch_overhead(&self) -> f64 {
        calib::FPGA_LAUNCH_OVERHEAD_S
    }

    fn sampling_eps(&self) -> Option<f64> {
        Some(calib::FPGA_SAMPLE_EPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A paper-like batch: 1024 seeds, fanouts (25,10), papers100M dims.
    fn stats() -> WorkloadStats {
        WorkloadStats {
            batch_size: 1024,
            input_nodes: 220_000,
            nodes_per_layer: vec![26_600, 1024],
            edges_per_layer: vec![266_000, 25_600],
        }
    }

    const DIMS: [usize; 3] = [128, 256, 172];

    #[test]
    fn layer_work_slicing() {
        let w = layer_work(&stats(), &DIMS, 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].src_nodes, 220_000);
        assert_eq!(w[0].dst_nodes, 26_600);
        assert_eq!(w[0].f_in, 128);
        assert_eq!(w[0].f_out, 256);
        assert_eq!(w[1].src_nodes, 26_600);
        assert_eq!(w[1].f_out, 172);
    }

    #[test]
    fn width_factor_doubles_update_input() {
        let w = layer_work(&stats(), &DIMS, 2);
        assert_eq!(w[0].f_in, 256);
    }

    #[test]
    fn cpu_eq11_eq12_forms() {
        let cpu = CpuTiming::epyc_dual(64, 128);
        let w = layer_work(&stats(), &DIMS, 1);
        // Eq. 11 shape: traffic / bw
        let traffic = 266_000.0 * 128.0 * 4.0;
        let bw = 205e9 * 2.0 * calib::CPU_GATHER_BW_FRACTION;
        assert!((cpu.aggregate_time(&w[0]) - traffic / bw).abs() / (traffic / bw) < 1e-12);
        // update monotone in dst nodes
        let mut w2 = w[0];
        w2.dst_nodes *= 2;
        assert!(cpu.update_time(&w2) > cpu.update_time(&w[0]));
    }

    #[test]
    fn fpga_aggregation_reads_each_source_once() {
        let fpga = FpgaTiming::u250();
        let w = layer_work(&stats(), &DIMS, 1)[0];
        // memory term must be based on src_nodes, not edges
        let mem_time = (w.src_nodes as f64 * w.f_in as f64 * 4.0) / (77e9);
        assert!(fpga.aggregate_time(&w) >= mem_time * 0.999);
        // an edge-traffic model would be ~E/V0 larger when E >> V0
        let mut dense = w;
        dense.edges = w.src_nodes * 20; // heavy reuse
        let t_dense = fpga.aggregate_time(&dense);
        let naive = (dense.edges as f64 * w.f_in as f64 * 4.0) / 77e9;
        assert!(
            t_dense < naive * 0.6,
            "reuse not modelled: {t_dense} vs naive {naive}"
        );
    }

    #[test]
    fn fpga_pipelines_gpu_does_not() {
        assert!(FpgaTiming::u250().pipelined());
        assert!(!GpuTiming::a5000().pipelined());
        assert!(!CpuTiming::epyc_dual(8, 128).pipelined());
    }

    #[test]
    fn propagation_time_positive_and_ordered() {
        let s = stats();
        let cpu = CpuTiming::epyc_dual(64, 128);
        let gpu = GpuTiming::a5000();
        let fpga = FpgaTiming::u250();
        let t_cpu = cpu.propagation_time(&s, &DIMS, 1) + cpu.launch_overhead();
        let t_gpu = gpu.propagation_time(&s, &DIMS, 1) + gpu.launch_overhead();
        let t_fpga = fpga.propagation_time(&s, &DIMS, 1) + fpga.launch_overhead();
        assert!(t_cpu > 0.0 && t_gpu > 0.0 && t_fpga > 0.0);
        // The FPGA's fused kernel (reuse + pipelining + no framework
        // overhead) must beat the PyTorch-stack GPU trainer per iteration
        // by roughly the 5-6x the paper reports (§VI-E1).
        let ratio = t_gpu / t_fpga;
        assert!(
            (3.0..20.0).contains(&ratio),
            "GPU/FPGA per-iteration ratio {ratio:.2} outside the paper's band \
             (GPU {t_gpu:.4}s, FPGA {t_fpga:.4}s)"
        );
        // raw propagation without overheads: the A5000's bandwidth still
        // wins — the system-level gap comes from overheads, as §VI-E1's
        // normalized comparison implies
        assert!(gpu.propagation_time(&s, &DIMS, 1) < t_fpga * 10.0);
    }

    #[test]
    fn iteration_compute_time_includes_launch_overhead() {
        let s = stats();
        let gpu = GpuTiming::a5000();
        let expect = gpu.propagation_time(&s, &DIMS, 1) + gpu.launch_overhead();
        assert!((gpu.iteration_compute_time(&s, &DIMS, 1) - expect).abs() < 1e-15);
        // the FPGA slot window feeds the staging model directly
        let fpga = FpgaTiming::u250();
        assert!(fpga.iteration_compute_time(&s, &DIMS, 1) > fpga.propagation_time(&s, &DIMS, 1));
    }

    #[test]
    fn more_cpu_threads_speed_update() {
        let s = stats();
        let few = CpuTiming::epyc_dual(16, 128).propagation_time(&s, &DIMS, 1);
        let many = CpuTiming::epyc_dual(96, 128).propagation_time(&s, &DIMS, 1);
        assert!(many < few);
    }

    #[test]
    fn sampling_rates() {
        assert!(CpuTiming::epyc_dual(32, 128).sampling_eps().unwrap() > 0.0);
        assert!(
            GpuTiming::a5000().sampling_eps().unwrap() > FpgaTiming::u250().sampling_eps().unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "dims must have layers+1")]
    fn layer_work_checks_dims() {
        let _ = layer_work(&stats(), &[128, 256], 1);
    }
}
