//! Trainer checkpointing: persist and restore model parameters plus the
//! DRM's task mapping, so long training runs survive restarts with the
//! settled mapping intact.

use crate::drm::{ThreadAlloc, WorkloadSplit};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const CKPT_MAGIC: u64 = 0x4853_434b_0001; // "HSCK" v1

/// A serializable training checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Completed epochs.
    pub epoch: u64,
    /// Flattened model parameters ([`hyscale_gnn::GnnModel::flatten_params`]).
    pub params: Vec<f32>,
    /// The settled workload split.
    pub cpu_quota: u64,
    /// Total seeds per iteration.
    pub total: u64,
    /// Accelerator count.
    pub num_accelerators: u64,
    /// Sampling share on accelerators.
    pub sampling_on_accel: f64,
    /// Thread allocation (sampler, loader, trainer).
    pub threads: (u64, u64, u64),
}

impl Checkpoint {
    /// Capture a checkpoint from training state.
    pub fn capture(
        epoch: u64,
        params: Vec<f32>,
        split: &WorkloadSplit,
        threads: &ThreadAlloc,
    ) -> Self {
        Self {
            epoch,
            params,
            cpu_quota: split.cpu_quota as u64,
            total: split.total as u64,
            num_accelerators: split.num_accelerators as u64,
            sampling_on_accel: split.sampling_on_accel,
            threads: (
                threads.sampler as u64,
                threads.loader as u64,
                threads.trainer as u64,
            ),
        }
    }

    /// Reconstruct the workload split.
    pub fn split(&self) -> WorkloadSplit {
        let mut s = WorkloadSplit::new(
            self.cpu_quota as usize,
            self.total as usize,
            self.num_accelerators as usize,
        );
        s.sampling_on_accel = self.sampling_on_accel;
        s
    }

    /// Reconstruct the thread allocation.
    pub fn thread_alloc(&self) -> ThreadAlloc {
        ThreadAlloc {
            sampler: self.threads.0 as usize,
            loader: self.threads.1 as usize,
            trainer: self.threads.2 as usize,
        }
    }

    /// Serialize to a writer (little-endian binary).
    pub fn write<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        for v in [
            CKPT_MAGIC,
            self.epoch,
            self.cpu_quota,
            self.total,
            self.num_accelerators,
            self.threads.0,
            self.threads.1,
            self.threads.2,
            self.params.len() as u64,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        w.write_all(&self.sampling_on_accel.to_le_bytes())?;
        for &p in &self.params {
            w.write_all(&p.to_le_bytes())?;
        }
        w.flush()
    }

    /// Deserialize from a reader.
    pub fn read<R: Read>(r: R) -> io::Result<Self> {
        let mut r = BufReader::new(r);
        let mut u64s = [0u64; 9];
        let mut buf = [0u8; 8];
        for v in &mut u64s {
            r.read_exact(&mut buf)?;
            *v = u64::from_le_bytes(buf);
        }
        if u64s[0] != CKPT_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a hyscale checkpoint",
            ));
        }
        r.read_exact(&mut buf)?;
        let sampling_on_accel = f64::from_le_bytes(buf);
        let n = u64s[8] as usize;
        let mut params = Vec::with_capacity(n);
        let mut f4 = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut f4)?;
            params.push(f32::from_le_bytes(f4));
        }
        Ok(Self {
            epoch: u64s[1],
            params,
            cpu_quota: u64s[2],
            total: u64s[3],
            num_accelerators: u64s[4],
            sampling_on_accel,
            threads: (u64s[5], u64s[6], u64s[7]),
        })
    }

    /// Save to a path.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.write(std::fs::File::create(path)?)
    }

    /// Load from a path.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::read(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint() -> Checkpoint {
        let mut split = WorkloadSplit::new(300, 2048, 4);
        split.sampling_on_accel = 0.75;
        let threads = ThreadAlloc {
            sampler: 20,
            loader: 30,
            trainer: 78,
        };
        Checkpoint::capture(7, vec![1.0, -2.5, 0.125], &split, &threads)
    }

    #[test]
    fn roundtrip_through_buffer() {
        let c = checkpoint();
        let mut buf = Vec::new();
        c.write(&mut buf).unwrap();
        let c2 = Checkpoint::read(&buf[..]).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn reconstructs_mapping() {
        let c = checkpoint();
        let s = c.split();
        assert_eq!(s.cpu_quota, 300);
        assert_eq!(s.total, 2048);
        assert_eq!(s.sampling_on_accel, 0.75);
        let t = c.thread_alloc();
        assert_eq!(t.total(), 128);
    }

    #[test]
    fn rejects_garbage() {
        let buf = [7u8; 100];
        assert!(Checkpoint::read(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hyscale_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckpt");
        let c = checkpoint();
        c.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), c);
        std::fs::remove_file(&path).ok();
    }
}
