//! Dataset specifications (paper Table III) and scaled materialization.
//!
//! Full-scale graphs (papers100M: 1.6 B edges) cannot be materialized in
//! a laptop-scale reproduction; instead each spec carries the *full-scale
//! statistics* (used by iteration counts and the performance model) and a
//! `materialize(scale)` method that synthesizes a structurally similar
//! graph at `|V| / scale` for functional training. DESIGN.md §2 documents
//! why mini-batch workloads are nearly scale-invariant.

use crate::csr::CsrGraph;
use crate::features::{Splits, VertexData};
use crate::generator::{sbm, SbmConfig};

/// Identification of the paper's three evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// ogbn-products: 2.4 M vertices, 62 M edges (medium scale).
    ObgnProducts,
    /// ogbn-papers100M: 111 M vertices, 1.6 B edges.
    ObgnPapers100M,
    /// MAG240M (homogeneous): 122 M vertices, 1.3 B edges, 202 GB features.
    Mag240MHomo,
}

/// Static description of a dataset: full-scale statistics from Table III
/// plus the GNN layer dimensions used in the paper's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub kind: DatasetKind,
    /// Display name.
    pub name: &'static str,
    /// Full-scale vertex count.
    pub num_vertices: u64,
    /// Full-scale edge count.
    pub num_edges: u64,
    /// Input feature length `f0`.
    pub f0: usize,
    /// Hidden feature length `f1`.
    pub f1: usize,
    /// Output feature length `f2` (number of classes).
    pub f2: usize,
    /// Number of labelled training vertices (drives iterations/epoch).
    pub train_vertices: u64,
}

/// Table III row: ogbn-products.
pub const OGBN_PRODUCTS: DatasetSpec = DatasetSpec {
    kind: DatasetKind::ObgnProducts,
    name: "ogbn-products",
    num_vertices: 2_449_029,
    num_edges: 61_859_140,
    f0: 100,
    f1: 256,
    f2: 47,
    // OGB official split: 196,615 train nodes.
    train_vertices: 196_615,
};

/// Table III row: ogbn-papers100M.
pub const OGBN_PAPERS100M: DatasetSpec = DatasetSpec {
    kind: DatasetKind::ObgnPapers100M,
    name: "ogbn-papers100M",
    num_vertices: 111_059_956,
    num_edges: 1_615_685_872,
    f0: 128,
    f1: 256,
    f2: 172,
    // OGB official split: ~1.2M labelled train nodes.
    train_vertices: 1_207_179,
};

/// Table III row: MAG240M (homogeneous).
pub const MAG240M_HOMO: DatasetSpec = DatasetSpec {
    kind: DatasetKind::Mag240MHomo,
    name: "MAG240M (homo)",
    num_vertices: 121_751_666,
    num_edges: 1_297_748_926,
    f0: 756,
    f1: 256,
    f2: 153,
    // OGB-LSC: ~1.1M labelled arxiv papers.
    train_vertices: 1_112_392,
};

/// All three paper datasets in Table III order.
pub const ALL_DATASETS: [DatasetSpec; 3] = [OGBN_PRODUCTS, OGBN_PAPERS100M, MAG240M_HOMO];

impl DatasetSpec {
    /// Average directed degree at full scale.
    pub fn avg_degree(&self) -> f64 {
        self.num_edges as f64 / self.num_vertices as f64
    }

    /// Full-scale feature matrix size in bytes (`|V| · f0 · 4`).
    ///
    /// MAG240M evaluates to ~368 GB raw f32 (the paper quotes 202 GB for
    /// the f16 release); either way it exceeds any device memory, which
    /// is the paper's motivating constraint.
    pub fn feature_bytes(&self) -> u64 {
        self.num_vertices * self.f0 as u64 * 4
    }

    /// Layer dimensions `[f0, f1, f2]` for the 2-layer evaluation models.
    pub fn layer_dims(&self) -> [usize; 3] {
        [self.f0, self.f1, self.f2]
    }

    /// Synthesize a functional stand-in graph scaled down by `scale`
    /// (vertices ≈ `num_vertices / scale`), preserving average degree and
    /// planting `f2` learnable communities. Deterministic in `seed`.
    ///
    /// # Panics
    /// If `scale` is 0 or leaves fewer than 2·classes vertices.
    pub fn materialize(&self, scale: u64, seed: u64) -> Dataset {
        assert!(scale >= 1, "scale must be >= 1");
        let n = (self.num_vertices / scale).max(64) as usize;
        let classes = self.f2.min(64); // cap synthetic communities for tiny scales
        assert!(
            n >= 2 * classes,
            "scale {scale} leaves too few vertices ({n}) for {classes} classes"
        );
        // symmetrize() roughly doubles the out-degree of a directed SBM,
        // so generate at half the spec's average degree to land on it.
        let avg_degree = (self.avg_degree() / 2.0).round() as usize;
        let (graph, labels) = sbm(
            SbmConfig {
                num_vertices: n,
                communities: classes,
                avg_degree: avg_degree.max(2),
                p_intra: 0.8,
            },
            seed,
        );
        // undirected view: neighbor sampling treats edges as symmetric,
        // matching OGB preprocessing of products/papers.
        let graph = graph.symmetrize();
        let data = VertexData::from_labels(&labels, classes, self.f0, 2.0, seed ^ 0xfeed);
        let train_frac = (self.train_vertices as f64 / self.num_vertices as f64).clamp(0.01, 0.8);
        let splits = Splits::random(n, train_frac, 0.1, seed ^ 0xbeef);
        Dataset {
            spec: *self,
            graph,
            data,
            splits,
            scale,
        }
    }
}

/// A materialized dataset: graph + features + labels + splits, plus the
/// originating spec for full-scale accounting.
#[derive(Clone)]
pub struct Dataset {
    /// The full-scale spec this dataset was synthesized from.
    pub spec: DatasetSpec,
    /// Scaled-down topology (undirected CSR).
    pub graph: CsrGraph,
    /// Features and labels for the scaled graph.
    pub data: VertexData,
    /// Train/val/test splits over the scaled graph.
    pub splits: Splits,
    /// The applied down-scale factor.
    pub scale: u64,
}

impl Dataset {
    /// Iterations per full-scale epoch at a given total mini-batch size
    /// (paper §VI-A2: mini-batch size 1024 over the labelled train set).
    pub fn full_scale_iterations(&self, total_batch: usize) -> u64 {
        self.spec.train_vertices.div_ceil(total_batch as u64)
    }

    /// A small, fast dataset for unit tests (not a paper dataset).
    pub fn toy(seed: u64) -> Dataset {
        let spec = DatasetSpec {
            kind: DatasetKind::ObgnProducts,
            name: "toy",
            num_vertices: 1_000,
            num_edges: 16_000,
            f0: 16,
            f1: 32,
            f2: 4,
            train_vertices: 600,
        };
        let (graph, labels) = sbm(
            SbmConfig {
                num_vertices: 1000,
                communities: 4,
                avg_degree: 16,
                p_intra: 0.85,
            },
            seed,
        );
        let graph = graph.symmetrize();
        let data = VertexData::from_labels(&labels, 4, 16, 2.5, seed ^ 1);
        let splits = Splits::random(1000, 0.6, 0.2, seed ^ 2);
        Dataset {
            spec,
            graph,
            data,
            splits,
            scale: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_statistics() {
        assert_eq!(OGBN_PRODUCTS.num_vertices, 2_449_029);
        assert_eq!(OGBN_PRODUCTS.num_edges, 61_859_140);
        assert_eq!(OGBN_PRODUCTS.layer_dims(), [100, 256, 47]);
        assert_eq!(OGBN_PAPERS100M.layer_dims(), [128, 256, 172]);
        assert_eq!(MAG240M_HOMO.layer_dims(), [756, 256, 153]);
        assert!((OGBN_PRODUCTS.avg_degree() - 25.26).abs() < 0.1);
    }

    #[test]
    fn mag_features_exceed_device_memory() {
        // The paper's motivation: MAG240M features cannot fit in 16-64 GB
        // device memory.
        let gb = MAG240M_HOMO.feature_bytes() as f64 / 1e9;
        assert!(gb > 64.0, "MAG240M features only {gb} GB?");
    }

    #[test]
    fn materialize_scales_down() {
        let d = OGBN_PRODUCTS.materialize(10_000, 42);
        assert!(d.graph.num_vertices() >= 64);
        assert!(d.graph.num_vertices() < 1000);
        assert_eq!(d.data.feat_dim(), 100);
        assert_eq!(d.data.num_classes, 47);
        assert!(!d.splits.train.is_empty());
        d.graph.validate().unwrap();
    }

    #[test]
    fn materialize_deterministic() {
        let a = OGBN_PRODUCTS.materialize(20_000, 7);
        let b = OGBN_PRODUCTS.materialize(20_000, 7);
        assert_eq!(a.graph.targets(), b.graph.targets());
        assert_eq!(a.data.labels, b.data.labels);
    }

    #[test]
    fn full_scale_iterations_use_spec() {
        let d = Dataset::toy(1);
        assert_eq!(d.full_scale_iterations(100), 6);
        let p = OGBN_PRODUCTS.materialize(10_000, 1);
        // 196,615 train vertices / 4096 per iteration (4 trainers x 1024)
        assert_eq!(p.full_scale_iterations(4096), 49);
    }

    #[test]
    fn toy_dataset_learnable() {
        let d = Dataset::toy(3);
        assert_eq!(d.graph.num_vertices(), 1000);
        assert_eq!(d.data.num_classes, 4);
        assert_eq!(d.splits.train.len(), 600);
    }
}
