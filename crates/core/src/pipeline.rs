//! Discrete-event simulation of the 4-stage training pipeline.
//!
//! The analytic iteration-time model (Eq. 6, [`crate::stages`]) assumes a
//! perfectly overlapped steady state. This module simulates the pipeline
//! *exactly*: each iteration's mini-batches flow through Sampling →
//! Feature Loading → Data Transfer → GNN Propagation(+sync) with a
//! bounded prefetch queue between stages (paper Fig. 7: while the
//! accelerator executes batch 1, batch 2 is in flight on PCIe and batch
//! 3 is being loaded). It reproduces the pipeline-fill/drain overhead the
//! paper names as a §VI-C prediction-error source, and verifies that the
//! steady-state latency equals `max(stage times)`.

use crate::stages::StageTimes;

/// Per-iteration stage latencies fed to the simulator (one entry per
/// iteration; reuse one value for homogeneous epochs).
#[derive(Debug, Clone, Copy)]
pub struct PipelineStageCosts {
    /// Sampling time (CPU/accelerator samplers overlapped).
    pub sample: f64,
    /// Feature-loading time (CPU DRAM).
    pub load: f64,
    /// PCIe transfer time.
    pub transfer: f64,
    /// Propagation + synchronization time.
    pub propagate: f64,
}

impl PipelineStageCosts {
    /// Extract pipeline costs from measured stage times.
    pub fn from_stage_times(t: &StageTimes) -> Self {
        Self {
            sample: t.sampling(),
            load: t.load,
            transfer: t.transfer,
            propagate: t.propagation(),
        }
    }

    /// Extract pipeline costs from *measured host wall-clock* stage
    /// times (see [`crate::report::WallStageTimes`]). This lets the
    /// discrete-event simulator predict what the real prefetching
    /// executor should achieve at a given depth — the bench harness
    /// compares that prediction against the measured epoch wall.
    pub fn from_wall(w: &crate::report::WallStageTimes) -> Self {
        Self {
            sample: w.sample_s,
            load: w.load_s,
            transfer: w.transfer_s,
            propagate: w.train_s,
        }
    }

    fn as_array(&self) -> [f64; 4] {
        [self.sample, self.load, self.transfer, self.propagate]
    }

    /// The steady-state bound: slowest stage (Eq. 6).
    pub fn bottleneck(&self) -> f64 {
        self.as_array().into_iter().fold(0.0, f64::max)
    }

    /// Serial execution (no prefetching).
    pub fn serial(&self) -> f64 {
        self.as_array().into_iter().sum()
    }
}

/// Result of simulating an epoch through the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Total makespan of the epoch, seconds.
    pub makespan: f64,
    /// Completion time of every iteration's propagation stage.
    pub completions: Vec<f64>,
    /// Steady-state inter-completion gap (last two iterations).
    pub steady_gap: f64,
}

/// Simulate `iterations` identical iterations through the 4-stage
/// pipeline with a prefetch look-ahead of `depth` batches per stage
/// (`depth = 0` serializes everything — the no-TFP configuration;
/// `depth = 1` is classic double buffering; the paper's two-stage scheme
/// is `depth ≥ 2`). The transfer stage is unconstrained by staging
/// buffers here — see [`simulate_pipeline_ringed`] for the
/// bounded-staging variant.
pub fn simulate_pipeline(
    costs: &PipelineStageCosts,
    iterations: usize,
    depth: usize,
) -> PipelineRun {
    simulate_pipeline_ringed(costs, iterations, depth, 0)
}

/// Index of the Data Transfer stage in [`PipelineStageCosts::as_array`].
const TRANSFER_STAGE: usize = 2;

/// [`simulate_pipeline`] with per-accelerator staging rings of
/// `ring_depth` slots between the transfer and propagation stages: the
/// wire transfer of iteration `i` may not start before the propagation
/// of iteration `i - ring_depth` has completed (its staging slot is
/// still occupied). `ring_depth = 1` is a single staging buffer —
/// transfer and propagation serialize; `ring_depth = 2` is the
/// double-buffered arrangement where transfer of batch `i+1` hides
/// behind compute of batch `i`; `ring_depth = 0` means unbounded
/// staging (no slot gate — the idealized model of
/// [`simulate_pipeline`]).
#[allow(clippy::needless_range_loop)] // gates read finished[i - k]
pub fn simulate_pipeline_ringed(
    costs: &PipelineStageCosts,
    iterations: usize,
    depth: usize,
    ring_depth: usize,
) -> PipelineRun {
    assert!(iterations > 0, "need at least one iteration");
    let stage_costs = costs.as_array();
    let stages = stage_costs.len();
    // ready[s] = time stage s becomes free
    let mut stage_free = vec![0.0f64; stages];
    // completion[i][s] tracked implicitly; batch_done = when the batch
    // finished its previous stage
    let mut completions = Vec::with_capacity(iterations);
    // start times of each iteration at stage 0 are gated by the prefetch
    // window: iteration i may not *enter* the pipeline before iteration
    // i - depth - 1 has fully completed (bounded buffers).
    let mut finished = vec![0.0f64; iterations];

    if depth == 0 {
        // serial: each iteration runs all stages back-to-back
        let mut clock = 0.0;
        for i in 0..iterations {
            clock += costs.serial();
            finished[i] = clock;
            completions.push(clock);
        }
    } else {
        for i in 0..iterations {
            let gate = if i > depth {
                finished[i - depth - 1]
            } else {
                0.0
            };
            let mut batch_ready = gate;
            for (s, &cost) in stage_costs.iter().enumerate() {
                let mut start = batch_ready.max(stage_free[s]);
                if s == TRANSFER_STAGE && ring_depth > 0 && i >= ring_depth {
                    // staging-slot gate: the ring slot this transfer
                    // needs is released when iteration i - ring_depth
                    // finishes its propagation
                    start = start.max(finished[i - ring_depth]);
                }
                let end = start + cost;
                stage_free[s] = end;
                batch_ready = end;
            }
            finished[i] = batch_ready;
            completions.push(batch_ready);
        }
    }

    let steady_gap = if iterations >= 2 {
        completions[iterations - 1] - completions[iterations - 2]
    } else {
        completions[0]
    };
    PipelineRun {
        makespan: completions[iterations - 1],
        completions,
        steady_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(sample: f64, load: f64, transfer: f64, propagate: f64) -> PipelineStageCosts {
        PipelineStageCosts {
            sample,
            load,
            transfer,
            propagate,
        }
    }

    #[test]
    fn steady_state_equals_bottleneck() {
        // The analytic Eq. 6 claim, verified by event simulation.
        let c = costs(1.0, 2.0, 5.0, 3.0);
        let run = simulate_pipeline(&c, 50, 2);
        assert!(
            (run.steady_gap - c.bottleneck()).abs() < 1e-9,
            "steady gap {} vs bottleneck {}",
            run.steady_gap,
            c.bottleneck()
        );
    }

    #[test]
    fn serial_mode_sums_stages() {
        let c = costs(1.0, 2.0, 3.0, 4.0);
        let run = simulate_pipeline(&c, 10, 0);
        assert!((run.steady_gap - c.serial()).abs() < 1e-9);
        assert!((run.makespan - 10.0 * c.serial()).abs() < 1e-9);
    }

    #[test]
    fn fill_overhead_is_bounded_by_pipeline_depth() {
        let c = costs(1.0, 1.0, 1.0, 1.0);
        let n = 100;
        let run = simulate_pipeline(&c, n, 3);
        // steady state: 1s per iteration; fill adds the first batch's
        // full traversal (4s) minus one steady gap
        let ideal = n as f64 * c.bottleneck();
        let overhead = run.makespan - ideal;
        assert!(overhead > 0.0, "pipelines must pay a fill cost");
        assert!(
            overhead <= c.serial(),
            "fill overhead {overhead} exceeds one full traversal"
        );
    }

    #[test]
    fn deeper_prefetch_never_hurts() {
        let c = costs(2.0, 1.0, 4.0, 3.0);
        let d1 = simulate_pipeline(&c, 30, 1).makespan;
        let d2 = simulate_pipeline(&c, 30, 2).makespan;
        let d4 = simulate_pipeline(&c, 30, 4).makespan;
        assert!(d2 <= d1 + 1e-9);
        assert!(d4 <= d2 + 1e-9);
    }

    #[test]
    fn pipelined_beats_serial() {
        let c = costs(1.0, 1.5, 2.0, 2.5);
        let serial = simulate_pipeline(&c, 20, 0).makespan;
        let piped = simulate_pipeline(&c, 20, 2).makespan;
        assert!(
            piped < serial * 0.5,
            "pipelining too weak: {piped} vs {serial}"
        );
    }

    #[test]
    fn completions_monotone() {
        let c = costs(0.5, 2.0, 1.0, 0.25);
        let run = simulate_pipeline(&c, 25, 2);
        assert!(run.completions.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(run.completions.len(), 25);
    }

    #[test]
    fn from_stage_times_maps_fields() {
        let t = StageTimes {
            sample_cpu: 1.0,
            sample_accel: 2.0,
            load: 3.0,
            transfer: 4.0,
            train_cpu: 5.0,
            train_accel: 6.0,
            sync: 0.5,
        };
        let c = PipelineStageCosts::from_stage_times(&t);
        assert_eq!(c.sample, 2.0);
        assert_eq!(c.load, 3.0);
        assert_eq!(c.transfer, 4.0);
        assert_eq!(c.propagate, 6.5);
        assert_eq!(c.bottleneck(), 6.5);
    }

    #[test]
    fn from_wall_maps_measured_stages() {
        let w = crate::report::WallStageTimes {
            sample_s: 0.5,
            load_s: 1.5,
            transfer_s: 0.25,
            train_s: 2.0,
            iter_s: 4.25,
            ..Default::default()
        };
        let c = PipelineStageCosts::from_wall(&w);
        assert_eq!(c.sample, 0.5);
        assert_eq!(c.load, 1.5);
        assert_eq!(c.transfer, 0.25);
        assert_eq!(c.propagate, 2.0);
        assert!((c.serial() - w.serial_sum()).abs() < 1e-12);
    }

    #[test]
    fn single_iteration() {
        let c = costs(1.0, 1.0, 1.0, 1.0);
        let run = simulate_pipeline(&c, 1, 2);
        assert!((run.makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_staging_buffer_serializes_transfer_with_propagation() {
        // transfer 2s, propagate 3s: with one slot the steady cadence is
        // their sum; the pipeline can't hide the wire time at all.
        let c = costs(0.1, 0.1, 2.0, 3.0);
        let run = simulate_pipeline_ringed(&c, 40, 4, 1);
        assert!(
            (run.steady_gap - 5.0).abs() < 1e-9,
            "ring-1 steady gap {} should be transfer + propagate",
            run.steady_gap
        );
    }

    #[test]
    fn double_buffer_hides_transfer_when_compute_dominates() {
        let c = costs(0.1, 0.1, 2.0, 3.0);
        let ring2 = simulate_pipeline_ringed(&c, 40, 4, 2);
        // double buffering recovers the idealized bottleneck bound
        assert!(
            (ring2.steady_gap - c.bottleneck()).abs() < 1e-9,
            "ring-2 steady gap {} vs bottleneck {}",
            ring2.steady_gap,
            c.bottleneck()
        );
        let ring1 = simulate_pipeline_ringed(&c, 40, 4, 1);
        assert!(
            ring2.makespan < ring1.makespan,
            "deeper ring must hide transfer time: {} vs {}",
            ring2.makespan,
            ring1.makespan
        );
    }

    #[test]
    fn unbounded_ring_matches_plain_simulation() {
        let c = costs(1.0, 2.0, 5.0, 3.0);
        let plain = simulate_pipeline(&c, 30, 2);
        let ringed = simulate_pipeline_ringed(&c, 30, 2, 0);
        assert_eq!(plain.completions, ringed.completions);
        // a ring at least as deep as the prefetch window changes nothing
        let deep = simulate_pipeline_ringed(&c, 30, 2, 30);
        assert_eq!(plain.completions, deep.completions);
    }

    #[test]
    fn ring_depth_monotone() {
        let c = costs(0.5, 0.5, 3.0, 2.0);
        let m1 = simulate_pipeline_ringed(&c, 25, 3, 1).makespan;
        let m2 = simulate_pipeline_ringed(&c, 25, 3, 2).makespan;
        let m3 = simulate_pipeline_ringed(&c, 25, 3, 3).makespan;
        assert!(m2 <= m1 + 1e-9);
        assert!(m3 <= m2 + 1e-9);
    }
}
