//! Structural graph statistics beyond degree counts.
//!
//! Backs the dataset report of the `tab03_datasets` harness and the CLI:
//! degree percentiles, sampled local clustering coefficient, and a
//! compact summary struct.

use crate::csr::CsrGraph;
use crate::types::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Vertex count.
    pub num_vertices: usize,
    /// Edge count.
    pub num_edges: u64,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Out-degree percentiles (p50, p90, p99).
    pub degree_percentiles: (usize, usize, usize),
    /// Fraction of vertices with zero out-degree.
    pub isolated_fraction: f64,
}

/// Compute the summary (exact; O(V log V)).
pub fn summarize(graph: &CsrGraph) -> GraphSummary {
    let n = graph.num_vertices();
    let mut degrees: Vec<usize> = (0..n as VertexId).map(|v| graph.out_degree(v)).collect();
    degrees.sort_unstable();
    let pct = |p: f64| -> usize {
        if degrees.is_empty() {
            0
        } else {
            degrees[((degrees.len() - 1) as f64 * p) as usize]
        }
    };
    let isolated = degrees.iter().take_while(|&&d| d == 0).count();
    GraphSummary {
        num_vertices: n,
        num_edges: graph.num_edges(),
        avg_degree: graph.avg_degree(),
        max_degree: *degrees.last().unwrap_or(&0),
        degree_percentiles: (pct(0.5), pct(0.9), pct(0.99)),
        isolated_fraction: if n == 0 {
            0.0
        } else {
            isolated as f64 / n as f64
        },
    }
}

/// Local clustering coefficient of vertex `v`: the fraction of its
/// neighbour pairs that are themselves connected.
pub fn local_clustering(graph: &CsrGraph, v: VertexId) -> f64 {
    let neigh = graph.neighbors(v);
    let k = neigh.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in neigh.iter().enumerate() {
        for &b in &neigh[i + 1..] {
            if a != b && graph.neighbors(a).contains(&b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Mean local clustering coefficient over a seeded vertex sample
/// (exact computation is O(V·d²); `samples` bounds the cost).
pub fn sampled_clustering(graph: &CsrGraph, samples: usize, seed: u64) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sum = 0.0;
    let samples = samples.min(n).max(1);
    for _ in 0..samples {
        let v = rng.gen_range(0..n) as VertexId;
        sum += local_clustering(graph, v);
    }
    sum / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{erdos_renyi, sbm, SbmConfig};

    #[test]
    fn summary_of_triangle() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2), (1, 0), (2, 1)]).unwrap();
        let s = summarize(&g);
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_edges, 6);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated_fraction, 0.0);
        assert_eq!(s.degree_percentiles, (2, 2, 2));
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2), (2, 1), (1, 0), (2, 0)]).unwrap();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        // hub 0 connected to 1..4, leaves unconnected
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0); // degree < 2
    }

    #[test]
    fn community_graph_clusters_more_than_random() {
        let (c, _) = sbm(
            SbmConfig {
                num_vertices: 600,
                communities: 6,
                avg_degree: 14,
                p_intra: 0.9,
            },
            4,
        );
        let c = c.symmetrize();
        let r = erdos_renyi(600, 600 * 14, 5).symmetrize();
        let cc = sampled_clustering(&c, 150, 1);
        let cr = sampled_clustering(&r, 150, 1);
        assert!(
            cc > cr * 1.5,
            "community clustering {cc:.4} should exceed random {cr:.4}"
        );
    }

    #[test]
    fn isolated_fraction_counts() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]).unwrap();
        let s = summarize(&g);
        assert!((s.isolated_fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_summary() {
        let g = CsrGraph::empty(0);
        let s = summarize(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(sampled_clustering(&g, 10, 0), 0.0);
    }
}
