//! The multi-GPU PyTorch-Geometric baseline (paper Fig. 10 "Multi-GPU").
//!
//! Architecture per the paper: runs on the same CPU-GPU node, but "does
//! not utilize the CPU to perform hybrid training" — the CPU only
//! samples and loads. No prefetch overlap (stages serialize), pageable
//! PCIe transfers, Python DataLoader collation, and the PyTorch per-op
//! kernel-launch overhead on the GPU.

use crate::common::{gpu_propagation_time, BaselineSystem, SotaConfig, PYG_DATALOADER_OVERHEAD_S};
use hyscale_device::calib;
use hyscale_device::pcie::PcieLink;
use hyscale_device::spec::{DeviceSpec, EPYC_7763, RTX_A5000};
use hyscale_device::stage::{LoaderModel, SamplerModel};
use hyscale_device::timing::GpuTiming;
use hyscale_gnn::GnnKind;
use hyscale_graph::DatasetSpec;

/// PyG multi-GPU system model.
pub struct PygMultiGpu {
    /// GPU spec (paper: RTX A5000).
    pub gpu: DeviceSpec,
    /// Number of GPUs (paper: 4).
    pub num_gpus: usize,
    /// Host CPU (paper: dual EPYC 7763).
    pub cpu: DeviceSpec,
    /// Host sockets.
    pub sockets: usize,
    /// DataLoader worker threads.
    pub loader_workers: usize,
}

impl PygMultiGpu {
    /// The paper's baseline: 4× A5000 on the dual-EPYC node.
    pub fn paper_baseline() -> Self {
        Self {
            gpu: RTX_A5000,
            num_gpus: 4,
            cpu: EPYC_7763,
            sockets: 2,
            loader_workers: 32,
        }
    }
}

impl BaselineSystem for PygMultiGpu {
    fn name(&self) -> &'static str {
        "PyG multi-GPU"
    }

    fn platform_tflops(&self) -> f64 {
        self.gpu.peak_tflops * self.num_gpus as f64 + self.cpu.peak_tflops * self.sockets as f64
    }

    fn total_batch(&self, cfg: &SotaConfig) -> usize {
        cfg.batch_per_trainer * self.num_gpus
    }

    fn iteration_time(&self, ds: &DatasetSpec, model: GnnKind, cfg: &SotaConfig) -> f64 {
        let per_gpu = cfg.workload(ds);
        let dims = cfg.layer_dims(ds);
        // all GPUs' batches are sampled + loaded on the CPU
        let mut merged = per_gpu.clone();
        for _ in 1..self.num_gpus {
            merged = merged.merge(&per_gpu);
        }
        let sampler = SamplerModel::default();
        let t_samp = sampler.sample_time(merged.total_edges(), self.loader_workers);
        let loader = LoaderModel::new(self.cpu, self.sockets);
        let t_load =
            loader.load_time(&merged, ds.f0, self.loader_workers) + PYG_DATALOADER_OVERHEAD_S;
        // pageable transfers, parallel links
        let unpinned = PcieLink::new(calib::PCIE_UNPINNED_BW_GBS, calib::PCIE_LATENCY_S);
        let bytes = per_gpu.feature_bytes(ds.f0) + per_gpu.total_edges() * 8;
        let t_trans = unpinned.transfer_time(bytes);
        // GPU propagation with the PyTorch stack overhead
        let gpu = GpuTiming::new(self.gpu);
        let t_gpu = gpu_propagation_time(
            &gpu,
            &per_gpu,
            &dims,
            model,
            calib::GPU_FRAMEWORK_OVERHEAD_S,
        );
        // NCCL-style all-reduce over PCIe
        let model_bytes: u64 = dims
            .windows(2)
            .map(|w| {
                (w[0] as u64 * model.update_width_factor() as u64 * w[1] as u64 + w[1] as u64) * 4
            })
            .sum();
        let t_sync = unpinned.allreduce_time(model_bytes);
        // no prefetch: everything serializes (paper: the PyG baseline
        // does not overlap communication with computation)
        t_samp + t_load + t_trans + t_gpu + t_sync
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::dataset::{OGBN_PAPERS100M, OGBN_PRODUCTS};

    #[test]
    fn baseline_iteration_dominated_by_gpu_stack() {
        let b = PygMultiGpu::paper_baseline();
        let cfg = SotaConfig::pagraph();
        let t = b.iteration_time(&OGBN_PRODUCTS, GnnKind::Gcn, &cfg);
        // framework overhead alone is 30ms; the iteration must exceed it
        assert!(t > 0.030, "iteration {t}");
        assert!(t < 0.5, "iteration {t} implausibly slow");
    }

    #[test]
    fn epoch_time_plausible_scale() {
        // paper Fig. 10: products epochs are seconds-scale for the
        // baseline, papers100M tens of seconds
        let b = PygMultiGpu::paper_baseline();
        let cfg = SotaConfig::pagraph();
        let products = b.epoch_time(&OGBN_PRODUCTS, GnnKind::GraphSage, &cfg);
        let papers = b.epoch_time(&OGBN_PAPERS100M, GnnKind::GraphSage, &cfg);
        assert!(
            products > 0.5 && products < 20.0,
            "products epoch {products}"
        );
        assert!(
            papers > products,
            "papers {papers} should exceed products {products}"
        );
    }

    #[test]
    fn platform_tflops_counts_gpus_and_cpus() {
        let b = PygMultiGpu::paper_baseline();
        assert!((b.platform_tflops() - (4.0 * 27.8 + 7.2)).abs() < 1e-9);
    }
}
