//! Full-graph layer-wise inference.
//!
//! Mini-batch sampling biases evaluation (each vertex sees a sampled
//! neighbourhood); the standard OGB protocol computes exact embeddings
//! layer by layer over the *full* graph instead, materializing every
//! layer's output for all vertices. Chunked over vertices so peak memory
//! stays bounded — the same reason the paper streams mini-batches.

use crate::aggregate::{aggregate_gcn, aggregate_mean, GcnCoefficients};
use crate::model::{GnnKind, GnnModel};
use hyscale_graph::CsrGraph;
use hyscale_sampler::Block;
use hyscale_tensor::Matrix;

/// Exact logits for every vertex via layer-wise propagation.
///
/// `x` is the full `|V| × f0` feature matrix. Memory: two `|V| × f`
/// buffers. For chunked destination processing choose `chunk` (vertices
/// per block); results are identical for any chunk size.
pub fn full_graph_logits(model: &GnnModel, graph: &CsrGraph, x: &Matrix, chunk: usize) -> Matrix {
    assert_eq!(
        x.rows(),
        graph.num_vertices(),
        "feature rows must cover all vertices"
    );
    let chunk = chunk.max(1);
    let mut h = x.clone();
    for layer in 0..model.num_layers() {
        h = propagate_layer(model, graph, &h, layer, chunk);
    }
    h
}

/// One exact layer: for each destination chunk, build the full-neighbour
/// block and run the layer's aggregate-update.
fn propagate_layer(
    model: &GnnModel,
    graph: &CsrGraph,
    h: &Matrix,
    layer: usize,
    chunk: usize,
) -> Matrix {
    let n = graph.num_vertices();
    let f_out = model.dims()[layer + 1];
    let mut out = Matrix::zeros(n, f_out);
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk).min(n);
        // Block over the chunk: dst = chunk vertices; src = dst prefix +
        // all their neighbours (global ids remapped densely).
        let mut src_nodes: Vec<u32> = (start as u32..end as u32).collect();
        let mut local = std::collections::HashMap::new();
        for (i, &v) in src_nodes.iter().enumerate() {
            local.insert(v, i as u32);
        }
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        for (di, v) in (start..end).enumerate() {
            for &t in graph.neighbors(v as u32) {
                let next = src_nodes.len() as u32;
                let si = *local.entry(t).or_insert_with(|| {
                    src_nodes.push(t);
                    next
                });
                edge_src.push(si);
                edge_dst.push(di as u32);
            }
        }
        let block = Block {
            num_src: src_nodes.len(),
            num_dst: end - start,
            edge_src,
            edge_dst,
        };
        let h_src = h.gather_rows(&src_nodes);
        let coef = match model.kind() {
            GnnKind::Gcn => Some(global_gcn_coefficients(&block, &src_nodes, graph)),
            _ => None,
        };
        let z = model.layer_output(&block, &h_src, layer, coef.as_ref());
        for (i, row) in z.rows_iter().enumerate() {
            out.row_mut(start + i).copy_from_slice(row);
        }
        start = end;
    }
    out
}

/// GCN coefficients from *global* graph degrees — exact inference must
/// be independent of how destinations are chunked, so normalisation
/// cannot depend on the block (unlike mini-batch training, which uses
/// the in-batch approximation).
fn global_gcn_coefficients(block: &Block, src_global: &[u32], graph: &CsrGraph) -> GcnCoefficients {
    let norm = |v: u32| 1.0 / ((graph.out_degree(v) as f32 + 1.0).sqrt());
    let edge = block
        .edge_src
        .iter()
        .zip(&block.edge_dst)
        .map(|(&s, &d)| norm(src_global[s as usize]) * norm(src_global[d as usize]))
        .collect();
    let self_loop = (0..block.num_dst)
        .map(|v| {
            let n = norm(src_global[v]);
            n * n
        })
        .collect();
    GcnCoefficients { edge, self_loop }
}

impl GnnModel {
    /// Apply layer `layer`'s aggregate-update to a block, optionally
    /// overriding the aggregation coefficients (shared by training
    /// forward and exact inference).
    pub fn layer_output(
        &self,
        block: &Block,
        h_src: &Matrix,
        layer: usize,
        coef_override: Option<&GcnCoefficients>,
    ) -> Matrix {
        let update_in = match self.kind() {
            GnnKind::Gcn => match coef_override {
                Some(coef) => aggregate_gcn(block, h_src, coef),
                None => aggregate_gcn(block, h_src, &GcnCoefficients::from_block(block)),
            },
            GnnKind::Gin => {
                let coef = GcnCoefficients::gin(block, 0.0);
                aggregate_gcn(block, h_src, &coef)
            }
            GnnKind::GraphSage => {
                let mean = aggregate_mean(block, h_src);
                let mut self_feats = Matrix::zeros(block.num_dst, h_src.cols());
                for d in 0..block.num_dst {
                    self_feats.row_mut(d).copy_from_slice(h_src.row(d));
                }
                self_feats.hconcat(&mean)
            }
        };
        let last = layer + 1 == self.num_layers();
        self.apply_update(&update_in, layer, !last)
    }
}

/// Exact full-graph accuracy over a vertex subset.
pub fn full_graph_accuracy(
    model: &GnnModel,
    graph: &CsrGraph,
    x: &Matrix,
    labels: &[u32],
    eval_set: &[u32],
    chunk: usize,
) -> f32 {
    let logits = full_graph_logits(model, graph, x, chunk);
    if eval_set.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for &v in eval_set {
        let row = logits.row(v as usize);
        let mut best = 0usize;
        for (c, &val) in row.iter().enumerate() {
            if val > row[best] {
                best = c;
            }
        }
        if best == labels[v as usize] as usize {
            correct += 1;
        }
    }
    correct as f32 / eval_set.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::features::gather_features;
    use hyscale_graph::Dataset;
    use hyscale_sampler::NeighborSampler;
    use hyscale_tensor::Sgd;

    #[test]
    fn chunk_size_does_not_change_results() {
        let ds = Dataset::toy(61);
        let model = GnnModel::new(GnnKind::Gcn, &[16, 8, 4], 1);
        let a = full_graph_logits(&model, &ds.graph, &ds.data.features, 64);
        let b = full_graph_logits(&model, &ds.graph, &ds.data.features, 997);
        assert!(a.approx_eq(&b, 1e-5), "chunked inference diverges");
        assert_eq!(a.shape(), (1000, 4));
    }

    #[test]
    fn inference_uses_full_neighborhoods() {
        // with full fanout, sampled forward == exact inference on seeds
        let ds = Dataset::toy(62);
        let model = GnnModel::new(GnnKind::GraphSage, &[16, 8, 4], 2);
        let exact = full_graph_logits(&model, &ds.graph, &ds.data.features, 128);
        // sample with fanout >= max degree so nothing is dropped
        let max_deg = ds.graph.max_degree();
        let sampler = NeighborSampler::new(vec![max_deg, max_deg], 0);
        let seeds: Vec<u32> = (0..16).collect();
        let mb = sampler.sample(&ds.graph, &seeds, 0);
        let x = gather_features(&ds.data.features, &mb.input_nodes);
        let sampled = model.forward(&mb, &x);
        for (i, &s) in seeds.iter().enumerate() {
            let e = exact.row(s as usize);
            let got = sampled.row(i);
            for (a, b) in e.iter().zip(got) {
                assert!(
                    (a - b).abs() < 1e-3 * a.abs().max(1.0),
                    "vertex {s}: exact {a} vs sampled-full {b}"
                );
            }
        }
    }

    #[test]
    fn trained_model_beats_random_on_exact_eval() {
        let ds = Dataset::toy(63);
        let mut model = GnnModel::new(GnnKind::Gcn, &[16, 32, 4], 3);
        let sampler = NeighborSampler::new(vec![8, 4], 1);
        let mut opt = Sgd::new(0.3);
        for step in 0..30 {
            let start = (step * 32) % 512;
            let seeds: Vec<u32> = ds.splits.train[start..start + 32].to_vec();
            let mb = sampler.sample(&ds.graph, &seeds, step as u64);
            let x = gather_features(&ds.data.features, &mb.input_nodes);
            let labels: Vec<u32> = seeds.iter().map(|&s| ds.data.labels[s as usize]).collect();
            let out = model.train_step(&mb, &x, &labels);
            model.apply_gradients(&out.grads, &mut opt);
        }
        let acc = full_graph_accuracy(
            &model,
            &ds.graph,
            &ds.data.features,
            &ds.data.labels,
            &ds.splits.test,
            256,
        );
        assert!(acc > 0.7, "exact eval accuracy only {acc}");
    }
}
