//! Compressed sparse row graph storage.
//!
//! The input graph topology `G(V, E)` is stored once in CPU memory
//! (paper §III-B); samplers walk out-neighbour lists, and the FPGA
//! aggregation kernel consumes source-sorted edge lists derived from CSR.

use crate::types::{EdgeCount, GraphError, VertexId};

/// Directed graph in CSR form: `offsets[v]..offsets[v+1]` indexes into
/// `targets`, listing the out-neighbours of `v`.
///
/// Invariants (checked by [`CsrGraph::validate`], enforced by
/// constructors):
/// * `offsets.len() == num_vertices + 1`
/// * `offsets` monotone non-decreasing, `offsets[0] == 0`,
///   `offsets[num_vertices] == targets.len()`
/// * every target `< num_vertices`
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
}

impl CsrGraph {
    /// Construct from raw CSR arrays, validating all invariants.
    pub fn from_raw(offsets: Vec<u64>, targets: Vec<VertexId>) -> Result<Self, GraphError> {
        let g = Self { offsets, targets };
        g.validate()?;
        Ok(g)
    }

    /// Construct from an unsorted edge list via counting sort; `O(V + E)`.
    ///
    /// Multi-edges and self-loops are preserved (callers that need
    /// dedup/sorting use [`crate::builder::GraphBuilder`]).
    pub fn from_edges(
        num_vertices: usize,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Self, GraphError> {
        for &(s, t) in edges {
            let max = s.max(t);
            if max as usize >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: max,
                    num_vertices,
                });
            }
        }
        let mut counts = vec![0u64; num_vertices + 1];
        for &(s, _) in edges {
            counts[s as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; edges.len()];
        for &(s, t) in edges {
            let slot = cursor[s as usize];
            targets[slot as usize] = t;
            cursor[s as usize] += 1;
        }
        Ok(Self { offsets, targets })
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> EdgeCount {
        self.targets.len() as EdgeCount
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    /// If `v` is out of range (debug assertions).
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        debug_assert!(v < self.num_vertices());
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Out-neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        debug_assert!(v < self.num_vertices());
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Raw offset array (`num_vertices + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw target array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.num_vertices() as f64
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Check all CSR invariants.
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.num_vertices();
        if self.offsets.is_empty() {
            return Err(GraphError::BadOffsetLength {
                got: 0,
                expected: 1,
            });
        }
        if self.offsets[0] != 0 {
            return Err(GraphError::NonMonotonicOffsets { at: 0 });
        }
        for i in 0..n {
            if self.offsets[i + 1] < self.offsets[i] {
                return Err(GraphError::NonMonotonicOffsets { at: i + 1 });
            }
        }
        if self.offsets[n] != self.targets.len() as u64 {
            return Err(GraphError::BadOffsetLength {
                got: self.targets.len(),
                expected: self.offsets[n] as usize,
            });
        }
        for (i, &t) in self.targets.iter().enumerate() {
            if t as usize >= n {
                let _ = i;
                return Err(GraphError::VertexOutOfRange {
                    vertex: t,
                    num_vertices: n,
                });
            }
        }
        Ok(())
    }

    /// Reverse (transpose) graph: edge `(u,v)` becomes `(v,u)`.
    pub fn reverse(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut counts = vec![0u64; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        for s in 0..n {
            for &t in self.neighbors(s as VertexId) {
                let slot = cursor[t as usize];
                targets[slot as usize] = s as VertexId;
                cursor[t as usize] += 1;
            }
        }
        CsrGraph { offsets, targets }
    }

    /// Undirected view: union of the graph and its reverse, with
    /// duplicate edges removed. Neighbour lists come out sorted.
    pub fn symmetrize(&self) -> CsrGraph {
        let rev = self.reverse();
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut targets = Vec::with_capacity(self.targets.len() * 2);
        let mut merged: Vec<VertexId> = Vec::new();
        for v in 0..n as VertexId {
            merged.clear();
            merged.extend_from_slice(self.neighbors(v));
            merged.extend_from_slice(rev.neighbors(v));
            merged.sort_unstable();
            merged.dedup();
            targets.extend_from_slice(&merged);
            offsets.push(targets.len() as u64);
        }
        CsrGraph { offsets, targets }
    }

    /// Approximate resident size in bytes (offsets + targets), i.e. the
    /// CPU-memory footprint of the topology (used by the memory model).
    pub fn nbytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }

    /// Edge list sorted by source vertex — the order the FPGA kernel's
    /// feature duplicator requires (paper §IV-C: "sorts the edges within a
    /// mini-batch by their source vertex"). CSR is already source-grouped,
    /// so this is a linear scan.
    pub fn edges_by_source(&self) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::with_capacity(self.targets.len());
        for s in 0..self.num_vertices() as VertexId {
            for &t in self.neighbors(s) {
                out.push((s, t));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_basic() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.out_degree(1), 1);
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = CsrGraph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrGraph::from_raw(vec![0, 1, 2], vec![1, 0]).is_ok());
        assert!(matches!(
            CsrGraph::from_raw(vec![0, 2, 1], vec![1, 0]),
            Err(GraphError::NonMonotonicOffsets { at: 2 })
        ));
        assert!(matches!(
            CsrGraph::from_raw(vec![0, 1, 3], vec![1, 0]),
            Err(GraphError::BadOffsetLength { .. })
        ));
        assert!(matches!(
            CsrGraph::from_raw(vec![0, 1, 2], vec![1, 7]),
            Err(GraphError::VertexOutOfRange { vertex: 7, .. })
        ));
    }

    #[test]
    fn reverse_flips_edges() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), 4);
        assert_eq!(r.neighbors(3), &[1, 2]);
        assert_eq!(r.neighbors(0), &[] as &[VertexId]);
        // reverse twice = original edge multiset
        let rr = r.reverse();
        let mut a = g.edges_by_source();
        let mut b = rr.edges_by_source();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetrize_makes_undirected() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        let s = g.symmetrize();
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.neighbors(2), &[1]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn degree_stats() {
        let g = diamond();
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn multi_edges_preserved() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn edges_by_source_is_sorted_by_source() {
        let g = diamond();
        let e = g.edges_by_source();
        assert!(e.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn nbytes_counts_both_arrays() {
        let g = diamond();
        assert_eq!(g.nbytes(), 5 * 8 + 4 * 4);
    }
}
