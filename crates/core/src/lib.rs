//! # hyscale-core
//!
//! The HyScale-GNN training system (the paper's primary contribution):
//!
//! * [`protocol`] — the Processor–Accelerator Training Protocol
//!   (paper §III-C, Listing 1): DONE/ACK handshakes between trainer
//!   threads, the synchronizer, and the runtime, built on
//!   `parking_lot` mutex/condvar exactly like the paper's Pthreads
//!   implementation.
//! * [`sync`] — the Synchronizer: size-weighted gradient all-reduce
//!   (gather → average → broadcast, paper §III-A).
//! * [`drm`] — the Dynamic Resource Management engine (paper
//!   Algorithm 1): a bottleneck-guided optimizer with `balance_work`
//!   and `balance_thread` moves.
//! * [`perf_model`] — the design-time performance model (paper §V,
//!   Eq. 5–13) used for the initial task mapping and the scalability
//!   study.
//! * [`stages`] — the pipeline-stage vocabulary plus
//!   [`StageWorkers`]: the live, resizable worker
//!   pools (sampler / loader / trainer) through which DRM
//!   `balance_thread` decisions steer the *real* pipeline.
//! * [`prefetch`] — Task-level Feature Prefetching as a *real*
//!   pipeline (paper §IV-B): a background producer samples (under the
//!   sampler pool), NUMA-shards feature gathers across socket domains
//!   and fans per-trainer matrices out over loader lanes, and a
//!   dedicated transfer stage precision-round-trips iterations through
//!   per-accelerator [`prefetch::StagingRing`]s into a bounded queue
//!   overlapped with GNN propagation — double-buffered wire transfer,
//!   pool-recycled buffers, DRM-aware queue + ring invalidation,
//!   bitwise-identical to serial execution.
//! * [`executor`] — the hybrid trainer: 4-stage pipeline (Sampling →
//!   Feature Loading → Data Transfer → GNN Propagation) with Two-stage
//!   Feature Prefetching (paper §IV-B), functional training plus
//!   simulated device timing and measured per-stage wall-clock.
//!
//! The [`executor::HybridTrainer`] is the public entry point; see the
//! workspace `examples/` for end-to-end usage and the repository's
//! `ARCHITECTURE.md` for the pipeline and DRM event-flow diagrams.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod drm;
pub mod executor;
pub mod metrics;
pub mod perf_model;
pub mod pipeline;
pub mod prefetch;
pub mod protocol;
pub mod report;
pub mod stages;
pub mod sync;

pub use config::{AcceleratorKind, OptFlags, PlatformConfig, SystemConfig, TrainConfig};
pub use drm::{DrmEngine, QuotaDiff, ScriptedDrm, ScriptedDrmEvent, ThreadAlloc, WorkloadSplit};
pub use executor::HybridTrainer;
pub use perf_model::PerfModel;
pub use prefetch::{
    IterationFeed, MatrixPool, PrepareCtx, PreparedIteration, SlotToken, StagingRing, StagingRings,
    TransferLaneGate,
};
pub use report::{EpochReport, IterationReport, WallStageTimes};
pub use stages::{StageTimes, StageWorkers};
