//! CPU-side pipeline-stage models: sampling and feature loading.
//!
//! These are the stages whose *thread allocation* the DRM engine's
//! `balance_thread` move adjusts (paper §IV-A): loader throughput scales
//! with assigned threads until the socket DRAM bandwidth saturates —
//! exactly the saturation that caps scalability beyond 12 accelerators in
//! paper Fig. 9.

use crate::calib;
use crate::pcie::{LinkOccupancy, PcieLink};
use crate::spec::DeviceSpec;
use hyscale_sampler::WorkloadStats;

/// Model of the CPU Feature Loader (paper Fig. 3).
#[derive(Debug, Clone, Copy)]
pub struct LoaderModel {
    /// Host CPU spec (per socket).
    pub cpu: DeviceSpec,
    /// Number of sockets.
    pub sockets: usize,
}

impl LoaderModel {
    /// Loader on the given host.
    pub fn new(cpu: DeviceSpec, sockets: usize) -> Self {
        Self { cpu, sockets }
    }

    /// Achievable gather throughput (bytes/s) with `threads` loader
    /// threads: linear in threads, capped by effective DRAM bandwidth.
    pub fn throughput(&self, threads: usize) -> f64 {
        let per_thread = threads as f64 * calib::GATHER_PER_THREAD_GBS * 1e9;
        let cap =
            self.cpu.mem_bandwidth_gbs * 1e9 * self.sockets as f64 * calib::CPU_GATHER_BW_FRACTION;
        per_thread.min(cap)
    }

    /// Feature-loading time for the merged per-iteration workload
    /// (paper Eq. 7: `Σ_i |V^0_i| · f0 · S_feat / BW_DDR`).
    pub fn load_time(&self, total: &WorkloadStats, f0: usize, threads: usize) -> f64 {
        total.feature_bytes(f0) as f64 / self.throughput(threads.max(1))
    }

    /// Threads at which the loader saturates DRAM; extra threads beyond
    /// this are wasted (DRM should reassign them).
    pub fn saturation_threads(&self) -> usize {
        let cap = self.cpu.mem_bandwidth_gbs * self.sockets as f64 * calib::CPU_GATHER_BW_FRACTION;
        (cap / calib::GATHER_PER_THREAD_GBS).ceil() as usize
    }
}

/// Double-buffered transfer model for one accelerator: a staging ring
/// of `ring_depth` device-side buffers sits between the PCIe link and
/// the trainer kernel, so the wire transfer of batch `i+1` may overlap
/// the accelerator compute of batch `i` — but only while a staging slot
/// is free (a slot is held from the start of a batch's transfer until
/// its propagation completes).
///
/// `ring_depth = 1` is a single staging buffer (transfer and compute
/// serialize); `ring_depth = 2` is classic double buffering (HitGNN's
/// CPU–multi-FPGA arrangement); deeper rings only help when transfer
/// time fluctuates.
///
/// ```
/// use hyscale_device::pcie::PcieLink;
/// use hyscale_device::stage::StagingModel;
///
/// let link = PcieLink::new(10.0, 0.0);          // 0.1 s per 1 GB batch
/// let single = StagingModel::new(link, 1);
/// let double = StagingModel::new(link, 2);
/// // compute takes 0.3 s per batch, so a double buffer hides the wire
/// // time entirely while a single buffer pays it on every iteration
/// assert!((single.visible_transfer_time(1_000_000_000, 0.3) - 0.1).abs() < 1e-9);
/// assert!(double.visible_transfer_time(1_000_000_000, 0.3) < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StagingModel {
    /// The accelerator's PCIe link.
    pub link: PcieLink,
    /// Staging-ring slots per accelerator (clamped ≥ 1).
    pub ring_depth: usize,
}

/// Iterations simulated to reach (and average) the steady state.
const STAGING_WARMUP_ITERS: usize = 48;
const STAGING_MEASURE_ITERS: usize = 16;

impl StagingModel {
    /// A staging ring of `ring_depth` slots in front of `link`.
    pub fn new(link: PcieLink, ring_depth: usize) -> Self {
        Self {
            link,
            ring_depth: ring_depth.max(1),
        }
    }

    /// Steady-state per-iteration latency when every iteration moves
    /// `bytes` over the link and then computes for `compute_s`:
    /// event-simulates the (link occupancy, ring slots, compute) chain
    /// and returns the settled inter-completion gap.
    pub fn steady_iteration_time(&self, bytes: u64, compute_s: f64) -> f64 {
        let iters = STAGING_WARMUP_ITERS + STAGING_MEASURE_ITERS;
        let mut occ = LinkOccupancy::new(self.link);
        let mut compute_done = vec![0.0f64; iters];
        for i in 0..iters {
            // the transfer needs a free staging slot: the one released
            // when batch `i - ring_depth` finished its propagation
            let slot_free = if i >= self.ring_depth {
                compute_done[i - self.ring_depth]
            } else {
                0.0
            };
            let window = occ.schedule(slot_free, bytes);
            let prev_compute = if i > 0 { compute_done[i - 1] } else { 0.0 };
            compute_done[i] = window.end_s.max(prev_compute) + compute_s;
        }
        (compute_done[iters - 1] - compute_done[iters - 1 - STAGING_MEASURE_ITERS])
            / STAGING_MEASURE_ITERS as f64
    }

    /// Wire time that shows up on the critical path per iteration (the
    /// stall the trainer actually sees). Zero when the ring fully hides
    /// the transfer behind compute.
    pub fn visible_transfer_time(&self, bytes: u64, compute_s: f64) -> f64 {
        (self.steady_iteration_time(bytes, compute_s) - compute_s).max(0.0)
    }

    /// Wire time hidden behind accelerator compute per iteration.
    pub fn hidden_transfer_time(&self, bytes: u64, compute_s: f64) -> f64 {
        (self.link.transfer_time(bytes) - self.visible_transfer_time(bytes, compute_s)).max(0.0)
    }
}

/// Model of the CPU Mini-batch Sampler (paper Fig. 3).
///
/// The paper profiles sampling rather than modelling it in closed form
/// (§V); this model is the reproduction's "profile": a per-thread edge
/// rate measured once and reused.
#[derive(Debug, Clone, Copy)]
pub struct SamplerModel {
    /// Edges sampled per second per thread.
    pub eps_per_thread: f64,
}

impl Default for SamplerModel {
    fn default() -> Self {
        Self {
            eps_per_thread: calib::CPU_SAMPLE_EPS_PER_THREAD,
        }
    }
}

impl SamplerModel {
    /// Time for CPU threads to sample workloads totalling `edges` edges.
    pub fn sample_time(&self, edges: u64, threads: usize) -> f64 {
        edges as f64 / (self.eps_per_thread * threads.max(1) as f64)
    }

    /// Time for an accelerator sampling at `device_eps` edges/second.
    pub fn accel_sample_time(&self, edges: u64, device_eps: f64) -> f64 {
        edges as f64 / device_eps.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EPYC_7763;

    fn workload() -> WorkloadStats {
        WorkloadStats {
            batch_size: 4096,
            input_nodes: 800_000,
            nodes_per_layer: vec![100_000, 4096],
            edges_per_layer: vec![1_000_000, 102_400],
        }
    }

    #[test]
    fn loader_scales_then_saturates() {
        let m = LoaderModel::new(EPYC_7763, 2);
        let t4 = m.load_time(&workload(), 128, 4);
        let t16 = m.load_time(&workload(), 128, 16);
        assert!(t16 < t4, "more threads should speed loading");
        // far past saturation there is no further gain
        let sat = m.saturation_threads();
        let a = m.load_time(&workload(), 128, sat);
        let b = m.load_time(&workload(), 128, sat * 4);
        assert!((a - b).abs() < 1e-12, "beyond saturation must be flat");
    }

    #[test]
    fn saturation_point_reasonable() {
        let m = LoaderModel::new(EPYC_7763, 2);
        let sat = m.saturation_threads();
        // 246 GB/s / 3 GB/s = 82 threads
        assert!(sat > 40 && sat < 128, "saturation at {sat}");
    }

    #[test]
    fn eq7_form() {
        let m = LoaderModel::new(EPYC_7763, 2);
        let w = workload();
        let t = m.load_time(&w, 128, 1_000_000); // fully saturated
        let bytes = w.feature_bytes(128) as f64;
        let bw = 205e9 * 2.0 * calib::CPU_GATHER_BW_FRACTION;
        assert!((t - bytes / bw).abs() / t < 1e-9);
    }

    #[test]
    fn single_buffer_pays_full_wire_time() {
        let m = StagingModel::new(PcieLink::new(10.0, 0.0), 1);
        let bytes = 1_000_000_000; // 0.1 s on the wire
                                   // with one slot, transfer i+1 cannot start until compute i ends
        let visible = m.visible_transfer_time(bytes, 0.25);
        assert!((visible - 0.1).abs() < 1e-9, "visible {visible}");
        assert!((m.steady_iteration_time(bytes, 0.25) - 0.35).abs() < 1e-9);
    }

    #[test]
    fn double_buffer_hides_transfer_behind_compute() {
        let m = StagingModel::new(PcieLink::new(10.0, 0.0), 2);
        let bytes = 1_000_000_000; // 0.1 s on the wire, compute 0.25 s
        assert!(m.visible_transfer_time(bytes, 0.25) < 1e-9);
        assert!((m.hidden_transfer_time(bytes, 0.25) - 0.1).abs() < 1e-9);
        // bandwidth-bound regime: compute 0.04 s < wire 0.1 s — the link
        // becomes the bottleneck and the residual stall is wire - compute
        let visible = m.visible_transfer_time(bytes, 0.04);
        assert!((visible - 0.06).abs() < 1e-9, "visible {visible}");
        assert!((m.steady_iteration_time(bytes, 0.04) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn deeper_rings_never_hurt() {
        let bytes = 500_000_000;
        let compute = 0.03;
        let link = PcieLink::new(12.0, 1e-5);
        let t1 = StagingModel::new(link, 1).steady_iteration_time(bytes, compute);
        let t2 = StagingModel::new(link, 2).steady_iteration_time(bytes, compute);
        let t4 = StagingModel::new(link, 4).steady_iteration_time(bytes, compute);
        assert!(t2 <= t1 + 1e-12);
        assert!(t4 <= t2 + 1e-12);
        // ring depth is clamped to ≥ 1
        assert_eq!(
            StagingModel::new(link, 0).ring_depth,
            1,
            "zero-depth ring must clamp"
        );
    }

    #[test]
    fn sampler_linear_in_threads() {
        let s = SamplerModel::default();
        let t1 = s.sample_time(10_000_000, 1);
        let t8 = s.sample_time(10_000_000, 8);
        assert!((t1 / t8 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn accel_sampling() {
        let s = SamplerModel::default();
        let t = s.accel_sample_time(400_000_000, calib::GPU_SAMPLE_EPS);
        assert!((t - 1.0).abs() < 1e-9);
    }
}
