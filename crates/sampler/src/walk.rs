//! Random-walk subgraph sampling (GraphSAINT-RW, the paper's second cited
//! sampling algorithm \[29]).
//!
//! Unlike fanout sampling, SAINT draws a *subgraph*: root vertices start
//! fixed-length random walks, the union of visited vertices induces the
//! training subgraph, and a full GCN runs on it. HyScale-GNN's sampling
//! stage is algorithm-agnostic (paper §V: "the computation pattern varies
//! in different sampling algorithms"), so this sampler shares the
//! [`MiniBatch`] output format by emitting identical blocks per layer over
//! the induced subgraph.

use crate::minibatch::{Block, MiniBatch};
use hyscale_graph::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// GraphSAINT-style random-walk sampler.
#[derive(Clone, Debug)]
pub struct RandomWalkSampler {
    /// Number of root vertices per batch.
    pub roots: usize,
    /// Walk length from each root.
    pub walk_length: usize,
    /// Number of GNN layers to emit blocks for.
    pub layers: usize,
    seed: u64,
}

impl RandomWalkSampler {
    /// New sampler; `layers` controls how many identical induced blocks
    /// the emitted mini-batch carries.
    ///
    /// # Panics
    /// If any parameter is zero.
    pub fn new(roots: usize, walk_length: usize, layers: usize, seed: u64) -> Self {
        assert!(roots > 0 && walk_length > 0 && layers > 0);
        Self {
            roots,
            walk_length,
            layers,
            seed,
        }
    }

    /// Sample the induced subgraph reached by `roots` walks starting at
    /// `seeds[..roots]` (cycled if fewer seeds are provided).
    pub fn sample(&self, graph: &CsrGraph, seeds: &[VertexId], stream: u64) -> MiniBatch {
        assert!(!seeds.is_empty(), "need at least one seed");
        let mut rng = SmallRng::seed_from_u64(self.seed ^ stream.wrapping_mul(0xA24BAED4963EE407));
        let mut nodes: Vec<VertexId> = Vec::new();
        let mut local: HashMap<VertexId, u32> = HashMap::new();
        let intern =
            |v: VertexId, nodes: &mut Vec<VertexId>, local: &mut HashMap<VertexId, u32>| -> u32 {
                let next = nodes.len() as u32;
                *local.entry(v).or_insert_with(|| {
                    nodes.push(v);
                    next
                })
            };

        for r in 0..self.roots {
            let mut v = seeds[r % seeds.len()];
            intern(v, &mut nodes, &mut local);
            for _ in 0..self.walk_length {
                let neigh = graph.neighbors(v);
                if neigh.is_empty() {
                    break;
                }
                v = neigh[rng.gen_range(0..neigh.len())];
                intern(v, &mut nodes, &mut local);
            }
        }

        // induced edges among visited vertices
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        for (si, &v) in nodes.iter().enumerate() {
            for &t in graph.neighbors(v) {
                if let Some(&ti) = local.get(&t) {
                    edge_src.push(si as u32);
                    edge_dst.push(ti);
                }
            }
        }

        let n = nodes.len();
        let block = Block {
            num_src: n,
            num_dst: n,
            edge_src,
            edge_dst,
        };
        let blocks = vec![block; self.layers];
        MiniBatch {
            input_nodes: nodes.clone(),
            seeds: nodes,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::generator::{sbm, SbmConfig};

    fn g() -> CsrGraph {
        let (g, _) = sbm(
            SbmConfig {
                num_vertices: 300,
                communities: 3,
                avg_degree: 10,
                p_intra: 0.8,
            },
            2,
        );
        g.symmetrize()
    }

    #[test]
    fn walk_produces_valid_minibatch() {
        let s = RandomWalkSampler::new(8, 4, 2, 1);
        let mb = s.sample(&g(), &[0, 50, 100], 0);
        mb.validate().unwrap();
        assert_eq!(mb.num_layers(), 2);
        // square blocks: dst == src == subgraph
        assert_eq!(mb.blocks[0].num_src, mb.blocks[0].num_dst);
    }

    #[test]
    fn subgraph_size_bounded_by_walk_budget() {
        let s = RandomWalkSampler::new(4, 5, 1, 2);
        let mb = s.sample(&g(), &[0], 0);
        assert!(
            mb.input_nodes.len() <= 4 * 6,
            "visited {}",
            mb.input_nodes.len()
        );
        assert!(!mb.input_nodes.is_empty());
    }

    #[test]
    fn induced_edges_connect_visited_only() {
        let graph = g();
        let s = RandomWalkSampler::new(6, 3, 1, 3);
        let mb = s.sample(&graph, &[10, 20], 1);
        let b = &mb.blocks[0];
        for (&si, &di) in b.edge_src.iter().zip(&b.edge_dst) {
            let u = mb.input_nodes[si as usize];
            let v = mb.input_nodes[di as usize];
            assert!(graph.neighbors(u).contains(&v), "({u},{v}) not a real edge");
        }
    }

    #[test]
    fn deterministic() {
        let graph = g();
        let s = RandomWalkSampler::new(5, 4, 1, 7);
        let a = s.sample(&graph, &[1, 2, 3], 9);
        let b = s.sample(&graph, &[1, 2, 3], 9);
        assert_eq!(a.input_nodes, b.input_nodes);
    }

    #[test]
    fn isolated_root_is_kept() {
        let graph = CsrGraph::empty(4);
        let s = RandomWalkSampler::new(2, 3, 1, 0);
        let mb = s.sample(&graph, &[2], 0);
        assert_eq!(mb.input_nodes, vec![2]);
        assert_eq!(mb.blocks[0].num_edges(), 0);
    }
}
