//! Integration tests for the reproduction's extension features:
//! §VIII data quantization, the discrete-event pipeline simulator,
//! checkpointing, GIN, and the GraphSAINT sampler family.

use hyscale::core::pipeline::{simulate_pipeline, PipelineStageCosts};
use hyscale::core::{AcceleratorKind, HybridTrainer, PerfModel, SystemConfig};
use hyscale::gnn::{GnnKind, GnnModel};
use hyscale::graph::features::gather_features;
use hyscale::graph::Dataset;
use hyscale::sampler::{EdgeSampler, NodeSampler};
use hyscale::tensor::{Precision, Sgd};

fn toy_system(model: GnnKind) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
    cfg.platform.num_accelerators = 2;
    cfg.train.batch_per_trainer = 96;
    cfg.train.fanouts = vec![8, 4];
    cfg.train.hidden_dim = 32;
    cfg.train.learning_rate = 0.3;
    cfg.train.max_functional_iters = Some(5);
    cfg
}

#[test]
fn quantized_transfer_shrinks_transfer_time() {
    let ds = hyscale::graph::dataset::OGBN_PAPERS100M;
    let time_at = |p: Precision| {
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
        cfg.train.transfer_precision = p;
        let pm = PerfModel::new(&cfg);
        let (split, threads) = pm.settled_mapping(&ds);
        pm.stage_times_runtime(&ds, &split, &threads).transfer
    };
    let f32_t = time_at(Precision::F32);
    let f16_t = time_at(Precision::F16);
    let i8_t = time_at(Precision::Int8);
    assert!(f16_t < f32_t * 0.7, "f16 transfer {f16_t} vs f32 {f32_t}");
    assert!(i8_t < f16_t, "int8 transfer {i8_t} vs f16 {f16_t}");
}

#[test]
fn quantized_training_still_converges() {
    for p in [Precision::F16, Precision::Int8] {
        let dataset = Dataset::toy(51);
        let test = dataset.splits.test.clone();
        let mut cfg = toy_system(GnnKind::GraphSage);
        cfg.train.transfer_precision = p;
        let mut trainer = HybridTrainer::new(cfg, dataset);
        trainer.train_epochs(8);
        let acc = trainer.evaluate(&test);
        assert!(acc > 0.85, "{p:?}: accuracy only {acc}");
    }
}

#[test]
fn quantization_changes_numerics_but_not_structure() {
    // int8 must actually perturb the computation (proves the functional
    // path quantizes for real, rather than only adjusting the clock)
    let run = |p: Precision| {
        let dataset = Dataset::toy(52);
        let mut cfg = toy_system(GnnKind::Gcn);
        cfg.opt.drm = false;
        cfg.train.transfer_precision = p;
        let mut t = HybridTrainer::new(cfg, dataset);
        t.train_epochs(2);
        t.model().flatten_params()
    };
    assert_ne!(run(Precision::F32), run(Precision::Int8));
}

#[test]
fn pipeline_simulator_agrees_with_analytic_model() {
    // steady-state gap of the event simulation == Eq. 6's max(stages)
    let ds = hyscale::graph::dataset::MAG240M_HOMO;
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
    let pm = PerfModel::new(&cfg);
    let (split, threads) = pm.settled_mapping(&ds);
    let times = pm.stage_times_runtime(&ds, &split, &threads);
    let costs = PipelineStageCosts::from_stage_times(&times);
    let run = simulate_pipeline(&costs, 60, 2);
    let analytic = times.pipelined_iteration();
    assert!(
        (run.steady_gap - analytic).abs() / analytic < 1e-9,
        "event sim {} vs analytic {}",
        run.steady_gap,
        analytic
    );
    // fill overhead bounded by one serial traversal (§VI-C flush source)
    let overhead = run.makespan - 60.0 * analytic;
    assert!(overhead >= 0.0 && overhead <= costs.serial());
}

#[test]
fn checkpoint_roundtrip_resumes_identically() {
    let dataset = Dataset::toy(53);
    let cfg = toy_system(GnnKind::Gcn);

    // train 3 epochs, checkpoint, train 2 more
    let mut a = HybridTrainer::new(cfg.clone(), dataset.clone());
    a.train_epochs(3);
    let ckpt = a.checkpoint();
    a.train_epochs(2);

    // restore into a fresh trainer and train the same 2 epochs
    let mut b = HybridTrainer::new(cfg, dataset);
    b.restore(&ckpt);
    b.train_epochs(2);

    assert_eq!(
        a.model().flatten_params(),
        b.model().flatten_params(),
        "resumed training diverged from the original run"
    );
}

#[test]
fn checkpoint_serialization_roundtrip() {
    let dataset = Dataset::toy(54);
    let mut t = HybridTrainer::new(toy_system(GnnKind::Gcn), dataset);
    t.train_epochs(1);
    let ckpt = t.checkpoint();
    let mut buf = Vec::new();
    ckpt.write(&mut buf).unwrap();
    let back = hyscale::core::checkpoint::Checkpoint::read(&buf[..]).unwrap();
    assert_eq!(ckpt, back);
}

#[test]
fn gin_trains_through_the_full_system() {
    let dataset = Dataset::toy(55);
    let test = dataset.splits.test.clone();
    let mut cfg = toy_system(GnnKind::Gin);
    // unnormalised sum aggregation scales activations with degree, so
    // GIN needs a far smaller step than the normalised models
    cfg.train.learning_rate = 0.01;
    let mut trainer = HybridTrainer::new(cfg, dataset);
    trainer.train_epochs(10);
    let acc = trainer.evaluate(&test);
    assert!(acc > 0.8, "GIN accuracy only {acc}");
}

#[test]
fn saint_samplers_train_gcn() {
    // subgraph-based training (the paper's second sampling family [29])
    let ds = Dataset::toy(56);
    let model_dims = [16usize, 32, 4];
    let mut model = GnnModel::new(GnnKind::Gcn, &model_dims, 3);
    let mut opt = Sgd::new(0.3);
    let node_sampler = NodeSampler::new(192, 2, 1);
    let edge_sampler = EdgeSampler::new(96, 2, 2);

    let mut first = None;
    let mut last = 0.0f32;
    for step in 0..40u64 {
        let mb = if step % 2 == 0 {
            node_sampler.sample(&ds.graph, step)
        } else {
            edge_sampler.sample(&ds.graph, step)
        };
        let x = gather_features(&ds.data.features, &mb.input_nodes);
        let labels: Vec<u32> = mb
            .seeds
            .iter()
            .map(|&s| ds.data.labels[s as usize])
            .collect();
        let out = model.train_step(&mb, &x, &labels);
        model.apply_gradients(&out.grads, &mut opt);
        if first.is_none() {
            first = Some(out.loss);
        }
        last = out.loss;
    }
    let first = first.unwrap();
    assert!(
        last < first * 0.6,
        "SAINT training stalled: {first} -> {last}"
    );
}
