//! Closed-form expected mini-batch workload.
//!
//! The design-time performance model (paper §V) needs workload numbers
//! before any batch is sampled. For fanout sampling over a graph with
//! average degree `d̄` and `|V| = n`, each hop multiplies the frontier by
//! `min(fanout, d̄)` and dedup collapses repeated draws: the expected
//! number of distinct vertices after `k` uniform draws from `n` is
//! `n · (1 − (1 − 1/n)^k)` (birthday-paradox correction).

use crate::minibatch::WorkloadStats;

/// Expected distinct count after `draws` uniform samples from a
/// population of `n`.
pub fn expected_distinct(n: f64, draws: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    n * (1.0 - (1.0 - 1.0 / n).powf(draws))
}

/// Expected per-batch workload for fanout neighbor sampling.
///
/// * `num_vertices`, `avg_degree` — graph statistics.
/// * `batch_size` — seed count `|V^L|`.
/// * `fanouts` — per-hop fanouts, seed-side first (paper order `(25, 10)`).
///
/// Returns layer counts in the same input→output order as
/// [`crate::minibatch::MiniBatch::stats`].
pub fn expected_workload(
    num_vertices: u64,
    avg_degree: f64,
    batch_size: usize,
    fanouts: &[usize],
) -> WorkloadStats {
    let n = num_vertices as f64;
    let mut frontier = batch_size as f64; // |V^L|
                                          // walk seed-side -> input-side, recording per-layer dst/edge counts
    let mut nodes_rev: Vec<usize> = Vec::with_capacity(fanouts.len());
    let mut edges_rev: Vec<usize> = Vec::with_capacity(fanouts.len());
    for &fanout in fanouts {
        let eff_fanout = (fanout as f64).min(avg_degree);
        let edges = frontier * eff_fanout;
        nodes_rev.push(frontier.round() as usize);
        edges_rev.push(edges.round() as usize);
        // new frontier: dst set plus distinct sampled neighbours
        let distinct_new = expected_distinct(n, edges);
        frontier = (frontier + distinct_new).min(n);
    }
    let input_nodes = frontier.round() as usize;
    nodes_rev.reverse();
    edges_rev.reverse();
    WorkloadStats {
        batch_size,
        input_nodes,
        nodes_per_layer: nodes_rev,
        edges_per_layer: edges_rev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborSampler;
    use hyscale_graph::generator::{sbm, SbmConfig};
    use hyscale_graph::VertexId;

    #[test]
    fn distinct_bounds() {
        assert!(expected_distinct(100.0, 0.0) < 1e-9);
        assert!((expected_distinct(100.0, 1.0) - 1.0).abs() < 1e-9);
        // draws >> n saturates at n
        assert!((expected_distinct(50.0, 1e6) - 50.0).abs() < 1e-6);
        // monotone
        assert!(expected_distinct(1000.0, 100.0) < expected_distinct(1000.0, 200.0));
    }

    #[test]
    fn workload_layer_ordering() {
        let w = expected_workload(1_000_000, 20.0, 1024, &[25, 10]);
        // input->output: nodes_per_layer[1] is the seed-side dst = 1024
        assert_eq!(w.nodes_per_layer[1], 1024);
        // seed-side edges = 1024 * min(25, 20)
        assert_eq!(w.edges_per_layer[1], 1024 * 20);
        // inner layer is larger
        assert!(w.nodes_per_layer[0] > w.nodes_per_layer[1]);
        assert!(w.edges_per_layer[0] > w.edges_per_layer[1]);
        assert!(w.input_nodes >= w.nodes_per_layer[0]);
    }

    #[test]
    fn estimate_tracks_measured_workload() {
        // Estimate should be within ~35% of a real sampled batch on a
        // uniformish graph (it ignores degree skew, so allow slack).
        let (g, _) = sbm(
            SbmConfig {
                num_vertices: 4000,
                communities: 8,
                avg_degree: 16,
                p_intra: 0.8,
            },
            3,
        );
        let g = g.symmetrize();
        let sampler = NeighborSampler::new(vec![10, 5], 1);
        let seeds: Vec<VertexId> = (0..256).collect();
        let measured = sampler.sample(&g, &seeds, 0).stats();
        let est = expected_workload(g.num_vertices() as u64, g.avg_degree(), 256, &[10, 5]);
        let rel = |a: usize, b: usize| (a as f64 - b as f64).abs() / b.max(1) as f64;
        assert!(
            rel(est.input_nodes, measured.input_nodes) < 0.35,
            "estimated |V0| {} vs measured {}",
            est.input_nodes,
            measured.input_nodes
        );
        assert!(
            rel(est.total_edges() as usize, measured.total_edges() as usize) < 0.35,
            "estimated |E| {} vs measured {}",
            est.total_edges(),
            measured.total_edges()
        );
    }

    #[test]
    fn saturates_on_tiny_graph() {
        let w = expected_workload(100, 50.0, 64, &[25, 25]);
        assert!(w.input_nodes <= 100);
    }
}
