//! Cycle-approximate functional simulation of the FPGA GNN kernel
//! (paper §IV-C, Fig. 6).
//!
//! The datapath:
//!
//! 1. Edges are **sorted by source vertex** so edges sharing a source run
//!    back-to-back.
//! 2. The **Feature Duplicator** reads each distinct source feature from
//!    device DRAM *once* and broadcasts it to the scatter-PEs; the
//!    feature is reused `D_out(v)` times, cutting input traffic from
//!    `O(|E^1|)` to `O(|V^0|)`.
//! 3. `n` **S-PE/G-PE pairs** process `n` edges per beat, accumulating
//!    into on-chip destination buffers.
//! 4. The aggregated output feeds the **systolic update array** (`m` MACs)
//!    directly — intermediates never touch DRAM; only the final layer
//!    writes back.
//!
//! The simulator produces the numeric result (must match the reference
//! CPU aggregation) *and* cycle/traffic counters (must match the
//! analytical [`crate::timing::FpgaTiming`] model to first order).

use hyscale_sampler::Block;
use hyscale_tensor::{gemm_nn, Matrix};

/// Hardware configuration of the kernel (paper Table IV: `(n, m)`).
#[derive(Debug, Clone, Copy)]
pub struct FpgaKernelConfig {
    /// Number of scatter-gather PE pairs (edges processed per beat).
    pub n_pes: usize,
    /// MAC units in the systolic update array.
    pub m_macs: usize,
    /// Vector lanes per PE (feature elements per cycle).
    pub vec_lanes: usize,
    /// On-chip buffer capacity in bytes (BRAM+URAM available to buffers).
    pub onchip_bytes: usize,
}

impl Default for FpgaKernelConfig {
    /// Table IV configuration on a U250: (n, m) = (8, 2048).
    fn default() -> Self {
        Self {
            n_pes: 8,
            m_macs: 2048,
            vec_lanes: 16,
            onchip_bytes: 54 * 1024 * 1024,
        }
    }
}

/// Counters and results from one simulated kernel invocation.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Numeric output of the stage.
    pub result: Matrix,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Bytes read from device DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to device DRAM.
    pub dram_write_bytes: u64,
    /// Peak on-chip buffer occupancy in bytes.
    pub onchip_peak_bytes: u64,
    /// True when the working set exceeded `onchip_bytes` (would spill on
    /// real hardware).
    pub spilled: bool,
}

/// Simulate the scatter-gather aggregation stage with per-edge
/// coefficients `edge_coef` and per-destination self-loop coefficients
/// `self_coef` (empty slice = no self loops; use uniform `1/deg` weights
/// for mean aggregation).
///
/// `write_back` selects whether the result leaves the chip (final layer)
/// or stays in on-chip buffers for the next stage (paper: "only the
/// final output is written back").
///
/// # Panics
/// If coefficient lengths disagree with the block.
pub fn simulate_aggregation(
    block: &Block,
    h_src: &Matrix,
    edge_coef: &[f32],
    self_coef: &[f32],
    config: &FpgaKernelConfig,
    write_back: bool,
) -> KernelRun {
    assert_eq!(h_src.rows(), block.num_src, "h_src rows mismatch");
    assert_eq!(
        edge_coef.len(),
        block.num_edges(),
        "edge coefficient count mismatch"
    );
    assert!(
        self_coef.is_empty() || self_coef.len() == block.num_dst,
        "self coefficient count mismatch"
    );
    let f = h_src.cols();
    let read_cycles_per_row = (f as u64).div_ceil(config.vec_lanes as u64);

    let mut result = Matrix::zeros(block.num_dst, f);
    let mut cycles: u64 = 0;
    let mut dram_read_bytes: u64 = 0;

    // Self loops: destinations are the prefix of the source set; their
    // rows stream through the duplicator once as well.
    if !self_coef.is_empty() {
        for (d, &c) in self_coef.iter().enumerate().take(block.num_dst) {
            let row = h_src.row(d);
            let out = result.row_mut(d);
            for (o, x) in out.iter_mut().zip(row) {
                *o += c * *x;
            }
        }
        dram_read_bytes += (block.num_dst * f * 4) as u64;
        cycles += block.num_dst as u64 * read_cycles_per_row;
    }

    // Edge phase: sorted by source; one DRAM read per distinct source,
    // groups dispatched n edges per beat.
    let edges = block.edges_sorted_by_src();
    // edge_coef is indexed by original edge order; rebuild pairs with
    // their coefficients in sorted order.
    let mut order: Vec<usize> = (0..block.num_edges()).collect();
    order.sort_by_key(|&i| block.edge_src[i]);

    let mut i = 0usize;
    while i < edges.len() {
        let src = edges[i].0;
        let mut group_end = i;
        while group_end < edges.len() && edges[group_end].0 == src {
            group_end += 1;
        }
        let group = group_end - i;
        // duplicator: one DRAM read for this source row
        dram_read_bytes += (f * 4) as u64;
        let read_cycles = read_cycles_per_row;
        // n PEs consume `group` edges; each edge costs ceil(f/lanes) cycles
        let beats = (group as u64).div_ceil(config.n_pes as u64);
        let proc_cycles = beats * read_cycles_per_row;
        cycles += read_cycles.max(proc_cycles);

        let src_row: Vec<f32> = h_src.row(src as usize).to_vec();
        for &orig in &order[i..group_end] {
            let dst = block.edge_dst[orig] as usize;
            let c = edge_coef[orig];
            let out = result.row_mut(dst);
            for (o, x) in out.iter_mut().zip(&src_row) {
                *o += c * *x;
            }
        }
        i = group_end;
    }

    // on-chip: destination accumulators + one duplicated source row
    let onchip_peak_bytes = (block.num_dst * f * 4 + f * 4) as u64;
    let spilled = onchip_peak_bytes > config.onchip_bytes as u64;
    let dram_write_bytes = if write_back {
        (block.num_dst * f * 4) as u64
    } else {
        0
    };
    if write_back {
        cycles += block.num_dst as u64 * read_cycles_per_row;
    }

    KernelRun {
        result,
        cycles,
        dram_read_bytes,
        dram_write_bytes,
        onchip_peak_bytes,
        spilled,
    }
}

/// Simulate the systolic-array update stage: `Z = A·W + b`, consuming the
/// aggregation output directly from on-chip buffers (zero DRAM reads for
/// `A`; `W` is resident on-chip).
pub fn simulate_update(
    agg: &Matrix,
    w: &Matrix,
    bias: &[f32],
    config: &FpgaKernelConfig,
    write_back: bool,
) -> KernelRun {
    assert_eq!(agg.cols(), w.rows(), "GEMM inner dimension mismatch");
    assert_eq!(bias.len(), w.cols(), "bias width mismatch");
    let mut result = gemm_nn(agg, w);
    hyscale_tensor::ops::add_bias_inplace(&mut result, bias);

    let macs = agg.rows() as u64 * agg.cols() as u64 * w.cols() as u64;
    let cycles = macs.div_ceil(config.m_macs as u64);
    let onchip = (agg.nbytes() + w.nbytes() + result.nbytes()) as u64;
    KernelRun {
        dram_write_bytes: if write_back {
            result.nbytes() as u64
        } else {
            0
        },
        result,
        cycles,
        dram_read_bytes: 0,
        onchip_peak_bytes: onchip,
        spilled: onchip > config.onchip_bytes as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_tensor::init::randn;

    fn block() -> Block {
        Block {
            num_src: 6,
            num_dst: 3,
            edge_src: vec![5, 0, 3, 0, 4, 1],
            edge_dst: vec![0, 1, 2, 0, 1, 2],
        }
    }

    /// Reference aggregation in arbitrary order (matches
    /// hyscale_gnn::aggregate semantics).
    fn reference(block: &Block, h: &Matrix, edge_coef: &[f32], self_coef: &[f32]) -> Matrix {
        let f = h.cols();
        let mut out = Matrix::zeros(block.num_dst, f);
        if !self_coef.is_empty() {
            for d in 0..block.num_dst {
                for c in 0..f {
                    out[(d, c)] += self_coef[d] * h[(d, c)];
                }
            }
        }
        for (i, (&s, &d)) in block.edge_src.iter().zip(&block.edge_dst).enumerate() {
            for c in 0..f {
                out[(d as usize, c)] += edge_coef[i] * h[(s as usize, c)];
            }
        }
        out
    }

    #[test]
    fn aggregation_matches_reference() {
        let b = block();
        let h = randn(6, 20, 3);
        let edge_coef: Vec<f32> = (0..b.num_edges()).map(|i| 0.1 + i as f32 * 0.05).collect();
        let self_coef: Vec<f32> = vec![0.5, 0.25, 1.0];
        let run = simulate_aggregation(&b, &h, &edge_coef, &self_coef, &Default::default(), false);
        let expect = reference(&b, &h, &edge_coef, &self_coef);
        assert!(
            run.result.approx_eq(&expect, 1e-5),
            "FPGA sim diverges from reference"
        );
    }

    #[test]
    fn duplicator_reads_each_source_once() {
        let b = Block {
            num_src: 3,
            num_dst: 2,
            // source 0 has out-degree 3: must be read once, reused 3x
            edge_src: vec![0, 0, 0, 2],
            edge_dst: vec![0, 1, 0, 1],
        };
        let h = randn(3, 16, 1);
        let coef = vec![1.0f32; 4];
        let run = simulate_aggregation(&b, &h, &coef, &[], &Default::default(), false);
        // 2 distinct sources referenced (0 and 2) * 16 floats * 4 bytes
        assert_eq!(run.dram_read_bytes, 2 * 16 * 4);
    }

    #[test]
    fn no_intermediate_writeback() {
        let b = block();
        let h = randn(6, 8, 2);
        let coef = vec![1.0f32; b.num_edges()];
        let inner = simulate_aggregation(&b, &h, &coef, &[], &Default::default(), false);
        assert_eq!(inner.dram_write_bytes, 0);
        let last = simulate_aggregation(&b, &h, &coef, &[], &Default::default(), true);
        assert_eq!(last.dram_write_bytes, (3 * 8 * 4) as u64);
    }

    #[test]
    fn cycles_scale_with_pe_count() {
        // many edges from one source: beats = edges / n_pes
        let e = 64;
        let b = Block {
            num_src: 2,
            num_dst: 1,
            edge_src: vec![0; e],
            edge_dst: vec![0; e],
        };
        let h = randn(2, 16, 4);
        let coef = vec![1.0f32; e];
        let small = FpgaKernelConfig {
            n_pes: 2,
            ..Default::default()
        };
        let big = FpgaKernelConfig {
            n_pes: 16,
            ..Default::default()
        };
        let c_small = simulate_aggregation(&b, &h, &coef, &[], &small, false).cycles;
        let c_big = simulate_aggregation(&b, &h, &coef, &[], &big, false).cycles;
        assert!(
            c_small > c_big * 4,
            "PE scaling broken: {c_small} vs {c_big}"
        );
    }

    #[test]
    fn spill_detection() {
        let b = block();
        let h = randn(6, 64, 5);
        let coef = vec![1.0f32; b.num_edges()];
        let tiny = FpgaKernelConfig {
            onchip_bytes: 64,
            ..Default::default()
        };
        let run = simulate_aggregation(&b, &h, &coef, &[], &tiny, false);
        assert!(run.spilled);
        let run2 = simulate_aggregation(&b, &h, &coef, &[], &Default::default(), false);
        assert!(!run2.spilled);
    }

    #[test]
    fn update_stage_matches_gemm() {
        let agg = randn(5, 8, 6);
        let w = randn(8, 3, 7);
        let bias = vec![0.5f32, -0.5, 0.0];
        let run = simulate_update(&agg, &w, &bias, &Default::default(), true);
        let mut expect = gemm_nn(&agg, &w);
        hyscale_tensor::ops::add_bias_inplace(&mut expect, &bias);
        assert!(run.result.approx_eq(&expect, 1e-6));
        assert_eq!(run.dram_read_bytes, 0, "A and W are on-chip");
        assert_eq!(run.cycles, (5u64 * 8 * 3).div_ceil(2048));
    }

    #[test]
    fn update_cycles_scale_with_macs() {
        let agg = randn(64, 128, 8);
        let w = randn(128, 64, 9);
        let bias = vec![0.0f32; 64];
        let small = FpgaKernelConfig {
            m_macs: 256,
            ..Default::default()
        };
        let big = FpgaKernelConfig {
            m_macs: 4096,
            ..Default::default()
        };
        let cs = simulate_update(&agg, &w, &bias, &small, false).cycles;
        let cb = simulate_update(&agg, &w, &bias, &big, false).cycles;
        assert_eq!(cs, cb * 16);
    }
}
