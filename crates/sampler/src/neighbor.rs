//! GraphSAGE neighbor sampling (paper \[2], used in §VI-A2).
//!
//! For each seed batch, sample `fanouts[0]` neighbours of every seed, then
//! `fanouts[1]` neighbours of every layer-1 vertex, etc. Destination
//! vertices are kept as a prefix of the source set so the update stage can
//! read self-features. Sampling is without replacement: a vertex with
//! degree ≤ fanout keeps all its neighbours (PyG `NeighborLoader`
//! semantics).

use crate::minibatch::{Block, MiniBatch};
use hyscale_graph::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::collections::HashMap;

/// Fanout-based layered neighbor sampler.
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    /// Per-hop fanouts, seed-side first (paper: `(25, 10)`).
    fanouts: Vec<usize>,
    /// Base RNG seed; each `(epoch, iteration, trainer)` derives a unique
    /// stream from it.
    seed: u64,
}

impl NeighborSampler {
    /// Sampler with the given per-hop fanouts (seed-side hop first).
    ///
    /// # Panics
    /// If `fanouts` is empty or contains a zero.
    pub fn new(fanouts: Vec<usize>, seed: u64) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        Self { fanouts, seed }
    }

    /// The paper's evaluation configuration: fanouts (25, 10).
    pub fn paper_default(seed: u64) -> Self {
        Self::new(vec![25, 10], seed)
    }

    /// Number of GNN layers this sampler produces blocks for.
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Sample one mini-batch for `seeds`, deterministically derived from
    /// `(self.seed, stream)`. `stream` should encode epoch/iteration/
    /// trainer so parallel trainers draw independent batches.
    pub fn sample(&self, graph: &CsrGraph, seeds: &[VertexId], stream: u64) -> MiniBatch {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15));
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(self.fanouts.len());
        let mut layer_nodes: Vec<VertexId> = seeds.to_vec();

        for &fanout in &self.fanouts {
            // src set starts as a copy of dst (prefix property), then
            // grows with newly discovered neighbours.
            let mut src_nodes: Vec<VertexId> = layer_nodes.clone();
            let mut local: HashMap<VertexId, u32> =
                HashMap::with_capacity(layer_nodes.len() * (fanout + 1));
            for (i, &v) in layer_nodes.iter().enumerate() {
                local.insert(v, i as u32);
            }
            let mut edge_src: Vec<u32> = Vec::with_capacity(layer_nodes.len() * fanout);
            let mut edge_dst: Vec<u32> = Vec::with_capacity(layer_nodes.len() * fanout);

            let mut scratch: Vec<VertexId> = Vec::with_capacity(fanout);
            for (di, &v) in layer_nodes.iter().enumerate() {
                let neigh = graph.neighbors(v);
                sample_without_replacement(neigh, fanout, &mut rng, &mut scratch);
                for &u in &scratch {
                    let next = src_nodes.len() as u32;
                    let si = *local.entry(u).or_insert_with(|| {
                        src_nodes.push(u);
                        next
                    });
                    edge_src.push(si);
                    edge_dst.push(di as u32);
                }
            }

            blocks_rev.push(Block {
                num_src: src_nodes.len(),
                num_dst: layer_nodes.len(),
                edge_src,
                edge_dst,
            });
            layer_nodes = src_nodes;
        }

        blocks_rev.reverse();
        MiniBatch {
            input_nodes: layer_nodes,
            seeds: seeds.to_vec(),
            blocks: blocks_rev,
        }
    }

    /// Sample `plans.len()` mini-batches in parallel (one per trainer),
    /// with `plans[i]` seeds each, all drawn from disjoint RNG streams.
    /// This is the per-iteration "n mini-batches are produced" step of
    /// paper §III-B(1).
    pub fn sample_many(
        &self,
        graph: &CsrGraph,
        seed_sets: &[&[VertexId]],
        base_stream: u64,
    ) -> Vec<MiniBatch> {
        seed_sets
            .par_iter()
            .enumerate()
            .map(|(i, seeds)| self.sample(graph, seeds, base_stream.wrapping_add(i as u64 + 1)))
            .collect()
    }
}

/// Reservoir-free sampling without replacement: if `fanout >= n` take all
/// neighbours (copy), else partial Fisher–Yates over a scratch copy.
fn sample_without_replacement(
    neighbors: &[VertexId],
    fanout: usize,
    rng: &mut SmallRng,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let n = neighbors.len();
    if n <= fanout {
        out.extend_from_slice(neighbors);
        return;
    }
    // partial Fisher-Yates on indices; n can be large so sample indices
    // via a small hash set when fanout << n.
    if fanout * 8 < n {
        // rejection sampling of distinct indices
        let mut chosen: Vec<usize> = Vec::with_capacity(fanout);
        while chosen.len() < fanout {
            let idx = rng.gen_range(0..n);
            if !chosen.contains(&idx) {
                chosen.push(idx);
            }
        }
        out.extend(chosen.into_iter().map(|i| neighbors[i]));
    } else {
        let mut scratch: Vec<VertexId> = neighbors.to_vec();
        for i in 0..fanout {
            let j = rng.gen_range(i..n);
            scratch.swap(i, j);
        }
        out.extend_from_slice(&scratch[..fanout]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::generator::{sbm, SbmConfig};

    fn test_graph() -> CsrGraph {
        let (g, _) = sbm(
            SbmConfig {
                num_vertices: 500,
                communities: 5,
                avg_degree: 12,
                p_intra: 0.8,
            },
            1,
        );
        g.symmetrize()
    }

    #[test]
    fn sample_structure_valid() {
        let g = test_graph();
        let sampler = NeighborSampler::new(vec![5, 3], 7);
        let seeds: Vec<VertexId> = (0..32).collect();
        let mb = sampler.sample(&g, &seeds, 0);
        mb.validate().unwrap();
        assert_eq!(mb.num_layers(), 2);
        assert_eq!(mb.seeds, seeds);
        // seed-side block is last; its dst count equals the seed count
        assert_eq!(mb.blocks[1].num_dst, 32);
        // fanout bound per layer
        assert!(mb.blocks[1].num_edges() <= 32 * 5);
        assert!(mb.blocks[0].num_edges() <= mb.blocks[0].num_dst * 3);
    }

    #[test]
    fn fanout_respected_per_destination() {
        let g = test_graph();
        let sampler = NeighborSampler::new(vec![4], 3);
        let seeds: Vec<VertexId> = (0..16).collect();
        let mb = sampler.sample(&g, &seeds, 1);
        for (d, deg) in mb.blocks[0].dst_in_degrees().iter().enumerate() {
            let full = g.out_degree(seeds[d]);
            assert!(*deg as usize <= 4.min(full), "dst {d} has {deg} edges");
        }
    }

    #[test]
    fn low_degree_vertices_keep_all_neighbors() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (3, 0)]).unwrap();
        let sampler = NeighborSampler::new(vec![10], 0);
        let mb = sampler.sample(&g, &[0], 0);
        assert_eq!(mb.blocks[0].num_edges(), 2);
    }

    #[test]
    fn deterministic_in_stream() {
        let g = test_graph();
        let sampler = NeighborSampler::paper_default(9);
        let seeds: Vec<VertexId> = (0..64).collect();
        let a = sampler.sample(&g, &seeds, 5);
        let b = sampler.sample(&g, &seeds, 5);
        let c = sampler.sample(&g, &seeds, 6);
        assert_eq!(a.input_nodes, b.input_nodes);
        assert_eq!(a.blocks[0].edge_src, b.blocks[0].edge_src);
        assert_ne!(
            (a.input_nodes.clone(), a.blocks[0].edge_src.clone()),
            (c.input_nodes.clone(), c.blocks[0].edge_src.clone()),
            "different streams should differ"
        );
    }

    #[test]
    fn prefix_property_holds() {
        let g = test_graph();
        let sampler = NeighborSampler::new(vec![6, 4], 2);
        let seeds: Vec<VertexId> = (10..42).collect();
        let mb = sampler.sample(&g, &seeds, 3);
        // blocks[1] dst = seeds; they must be the first entries of
        // blocks[1] src, which equals blocks[0] dst ids.
        // By construction src_nodes starts as a copy of layer_nodes.
        assert!(mb.blocks[0].num_src >= mb.blocks[0].num_dst);
        assert!(mb.blocks[1].num_src >= mb.blocks[1].num_dst);
        // input nodes begin with the layer-1 dst set
        assert_eq!(&mb.input_nodes[..mb.seeds.len()], &mb.seeds[..]);
    }

    #[test]
    fn sample_many_gives_independent_batches() {
        let g = test_graph();
        let sampler = NeighborSampler::paper_default(11);
        let s1: Vec<VertexId> = (0..32).collect();
        let s2: Vec<VertexId> = (32..64).collect();
        let batches = sampler.sample_many(&g, &[&s1, &s2], 100);
        assert_eq!(batches.len(), 2);
        batches[0].validate().unwrap();
        batches[1].validate().unwrap();
        assert_eq!(batches[0].seeds, s1);
        assert_eq!(batches[1].seeds, s2);
    }

    #[test]
    fn dedup_shrinks_input_nodes() {
        // In a dense community graph, two-hop neighbourhoods overlap, so
        // |V0| must be well below the no-dedup upper bound.
        let g = test_graph();
        let sampler = NeighborSampler::new(vec![10, 10], 4);
        let seeds: Vec<VertexId> = (0..100).collect();
        let mb = sampler.sample(&g, &seeds, 0);
        let no_dedup_bound = 100 * 11 * 11;
        assert!(
            mb.input_nodes.len() < no_dedup_bound / 2,
            "dedup ineffective: {} vs bound {}",
            mb.input_nodes.len(),
            no_dedup_bound
        );
    }

    #[test]
    #[should_panic(expected = "fanouts must be positive")]
    fn rejects_zero_fanout() {
        let _ = NeighborSampler::new(vec![5, 0], 1);
    }
}
