//! Mini-batch data structures and workload accounting.
//!
//! A mini-batch is the computational graph `{G(V^l, E^l) : 1 ≤ l ≤ L}`
//! extracted by the sampler (paper §II-B, Fig. 1). The layered [`Block`]
//! representation follows the standard message-flow-graph layout: for each
//! GNN layer, a bipartite graph from source vertices (layer `l-1`) to
//! destination vertices (layer `l`), with the destination vertices stored
//! as a *prefix of the source list* so self-features are available to the
//! update stage (GCN self-loop, SAGE concat).

use hyscale_graph::VertexId;

/// One bipartite message-passing layer.
///
/// Local indices: sources are `0..num_src`, destinations are
/// `0..num_dst`, and destination `i` *is* source `i` (prefix property).
#[derive(Clone, Debug)]
pub struct Block {
    /// Number of source vertices (rows of the layer's input features).
    pub num_src: usize,
    /// Number of destination vertices (`num_dst <= num_src`).
    pub num_dst: usize,
    /// Edge source endpoints, local indices into the src set.
    pub edge_src: Vec<u32>,
    /// Edge destination endpoints, local indices into the dst set.
    pub edge_dst: Vec<u32>,
}

impl Block {
    /// Number of edges in this layer.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// In-batch in-degree of every destination (number of sampled
    /// in-edges). Used for mean aggregation and GCN normalisation.
    pub fn dst_in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_dst];
        for &d in &self.edge_dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// In-batch out-degree of every source.
    pub fn src_out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_src];
        for &s in &self.edge_src {
            deg[s as usize] += 1;
        }
        deg
    }

    /// Validate the structural invariants (indices in range, prefix
    /// property representable).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_dst > self.num_src {
            return Err(format!(
                "num_dst {} > num_src {}",
                self.num_dst, self.num_src
            ));
        }
        if self.edge_src.len() != self.edge_dst.len() {
            return Err("edge endpoint arrays differ in length".into());
        }
        if let Some(&s) = self.edge_src.iter().find(|&&s| s as usize >= self.num_src) {
            return Err(format!("edge src {s} out of range {}", self.num_src));
        }
        if let Some(&d) = self.edge_dst.iter().find(|&&d| d as usize >= self.num_dst) {
            return Err(format!("edge dst {d} out of range {}", self.num_dst));
        }
        Ok(())
    }

    /// Edges sorted by source index — the order the FPGA feature
    /// duplicator requires (paper §IV-C). Stable within a source.
    pub fn edges_sorted_by_src(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = self
            .edge_src
            .iter()
            .copied()
            .zip(self.edge_dst.iter().copied())
            .collect();
        edges.sort_by_key(|&(s, _)| s);
        edges
    }
}

/// A full sampled mini-batch: blocks ordered input→output
/// (`blocks[0]`'s sources are the vertices whose raw features are
/// gathered; `blocks[L-1]`'s destinations are the seeds).
#[derive(Clone, Debug)]
pub struct MiniBatch {
    /// Global vertex ids of `blocks[0]`'s source set — the rows the
    /// Feature Loader gathers from CPU memory (`V^0` in the paper).
    pub input_nodes: Vec<VertexId>,
    /// Seed (target) vertex ids, `V^L`; labels are read for these.
    pub seeds: Vec<VertexId>,
    /// Message-flow blocks, one per GNN layer, input-most first.
    pub blocks: Vec<Block>,
}

impl MiniBatch {
    /// Number of GNN layers this batch supports.
    pub fn num_layers(&self) -> usize {
        self.blocks.len()
    }

    /// Total edges across all layers — the MTEPS numerator contribution
    /// of this batch (paper Eq. 5: `Σ_l |E^l|`).
    pub fn total_edges(&self) -> u64 {
        self.blocks.iter().map(|b| b.num_edges() as u64).sum()
    }

    /// Validate all blocks plus the inter-block stitching
    /// (`blocks[l].num_dst == blocks[l+1].num_src`).
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("mini-batch has no blocks".into());
        }
        for (i, b) in self.blocks.iter().enumerate() {
            b.validate().map_err(|e| format!("block {i}: {e}"))?;
        }
        if self.blocks[0].num_src != self.input_nodes.len() {
            return Err(format!(
                "input_nodes {} != blocks[0].num_src {}",
                self.input_nodes.len(),
                self.blocks[0].num_src
            ));
        }
        for w in self.blocks.windows(2) {
            if w[0].num_dst != w[1].num_src {
                return Err(format!(
                    "layer stitching broken: num_dst {} != next num_src {}",
                    w[0].num_dst, w[1].num_src
                ));
            }
        }
        if self.blocks.last().unwrap().num_dst != self.seeds.len() {
            return Err("last block dst count != seeds".into());
        }
        Ok(())
    }

    /// Workload accounting for the timing models.
    pub fn stats(&self) -> WorkloadStats {
        WorkloadStats {
            batch_size: self.seeds.len(),
            input_nodes: self.input_nodes.len(),
            nodes_per_layer: self.blocks.iter().map(|b| b.num_dst).collect(),
            edges_per_layer: self.blocks.iter().map(|b| b.num_edges()).collect(),
        }
    }
}

/// Per-batch workload counters consumed by the performance model and the
/// device timing models (paper Eq. 7–12 are all functions of these).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Seed count (`|V^L|`).
    pub batch_size: usize,
    /// `|V^0|` — rows gathered by the Feature Loader.
    pub input_nodes: usize,
    /// `|V^l|` for `l = 1..=L` (destination counts per block).
    pub nodes_per_layer: Vec<usize>,
    /// `|E^l|` for `l = 1..=L`.
    pub edges_per_layer: Vec<usize>,
}

impl WorkloadStats {
    /// Total edges traversed (MTEPS numerator, Eq. 5).
    pub fn total_edges(&self) -> u64 {
        self.edges_per_layer.iter().map(|&e| e as u64).sum()
    }

    /// Bytes of raw features loaded/transferred for this batch
    /// (`|V^0| · f0 · 4`, Eq. 7–8 numerators).
    pub fn feature_bytes(&self, f0: usize) -> u64 {
        self.input_nodes as u64 * f0 as u64 * 4
    }

    /// Element-wise sum, for aggregating several trainers' batches.
    ///
    /// # Panics
    /// If layer counts differ.
    pub fn merge(&self, other: &WorkloadStats) -> WorkloadStats {
        assert_eq!(self.nodes_per_layer.len(), other.nodes_per_layer.len());
        WorkloadStats {
            batch_size: self.batch_size + other.batch_size,
            input_nodes: self.input_nodes + other.input_nodes,
            nodes_per_layer: self
                .nodes_per_layer
                .iter()
                .zip(&other.nodes_per_layer)
                .map(|(a, b)| a + b)
                .collect(),
            edges_per_layer: self
                .edges_per_layer
                .iter()
                .zip(&other.edges_per_layer)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// A zero-valued stats block with `layers` layers.
    pub fn zero(layers: usize) -> WorkloadStats {
        WorkloadStats {
            batch_size: 0,
            input_nodes: 0,
            nodes_per_layer: vec![0; layers],
            edges_per_layer: vec![0; layers],
        }
    }

    /// Scale all counters by `factor` (used by the analytic estimator to
    /// resize a reference batch).
    pub fn scaled(&self, factor: f64) -> WorkloadStats {
        let s = |v: usize| ((v as f64) * factor).round() as usize;
        WorkloadStats {
            batch_size: s(self.batch_size),
            input_nodes: s(self.input_nodes),
            nodes_per_layer: self.nodes_per_layer.iter().map(|&v| s(v)).collect(),
            edges_per_layer: self.edges_per_layer.iter().map(|&v| s(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_block() -> Block {
        Block {
            num_src: 4,
            num_dst: 2,
            edge_src: vec![0, 2, 3, 3],
            edge_dst: vec![0, 0, 1, 0],
        }
    }

    #[test]
    fn degrees() {
        let b = tiny_block();
        assert_eq!(b.dst_in_degrees(), vec![3, 1]);
        assert_eq!(b.src_out_degrees(), vec![1, 0, 1, 2]);
    }

    #[test]
    fn validate_catches_bad_indices() {
        let mut b = tiny_block();
        b.edge_src[0] = 9;
        assert!(b.validate().is_err());
        let mut b2 = tiny_block();
        b2.edge_dst[0] = 5;
        assert!(b2.validate().is_err());
        let mut b3 = tiny_block();
        b3.num_dst = 10;
        assert!(b3.validate().is_err());
    }

    #[test]
    fn sorted_edges_by_src() {
        let b = Block {
            num_src: 3,
            num_dst: 3,
            edge_src: vec![2, 0, 1, 0],
            edge_dst: vec![0, 1, 2, 0],
        };
        let e = b.edges_sorted_by_src();
        assert!(e.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn minibatch_validation_and_stats() {
        let mb = MiniBatch {
            input_nodes: vec![10, 11, 12, 13],
            seeds: vec![10],
            blocks: vec![
                tiny_block(),
                Block {
                    num_src: 2,
                    num_dst: 1,
                    edge_src: vec![0, 1],
                    edge_dst: vec![0, 0],
                },
            ],
        };
        mb.validate().unwrap();
        let st = mb.stats();
        assert_eq!(st.batch_size, 1);
        assert_eq!(st.input_nodes, 4);
        assert_eq!(st.nodes_per_layer, vec![2, 1]);
        assert_eq!(st.edges_per_layer, vec![4, 2]);
        assert_eq!(st.total_edges(), 6);
        assert_eq!(mb.total_edges(), 6);
    }

    #[test]
    fn minibatch_validation_catches_stitching() {
        let mb = MiniBatch {
            input_nodes: vec![1, 2, 3, 4],
            seeds: vec![1],
            blocks: vec![
                tiny_block(),
                Block {
                    num_src: 3,
                    num_dst: 1,
                    edge_src: vec![0],
                    edge_dst: vec![0],
                },
            ],
        };
        assert!(mb.validate().is_err());
    }

    #[test]
    fn stats_merge_and_scale() {
        let a = WorkloadStats {
            batch_size: 10,
            input_nodes: 100,
            nodes_per_layer: vec![50, 10],
            edges_per_layer: vec![200, 80],
        };
        let b = a.merge(&a);
        assert_eq!(b.batch_size, 20);
        assert_eq!(b.edges_per_layer, vec![400, 160]);
        let h = a.scaled(0.5);
        assert_eq!(h.batch_size, 5);
        assert_eq!(h.input_nodes, 50);
        assert_eq!(WorkloadStats::zero(2).total_edges(), 0);
    }

    #[test]
    fn feature_bytes_eq7() {
        let a = WorkloadStats {
            batch_size: 1,
            input_nodes: 100,
            nodes_per_layer: vec![1],
            edges_per_layer: vec![1],
        };
        assert_eq!(a.feature_bytes(128), 100 * 128 * 4);
    }
}
