//! Watch Algorithm 1 work: start from a deliberately *bad* task mapping
//! and trace the DRM engine rebalancing workload and threads each
//! iteration (paper §IV-A).
//!
//! ```sh
//! cargo run --release --example drm_trace
//! ```

use hyscale::core::drm::{DrmEngine, ThreadAlloc, WorkloadSplit};
use hyscale::core::{AcceleratorKind, PerfModel, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::OGBN_PAPERS100M;

fn main() {
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&cfg);
    let ds = OGBN_PAPERS100M;

    // Deliberately bad start: half the seeds on the CPU trainer, all
    // sampling on the CPU, threads skewed to the loader.
    let mut split = WorkloadSplit::new(2560, 5120, 4);
    let mut threads = ThreadAlloc {
        sampler: 4,
        loader: 100,
        trainer: 24,
    };
    let drm = DrmEngine::new(true);

    println!("DRM engine trace (papers100M, GCN, CPU + 4x U250), bad initial mapping:\n");
    println!(
        "{:>4}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>8}  {:>22}  action",
        "iter", "T_SC(ms)", "T_load", "T_tran", "T_TC", "T_TA", "iter(ms)", "cpu quota / threads"
    );
    for i in 0..30 {
        let t = pm.stage_times_runtime(&ds, &split, &threads);
        let action = drm.adjust(&t, &mut split, &mut threads);
        println!(
            "{:>4}  {:>9.2}  {:>9.2}  {:>9.2}  {:>9.2}  {:>9.2}  {:>8.2}  {:>6} / s{} l{} t{}   {:?}",
            i,
            t.sample_cpu * 1e3,
            t.load * 1e3,
            t.transfer * 1e3,
            t.train_cpu * 1e3,
            t.train_accel * 1e3,
            t.pipelined_iteration() * 1e3,
            split.cpu_quota,
            threads.sampler,
            threads.loader,
            threads.trainer,
            action,
        );
    }
    let final_t = pm.stage_times_runtime(&ds, &split, &threads);
    println!(
        "\nsettled: iteration {:.2} ms, cpu quota {}, sampling on accel {:.0}%",
        final_t.pipelined_iteration() * 1e3,
        split.cpu_quota,
        split.sampling_on_accel * 100.0
    );
}
