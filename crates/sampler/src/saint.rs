//! GraphSAINT node and edge samplers (Zeng et al., ICLR 2020 — the
//! paper's second cited sampling algorithm family \[29], alongside the
//! random-walk variant in [`crate::walk`]).
//!
//! Both samplers draw a *subgraph* (rather than layered neighbourhoods):
//! node sampling picks vertices with probability proportional to degree;
//! edge sampling picks edges inversely proportional to endpoint degrees
//! and keeps their endpoints. The induced subgraph trains a full GCN, so
//! the emitted [`MiniBatch`] carries identical square blocks per layer,
//! like [`crate::walk::RandomWalkSampler`].

use crate::minibatch::{Block, MiniBatch};
use hyscale_graph::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Build the induced mini-batch over a deduplicated node set.
fn induce(graph: &CsrGraph, mut nodes: Vec<VertexId>, layers: usize) -> MiniBatch {
    nodes.sort_unstable();
    nodes.dedup();
    let local: HashMap<VertexId, u32> = nodes
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut edge_src = Vec::new();
    let mut edge_dst = Vec::new();
    for (si, &v) in nodes.iter().enumerate() {
        for &t in graph.neighbors(v) {
            if let Some(&ti) = local.get(&t) {
                edge_src.push(si as u32);
                edge_dst.push(ti);
            }
        }
    }
    let n = nodes.len();
    let block = Block {
        num_src: n,
        num_dst: n,
        edge_src,
        edge_dst,
    };
    MiniBatch {
        input_nodes: nodes.clone(),
        seeds: nodes,
        blocks: vec![block; layers],
    }
}

/// GraphSAINT-Node: sample `budget` vertices with degree-proportional
/// probability.
#[derive(Clone, Debug)]
pub struct NodeSampler {
    /// Vertices drawn per subgraph.
    pub budget: usize,
    /// GNN layers to emit blocks for.
    pub layers: usize,
    seed: u64,
}

impl NodeSampler {
    /// New node sampler.
    ///
    /// # Panics
    /// If `budget` or `layers` is zero.
    pub fn new(budget: usize, layers: usize, seed: u64) -> Self {
        assert!(budget > 0 && layers > 0);
        Self {
            budget,
            layers,
            seed,
        }
    }

    /// Sample one induced subgraph batch.
    pub fn sample(&self, graph: &CsrGraph, stream: u64) -> MiniBatch {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ stream.wrapping_mul(0xD6E8FEB86659FD93));
        let e = graph.num_edges().max(1);
        let mut nodes = Vec::with_capacity(self.budget);
        // degree-proportional: pick a uniform edge slot, take its source
        let targets = graph.targets();
        for _ in 0..self.budget {
            if targets.is_empty() {
                nodes.push(rng.gen_range(0..graph.num_vertices()) as VertexId);
            } else {
                let slot = rng.gen_range(0..e);
                // binary search the offset array for the owning source
                let offsets = graph.offsets();
                let src = match offsets.binary_search(&slot) {
                    Ok(mut i) => {
                        // skip empty adjacency runs
                        while i + 1 < offsets.len() && offsets[i + 1] == slot {
                            i += 1;
                        }
                        i
                    }
                    Err(i) => i - 1,
                };
                nodes.push(src as VertexId);
            }
        }
        induce(graph, nodes, self.layers)
    }
}

/// GraphSAINT-Edge: sample `budget` edges (uniformly here; the full
/// 1/deg(u)+1/deg(v) importance weighting reduces to near-uniform on the
/// regular-ish synthetic graphs) and keep both endpoints.
#[derive(Clone, Debug)]
pub struct EdgeSampler {
    /// Edges drawn per subgraph.
    pub budget: usize,
    /// GNN layers to emit blocks for.
    pub layers: usize,
    seed: u64,
}

impl EdgeSampler {
    /// New edge sampler.
    ///
    /// # Panics
    /// If `budget` or `layers` is zero.
    pub fn new(budget: usize, layers: usize, seed: u64) -> Self {
        assert!(budget > 0 && layers > 0);
        Self {
            budget,
            layers,
            seed,
        }
    }

    /// Sample one induced subgraph batch.
    pub fn sample(&self, graph: &CsrGraph, stream: u64) -> MiniBatch {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ stream.wrapping_mul(0x2545F4914F6CDD1D));
        let edges = graph.edges_by_source();
        let mut nodes = Vec::with_capacity(self.budget * 2);
        if edges.is_empty() {
            nodes.push(0);
        } else {
            for _ in 0..self.budget {
                let (s, t) = edges[rng.gen_range(0..edges.len())];
                nodes.push(s);
                nodes.push(t);
            }
        }
        induce(graph, nodes, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::generator::{preferential_attachment, sbm, SbmConfig};

    fn graph() -> CsrGraph {
        let (g, _) = sbm(
            SbmConfig {
                num_vertices: 400,
                communities: 4,
                avg_degree: 10,
                p_intra: 0.8,
            },
            9,
        );
        g.symmetrize()
    }

    #[test]
    fn node_sampler_valid_and_bounded() {
        let s = NodeSampler::new(64, 2, 1);
        let mb = s.sample(&graph(), 0);
        mb.validate().unwrap();
        assert!(mb.input_nodes.len() <= 64);
        assert!(!mb.input_nodes.is_empty());
        assert_eq!(mb.num_layers(), 2);
    }

    #[test]
    fn node_sampler_prefers_high_degree() {
        // on a hub-heavy graph, degree-proportional sampling should pick
        // hubs far more often than uniform would
        let g = preferential_attachment(1000, 4, 2).symmetrize();
        let hubs: Vec<VertexId> = hyscale_graph::degree::vertices_by_degree_desc(&g)
            .into_iter()
            .take(50)
            .collect();
        let s = NodeSampler::new(100, 1, 3);
        let mut hub_hits = 0usize;
        let mut total = 0usize;
        for stream in 0..20 {
            let mb = s.sample(&g, stream);
            for v in &mb.input_nodes {
                total += 1;
                if hubs.contains(v) {
                    hub_hits += 1;
                }
            }
        }
        let rate = hub_hits as f64 / total as f64;
        assert!(
            rate > 0.15,
            "hub sampling rate only {rate:.3} (uniform would be 0.05)"
        );
    }

    #[test]
    fn edge_sampler_valid() {
        let s = EdgeSampler::new(50, 3, 2);
        let mb = s.sample(&graph(), 1);
        mb.validate().unwrap();
        assert!(mb.input_nodes.len() <= 100);
        assert_eq!(mb.num_layers(), 3);
    }

    #[test]
    fn induced_edges_are_real() {
        let g = graph();
        let s = EdgeSampler::new(30, 1, 4);
        let mb = s.sample(&g, 7);
        let b = &mb.blocks[0];
        for (&si, &di) in b.edge_src.iter().zip(&b.edge_dst) {
            let u = mb.input_nodes[si as usize];
            let v = mb.input_nodes[di as usize];
            assert!(g.neighbors(u).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_stream() {
        let g = graph();
        let s = NodeSampler::new(40, 1, 5);
        assert_eq!(s.sample(&g, 3).input_nodes, s.sample(&g, 3).input_nodes);
        assert_ne!(s.sample(&g, 3).input_nodes, s.sample(&g, 4).input_nodes);
    }

    #[test]
    fn empty_graph_survives() {
        let g = CsrGraph::empty(5);
        let n = NodeSampler::new(8, 1, 0).sample(&g, 0);
        n.validate().unwrap();
        let e = EdgeSampler::new(8, 1, 0).sample(&g, 0);
        e.validate().unwrap();
    }
}
