//! Element-wise operations used by the GNN update stage.
//!
//! The paper's update stage is `h = φ(a·W + b)` with `φ = ReLU`
//! (paper Eq. 3–4); backward needs the ReLU mask and the bias-gradient
//! column reduction.

use crate::matrix::Matrix;

/// In-place ReLU: `x = max(x, 0)`.
pub fn relu_inplace(x: &mut Matrix) {
    for v in x.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU backward: zero the gradient wherever the *pre-activation* was
/// non-positive. `grad` and `pre_activation` must have equal shapes.
///
/// # Panics
/// On shape mismatch.
pub fn relu_backward_inplace(grad: &mut Matrix, pre_activation: &Matrix) {
    assert_eq!(
        grad.shape(),
        pre_activation.shape(),
        "relu_backward shape mismatch"
    );
    for (g, &z) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pre_activation.as_slice())
    {
        if z <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Broadcast-add a bias row vector to every row of `x`.
///
/// # Panics
/// If `bias.len() != x.cols()`.
pub fn add_bias_inplace(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), x.cols(), "bias width mismatch");
    let cols = x.cols();
    for row in x.as_mut_slice().chunks_exact_mut(cols) {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += *b;
        }
    }
}

/// Column-sum of `grad` — the bias gradient for a broadcast-added bias.
pub fn bias_grad(grad: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; grad.cols()];
    for row in grad.rows_iter() {
        for (o, v) in out.iter_mut().zip(row) {
            *o += *v;
        }
    }
    out
}

/// Row-wise L2 normalisation (`x_i / max(‖x_i‖₂, eps)`), a common output
/// embedding post-process for SAGE-style models.
pub fn l2_normalize_rows_inplace(x: &mut Matrix, eps: f32) {
    let cols = x.cols();
    for row in x.as_mut_slice().chunks_exact_mut(cols) {
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(eps);
        for v in row.iter_mut() {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_by_preactivation() {
        let pre = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, 3.0]);
        let mut g = Matrix::from_vec(1, 4, vec![5.0, 5.0, 5.0, 5.0]);
        relu_backward_inplace(&mut g, &pre);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 5.0, 5.0]);
    }

    #[test]
    fn bias_roundtrip() {
        let mut x = Matrix::zeros(3, 2);
        add_bias_inplace(&mut x, &[1.0, -2.0]);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        let g = bias_grad(&x);
        assert_eq!(g, vec![3.0, -6.0]);
    }

    #[test]
    #[should_panic(expected = "bias width mismatch")]
    fn bias_rejects_wrong_width() {
        let mut x = Matrix::zeros(1, 3);
        add_bias_inplace(&mut x, &[0.0; 2]);
    }

    #[test]
    fn l2_normalize_unit_rows() {
        let mut x = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        l2_normalize_rows_inplace(&mut x, 1e-12);
        assert!((x.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((x.row(0)[1] - 0.8).abs() < 1e-6);
        // zero row stays finite
        assert!(x.row(1).iter().all(|v| v.is_finite()));
    }
}
