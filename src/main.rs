//! `hyscale` — command-line interface to the HyScale-GNN training system.
//!
//! ```text
//! hyscale info                         platform + dataset overview
//! hyscale train [options]              train on a synthetic dataset
//! hyscale predict [options]            performance-model predictions
//! hyscale scalability [options]        Fig. 9-style scaling study
//! ```
//!
//! Run `hyscale <command> --help` for options.

use hyscale::core::metrics::TrainingHistory;
use hyscale::core::{AcceleratorKind, HybridTrainer, PerfModel, SystemConfig};
use hyscale::device::memory::check_device_placement;
use hyscale::device::spec::{table_ii, ALVEO_U250, RTX_A5000};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::{
    DatasetSpec, ALL_DATASETS, MAG240M_HOMO, OGBN_PAPERS100M, OGBN_PRODUCTS,
};
use hyscale::graph::features::Splits;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let opts = Options::parse(&args[args.len().min(1)..]);
    match cmd {
        "info" => info(),
        "train" => train(&opts),
        "predict" => predict(&opts),
        "scalability" => scalability(&opts),
        "help" | "--help" | "-h" => {
            help();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            help();
            ExitCode::FAILURE
        }
    }
}

fn help() {
    println!(
        "hyscale — hybrid GNN training on single-node heterogeneous architectures\n\
         \n\
         USAGE: hyscale <command> [options]\n\
         \n\
         COMMANDS:\n\
           info          platform specs (Table II) and dataset stats (Table III)\n\
           train         functional training on a scaled synthetic dataset\n\
           predict       performance-model epoch-time predictions (Eq. 5-13)\n\
           scalability   normalized speedup across accelerator counts (Fig. 9)\n\
         \n\
         OPTIONS:\n\
           --dataset <products|papers100m|mag240m>   (default products)\n\
           --model <gcn|sage|gin>                    (default gcn)\n\
           --accel <fpga|gpu>                        (default fpga)\n\
           --accelerators <n>                        (default 4)\n\
           --epochs <n>                              (default 4)\n\
           --batch <n>                               seeds per trainer (default 512)\n\
           --scale <n>                               dataset down-scale (default 4000)"
    );
}

struct Options {
    dataset: DatasetSpec,
    model: GnnKind,
    accel: AcceleratorKind,
    accelerators: usize,
    epochs: usize,
    batch: usize,
    scale: u64,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut o = Options {
            dataset: OGBN_PRODUCTS,
            model: GnnKind::Gcn,
            accel: AcceleratorKind::u250(),
            accelerators: 4,
            epochs: 4,
            batch: 512,
            scale: 4000,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || it.next().cloned().unwrap_or_default();
            match flag.as_str() {
                "--dataset" => {
                    o.dataset = match value().as_str() {
                        "papers100m" => OGBN_PAPERS100M,
                        "mag240m" => MAG240M_HOMO,
                        _ => OGBN_PRODUCTS,
                    }
                }
                "--model" => {
                    o.model = match value().as_str() {
                        "sage" => GnnKind::GraphSage,
                        "gin" => GnnKind::Gin,
                        _ => GnnKind::Gcn,
                    }
                }
                "--accel" => {
                    o.accel = match value().as_str() {
                        "gpu" => AcceleratorKind::a5000(),
                        _ => AcceleratorKind::u250(),
                    }
                }
                "--accelerators" => o.accelerators = value().parse().unwrap_or(4),
                "--epochs" => o.epochs = value().parse().unwrap_or(4),
                "--batch" => o.batch = value().parse().unwrap_or(512),
                "--scale" => o.scale = value().parse().unwrap_or(4000),
                _ => {}
            }
        }
        o
    }

    fn system(&self) -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(self.accel.clone(), self.model);
        cfg.platform.num_accelerators = self.accelerators;
        cfg.train.batch_per_trainer = self.batch;
        cfg.train.max_functional_iters = Some(4);
        cfg
    }
}

fn info() -> ExitCode {
    println!("Platforms (paper Table II):");
    for d in table_ii() {
        println!(
            "  {:<22} {:>5.2} GHz  {:>5.1} TFLOPS  {:>4.0} MB on-chip  {:>4.0} GB/s",
            d.name, d.freq_ghz, d.peak_tflops, d.onchip_mb, d.mem_bandwidth_gbs
        );
    }
    println!("\nDatasets (paper Table III):");
    for d in ALL_DATASETS {
        let fits_gpu = check_device_placement(&d, &RTX_A5000).fits;
        let fits_fpga = check_device_placement(&d, &ALVEO_U250).fits;
        println!(
            "  {:<18} |V| {:>11}  |E| {:>13}  dims {}/{}/{}  device-resident: GPU {} FPGA {}",
            d.name, d.num_vertices, d.num_edges, d.f0, d.f1, d.f2, fits_gpu, fits_fpga
        );
    }
    ExitCode::SUCCESS
}

fn train(o: &Options) -> ExitCode {
    println!(
        "training {} on {} (1/{} scale), CPU + {}x {}",
        o.model.name(),
        o.dataset.name,
        o.scale,
        o.accelerators,
        o.accel.label()
    );
    let mut dataset = o.dataset.materialize(o.scale, 42);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 7);
    let test = dataset.splits.test.clone();
    let mut trainer = HybridTrainer::new(o.system(), dataset);
    let mut history = TrainingHistory::new();
    for _ in 0..o.epochs {
        let report = trainer.train_epoch();
        let val = trainer.evaluate(&test);
        println!("{report}  val {val:.3}");
        history.record(&report, Some(val));
    }
    println!(
        "\nbest val accuracy {:.3}; mean simulated epoch {:.3}s; settled cpu quota {}",
        history.best_val_accuracy().unwrap_or(0.0),
        history.mean_epoch_time().unwrap_or(0.0),
        trainer.split().cpu_quota
    );
    ExitCode::SUCCESS
}

fn predict(o: &Options) -> ExitCode {
    let cfg = o.system();
    let pm = PerfModel::new(&cfg);
    let epoch = pm.predict_epoch_time(&o.dataset);
    let mteps = pm.throughput_mteps(&o.dataset);
    let (split, threads) = pm.settled_mapping(&o.dataset);
    println!(
        "performance model ({} on {}, {}x {}):",
        o.model.name(),
        o.dataset.name,
        o.accelerators,
        o.accel.label()
    );
    println!("  predicted epoch time : {epoch:.3} s");
    println!("  predicted throughput : {mteps:.1} MTEPS");
    println!(
        "  settled mapping      : cpu quota {}/{} seeds, sampling on accel {:.0}%, threads s{}/l{}/t{}",
        split.cpu_quota,
        split.total,
        split.sampling_on_accel * 100.0,
        threads.sampler,
        threads.loader,
        threads.trainer
    );
    ExitCode::SUCCESS
}

fn scalability(o: &Options) -> ExitCode {
    let cfg = o.system();
    let pm = PerfModel::new(&cfg);
    let counts = [1usize, 2, 4, 8, 16];
    println!(
        "scalability of {} on {} ({} accelerators/column):",
        o.model.name(),
        o.dataset.name,
        o.accel.label()
    );
    for (n, s) in pm.scalability(&o.dataset, &counts) {
        println!("  {n:>3} accelerators: {s:>6.2}x");
    }
    ExitCode::SUCCESS
}
