//! Task-level Feature Prefetching — the *real* pipeline.
//!
//! The paper's headline optimization (§IV-B, Fig. 7) overlaps the
//! CPU-side producer stages — Mini-batch Sampling, Feature Loading, and
//! the wire-precision round-trip standing in for Data Transfer — with
//! GNN Propagation. [`crate::pipeline`] *simulates* that overlap with a
//! discrete-event model; this module *executes* it: a background
//! producer walks the epoch's batch plan, prepares iterations, and
//! feeds them through a bounded channel of depth `d`
//! (`TrainConfig::prefetch_depth`) to the consuming trainer.
//!
//! ## Concurrent per-accelerator transfer lanes (staging rings)
//!
//! The producer is itself a pipeline. A *gather* thread samples and
//! NUMA-gathers features, then fans each accelerator's matrix out to
//! that accelerator's **transfer lane** — a dedicated thread that pulls
//! gathered batches from its own bounded channel, stages them through
//! its [`StagingRing`], and runs the wire-precision round-trip. Lanes
//! run *concurrently with each other* (DistDGLv2/HitGNN-style per-link
//! saturation: with 4 accelerators the four round-trips overlap each
//! other as well as trainer compute), bounded WorkerGroup-style by the
//! shared [`TransferLaneGate`] (resized live by DRM `balance_thread`
//! moves). An *assembler* thread re-joins the lanes' completions, in
//! lane-FIFO order, into [`PreparedIteration`]s for the consumer queue.
//!
//! Each lane's [`StagingRing`] holds `TrainConfig::staging_ring_depth`
//! slots: a slot is occupied from the start of a batch's round-trip
//! until its propagation completes (the consumer drops the batch's
//! [`SlotToken`]s after training), so at ring depth 2 the wire transfer
//! of batch `i+1` overlaps the accelerator compute of batch `i` —
//! double buffering *within* the lane, not only across the
//! producer/consumer queue. Ring depth 1 is a single staging buffer:
//! that lane's transfer and compute serialize, exactly like the
//! `ring_depth = 1` case of `hyscale_device::stage::StagingModel` and
//! [`crate::pipeline::simulate_pipeline_ringed`]. The lane-concurrency
//! dimension is modeled by
//! [`crate::pipeline::simulate_pipeline_multilane`].
//!
//! ## Determinism contract
//!
//! A prepared iteration is a pure function of `(epoch_order, epoch,
//! iter, quotas)`: seed slicing comes from
//! [`EpochBatcher::plan`](hyscale_sampler::EpochBatcher) and every
//! sampler draw is keyed by `(seed, epoch, iter, trainer)` streams, so a
//! batch prepared three iterations ahead on a worker thread is
//! bitwise-identical to one prepared inline, and staging rings only
//! re-time the round-trip (which is itself deterministic per matrix).
//! The one hazard is the DRM engine re-balancing `quotas` mid-epoch:
//! prepared iterations carry the quotas *and the quota epoch* (re-map
//! generation counter) they were built under, so a straggler from an
//! outdated plan is rejected at receive time rather than globally
//! flushed. Invalidation itself is **surgical and coalesced**
//! ([`IterationFeed::invalidate`]): a burst of `balance_work` events is
//! folded into one re-slice against the final quotas, which re-slices
//! only the trainers whose seed slice actually moved — settled
//! trainers keep their queued batches, pooled matrices, and staging
//! slots — and drains only the rings *and lane channels* of changed
//! lanes; a zero-diff re-map (including a burst that cancels out) is a
//! no-op, and only missed-event recovery pays the full flush
//! (`drain_all`). `tests/equivalence.rs` and the randomized
//! DRM-schedule harness in `tests/proptest_invariants.rs` pin weights
//! bitwise across prefetch depths {0, 1, 2, 4} × ring depths {1, 2} ×
//! transfer-lane caps {1, 2, 4} including across re-mapping events.
//!
//! ## Allocation discipline
//!
//! Feature matrices cycle through a [`MatrixPool`], with ring-aware
//! reuse on top: a recycled accelerator batch returns its buffer to that
//! accelerator's [`StagingRing`] free list, so each lane re-gathers into
//! the buffer it last shipped (lane-local reuse); the shared pool is the
//! fallback and serves the CPU trainer. Steady-state iterations perform
//! zero feature-matrix allocations.
//!
//! ## Thread budget (DRM `balance_thread`)
//!
//! The producer dispatches its stages on the shared
//! [`StageWorkers`] pools: sampling runs
//! under the sampler pool's width, and the `n` per-trainer feature
//! matrices fan out across loader lanes
//! ([`rayon::WorkerGroup::fan_out`]) whose gathers are sharded across
//! the feature matrix's NUMA row domains. A DRM `balance_thread` move
//! re-sizes the pools in place ([`IterationFeed::rebalance_threads`]);
//! widths only change wall-clock, so the queue keeps its prepared
//! iterations, staging rings keep their in-flight transfers, and each
//! [`PreparedIteration`] records the [`ThreadAlloc`] it was built under
//! so traces show the shift land.

use crate::drm::{QuotaDiff, ThreadAlloc};
use crate::stages::StageWorkers;
use hyscale_graph::features::gather_features_numa_into;
use hyscale_graph::Dataset;
use hyscale_sampler::{EpochBatcher, MiniBatch, NeighborSampler};
use hyscale_tensor::{Matrix, Precision};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A recycling pool of feature-matrix buffers shared between the
/// producer threads and the consuming trainer.
///
/// ```
/// use hyscale_core::MatrixPool;
///
/// let pool = MatrixPool::new();
/// let mut x = pool.acquire();      // arbitrary shape — overwrite before reading
/// x.resize(128, 16);
/// pool.release(x);                 // back to the pool after propagation
/// assert_eq!(pool.idle(), 1);
/// assert_eq!(pool.acquire().shape(), (128, 16)); // allocation reused
/// ```
#[derive(Default)]
pub struct MatrixPool {
    free: Mutex<Vec<Matrix>>,
}

impl MatrixPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a buffer (arbitrary shape/contents) or mint an empty one.
    /// Callers must `resize`/overwrite before reading — `gather_features_into`
    /// does both.
    pub fn acquire(&self) -> Matrix {
        self.free
            .lock()
            .pop()
            .unwrap_or_else(|| Matrix::uninit(0, 0))
    }

    /// Return a buffer for reuse.
    pub fn release(&self, m: Matrix) {
        self.free.lock().push(m);
    }

    /// Number of buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

/// WorkerGroup-style concurrency cap for the per-accelerator transfer
/// lanes: every accelerator owns a dedicated lane (thread + staging
/// ring + bounded channel), and this gate bounds how many of those
/// lanes may run their wire-precision round-trips *at the same time*.
///
/// Like [`rayon::WorkerGroup`], the **logical** cap is resizable at any
/// moment ([`set_cap`](Self::set_cap) — the entry point for DRM
/// `balance_thread` moves, which re-size lane concurrency live without
/// draining anything), while the **effective** cap is additionally
/// bounded by the host's real parallelism. Lane order through the gate
/// is timing-only: round-trips are deterministic per matrix, so the cap
/// changes wall-clock, never bytes.
///
/// ```
/// use hyscale_core::prefetch::TransferLaneGate;
/// use std::sync::atomic::AtomicBool;
///
/// // the effective cap is host-bounded: pretend this doctest machine
/// // has 4 cores so two lanes may genuinely overlap
/// std::env::set_var("HYSCALE_RAYON_THREADS", "4");
/// let gate = TransferLaneGate::new(2, false);
/// let stop = AtomicBool::new(false);
/// assert!(gate.enter(&stop));          // lane 0 transfers
/// assert!(gate.enter(&stop));          // lane 1 overlaps it
/// assert_eq!(gate.in_flight(), 2);
/// gate.set_cap(4);                     // balance_thread widens the budget
/// assert_eq!(gate.cap(), 4);
/// gate.exit();
/// gate.exit();
/// assert_eq!(gate.in_flight(), 0);
/// std::env::remove_var("HYSCALE_RAYON_THREADS");
/// ```
pub struct TransferLaneGate {
    cap: AtomicUsize,
    /// `true` when the cap mirrors the DRM loader thread budget (the
    /// `TrainConfig::transfer_lanes = 0` auto mode): `balance_thread`
    /// moves then re-size it; a fixed explicit cap ignores them.
    follow_threads: bool,
    in_flight: Mutex<usize>,
    cv: Condvar,
}

impl TransferLaneGate {
    /// A gate admitting `cap` concurrent lane round-trips (clamped
    /// ≥ 1). `follow_threads` marks the cap as mirroring the DRM's
    /// loader thread budget (see [`on_thread_alloc`](Self::on_thread_alloc)).
    pub fn new(cap: usize, follow_threads: bool) -> Self {
        Self {
            cap: AtomicUsize::new(cap.max(1)),
            follow_threads,
            in_flight: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Current logical cap.
    pub fn cap(&self) -> usize {
        self.cap.load(Ordering::Acquire)
    }

    /// Lanes inside the gate right now.
    pub fn in_flight(&self) -> usize {
        *self.in_flight.lock()
    }

    /// Concurrency a round of transfers can actually achieve: the
    /// logical cap bounded by the host's real parallelism.
    pub fn effective_cap(&self) -> usize {
        self.cap().min(rayon::host_threads()).max(1)
    }

    /// Re-size the logical cap live (clamped ≥ 1) and wake waiting
    /// lanes so a widened gate is observed immediately. Drains nothing:
    /// in-flight round-trips, staged batches, and queued iterations all
    /// stay valid — lane concurrency is pure wall-clock. The notify
    /// runs under the gate mutex so it cannot be lost between a
    /// waiter's cap check and its park.
    pub fn set_cap(&self, cap: usize) {
        self.cap.store(cap.max(1), Ordering::Release);
        let _guard = self.in_flight.lock();
        self.cv.notify_all();
    }

    /// Apply a DRM [`ThreadAlloc`]: in auto mode the lane cap follows
    /// the loader budget (the transfer stage is the loader-adjacent
    /// wire stage); a fixed cap is left untouched.
    pub fn on_thread_alloc(&self, alloc: &ThreadAlloc) {
        if self.follow_threads {
            self.set_cap(alloc.loader);
        }
    }

    /// Enter the gate, blocking while `effective_cap` lanes are already
    /// transferring. Returns `false` (without entering) once `stop`
    /// rises — a lane being shut down must not wedge on a slot that
    /// will never free.
    pub fn enter(&self, stop: &AtomicBool) -> bool {
        let mut busy = self.in_flight.lock();
        loop {
            if stop.load(Ordering::Acquire) {
                return false;
            }
            if *busy < self.effective_cap() {
                *busy += 1;
                return true;
            }
            self.cv.wait(&mut busy);
        }
    }

    /// Leave the gate, waking one waiting lane.
    pub fn exit(&self) {
        {
            let mut busy = self.in_flight.lock();
            *busy = busy.saturating_sub(1);
        }
        self.cv.notify_all();
    }

    /// Wake every waiter so it can observe a raised stop flag (under
    /// the gate mutex — see [`set_cap`](Self::set_cap) for why an
    /// unlocked notify could be lost).
    fn interrupt(&self) {
        let _guard = self.in_flight.lock();
        self.cv.notify_all();
    }
}

/// One accelerator's device-side staging buffer, modeled as a bounded
/// slot counter plus a lane-local free list of recycled feature buffers.
///
/// A slot is *occupied* from the moment the producer's transfer stage
/// starts a batch's wire-precision round-trip until the consumer
/// finishes that batch's propagation (and drops its [`SlotToken`]).
/// With `depth = 2` the ring is a classic double buffer: while the
/// accelerator computes on batch `i`'s slot, the transfer of batch
/// `i+1` proceeds into the second slot. With `depth = 1` there is
/// nowhere to stage ahead, so transfer and compute serialize.
///
/// ```
/// use hyscale_core::prefetch::StagingRing;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let ring = StagingRing::new(2);           // double buffer
/// let stop = AtomicBool::new(false);
/// assert!(ring.acquire(&stop));             // transfer of batch i starts
/// assert!(ring.acquire(&stop));             // transfer of batch i+1 overlaps
/// assert_eq!(ring.in_flight(), 2);
/// stop.store(true, Ordering::Release);
/// assert!(!ring.acquire(&stop));            // full ring + stop: refuse, don't block
/// ring.release_slot();                      // batch i propagation done
/// assert_eq!(ring.in_flight(), 1);
/// ```
pub struct StagingRing {
    depth: usize,
    state: Mutex<RingState>,
    cv: Condvar,
    drains: AtomicUsize,
    channel_drains: AtomicUsize,
}

#[derive(Default)]
struct RingState {
    in_flight: usize,
    free: Vec<Matrix>,
}

impl StagingRing {
    /// A ring of `depth` staging slots (clamped ≥ 1).
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            state: Mutex::new(RingState::default()),
            cv: Condvar::new(),
            drains: AtomicUsize::new(0),
            channel_drains: AtomicUsize::new(0),
        }
    }

    /// Number of staging slots.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Slots currently occupied by a batch in transfer or in compute.
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight
    }

    /// Times this ring has been drained by a DRM re-mapping event.
    pub fn drains(&self) -> usize {
        self.drains.load(Ordering::Relaxed)
    }

    /// Times this lane's bounded transfer *channel* (the gather-stage →
    /// lane-thread queue) has been **charged** a drain by a DRM
    /// re-mapping event. Like [`drains`](Self::drains) this is surgical
    /// accounting: only lanes whose quota share moved record the event.
    /// Note the charge records *whose data the re-map invalidated*, not
    /// which channels physically emptied — a re-slice restarts the
    /// producer generation, so gathered-but-untransferred channel work
    /// of every lane is recycled and deterministically re-gathered;
    /// what untouched lanes keep across the re-map is their share of
    /// the fully-prepared consumer-queue iterations (batch, buffer,
    /// staging slot — see `reslice_iteration`).
    pub fn channel_drains(&self) -> usize {
        self.channel_drains.load(Ordering::Relaxed)
    }

    /// Occupy a slot, blocking while the ring is full. Returns `false`
    /// (without occupying) once `stop` is raised — a producer being shut
    /// down must not wedge on a slot that will never free.
    pub fn acquire(&self, stop: &AtomicBool) -> bool {
        let mut st = self.state.lock();
        loop {
            if stop.load(Ordering::Acquire) {
                return false;
            }
            if st.in_flight < self.depth {
                st.in_flight += 1;
                return true;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Occupy a slot only if one is free right now — never blocks.
    /// This is the salvage path's acquire: while the consumer re-slices
    /// queued iterations there is no producer running to free slots, so
    /// blocking here could deadlock; a newly-activated lane that cannot
    /// stage immediately makes the iteration unsalvageable instead.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        if st.in_flight < self.depth {
            st.in_flight += 1;
            true
        } else {
            false
        }
    }

    /// Free a slot (the batch's propagation completed, or its transfer
    /// was abandoned) and wake any transfer blocked on a full ring.
    pub fn release_slot(&self) {
        {
            let mut st = self.state.lock();
            st.in_flight = st.in_flight.saturating_sub(1);
        }
        self.cv.notify_all();
    }

    /// Take a lane-local recycled buffer, if any.
    pub fn take_buffer(&self) -> Option<Matrix> {
        self.state.lock().free.pop()
    }

    /// Return a buffer to this lane's free list for ring-aware reuse.
    pub fn put_buffer(&self, m: Matrix) {
        self.state.lock().free.push(m);
    }

    /// Record a DRM drain event (the staged transfers this lane held
    /// were discarded or re-sliced by a re-mapping that moved this
    /// lane's share). Buffers stay on the free list — a drain
    /// invalidates *contents*, not allocations.
    fn drain(&self) {
        self.drains.fetch_add(1, Ordering::Relaxed);
        self.interrupt();
    }

    /// Record a DRM drain of this lane's transfer channel.
    fn drain_channel(&self) {
        self.channel_drains.fetch_add(1, Ordering::Relaxed);
    }

    /// Wake any waiter so it can observe a raised stop flag. The notify
    /// happens *under the state mutex*: `acquire` checks the stop flag
    /// and parks while holding that lock, so an unlocked notify could
    /// slot between its check and its park and be lost — leaving a lane
    /// asleep on a ring whose slots will never free (the shutdown path
    /// joins that very lane).
    fn interrupt(&self) {
        let _guard = self.state.lock();
        self.cv.notify_all();
    }
}

/// The per-accelerator staging rings of one trainer instance (shared by
/// the producer's transfer stage, the executor, and the DRM drain path).
pub struct StagingRings {
    rings: Vec<StagingRing>,
    depth: usize,
}

impl StagingRings {
    /// One ring of `depth` slots per accelerator.
    pub fn new(num_accelerators: usize, depth: usize) -> Self {
        let depth = depth.max(1);
        Self {
            rings: (0..num_accelerators)
                .map(|_| StagingRing::new(depth))
                .collect(),
            depth,
        }
    }

    /// Number of accelerator lanes.
    pub fn num_rings(&self) -> usize {
        self.rings.len()
    }

    /// Slots per ring.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Accelerator `a`'s ring.
    ///
    /// # Panics
    /// If `a >= num_rings()`.
    pub fn ring(&self, a: usize) -> &StagingRing {
        &self.rings[a]
    }

    /// Total occupied slots across all rings.
    pub fn in_flight_total(&self) -> usize {
        self.rings.iter().map(StagingRing::in_flight).sum()
    }

    /// Total DRM drain events across all rings.
    pub fn drains_total(&self) -> usize {
        self.rings.iter().map(StagingRing::drains).sum()
    }

    /// Total DRM lane-channel drain events across all rings.
    pub fn channel_drains_total(&self) -> usize {
        self.rings.iter().map(StagingRing::channel_drains).sum()
    }

    /// Record a full re-map drain on every ring. This survives only for
    /// `set_mapping`-style full re-maps (and the missed-event recovery
    /// path): a surgical `balance_work` drains per lane via
    /// [`drain_lanes`](Self::drain_lanes) instead.
    pub(crate) fn drain_all(&self) {
        for r in &self.rings {
            r.drain();
            r.drain_channel();
        }
    }

    /// Record a DRM `balance_work` drain on exactly the lanes whose
    /// quota share moved (`mask[a]` true). Untouched lanes keep their
    /// drain count — the pinned "surgical" invariant. The drain covers
    /// both the lane's staging ring and its transfer channel.
    pub(crate) fn drain_lanes(&self, mask: &[bool]) {
        for (r, &changed) in self.rings.iter().zip(mask) {
            if changed {
                r.drain();
                r.drain_channel();
            }
        }
    }

    /// Occupy a slot on ring `a` without blocking; `None` when the ring
    /// is full. Used by the salvage path when a re-map activates a lane
    /// that held no slot in the queued iteration.
    pub fn try_acquire_token(self: &Arc<Self>, a: usize) -> Option<SlotToken> {
        if self.rings[a].try_acquire() {
            Some(SlotToken {
                rings: Arc::clone(self),
                accel: a,
            })
        } else {
            None
        }
    }

    /// Wake every slot waiter (producer shutdown).
    fn interrupt_all(&self) {
        for r in &self.rings {
            r.interrupt();
        }
    }

    /// Occupy a slot on ring `a`, returning an RAII token that frees the
    /// slot on drop. `None` once `stop` is raised.
    pub fn acquire_token(self: &Arc<Self>, a: usize, stop: &AtomicBool) -> Option<SlotToken> {
        if self.rings[a].acquire(stop) {
            Some(SlotToken {
                rings: Arc::clone(self),
                accel: a,
            })
        } else {
            None
        }
    }
}

/// RAII occupancy of one staging slot: held from the start of a batch's
/// wire round-trip until the batch's propagation completes; dropping the
/// token frees the slot and wakes the transfer stage.
pub struct SlotToken {
    rings: Arc<StagingRings>,
    accel: usize,
}

impl SlotToken {
    /// The accelerator lane this token occupies a slot on.
    pub fn accel(&self) -> usize {
        self.accel
    }
}

impl Drop for SlotToken {
    fn drop(&mut self) {
        self.rings.ring(self.accel).release_slot();
    }
}

/// Everything the producer needs to prepare iterations without touching
/// the trainer's mutable state.
pub struct PrepareCtx {
    /// Shared dataset (graph + CPU-resident features + labels).
    pub dataset: Arc<Dataset>,
    /// Epoch seed scheduler (pure slicing; cheap clone of the trainer's).
    pub batcher: EpochBatcher,
    /// Seeded neighbor sampler (streams keyed per (epoch, iter, trainer)).
    pub sampler: NeighborSampler,
    /// Wire precision applied to accelerator-bound feature matrices.
    pub precision: Precision,
    /// Whether trainer 0 is the CPU trainer (reads host memory directly,
    /// skipping the precision round-trip).
    pub hybrid: bool,
    /// Live worker pools whose widths mirror the DRM's [`ThreadAlloc`].
    /// Shared with the executor: a `balance_thread` move re-sizes these
    /// in place and the producer observes the new widths on its next
    /// dispatch — no queue invalidation needed, because prepared
    /// iterations are bitwise-independent of pool widths.
    pub workers: Arc<StageWorkers>,
    /// NUMA domains of the CPU feature matrix (one per socket): the
    /// gather is sharded so each socket's rows are copied by that
    /// socket's share of the loader pool, weighted by the sampled rows'
    /// ownership histogram.
    pub numa_domains: usize,
    /// Per-accelerator staging rings gating the transfer stage (shared
    /// with the executor, which releases slots after propagation).
    pub rings: Arc<StagingRings>,
    /// Concurrency cap for the per-accelerator transfer lanes (shared
    /// with the executor; a DRM `balance_thread` move re-sizes it live
    /// via [`TransferLaneGate::on_thread_alloc`]).
    pub transfer_gate: Arc<TransferLaneGate>,
    /// Epoch time origin: transfer spans and propagation windows are
    /// recorded relative to this instant so the executor can measure how
    /// much wire time the rings hid behind compute.
    pub origin: Instant,
}

impl PrepareCtx {
    /// Accelerator (staging-ring) index serving trainer `trainer_idx`,
    /// or `None` for the CPU trainer (which, when hybrid, occupies
    /// trainer index 0 and never stages). The single source of truth
    /// for the trainer→lane mapping — the executor returns buffers to
    /// rings through this too.
    pub(crate) fn accel_of(&self, trainer_idx: usize) -> Option<usize> {
        let offset = usize::from(self.hybrid);
        if trainer_idx >= offset && trainer_idx - offset < self.rings.num_rings() {
            Some(trainer_idx - offset)
        } else {
            None
        }
    }

    /// Inverse of [`accel_of`](Self::accel_of): the trainer index served
    /// by accelerator lane `a`.
    pub(crate) fn trainer_of(&self, a: usize) -> usize {
        a + usize::from(self.hybrid)
    }

    /// Concurrent transfer lanes a full round of accelerator round-trips
    /// can achieve right now: one lane per ring, capped by the live
    /// transfer-gate budget.
    pub(crate) fn transfer_lanes(&self) -> usize {
        self.transfer_gate
            .effective_cap()
            .min(self.rings.num_rings())
            .max(1)
    }
}

/// One fully-prepared training iteration: sampled mini-batches plus
/// gathered (and precision-round-tripped) feature matrices, with the
/// producer-side wall-clock stage timings and the staging slots the
/// batch still occupies.
pub struct PreparedIteration {
    /// Iteration index within the epoch.
    pub iter: usize,
    /// The per-trainer seed quotas this iteration was prepared under —
    /// the consumer validates these against the live workload split.
    pub quotas: Vec<usize>,
    /// The quota epoch (re-map generation counter) this iteration was
    /// sliced under. [`IterationFeed`] bumps its counter on every
    /// re-map, so a batch prepared under an outdated plan is rejected
    /// at receive time by a counter compare — no global flush needed to
    /// defend against stragglers. Serial (inline) preparation always
    /// stamps 0.
    pub quota_epoch: u64,
    /// Per-trainer seed sets (empty for idle trainers).
    pub seed_sets: Vec<Vec<u32>>,
    /// Per-trainer sampled mini-batches (`None` for idle trainers).
    pub batches: Vec<Option<MiniBatch>>,
    /// Per-trainer gathered feature matrices, pool-backed.
    pub features: Vec<Option<Matrix>>,
    /// Wall-clock seconds spent sampling.
    pub sample_wall_s: f64,
    /// Wall-clock seconds of the loader fan-out (feature gathering).
    pub load_wall_s: f64,
    /// Wall-clock seconds of the precision round-trip (the functional
    /// stand-in for the PCIe transfer): the *aggregate* wire work, i.e.
    /// the sum over [`lane_transfer_walls`](Self::lane_transfer_walls).
    pub transfer_wall_s: f64,
    /// `(start, end)` of the round-trip relative to the epoch origin
    /// ([`PrepareCtx::origin`]) — the union over every lane's span: the
    /// executor intersects this with its propagation windows to measure
    /// the wire time the staging rings hid behind accelerator compute.
    pub transfer_span: (f64, f64),
    /// Per-accelerator-lane round-trip wall seconds (index = ring
    /// index; `0.0` for lanes that shipped nothing this iteration).
    pub lane_transfer_walls: Vec<f64>,
    /// Per-lane `(start, end)` transfer spans against the epoch origin
    /// (`None` for idle lanes) — the per-lane twin of
    /// [`transfer_span`](Self::transfer_span), from which the executor
    /// measures per-lane hidden-transfer time.
    pub lane_transfer_spans: Vec<Option<(f64, f64)>>,
    /// Concurrent transfer lanes this iteration's round-trips ran under
    /// (`1` for inline serial preparation).
    pub transfer_lanes: usize,
    /// Staging slots this batch occupies, one per accelerator batch —
    /// released (by drop) when the consumer finishes propagation. Empty
    /// in serial execution, which stages nothing ahead.
    pub slots: Vec<SlotToken>,
    /// The worker-pool widths (the DRM [`ThreadAlloc`]) this iteration
    /// was prepared under — the measured-wall twin of the simulated
    /// thread model, surfaced in
    /// [`WallStageTimes`](crate::report::WallStageTimes).
    pub threads: ThreadAlloc,
}

impl PreparedIteration {
    /// Return every pooled buffer for reuse and free the staging slots.
    pub fn recycle(self, pool: &MatrixPool) {
        for m in self.features.into_iter().flatten() {
            pool.release(m);
        }
        // self.slots dropped here: slot tokens release their rings
    }
}

/// Output of the producer's gather stage: a sampled iteration whose
/// feature matrices have not yet made the wire round-trip.
struct StagedIteration {
    iter: usize,
    quotas: Vec<usize>,
    seed_sets: Vec<Vec<u32>>,
    batches: Vec<Option<MiniBatch>>,
    features: Vec<Option<Matrix>>,
    sample_wall_s: f64,
    load_wall_s: f64,
    threads: ThreadAlloc,
}

impl StagedIteration {
    fn recycle(self, pool: &MatrixPool) {
        for m in self.features.into_iter().flatten() {
            pool.release(m);
        }
    }
}

/// Gather stage: slice seeds under `quotas`, sample one mini-batch per
/// non-idle trainer, and gather features into pooled buffers (ring-local
/// free lists first). Returns `None` once the epoch's seeds are
/// exhausted.
fn stage_gather(
    ctx: &PrepareCtx,
    order: &[u32],
    epoch: u64,
    iter: usize,
    quotas: &[usize],
    pool: &MatrixPool,
) -> Option<StagedIteration> {
    let (plan_iter, seed_sets) = ctx.batcher.plan(order, iter, quotas).next()?;
    debug_assert_eq!(plan_iter, iter);
    // Pool widths as budgeted right now — recorded with the iteration so
    // the trace shows when a balance_thread move reached the producer.
    let threads = ctx.workers.observed();

    // --- Sampling: n mini-batches, one per (non-empty) trainer, drawn
    // under the sampler pool's width (nested parallel draws inherit it) ---
    let sample_start = Instant::now();
    let stream_base = epoch.wrapping_mul(1 << 20) + iter as u64 * 64;
    let seed_refs: Vec<&[u32]> = seed_sets.iter().map(|s| s.as_slice()).collect();
    let batches: Vec<Option<MiniBatch>> = {
        let non_empty: Vec<&[u32]> = seed_refs
            .iter()
            .copied()
            .filter(|s| !s.is_empty())
            .collect();
        let mut sampled = ctx
            .workers
            .sampler()
            .install(|| {
                ctx.sampler
                    .sample_many(&ctx.dataset.graph, &non_empty, stream_base)
            })
            .into_iter();
        seed_refs
            .iter()
            .map(|s| if s.is_empty() { None } else { sampled.next() })
            .collect()
    };
    let sample_wall_s = sample_start.elapsed().as_secs_f64();

    // --- Feature Loading into pooled buffers: the n trainer matrices
    // fan out across loader lanes (one per accelerator/CPU trainer, up
    // to the pool's width), and each lane's gather is itself sharded
    // across the NUMA row domains of `X`, thread shares weighted by the
    // sampled rows' ownership histogram. Accelerator lanes draw their
    // buffer from the staging ring's free list first (lane-local
    // reuse). ---
    let active: Vec<(usize, &MiniBatch)> = batches
        .iter()
        .enumerate()
        .filter_map(|(idx, b)| b.as_ref().map(|mb| (idx, mb)))
        .collect();
    let gathered: Mutex<Vec<(usize, Matrix)>> = Mutex::new(Vec::with_capacity(active.len()));
    let fan_out_start = Instant::now();
    ctx.workers.loader().fan_out(active.len(), |k, lane| {
        let (idx, mb) = active[k];
        let mut x = ctx
            .accel_of(idx)
            .and_then(|a| ctx.rings.ring(a).take_buffer())
            .unwrap_or_else(|| pool.acquire());
        gather_features_numa_into(
            &mut x,
            &ctx.dataset.data.features,
            &mb.input_nodes,
            ctx.numa_domains,
            lane,
        );
        gathered.lock().push((idx, x));
    });
    let load_wall_s = fan_out_start.elapsed().as_secs_f64();
    let mut features: Vec<Option<Matrix>> = batches.iter().map(|_| None).collect();
    for (idx, x) in gathered.into_inner() {
        features[idx] = Some(x);
    }

    Some(StagedIteration {
        iter,
        quotas: quotas.to_vec(),
        seed_sets,
        batches,
        features,
        sample_wall_s,
        load_wall_s,
        threads,
    })
}

/// One accelerator batch traveling from the gather stage to its
/// transfer lane over the lane's bounded channel.
struct LaneWork {
    accel: usize,
    x: Matrix,
}

impl LaneWork {
    /// Return the gathered-but-untransferred buffer to its lane's free
    /// list (a recycle invalidates contents, never allocations).
    fn recycle(self, rings: &StagingRings) {
        rings.ring(self.accel).put_buffer(self.x);
    }
}

/// A lane's completed wire round-trip, headed for the assembler: the
/// transferred matrix, the staging slot it occupies until propagation
/// completes, and the lane-local transfer timing.
struct LaneDone {
    x: Matrix,
    token: SlotToken,
    span: (f64, f64),
    wall_s: f64,
}

impl LaneDone {
    fn recycle(self, rings: &StagingRings) {
        let accel = self.token.accel();
        rings.ring(accel).put_buffer(self.x);
        // self.token drops here, releasing the staging slot
    }
}

/// What a transfer lane reports back to the assembler — exactly one
/// message per [`LaneWork`] it received, **always**, even during
/// teardown. This one-for-one discipline is load-bearing: the assembler
/// pairs completions with skeletons purely by per-lane FIFO order, so a
/// lane that silently dropped a stopped work item would leave the
/// assembler waiting on a completion that never comes while the gather
/// thread is parked on the skeleton channel only the assembler can
/// drain — a deadlock. A lane that bails out (stop raised before its
/// round-trip) recycles the buffer and reports [`Aborted`](Self::Aborted)
/// instead.
enum LaneMsg {
    /// The round-trip completed; the batch occupies its staging slot.
    Done(LaneDone),
    /// The work item was abandoned (shutdown); its buffer was recycled.
    Aborted,
}

/// The non-accelerator remainder of a staged iteration (CPU batch,
/// seed sets, walls) waiting at the assembler for its lanes' completed
/// round-trips. `lanes` lists the ring indices that received a
/// [`LaneWork`] for this iteration, in trainer order — the assembler
/// receives exactly one [`LaneDone`] per entry, in that order, from
/// each lane's FIFO completion channel.
struct StagedSkeleton {
    staged: StagedIteration,
    lanes: Vec<usize>,
}

impl StagedSkeleton {
    fn recycle(self, pool: &MatrixPool) {
        self.staged.recycle(pool);
    }
}

/// Transfer stage, inline serial variant: round-trip every
/// accelerator-bound matrix at the wire precision (identity at F32; the
/// §VIII quantization extension) back to back on the caller thread,
/// stamping per-lane transfer spans against the epoch origin. `slots`
/// are the staging slots this batch holds until propagation completes
/// (empty in serial execution). The pipelined path runs the *same*
/// round-trip per lane on the concurrent lane threads instead — one
/// in-place call per matrix either way, which is what keeps the two
/// bitwise-identical.
fn apply_transfer(
    ctx: &PrepareCtx,
    staged: StagedIteration,
    slots: Vec<SlotToken>,
) -> PreparedIteration {
    let StagedIteration {
        iter,
        quotas,
        seed_sets,
        batches,
        mut features,
        sample_wall_s,
        load_wall_s,
        threads,
    } = staged;
    let num_rings = ctx.rings.num_rings();
    let mut lane_transfer_walls = vec![0.0f64; num_rings];
    let mut lane_transfer_spans: Vec<Option<(f64, f64)>> = vec![None; num_rings];
    let mut transfer_wall_s = 0.0f64;
    let mut span: Option<(f64, f64)> = None;
    for (idx, x) in features.iter_mut().enumerate() {
        if let (Some(x), Some(a)) = (x.as_mut(), ctx.accel_of(idx)) {
            let lane_start = ctx.origin.elapsed().as_secs_f64();
            let wall_start = Instant::now();
            ctx.workers
                .loader()
                .install(|| ctx.precision.round_trip_in_place(x));
            let wall = wall_start.elapsed().as_secs_f64();
            let lane_end = ctx.origin.elapsed().as_secs_f64();
            lane_transfer_walls[a] = wall;
            lane_transfer_spans[a] = Some((lane_start, lane_end));
            transfer_wall_s += wall;
            span = Some(match span {
                Some((s, e)) => (s.min(lane_start), e.max(lane_end)),
                None => (lane_start, lane_end),
            });
        }
    }
    let now = ctx.origin.elapsed().as_secs_f64();

    PreparedIteration {
        iter,
        quotas,
        quota_epoch: 0,
        seed_sets,
        batches,
        features,
        sample_wall_s,
        load_wall_s,
        transfer_wall_s,
        transfer_span: span.unwrap_or((now, now)),
        lane_transfer_walls,
        lane_transfer_spans,
        transfer_lanes: 1,
        slots,
        threads,
    }
}

/// Prepare iteration `iter` of `epoch` inline: gather stage plus
/// transfer stage back-to-back on the caller thread, staging nothing
/// (no ring slots are taken). Returns `None` once the epoch's seeds are
/// exhausted.
///
/// This is the single implementation of the producer stages — the
/// serial (`depth = 0`) path calls it directly and the pipelined path
/// runs the same two stages on background threads, which is what makes
/// them bitwise-identical by construction.
pub fn prepare_iteration(
    ctx: &PrepareCtx,
    order: &[u32],
    epoch: u64,
    iter: usize,
    quotas: &[usize],
    pool: &MatrixPool,
) -> Option<PreparedIteration> {
    let staged = stage_gather(ctx, order, epoch, iter, quotas, pool)?;
    Some(apply_transfer(ctx, staged, Vec::new()))
}

/// Per-trainer batch accounting of one `reslice_iteration` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResliceOutcome {
    /// Batches whose trainer's seed slice (and sampler stream) did not
    /// move: kept verbatim — sampled mini-batch, gathered features,
    /// wire round-trip, and staging slot all survive.
    pub salvaged: usize,
    /// Batches discarded and (where the trainer stays active) redone
    /// under the new slicing.
    pub flushed: usize,
}

/// Re-map one queued iteration in place from the quotas it was sliced
/// under to `new_quotas` — the surgical core of DRM invalidation.
///
/// Trainers whose seed slice is byte-identical under the new quotas
/// *and* whose sampler stream rank (index among non-empty trainers) is
/// unchanged keep everything: sampled mini-batch, gathered feature
/// matrix, completed wire round-trip, staging slot. Every other trainer
/// is re-sliced: its old batch is dropped, its buffer reused, and its
/// mini-batch re-sampled / re-gathered / re-round-tripped under exactly
/// the streams a from-scratch producer would use — so the result is
/// bitwise-identical to serial preparation under `new_quotas`.
///
/// Returns `None` (leaving the iteration unusable — the caller recycles
/// it) when the iteration does not exist under the new plan, the
/// trainer topology changed, or a newly-activated lane's staging ring
/// has no free slot (the salvage path never blocks on a slot: no
/// producer is running to free one).
fn reslice_iteration(
    ctx: &PrepareCtx,
    order: &[u32],
    epoch: u64,
    prep: &mut PreparedIteration,
    new_quotas: &[usize],
    pool: &MatrixPool,
) -> Option<ResliceOutcome> {
    let (plan_iter, new_seed_sets) = ctx.batcher.plan(order, prep.iter, new_quotas).next()?;
    debug_assert_eq!(plan_iter, prep.iter);
    if new_seed_sets.len() != prep.seed_sets.len() {
        return None; // trainer topology changed: nothing is salvageable
    }
    let n = new_seed_sets.len();
    // Sampler streams are assigned by rank among the iteration's
    // non-empty trainers, so a trainer is only salvageable if its rank
    // is stable too (a preceding trainer going empty/non-empty shifts
    // every later stream).
    let rank = |sets: &[Vec<u32>], t: usize| sets[..t].iter().filter(|s| !s.is_empty()).count();
    let keep: Vec<bool> = (0..n)
        .map(|t| {
            prep.seed_sets[t] == new_seed_sets[t]
                && rank(&prep.seed_sets, t) == rank(&new_seed_sets, t)
        })
        .collect();

    // --- Staging slots first (the only fallible step): keep tokens on
    // lanes that stay active, drop tokens on deactivated lanes, and
    // take a slot non-blockingly for newly-activated lanes.
    let mut held: Vec<Option<SlotToken>> = (0..ctx.rings.num_rings()).map(|_| None).collect();
    for tok in prep.slots.drain(..) {
        let a = tok.accel();
        held[a] = Some(tok);
    }
    let mut slots = Vec::new();
    for (t, seeds) in new_seed_sets.iter().enumerate() {
        if seeds.is_empty() {
            continue;
        }
        if let Some(a) = ctx.accel_of(t) {
            match held[a].take().or_else(|| ctx.rings.try_acquire_token(a)) {
                Some(tok) => slots.push(tok),
                None => return None, // lane full — unsalvageable without blocking
            }
        }
    }
    drop(held); // deactivated lanes' tokens release their slots here
    prep.slots = slots;

    // --- Per-trainer triage: count salvage, release changed trainers'
    // batches, and collect the ones that need rebuilding.
    let mut outcome = ResliceOutcome::default();
    let mut rebuild: Vec<usize> = Vec::new();
    for t in 0..n {
        if keep[t] {
            outcome.salvaged += usize::from(prep.batches[t].is_some());
            continue;
        }
        outcome.flushed += usize::from(prep.batches[t].is_some());
        prep.batches[t] = None;
        if new_seed_sets[t].is_empty() {
            // trainer deactivated: its buffer goes back for reuse, and
            // its lane's transfer accounting is cleared
            if let Some(m) = prep.features[t].take() {
                match ctx.accel_of(t) {
                    Some(a) => ctx.rings.ring(a).put_buffer(m),
                    None => pool.release(m),
                }
            }
            if let Some(a) = ctx.accel_of(t) {
                if let Some(w) = prep.lane_transfer_walls.get_mut(a) {
                    *w = 0.0;
                }
                if let Some(s) = prep.lane_transfer_spans.get_mut(a) {
                    *s = None;
                }
            }
        } else {
            rebuild.push(t);
        }
    }

    // --- Re-sample the rebuilt trainers under the producer's stream
    // derivation: (epoch, iter) base plus the trainer's non-empty rank.
    let stream_base = epoch.wrapping_mul(1 << 20) + prep.iter as u64 * 64;
    let sample_start = Instant::now();
    let resampled: Vec<MiniBatch> = ctx.workers.sampler().install(|| {
        rebuild
            .iter()
            .map(|&t| {
                let stream = stream_base.wrapping_add(rank(&new_seed_sets, t) as u64 + 1);
                ctx.sampler
                    .sample(&ctx.dataset.graph, &new_seed_sets[t], stream)
            })
            .collect()
    });
    prep.sample_wall_s += sample_start.elapsed().as_secs_f64();

    // --- Re-gather, reusing each trainer's existing buffer (then the
    // lane free list, then the shared pool), fanned out over loader
    // lanes exactly like the producer's gather stage.
    let load_start = Instant::now();
    let bufs: Vec<Mutex<Option<Matrix>>> = rebuild
        .iter()
        .map(|&t| {
            Mutex::new(Some(
                prep.features[t]
                    .take()
                    .or_else(|| {
                        ctx.accel_of(t)
                            .and_then(|a| ctx.rings.ring(a).take_buffer())
                    })
                    .unwrap_or_else(|| pool.acquire()),
            ))
        })
        .collect();
    let gathered: Mutex<Vec<(usize, Matrix)>> = Mutex::new(Vec::with_capacity(rebuild.len()));
    ctx.workers.loader().fan_out(rebuild.len(), |k, lane| {
        let mut x = bufs[k].lock().take().expect("buffer taken once per item");
        gather_features_numa_into(
            &mut x,
            &ctx.dataset.data.features,
            &resampled[k].input_nodes,
            ctx.numa_domains,
            lane,
        );
        gathered.lock().push((rebuild[k], x));
    });
    prep.load_wall_s += load_start.elapsed().as_secs_f64();

    // --- Wire round-trip for the rebuilt accelerator batches: each
    // rebuilt lane's wall and span *replace* that lane's originals (the
    // lane's batch was replaced outright); salvaged lanes keep theirs.
    let span_start = ctx.origin.elapsed().as_secs_f64();
    let mut any_transfer = false;
    for (t, mut x) in gathered.into_inner() {
        if let Some(a) = ctx.accel_of(t) {
            let lane_start = ctx.origin.elapsed().as_secs_f64();
            let wall_start = Instant::now();
            ctx.workers
                .loader()
                .install(|| ctx.precision.round_trip_in_place(&mut x));
            if let Some(w) = prep.lane_transfer_walls.get_mut(a) {
                *w = wall_start.elapsed().as_secs_f64();
            }
            if let Some(s) = prep.lane_transfer_spans.get_mut(a) {
                *s = Some((lane_start, ctx.origin.elapsed().as_secs_f64()));
            }
            any_transfer = true;
        }
        prep.features[t] = Some(x);
    }
    // aggregate stays the sum over lanes (salvaged + redone)
    prep.transfer_wall_s = prep.lane_transfer_walls.iter().sum();
    if any_transfer {
        // The redo replaces the span outright: widening it over the
        // original transfer would span the queue-sit gap in between and
        // over-credit hidden-transfer overlap. Dropping the original
        // span under-reports the (already-hidden) old round-trip — the
        // conservative direction for an overlap metric.
        prep.transfer_span = (span_start, ctx.origin.elapsed().as_secs_f64());
    }
    for (&t, mb) in rebuild.iter().zip(resampled) {
        prep.batches[t] = Some(mb);
    }

    prep.seed_sets = new_seed_sets;
    prep.quotas = new_quotas.to_vec();
    Some(outcome)
}

/// Handle to one background producer run (one contiguous span of
/// iterations under fixed quotas): a gather thread feeding one transfer
/// *lane* per accelerator (each lane owns its staging ring and a
/// bounded work channel; concurrent round-trips are capped by the
/// shared [`TransferLaneGate`]) feeding an assembler that re-joins the
/// lanes' completions into [`PreparedIteration`]s for the consumer
/// queue.
struct Prefetcher {
    rx: Receiver<PreparedIteration>,
    stop: Arc<AtomicBool>,
    rings: Arc<StagingRings>,
    gate: Arc<TransferLaneGate>,
    /// Prepared iterations currently sitting in the consumer queue
    /// (incremented by the assembler on send, decremented on receive) —
    /// lets tests and benches wait for the queue to fill
    /// deterministically instead of sleeping.
    ready: Arc<AtomicUsize>,
    handles: Vec<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn a producer covering `start_iter..end_iter` under `quotas`
    /// (stamping `quota_epoch` on every item), buffering at most
    /// `depth` prepared iterations per stage boundary.
    #[allow(clippy::too_many_arguments)]
    fn spawn(
        ctx: Arc<PrepareCtx>,
        order: Arc<Vec<u32>>,
        epoch: u64,
        start_iter: usize,
        end_iter: usize,
        quotas: Vec<usize>,
        quota_epoch: u64,
        depth: usize,
        pool: Arc<MatrixPool>,
    ) -> Self {
        let cap = depth.max(1);
        let num_rings = ctx.rings.num_rings();
        let (skel_tx, skel_rx) = sync_channel::<StagedSkeleton>(cap);
        let (ready_tx, rx) = sync_channel::<PreparedIteration>(cap);
        let stop = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicUsize::new(0));
        let rings = Arc::clone(&ctx.rings);
        let gate = Arc::clone(&ctx.transfer_gate);
        let mut handles = Vec::with_capacity(2 + num_rings);

        // Per-lane channels: gather → lane (bounded work) and lane →
        // assembler (completion). Both are FIFO per lane, so the
        // assembler re-pairs completions with skeletons purely by order
        // — no sequence numbers needed.
        //
        // The completion channel is *unbounded* so a lane's report can
        // never block: real completions are naturally bounded by the
        // staging ring (every LaneDone holds a SlotToken, so at most
        // `ring_depth` exist per lane), and teardown Aborted markers by
        // the work channel's capacity. A lane parked in a completion
        // send would neither drain its work channel (wedging the gather
        // thread) nor drop its sender (wedging the assembler), and
        // neither wait can observe `stop`.
        let mut work_txs = Vec::with_capacity(num_rings);
        let mut done_rxs = Vec::with_capacity(num_rings);
        for a in 0..num_rings {
            let (work_tx, work_rx) = sync_channel::<LaneWork>(cap);
            let (done_tx, done_rx) = std::sync::mpsc::channel::<LaneMsg>();
            work_txs.push(work_tx);
            done_rxs.push(done_rx);

            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name(format!("hyscale-lane-{a}"))
                .spawn(move || {
                    // The lane loop drains its channel to disconnect even
                    // after `stop` rises (recycling, not transferring), so
                    // a gather thread parked on a full lane channel always
                    // completes its send and can observe the flag. Every
                    // received work item is answered with exactly one
                    // LaneMsg — Done or Aborted — because the assembler
                    // pairs completions by FIFO order (see LaneMsg).
                    while let Ok(work) = work_rx.recv() {
                        if stop.load(Ordering::Acquire) {
                            work.recycle(&ctx.rings);
                            let _ = done_tx.send(LaneMsg::Aborted);
                            continue;
                        }
                        // The staging-slot gate: blocks while every slot
                        // of this lane's ring holds a batch still in
                        // transfer or compute — ring depth 1 serializes
                        // this lane's wire with its compute, depth 2
                        // double-buffers them.
                        let Some(token) = ctx.rings.acquire_token(work.accel, &stop) else {
                            work.recycle(&ctx.rings);
                            let _ = done_tx.send(LaneMsg::Aborted);
                            continue;
                        };
                        // The lane-concurrency gate: at most
                        // `TransferLaneGate::effective_cap` lanes run
                        // their round-trips at once (WorkerGroup-style;
                        // resized live by DRM balance_thread moves).
                        // Entered *after* the slot so a gated lane never
                        // blocks slot-holders of other rings.
                        if !ctx.transfer_gate.enter(&stop) {
                            drop(token);
                            work.recycle(&ctx.rings);
                            let _ = done_tx.send(LaneMsg::Aborted);
                            continue;
                        }
                        let lanes = ctx.transfer_lanes();
                        let sub = ctx.workers.loader().sub_group(lanes, work.accel % lanes);
                        let mut x = work.x;
                        let span_start = ctx.origin.elapsed().as_secs_f64();
                        let wall_start = Instant::now();
                        sub.install(|| ctx.precision.round_trip_in_place(&mut x));
                        let wall_s = wall_start.elapsed().as_secs_f64();
                        let span = (span_start, ctx.origin.elapsed().as_secs_f64());
                        ctx.transfer_gate.exit();
                        let done = LaneDone {
                            x,
                            token,
                            span,
                            wall_s,
                        };
                        if let Err(rejected) = done_tx.send(LaneMsg::Done(done)) {
                            // assembler gone (teardown): recycle in place
                            if let LaneMsg::Done(done) = rejected.0 {
                                done.recycle(&ctx.rings);
                            }
                        }
                    }
                })
                .expect("spawn transfer lane");
            handles.push(handle);
        }

        let gather_handle = {
            let ctx = Arc::clone(&ctx);
            let order = Arc::clone(&order);
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("hyscale-prefetch".into())
                .spawn(move || {
                    'epoch: for iter in start_iter..end_iter {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        match stage_gather(&ctx, &order, epoch, iter, &quotas, &pool) {
                            Some(mut staged) => {
                                // Fan the accelerator batches out to their
                                // lanes' channels (in trainer order), then
                                // hand the skeleton to the assembler. A
                                // closed channel means the pipeline is
                                // tearing down; recycle what this thread
                                // still holds (the lanes recycle theirs).
                                let mut lanes = Vec::new();
                                for idx in 0..staged.batches.len() {
                                    if staged.batches[idx].is_none() {
                                        continue;
                                    }
                                    let Some(a) = ctx.accel_of(idx) else {
                                        continue;
                                    };
                                    let x = staged.features[idx]
                                        .take()
                                        .expect("gathered accelerator feature matrix");
                                    if work_txs[a].send(LaneWork { accel: a, x }).is_err() {
                                        staged.recycle(&pool);
                                        break 'epoch;
                                    }
                                    lanes.push(a);
                                }
                                if skel_tx.send(StagedSkeleton { staged, lanes }).is_err() {
                                    break; // lane works already sent are
                                           // recycled by their lanes
                                }
                            }
                            None => break, // epoch seeds exhausted
                        }
                    }
                })
                .expect("spawn prefetch gather stage")
        };
        handles.push(gather_handle);

        let assembler_handle = {
            let ctx = Arc::clone(&ctx);
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            let ready = Arc::clone(&ready);
            std::thread::Builder::new()
                .name("hyscale-assemble".into())
                .spawn(move || {
                    'assemble: while let Ok(skeleton) = skel_rx.recv() {
                        if stop.load(Ordering::Acquire) {
                            skeleton.recycle(&pool);
                            break;
                        }
                        let StagedSkeleton { staged, lanes } = skeleton;
                        // Collect this iteration's completions, one per
                        // active lane, in lane-FIFO order. An aborted work
                        // item or a dead lane (stop raced us) aborts
                        // assembly; everything gathered so far is
                        // recycled.
                        let mut dones: Vec<(usize, LaneDone)> = Vec::with_capacity(lanes.len());
                        let mut aborted = false;
                        for &a in &lanes {
                            match done_rxs[a].recv() {
                                Ok(LaneMsg::Done(done)) => dones.push((a, done)),
                                Ok(LaneMsg::Aborted) | Err(_) => {
                                    aborted = true;
                                    break;
                                }
                            }
                        }
                        if aborted {
                            for (_, d) in dones {
                                d.recycle(&ctx.rings);
                            }
                            staged.recycle(&pool);
                            break 'assemble;
                        }
                        let StagedIteration {
                            iter,
                            quotas,
                            seed_sets,
                            batches,
                            mut features,
                            sample_wall_s,
                            load_wall_s,
                            threads,
                        } = staged;
                        let num_rings = ctx.rings.num_rings();
                        let mut lane_transfer_walls = vec![0.0f64; num_rings];
                        let mut lane_transfer_spans: Vec<Option<(f64, f64)>> =
                            vec![None; num_rings];
                        let mut slots = Vec::with_capacity(dones.len());
                        let mut transfer_wall_s = 0.0f64;
                        let mut span: Option<(f64, f64)> = None;
                        for (a, done) in dones {
                            features[ctx.trainer_of(a)] = Some(done.x);
                            slots.push(done.token);
                            lane_transfer_walls[a] = done.wall_s;
                            lane_transfer_spans[a] = Some(done.span);
                            transfer_wall_s += done.wall_s;
                            span = Some(match span {
                                Some((s, e)) => (s.min(done.span.0), e.max(done.span.1)),
                                None => done.span,
                            });
                        }
                        let now = ctx.origin.elapsed().as_secs_f64();
                        let prep = PreparedIteration {
                            iter,
                            quotas,
                            quota_epoch,
                            seed_sets,
                            batches,
                            features,
                            sample_wall_s,
                            load_wall_s,
                            transfer_wall_s,
                            transfer_span: span.unwrap_or((now, now)),
                            lane_transfer_walls,
                            lane_transfer_spans,
                            transfer_lanes: ctx.transfer_lanes(),
                            slots,
                            threads,
                        };
                        // Count the item *before* committing it to the
                        // channel: a consumer receiving it concurrently
                        // must never observe its decrement before this
                        // increment (underflow), and `shutdown_collect`
                        // relies on the counter never under-reporting a
                        // committed item.
                        ready.fetch_add(1, Ordering::Release);
                        if let Err(rejected) = ready_tx.send(prep) {
                            ready.fetch_sub(1, Ordering::Release);
                            rejected.0.recycle(&pool);
                            break;
                        }
                    }
                    // Recycle whatever the gather stage had buffered.
                    // Blocking receives, not `try_recv`: a gather thread
                    // parked in `send` on the full channel completes its
                    // send into the capacity each receive frees, and a
                    // `try_recv` drain would race past that iteration
                    // and destroy its buffers instead of pooling them.
                    // This terminates: by the time the main loop breaks,
                    // `stop` is raised (every break path follows it), so
                    // the gather thread exits its loop and drops its
                    // senders after at most one in-flight iteration.
                    // Dropping `done_rxs` on exit unblocks any lane
                    // parked in `done_tx.send`, and the lanes' own drain
                    // loops recycle the rest.
                    while let Ok(skeleton) = skel_rx.recv() {
                        skeleton.recycle(&pool);
                    }
                })
                .expect("spawn prefetch assembler stage")
        };
        handles.push(assembler_handle);

        Self {
            rx,
            stop,
            rings,
            gate,
            ready,
            handles,
        }
    }

    /// Blocking receive; `None` when the producer finished the epoch.
    fn recv(&self) -> Option<PreparedIteration> {
        let prep = self.rx.recv().ok();
        if prep.is_some() {
            self.ready.fetch_sub(1, Ordering::AcqRel);
        }
        prep
    }

    /// Prepared iterations currently buffered in the consumer queue.
    fn buffered(&self) -> usize {
        self.ready.load(Ordering::Acquire)
    }

    /// Stop the producer, returning the contiguous run of fully-prepared
    /// iterations that were buffered in the consumer queue (front
    /// first) so the caller can salvage them. Partially-prepared work
    /// (gather-stage buffers, an in-flight transfer) is recycled by the
    /// producer threads themselves before they exit.
    fn shutdown_collect(mut self) -> Vec<PreparedIteration> {
        self.stop.store(true, Ordering::Release);
        // Wake transfer lanes blocked on a full staging ring or on the
        // lane-concurrency gate so they can observe `stop` and bail out.
        self.rings.interrupt_all();
        self.gate.interrupt();
        // Drain whatever is buffered so a producer blocked on a full
        // channel can complete its send, observe `stop`, and exit. The
        // collected items keep their buffers and staging slots. The
        // `ready` counter is incremented before each send, so spin past
        // the (microseconds-wide) window where an item is committed but
        // not yet visible to `try_recv` — otherwise a race would
        // silently flush a salvageable iteration. Termination: with
        // `stop` raised the transfer stage sends at most the one item
        // already counted, and if it dies the channel disconnects.
        let mut collected = Vec::new();
        loop {
            match self.rx.try_recv() {
                Ok(prep) => {
                    self.ready.fetch_sub(1, Ordering::AcqRel);
                    collected.push(prep);
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    if self.ready.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
                Err(std::sync::mpsc::TryRecvError::Disconnected) => break,
            }
        }
        // Close the channel: any in-flight send now errors out (the
        // producer recycles the rejected iteration's buffers itself).
        drop(self.rx);
        for h in self.handles.drain(..) {
            // Bounded wait: at most one in-flight iteration per stage —
            // the same work the consumer would do inline anyway before
            // it can proceed under the new quotas.
            let _ = h.join();
        }
        collected
    }

    /// Stop the producer, recycling every buffered iteration and freeing
    /// their staging slots.
    fn shutdown(self, pool: &MatrixPool) {
        for prep in self.shutdown_collect() {
            prep.recycle(pool);
        }
    }
}

/// The executor's iteration source: serial preparation at `depth = 0`,
/// a background producer pipeline otherwise. When the consumer's quotas
/// change (DRM re-mapping) the invalidation is *surgical*: queued
/// iterations are re-sliced per trainer (`reslice_iteration`) so
/// settled trainers keep their prepared batches, and only the staging
/// rings — and transfer lane channels — of lanes whose share moved are
/// drained. A zero-diff re-map is a no-op; only missed-event recovery
/// (a stale batch actually reaching the consumer) still pays the full
/// flush.
///
/// Re-maps are additionally **coalesced**: [`invalidate`](Self::invalidate)
/// only *records* the target quotas, and the re-slice runs once, at the
/// next [`obtain`](Self::obtain), against the final quotas — so a burst
/// of `balance_work` events between two iterations diffs oldest-kept
/// vs. newest and re-slices each trainer at most once (two moves of the
/// same trainer pay one re-slice; a burst that cancels out pays
/// nothing).
pub struct IterationFeed {
    ctx: Arc<PrepareCtx>,
    order: Arc<Vec<u32>>,
    epoch: u64,
    end_iter: usize,
    depth: usize,
    pool: Arc<MatrixPool>,
    pipeline: Option<Prefetcher>,
    /// Iterations salvaged across the last re-map, served before the
    /// restarted producer's output (they cover the iterations just
    /// after the re-map point).
    salvaged: VecDeque<PreparedIteration>,
    /// The quotas the live producer generation is slicing under.
    quotas: Vec<usize>,
    /// A recorded-but-unapplied `balance_work` re-map `(next_iter,
    /// final quotas)`: bursts of events overwrite it in place and the
    /// single re-slice runs at the next `obtain`.
    pending_remap: Option<(usize, Vec<usize>)>,
    /// Re-map generation counter; stamped on every produced batch so
    /// stragglers are rejected by a counter compare at receive time.
    quota_epoch: u64,
    restarts: usize,
    remaps_coalesced: usize,
    batches_salvaged: usize,
    batches_flushed: usize,
    invalidation_wall_s: f64,
}

impl IterationFeed {
    /// Create the feed for one epoch, spawning the producer at iteration
    /// 0 when `depth > 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ctx: Arc<PrepareCtx>,
        order: Arc<Vec<u32>>,
        epoch: u64,
        end_iter: usize,
        depth: usize,
        pool: Arc<MatrixPool>,
        initial_quotas: Vec<usize>,
    ) -> Self {
        let mut feed = Self {
            ctx,
            order,
            epoch,
            end_iter,
            depth,
            pool,
            pipeline: None,
            salvaged: VecDeque::new(),
            quotas: initial_quotas,
            pending_remap: None,
            quota_epoch: 0,
            restarts: 0,
            remaps_coalesced: 0,
            batches_salvaged: 0,
            batches_flushed: 0,
            invalidation_wall_s: 0.0,
        };
        if depth > 0 {
            feed.pipeline = Some(feed.spawn_at(0));
        }
        feed
    }

    fn spawn_at(&self, start_iter: usize) -> Prefetcher {
        Prefetcher::spawn(
            Arc::clone(&self.ctx),
            Arc::clone(&self.order),
            self.epoch,
            start_iter,
            self.end_iter,
            self.quotas.clone(),
            self.quota_epoch,
            self.depth,
            Arc::clone(&self.pool),
        )
    }

    /// Discard a prepared iteration: count its batches as flushed and
    /// recycle its buffers/slots. The single accounting point behind
    /// `salvage_stats` — every flush path (stale recovery, unsalvageable
    /// re-slice, full restart) goes through here.
    fn flush_item(&mut self, prep: PreparedIteration) {
        self.batches_flushed += prep.batches.iter().flatten().count();
        prep.recycle(&self.pool);
    }

    /// Obtain iteration `iter` prepared under exactly `quotas`.
    /// Returns `None` once the epoch's seeds are exhausted.
    ///
    /// Any re-maps recorded by [`invalidate`](Self::invalidate) since
    /// the last call are applied first, as a single coalesced re-slice.
    pub fn obtain(&mut self, iter: usize, quotas: &[usize]) -> Option<PreparedIteration> {
        if self.depth == 0 {
            return prepare_iteration(&self.ctx, &self.order, self.epoch, iter, quotas, &self.pool);
        }
        self.apply_pending_remap();
        // Salvaged survivors of the last re-map are served first.
        if let Some(front) = self.salvaged.front() {
            if front.iter == iter && front.quotas == quotas {
                return self.salvaged.pop_front();
            }
            // The consumer asked for something the salvage doesn't
            // cover (out-of-band re-map): flush the survivors and fall
            // through to a full restart below.
            while let Some(prep) = self.salvaged.pop_front() {
                self.flush_item(prep);
            }
            self.restart(iter, quotas.to_vec());
        }
        loop {
            let prep = self.pipeline.as_ref().expect("pipeline alive").recv();
            match prep {
                Some(prep)
                    if prep.quota_epoch == self.quota_epoch
                        && prep.iter == iter
                        && prep.quotas == quotas =>
                {
                    return Some(prep)
                }
                Some(stale) => {
                    // Produced under an outdated plan (missed DRM event or
                    // an out-of-band `set_mapping`): full flush and redo —
                    // the `drain_all` path survives exactly for this.
                    self.flush_item(stale);
                    self.restart(iter, quotas.to_vec());
                }
                None => return None,
            }
        }
    }

    /// Record a DRM `balance_work` re-mapping: the producer will serve
    /// iteration `next_iter` onward under `quotas`. The re-map is
    /// **deferred and coalesced** — nothing is drained here; the
    /// surgical re-slice runs once, at the next
    /// [`obtain`](Self::obtain), against the *final* quotas of whatever
    /// burst of events accumulated. Its semantics there:
    ///
    /// * a **zero-diff** outcome (final quotas equal the live
    ///   generation's — including a burst that cancels itself out) is a
    ///   complete no-op: no drain, no restart, nothing flushed;
    /// * otherwise queued iterations are re-sliced per trainer against
    ///   the oldest-kept → newest quota diff: settled trainers keep
    ///   their batches, buffers, and staging slots
    ///   (`reslice_iteration`), and only the *changed* lanes record a
    ///   ring drain and a lane-channel drain;
    /// * the producer restarts after the salvaged run, under the new
    ///   quotas and a bumped quota epoch (stragglers from the old
    ///   generation are rejected at receive time by the epoch stamp).
    pub fn invalidate(&mut self, next_iter: usize, quotas: Vec<usize>) {
        if self.depth == 0 {
            // serial feeds prepare inline: nothing is speculative, the
            // quotas just take effect on the next inline preparation
            self.quotas = quotas;
            return;
        }
        if let Some((pending_iter, pending)) = self.pending_remap.take() {
            // burst: coalesce into one re-slice against the final quotas
            if pending != quotas {
                self.remaps_coalesced += 1;
            }
            self.pending_remap = Some((pending_iter.min(next_iter), quotas));
        } else {
            self.pending_remap = Some((next_iter, quotas));
        }
    }

    /// Run the single coalesced re-slice a burst of
    /// [`invalidate`](Self::invalidate) calls recorded, if any.
    fn apply_pending_remap(&mut self) {
        let Some((next_iter, quotas)) = self.pending_remap.take() else {
            return;
        };
        if quotas == self.quotas {
            return; // zero-diff balance_work: nothing moved, nothing to pay
        }
        let diff = QuotaDiff::between(&self.quotas, &quotas);
        self.quotas = quotas;
        let t0 = Instant::now();
        self.quota_epoch += 1;
        // Stop the old generation, keeping its queued iterations, and
        // fold in any survivors of a previous re-map still unserved.
        let queued = match self.pipeline.take() {
            Some(p) => p.shutdown_collect(),
            None => Vec::new(),
        };
        let pending: Vec<PreparedIteration> = self.salvaged.drain(..).chain(queued).collect();
        // Re-slice the contiguous run starting at `next_iter`; the
        // first unsalvageable item (and everything after it) is flushed.
        let mut expected = next_iter;
        let mut broken = false;
        for mut prep in pending {
            if !broken && prep.iter == expected {
                match reslice_iteration(
                    &self.ctx,
                    &self.order,
                    self.epoch,
                    &mut prep,
                    &self.quotas,
                    &self.pool,
                ) {
                    Some(out) => {
                        self.batches_salvaged += out.salvaged;
                        self.batches_flushed += out.flushed;
                        prep.quota_epoch = self.quota_epoch;
                        self.salvaged.push_back(prep);
                        expected += 1;
                        continue;
                    }
                    None => broken = true,
                }
            } else {
                broken = true;
            }
            self.flush_item(prep);
        }
        // Only the lanes whose slice moved record the drain events —
        // staging ring and transfer channel both, per changed lane.
        self.ctx
            .rings
            .drain_lanes(&diff.changed_lanes(self.ctx.hybrid, self.ctx.rings.num_rings()));
        self.restarts += 1;
        self.pipeline = Some(self.spawn_at(expected));
        self.invalidation_wall_s += t0.elapsed().as_secs_f64();
    }

    /// Apply a DRM `balance_thread` re-allocation: re-size the shared
    /// worker pools — and, in auto mode, the transfer-lane concurrency
    /// cap — so the producer's next dispatch runs at the new widths.
    /// Unlike [`invalidate`](Self::invalidate) this is an immediate
    /// cross-thread atomic store, not a message through the queue — it
    /// is unordered with respect to in-flight iterations and
    /// deliberately drains nothing: not the queue, not the staging
    /// rings, not the lane channels. Pool widths and lane concurrency
    /// change wall-clock, never bytes, so already-prepared iterations
    /// and in-flight transfers remain valid (`tests/equivalence.rs` and
    /// the multi-lane matrix in `tests/proptest_invariants.rs` pin this
    /// bitwise).
    pub fn rebalance_threads(&self, alloc: &ThreadAlloc) {
        self.ctx.workers.apply(alloc);
        self.ctx.transfer_gate.on_thread_alloc(alloc);
    }

    /// Concurrent transfer lanes the producer can run right now (one
    /// lane per accelerator ring, capped by the live
    /// [`TransferLaneGate`] budget).
    pub fn transfer_lanes(&self) -> usize {
        self.ctx.transfer_lanes()
    }

    /// The live transfer-lane concurrency gate.
    pub fn transfer_gate(&self) -> &Arc<TransferLaneGate> {
        &self.ctx.transfer_gate
    }

    /// `balance_work` bursts folded into an already-pending re-map (each
    /// counted event re-sliced nothing on its own — the final quotas
    /// paid one re-slice for the whole burst).
    pub fn remaps_coalesced(&self) -> usize {
        self.remaps_coalesced
    }

    /// The live worker pools this feed's producer dispatches on.
    pub fn workers(&self) -> &StageWorkers {
        &self.ctx.workers
    }

    /// The per-accelerator staging rings this feed's transfer stage
    /// runs through.
    pub fn rings(&self) -> &Arc<StagingRings> {
        &self.ctx.rings
    }

    /// Full flush and restart — the `set_mapping`-style re-map: every
    /// queued batch is discarded and **every** ring records a drain.
    /// Reached only from the missed-event recovery path in
    /// [`obtain`](Self::obtain); ordinary `balance_work` moves go
    /// through the surgical [`invalidate`](Self::invalidate).
    fn restart(&mut self, start_iter: usize, quotas: Vec<usize>) {
        self.quotas = quotas;
        self.quota_epoch += 1;
        if let Some(p) = self.pipeline.take() {
            for prep in p.shutdown_collect() {
                self.flush_item(prep);
            }
        }
        // Count the drain on every ring: the staged wire transfers died
        // with the producer generation that prepared them.
        self.ctx.rings.drain_all();
        self.restarts += 1;
        self.pipeline = Some(self.spawn_at(start_iter));
    }

    /// Number of producer restarts this epoch (DRM invalidations).
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// Cumulative `(salvaged, flushed)` per-trainer batch counts across
    /// this epoch's re-mapping events: `salvaged` batches survived a
    /// `balance_work` move untouched, `flushed` were discarded (and,
    /// for still-active trainers, redone). Zero-diff re-maps contribute
    /// to neither.
    pub fn salvage_stats(&self) -> (usize, usize) {
        (self.batches_salvaged, self.batches_flushed)
    }

    /// Wall-clock seconds this feed has spent inside re-mapping events
    /// (producer shutdown + per-trainer re-slice + restart).
    pub fn invalidation_wall_s(&self) -> f64 {
        self.invalidation_wall_s
    }

    /// Fully-prepared iterations currently buffered ahead of the
    /// consumer (salvaged survivors plus the producer queue).
    pub fn buffered(&self) -> usize {
        self.salvaged.len() + self.pipeline.as_ref().map_or(0, Prefetcher::buffered)
    }

    /// Tear down the producer, recycling buffered iterations. A re-map
    /// still pending (recorded after the epoch's last `obtain`) is
    /// dropped unapplied — there is no speculative work left for it to
    /// invalidate, and the next epoch's feed starts from the live
    /// split's quotas anyway.
    pub fn finish(mut self) {
        self.pending_remap = None;
        for prep in self.salvaged.drain(..) {
            prep.recycle(&self.pool);
        }
        if let Some(p) = self.pipeline.take() {
            p.shutdown(&self.pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_tensor::init::randn;

    fn ctx_with_rings(ring_depth: usize) -> (Arc<PrepareCtx>, Arc<Vec<u32>>) {
        let dataset = Arc::new(Dataset::toy(5));
        let batcher = EpochBatcher::new(dataset.splits.train.clone(), 99);
        let order = Arc::new(batcher.epoch_order(0));
        let alloc = ThreadAlloc::default_for(8);
        let ctx = PrepareCtx {
            dataset,
            batcher,
            sampler: NeighborSampler::new(vec![4, 3], 17),
            precision: Precision::F32,
            hybrid: true,
            workers: Arc::new(StageWorkers::from_alloc(&alloc)),
            numa_domains: 2,
            rings: Arc::new(StagingRings::new(2, ring_depth)),
            transfer_gate: Arc::new(TransferLaneGate::new(alloc.loader, true)),
            origin: Instant::now(),
        };
        (Arc::new(ctx), order)
    }

    fn ctx() -> (Arc<PrepareCtx>, Arc<Vec<u32>>) {
        ctx_with_rings(2)
    }

    #[test]
    fn pool_recycles_buffers() {
        let pool = MatrixPool::new();
        let mut m = pool.acquire();
        assert_eq!(pool.idle(), 0);
        m.resize(8, 4);
        pool.release(m);
        assert_eq!(pool.idle(), 1);
        let m2 = pool.acquire();
        assert_eq!(m2.shape(), (8, 4), "recycled buffer keeps its allocation");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn ring_slots_bound_in_flight_batches() {
        let rings = Arc::new(StagingRings::new(1, 2));
        let stop = AtomicBool::new(false);
        let t0 = rings.acquire_token(0, &stop).expect("slot 0");
        let t1 = rings.acquire_token(0, &stop).expect("slot 1");
        assert_eq!(rings.ring(0).in_flight(), 2);
        // full + stop raised: acquire refuses instead of blocking
        stop.store(true, Ordering::Release);
        assert!(rings.acquire_token(0, &stop).is_none());
        stop.store(false, Ordering::Release);
        drop(t0); // batch 0's propagation completed
        assert_eq!(rings.ring(0).in_flight(), 1);
        let t2 = rings.acquire_token(0, &stop).expect("slot freed by drop");
        assert_eq!(t2.accel(), 0);
        drop(t1);
        drop(t2);
        assert_eq!(rings.in_flight_total(), 0);
    }

    #[test]
    fn ring_free_list_is_lane_local() {
        let rings = StagingRings::new(2, 2);
        assert!(rings.ring(0).take_buffer().is_none());
        let mut m = Matrix::uninit(0, 0);
        m.resize(4, 3);
        rings.ring(0).put_buffer(m);
        assert!(rings.ring(1).take_buffer().is_none(), "lanes don't share");
        let back = rings.ring(0).take_buffer().expect("lane 0 buffer");
        assert_eq!(back.shape(), (4, 3));
    }

    #[test]
    fn blocked_transfer_wakes_when_slot_frees() {
        // A transfer blocked on a full ring must wake when the consumer
        // releases the slot (token drop), not spin or deadlock.
        let rings = Arc::new(StagingRings::new(1, 1));
        let stop = Arc::new(AtomicBool::new(false));
        let held = rings.acquire_token(0, &stop).expect("slot");
        let waiter = {
            let rings = Arc::clone(&rings);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || rings.acquire_token(0, &stop).is_some())
        };
        // give the waiter time to block, then release the slot
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().expect("waiter"), "waiter never acquired");
        // the waiter's token dropped with its thread: slot freed again
        assert_eq!(rings.in_flight_total(), 0);
    }

    #[test]
    fn prepare_is_deterministic_and_pool_independent() {
        let (ctx, order) = ctx();
        let pool = MatrixPool::new();
        let quotas = [16usize, 16, 16];
        let a = prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).unwrap();
        // poison the pool and the ring free lists with stale buffers
        pool.release(randn(200, 3, 1));
        pool.release(Matrix::full(1, 1, f32::NAN));
        ctx.rings.ring(0).put_buffer(Matrix::full(7, 7, f32::NAN));
        let b = prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).unwrap();
        assert_eq!(a.seed_sets, b.seed_sets);
        for (x, y) in a.features.iter().zip(&b.features) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.as_slice(), y.as_slice()),
                (None, None) => {}
                _ => panic!("feature presence diverged"),
            }
        }
        assert!(a.slots.is_empty(), "serial preparation must stage nothing");
    }

    #[test]
    fn prepare_ends_after_epoch_exhausted() {
        let (ctx, order) = ctx();
        let pool = MatrixPool::new();
        let n = order.len();
        let quotas = [n / 2 + 1, n / 2 + 1]; // 1 iteration consumes all
        assert!(prepare_iteration(&ctx, &order, 0, 0, &quotas, &pool).is_some());
        assert!(prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).is_none());
    }

    #[test]
    fn feed_pipelined_matches_serial_across_ring_depths() {
        for ring_depth in [1usize, 2] {
            let (serial_ctx, order) = ctx_with_rings(ring_depth);
            let (piped_ctx, _) = ctx_with_rings(ring_depth);
            let quotas = vec![8usize, 8, 8];
            let serial_pool = Arc::new(MatrixPool::new());
            let mut serial = IterationFeed::new(
                Arc::clone(&serial_ctx),
                Arc::clone(&order),
                0,
                usize::MAX,
                0,
                Arc::clone(&serial_pool),
                quotas.clone(),
            );
            let piped_pool = Arc::new(MatrixPool::new());
            let mut piped = IterationFeed::new(
                Arc::clone(&piped_ctx),
                Arc::clone(&order),
                0,
                usize::MAX,
                3,
                Arc::clone(&piped_pool),
                quotas.clone(),
            );
            let mut iter = 0;
            loop {
                let a = serial.obtain(iter, &quotas);
                let b = piped.obtain(iter, &quotas);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.iter, b.iter);
                        assert_eq!(a.seed_sets, b.seed_sets);
                        for (x, y) in a.features.iter().zip(&b.features) {
                            if let (Some(x), Some(y)) = (x, y) {
                                assert_eq!(x.as_slice(), y.as_slice());
                            }
                        }
                        // two accelerator batches -> two staging slots held
                        assert_eq!(b.slots.len(), 2, "ring depth {ring_depth}");
                        a.recycle(&serial_pool);
                        b.recycle(&piped_pool);
                    }
                    (None, None) => break,
                    _ => panic!("serial and pipelined feeds disagree on epoch length"),
                }
                iter += 1;
            }
            assert!(iter >= 2, "epoch too short to exercise the pipeline");
            piped.finish();
            serial.finish();
            assert_eq!(
                piped_ctx.rings.in_flight_total(),
                0,
                "staging slots leaked at ring depth {ring_depth}"
            );
        }
    }

    #[test]
    fn rebalance_resizes_pools_the_producer_observes() {
        // A balance_thread move must change the partition widths the
        // producer dispatches on — not only the simulated StageTimes —
        // and must leave the staging rings untouched.
        let (ctx, order) = ctx();
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize, 8, 8];
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            1,
            Arc::clone(&pool),
            quotas.clone(),
        );
        let before = feed.obtain(0, &quotas).expect("first iteration");
        assert_eq!(before.threads, ThreadAlloc::default_for(8));
        before.recycle(&pool);

        // DRM moves two threads from the trainer pool to the loader pool.
        let moved = ThreadAlloc {
            sampler: 2,
            loader: 4,
            trainer: 2,
        };
        feed.rebalance_threads(&moved);
        assert_eq!(feed.workers().observed(), moved);
        assert_eq!(feed.workers().loader().width(), 4);

        // Subsequent prepared iterations carry (and ran under) the new
        // widths, without the queue having been invalidated. At depth 1
        // up to a few iterations (buffered or in flight across the two
        // producer stages) may predate the re-size; the move must land
        // within a few more.
        let mut landed = false;
        for iter in 1..=6 {
            let prep = feed
                .obtain(iter, &quotas)
                .expect("post-rebalance iteration");
            let threads = prep.threads;
            prep.recycle(&pool);
            if threads == moved {
                landed = true;
                break;
            }
        }
        assert!(landed, "producer never observed the balance_thread move");
        assert_eq!(feed.restarts(), 0, "thread moves must not drain the queue");
        assert_eq!(
            feed.rings().drains_total(),
            0,
            "thread moves must not drain the staging rings"
        );
        feed.finish();
    }

    #[test]
    fn feed_restarts_on_quota_change_and_drains_changed_lanes() {
        let (ctx, order) = ctx();
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize, 8, 8];
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            2,
            Arc::clone(&pool),
            quotas.clone(),
        );
        let first = feed.obtain(0, &quotas).expect("first iteration");
        first.recycle(&pool);
        assert_eq!(feed.rings().drains_total(), 0);
        // consumer re-balances: 4 seeds move from trainer 1 (lane 0) to
        // trainer 0 (the CPU). Lane 1's slice is untouched — surgical
        // invalidation drains only lane 0's ring (the re-slice itself
        // is deferred to the next obtain, where it coalesces bursts).
        let new_quotas = vec![12usize, 4, 8];
        feed.invalidate(1, new_quotas.clone());
        let second = feed.obtain(1, &new_quotas).expect("post-remap iteration");
        assert_eq!(
            feed.rings().ring(0).drains(),
            1,
            "the changed lane must record the drain"
        );
        assert_eq!(
            feed.rings().ring(1).drains(),
            0,
            "an untouched lane must not be drained"
        );
        assert_eq!(second.quotas, new_quotas);
        assert_eq!(second.seed_sets[0].len(), 12);
        assert_eq!(second.seed_sets[1].len(), 4);
        // bitwise identical to preparing serially under the new quotas
        let reference =
            prepare_iteration(&ctx, &order, 0, 1, &new_quotas, &pool).expect("reference");
        assert_eq!(second.seed_sets, reference.seed_sets);
        for (x, y) in second.features.iter().zip(&reference.features) {
            if let (Some(x), Some(y)) = (x, y) {
                assert_eq!(x.as_slice(), y.as_slice());
            }
        }
        assert!(feed.restarts() >= 1);
        second.recycle(&pool);
        reference.recycle(&pool);
        feed.finish();
        assert_eq!(ctx.rings.in_flight_total(), 0, "slots leaked after finish");
    }

    #[test]
    fn zero_diff_invalidate_is_a_noop() {
        let (ctx, order) = ctx();
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize, 8, 8];
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            2,
            Arc::clone(&pool),
            quotas.clone(),
        );
        let first = feed.obtain(0, &quotas).expect("first iteration");
        first.recycle(&pool);
        // a balance_work whose quotas equal the old ones must cost
        // nothing — also after the deferred re-slice runs at obtain
        feed.invalidate(1, quotas.clone());
        let second = feed.obtain(1, &quotas).expect("second iteration");
        assert_eq!(second.iter, 1);
        assert_eq!(feed.restarts(), 0, "zero-diff re-map restarted producer");
        assert_eq!(feed.rings().drains_total(), 0, "zero-diff re-map drained");
        assert_eq!(
            feed.rings().channel_drains_total(),
            0,
            "zero-diff re-map drained a lane channel"
        );
        assert_eq!(feed.salvage_stats(), (0, 0), "zero-diff re-map flushed");
        second.recycle(&pool);
        feed.finish();
    }

    #[test]
    fn cancelling_burst_coalesces_to_a_noop() {
        // two opposite balance_work moves recorded between obtains must
        // fold into a zero-diff re-map: one coalesce, zero re-slices
        let (ctx, order) = ctx();
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize, 8, 8];
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            2,
            Arc::clone(&pool),
            quotas.clone(),
        );
        let first = feed.obtain(0, &quotas).expect("first iteration");
        first.recycle(&pool);
        feed.invalidate(1, vec![12, 4, 8]);
        feed.invalidate(1, quotas.clone()); // moves back: burst cancels
        assert_eq!(feed.remaps_coalesced(), 1);
        let second = feed.obtain(1, &quotas).expect("second iteration");
        assert_eq!(second.iter, 1);
        assert_eq!(feed.restarts(), 0, "cancelled burst restarted producer");
        assert_eq!(feed.rings().drains_total(), 0, "cancelled burst drained");
        assert_eq!(feed.salvage_stats(), (0, 0), "cancelled burst flushed");
        second.recycle(&pool);
        feed.finish();
    }

    #[test]
    fn transfer_gate_blocks_at_cap_and_wakes_on_resize() {
        // a waiter parked on a full gate must wake when balance_thread
        // widens the cap — not only when a lane exits
        std::env::set_var("HYSCALE_RAYON_THREADS", "4");
        let gate = Arc::new(TransferLaneGate::new(1, true));
        let stop = Arc::new(AtomicBool::new(false));
        assert!(gate.enter(&stop));
        assert_eq!(gate.in_flight(), 1);
        let waiter = {
            let gate = Arc::clone(&gate);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || gate.enter(&stop))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(gate.in_flight(), 1, "cap 1 must hold the second lane");
        gate.on_thread_alloc(&ThreadAlloc {
            sampler: 1,
            loader: 2,
            trainer: 1,
        });
        assert_eq!(gate.cap(), 2, "auto mode follows the loader budget");
        assert!(waiter.join().expect("waiter"), "resize never woke the lane");
        assert_eq!(gate.in_flight(), 2);
        gate.exit();
        gate.exit();
        assert_eq!(gate.in_flight(), 0);
        std::env::remove_var("HYSCALE_RAYON_THREADS");
    }

    #[test]
    fn transfer_gate_refuses_after_stop() {
        let gate = Arc::new(TransferLaneGate::new(1, false));
        let stop = Arc::new(AtomicBool::new(false));
        assert!(gate.enter(&stop));
        stop.store(true, Ordering::Release);
        // full gate + stop: refuse rather than block (shutdown path)
        assert!(!gate.enter(&stop));
        // a fixed cap ignores thread re-allocations
        gate.on_thread_alloc(&ThreadAlloc {
            sampler: 1,
            loader: 8,
            trainer: 1,
        });
        assert_eq!(gate.cap(), 1, "fixed cap must not follow the loader");
        gate.exit();
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn try_acquire_never_blocks() {
        let rings = Arc::new(StagingRings::new(1, 1));
        let t0 = rings.try_acquire_token(0).expect("free slot");
        assert!(
            rings.try_acquire_token(0).is_none(),
            "full ring must refuse"
        );
        drop(t0);
        assert!(rings.try_acquire_token(0).is_some());
    }

    #[test]
    fn reslice_salvages_settled_trainers_bitwise() {
        // 3 trainers (CPU + 2 lanes): move 4 seeds from lane 0 to the
        // CPU while lane 1's slice stays put — the salvage must keep
        // lane 1's batch verbatim and rebuild only the movers.
        let (ctx, order) = ctx();
        let pool = MatrixPool::new();
        let old_quotas = [8usize, 8, 8];
        let new_quotas = [12usize, 4, 8];
        let mut prep = prepare_iteration(&ctx, &order, 0, 1, &old_quotas, &pool).unwrap();
        let lane1_before = prep.features[2].as_ref().unwrap().as_slice().to_vec();
        let out =
            reslice_iteration(&ctx, &order, 0, &mut prep, &new_quotas, &pool).expect("salvage");
        assert_eq!(out.salvaged, 1, "lane 1's batch survives");
        assert_eq!(out.flushed, 2, "CPU + lane 0 are re-sliced");
        // bitwise-identical to a from-scratch preparation under the new
        // quotas — including the untouched trainer
        let reference = prepare_iteration(&ctx, &order, 0, 1, &new_quotas, &pool).unwrap();
        assert_eq!(prep.seed_sets, reference.seed_sets);
        assert_eq!(prep.quotas, reference.quotas);
        for (t, (x, y)) in prep.features.iter().zip(&reference.features).enumerate() {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.as_slice(), y.as_slice(), "trainer {t}"),
                (None, None) => {}
                _ => panic!("feature presence diverged at trainer {t}"),
            }
        }
        assert_eq!(
            prep.features[2].as_ref().unwrap().as_slice(),
            lane1_before.as_slice(),
            "salvaged buffer was rewritten"
        );
        for (a, b) in prep.batches.iter().zip(&reference.batches) {
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.seeds, b.seeds);
                    assert_eq!(a.input_nodes, b.input_nodes);
                }
                (None, None) => {}
                _ => panic!("batch presence diverged"),
            }
        }
        prep.recycle(&pool);
        reference.recycle(&pool);
    }

    #[test]
    fn reslice_rejects_exhausted_iterations() {
        let (ctx, order) = ctx();
        let pool = MatrixPool::new();
        let n = order.len();
        let old_quotas = [8usize, 8, 8];
        let mut prep = prepare_iteration(&ctx, &order, 0, 0, &old_quotas, &pool).unwrap();
        // under huge quotas iteration 0 still exists but this salvage
        // targets an iteration past the epoch's end
        prep.iter = n; // beyond any plan
        assert!(reslice_iteration(&ctx, &order, 0, &mut prep, &old_quotas, &pool).is_none());
        prep.recycle(&pool);
    }
}
