//! Regenerates paper Table III: dataset statistics and GNN-layer
//! dimensions, plus the memory-placement analysis motivating the system
//! (paper §I).

use hyscale_bench::Table;
use hyscale_device::memory::{check_device_placement, graph_footprint_bytes};
use hyscale_device::spec::{ALVEO_U250, RTX_A5000};
use hyscale_graph::dataset::ALL_DATASETS;

fn main() {
    println!("Table III: Statistics of the datasets and GNN-layer dimensions\n");
    let mut t = Table::new(&[
        "Dataset",
        "#Vertices",
        "#Edges",
        "f0",
        "f1",
        "f2",
        "avg deg",
    ]);
    for d in ALL_DATASETS {
        t.row(vec![
            d.name.to_string(),
            d.num_vertices.to_string(),
            d.num_edges.to_string(),
            d.f0.to_string(),
            d.f1.to_string(),
            d.f2.to_string(),
            format!("{:.1}", d.avg_degree()),
        ]);
    }
    t.print();

    println!("\nMemory placement (motivation, paper §I):\n");
    let mut m = Table::new(&[
        "Dataset",
        "graph+features (GB)",
        "fits A5000 24GB",
        "fits U250 64GB",
    ]);
    for d in ALL_DATASETS {
        m.row(vec![
            d.name.to_string(),
            format!("{:.1}", graph_footprint_bytes(&d) as f64 / 1e9),
            check_device_placement(&d, &RTX_A5000).fits.to_string(),
            check_device_placement(&d, &ALVEO_U250).fits.to_string(),
        ]);
    }
    m.print();

    println!("\nSynthetic stand-ins (1/4000 scale, functional runs):\n");
    let mut s = Table::new(&[
        "Dataset",
        "|V|",
        "|E|",
        "avg deg",
        "p50/p90/p99 deg",
        "clustering",
    ]);
    for d in ALL_DATASETS {
        let ds = d.materialize(4000, 42);
        let sum = hyscale_graph::stats::summarize(&ds.graph);
        let cc = hyscale_graph::stats::sampled_clustering(&ds.graph, 200, 1);
        s.row(vec![
            d.name.to_string(),
            sum.num_vertices.to_string(),
            sum.num_edges.to_string(),
            format!("{:.1} (spec {:.1})", sum.avg_degree, d.avg_degree()),
            format!(
                "{}/{}/{}",
                sum.degree_percentiles.0, sum.degree_percentiles.1, sum.degree_percentiles.2
            ),
            format!("{cc:.3}"),
        ]);
    }
    s.print();
}
