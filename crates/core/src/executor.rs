//! The hybrid trainer: functional training with *real* pipelined
//! execution plus simulated device timing.
//!
//! Implements the task mapping of paper Fig. 4: per iteration, `n`
//! mini-batches are sampled (CPU and/or accelerators), the Feature
//! Loader gathers `X'` from CPU memory, accelerator batches are
//! "transferred" over the PCIe model, and every trainer (one CPU trainer
//! when hybrid, plus one per accelerator) runs forward/backward
//! concurrently under the Processor–Accelerator Training Protocol. The
//! Synchronizer averages gradients (size-weighted) and every replica
//! applies the same update — so the functional math is *identical* to
//! sequential large-batch SGD regardless of the DRM's re-balancing.
//!
//! ## Real vs. simulated timing
//!
//! Two timing layers coexist, and the reports carry both:
//!
//! * **Simulated** ([`crate::perf_model`], `IterationReport::times`) —
//!   each stage's latency on the *modeled* hardware (EPYC + U250/A5000
//!   node), driven by the measured workload of that iteration's batches.
//!   With the TFP flag the steady-state iteration latency is the slowest
//!   stage (Eq. 6), without it the communication stages serialize. This
//!   is what the paper-reproduction figures use.
//! * **Measured** ([`crate::prefetch`], `IterationReport::wall`) — the
//!   host wall-clock actually spent in sampling, feature loading, the
//!   precision round-trip, and propagation. With
//!   `TrainConfig::prefetch_depth > 0` the producer stages execute on a
//!   background thread overlapped with propagation — the paper's
//!   Task-level Feature Prefetching as a real pipeline, not only a
//!   simulated one — and the measured epoch wall-clock shrinks toward
//!   the slowest-stage bound.

use crate::config::SystemConfig;
use crate::drm::{DrmAction, DrmEngine, ScriptedDrm, ScriptedDrmEvent, ThreadAlloc, WorkloadSplit};
use crate::perf_model::{compute_stage_times, PerfModel, StageInputs};
use crate::prefetch::{
    IterationFeed, MatrixPool, PrepareCtx, PreparedIteration, StagingRings, TransferLaneGate,
};
use crate::protocol::TrainingRound;
use crate::report::{EpochReport, IterationReport, WallStageTimes};
use crate::stages::StageWorkers;
use crate::sync::Synchronizer;
use hyscale_device::calib;
use hyscale_gnn::{GnnModel, Gradients};
use hyscale_graph::features::gather_features;
use hyscale_graph::Dataset;
use hyscale_sampler::{EpochBatcher, MiniBatch, NeighborSampler, WorkloadStats};
use hyscale_tensor::{Matrix, Optimizer};
use std::sync::Arc;
use std::time::Instant;

/// The HyScale-GNN training system instance.
pub struct HybridTrainer {
    cfg: SystemConfig,
    dataset: Arc<Dataset>,
    dims: Vec<usize>,
    model: GnnModel,
    optimizer: Box<dyn Optimizer + Send>,
    sampler: NeighborSampler,
    batcher: EpochBatcher,
    split: WorkloadSplit,
    threads: ThreadAlloc,
    workers: Arc<StageWorkers>,
    drm: DrmEngine,
    sync: Synchronizer,
    pool: Arc<MatrixPool>,
    rings: Arc<StagingRings>,
    transfer_gate: Arc<TransferLaneGate>,
    next_epoch: u64,
    /// Scripted DRM moves applied after their `(epoch, iter)` slot —
    /// the deterministic injection point the randomized DRM-schedule
    /// equivalence harness drives (empty in production).
    drm_schedule: Vec<ScriptedDrmEvent>,
}

impl HybridTrainer {
    /// Build a trainer: design-time initial task mapping from the
    /// performance model (paper §IV-A "initialize the GNN training task
    /// mapping during compile time"), replicated model, seeded samplers.
    pub fn new(cfg: SystemConfig, dataset: Dataset) -> Self {
        let dims = cfg
            .train
            .layer_dims(dataset.spec.f0, dataset.data.num_classes);
        let model = GnnModel::new(cfg.train.model, &dims, cfg.train.seed);
        let optimizer = cfg.train.optimizer.build(cfg.train.learning_rate);
        let sampler = NeighborSampler::new(cfg.train.fanouts.clone(), cfg.train.seed ^ 0x5a5a);
        let batcher = EpochBatcher::new(dataset.splits.train.clone(), cfg.train.seed ^ 0xb00b);
        let pm = PerfModel::new(&cfg);
        let (split, threads) = pm.initial_mapping(&dataset.spec);
        let workers = Arc::new(StageWorkers::from_alloc(&threads));
        let drm = DrmEngine::new(cfg.opt.hybrid);
        let rings = Arc::new(StagingRings::new(
            cfg.platform.num_accelerators,
            cfg.train.staging_ring_depth,
        ));
        // Transfer-lane concurrency: an explicit cap pins it; 0 follows
        // the DRM's loader budget so balance_thread moves re-size the
        // live lane concurrency in place.
        let follow = cfg.train.transfer_lanes == 0;
        let transfer_gate = Arc::new(TransferLaneGate::new(
            if follow {
                threads.loader
            } else {
                cfg.train.transfer_lanes
            },
            follow,
        ));
        Self {
            cfg,
            dataset: Arc::new(dataset),
            dims,
            model,
            optimizer,
            sampler,
            batcher,
            split,
            threads,
            workers,
            drm,
            sync: Synchronizer::new(),
            pool: Arc::new(MatrixPool::new()),
            rings,
            transfer_gate,
            next_epoch: 0,
            drm_schedule: Vec::new(),
        }
    }

    /// Install a scripted DRM schedule: each event fires after its
    /// `(epoch, iter)` iteration completes, *in addition to* whatever
    /// the live engine decides (tests usually run with `opt.drm` off so
    /// the script is the only source of re-mapping). Scripted
    /// `balance_work` moves are clamped by the split exactly like
    /// engine moves, so a scripted shift can legitimately land as a
    /// zero-diff re-map — the no-op invalidation path.
    pub fn set_drm_schedule(&mut self, schedule: Vec<ScriptedDrmEvent>) {
        self.drm_schedule = schedule;
    }

    /// Current workload split (inspectable for DRM traces).
    pub fn split(&self) -> &WorkloadSplit {
        &self.split
    }

    /// Current CPU thread allocation.
    pub fn thread_alloc(&self) -> &ThreadAlloc {
        &self.threads
    }

    /// Override the task mapping (e.g. to pin a split for equivalence
    /// testing, or to restore a checkpointed mapping).
    ///
    /// # Panics
    /// If the split's total or accelerator count disagrees with the
    /// configuration.
    pub fn set_mapping(&mut self, split: WorkloadSplit, threads: ThreadAlloc) {
        assert_eq!(split.total, self.split.total, "split total mismatch");
        assert_eq!(
            split.num_accelerators, self.cfg.platform.num_accelerators,
            "accelerator count mismatch"
        );
        self.split = split;
        self.threads = threads;
        self.workers.apply(&self.threads);
        self.transfer_gate.on_thread_alloc(&self.threads);
    }

    /// The live CPU worker pools (sampler / loader / trainer) the real
    /// pipeline dispatches on; widths mirror [`Self::thread_alloc`].
    pub fn workers(&self) -> &StageWorkers {
        &self.workers
    }

    /// The per-accelerator staging rings the producer's transfer lanes
    /// double-buffer through (`TrainConfig::staging_ring_depth` slots
    /// each).
    pub fn rings(&self) -> &StagingRings {
        &self.rings
    }

    /// The live transfer-lane concurrency gate
    /// (`TrainConfig::transfer_lanes`; in auto mode `balance_thread`
    /// moves re-size it).
    pub fn transfer_gate(&self) -> &TransferLaneGate {
        &self.transfer_gate
    }

    /// The replicated model (read access for evaluation).
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// Capture a checkpoint of the model weights and settled mapping.
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint::capture(
            self.next_epoch,
            self.model.flatten_params(),
            &self.split,
            &self.threads,
        )
    }

    /// Restore a checkpoint captured from an identically-configured
    /// trainer (same model dims, accelerator count, batch sizes).
    ///
    /// # Panics
    /// If the checkpoint's shapes disagree with this configuration.
    pub fn restore(&mut self, ckpt: &crate::checkpoint::Checkpoint) {
        self.model.load_flat_params(&ckpt.params);
        let split = ckpt.split();
        assert_eq!(
            split.total, self.split.total,
            "checkpoint batch total mismatch"
        );
        self.split = split;
        self.threads = ckpt.thread_alloc();
        self.workers.apply(&self.threads);
        self.transfer_gate.on_thread_alloc(&self.threads);
        self.next_epoch = ckpt.epoch;
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Evaluate accuracy on a vertex set (single forward pass).
    pub fn evaluate(&self, seeds: &[u32]) -> f32 {
        if seeds.is_empty() {
            return 0.0;
        }
        let mb = self
            .sampler
            .sample(&self.dataset.graph, seeds, u64::MAX / 2);
        let x = gather_features(&self.dataset.data.features, &mb.input_nodes);
        let logits = self.model.forward(&mb, &x);
        let labels: Vec<u32> = seeds
            .iter()
            .map(|&s| self.dataset.data.labels[s as usize])
            .collect();
        hyscale_tensor::accuracy(&logits, &labels)
    }

    /// Train `n` epochs, returning one report per epoch.
    pub fn train_epochs(&mut self, n: usize) -> Vec<EpochReport> {
        (0..n).map(|_| self.train_epoch()).collect()
    }

    /// Train up to `max_epochs`, evaluating on `val_seeds` after each
    /// epoch, stopping early after `patience` epochs without validation
    /// improvement. Returns the accumulated history.
    pub fn fit(
        &mut self,
        max_epochs: usize,
        val_seeds: &[u32],
        patience: Option<usize>,
    ) -> crate::metrics::TrainingHistory {
        let mut history = crate::metrics::TrainingHistory::new();
        let mut stopper = patience.map(|p| crate::metrics::EarlyStopping::new(p, 1e-4));
        for _ in 0..max_epochs {
            let report = self.train_epoch();
            let val = self.evaluate(val_seeds);
            history.record(&report, Some(val));
            if let Some(s) = stopper.as_mut() {
                if s.update(val) {
                    break;
                }
            }
        }
        history
    }

    /// Train one epoch.
    ///
    /// With `prefetch_depth > 0` the producer stages (sampling, feature
    /// loading, precision round-trip) run on a background thread feeding
    /// a bounded queue, overlapped with GNN propagation here; DRM
    /// re-mapping events invalidate the queue before a split change
    /// takes effect, so training is bitwise-identical to `depth = 0`.
    pub fn train_epoch(&mut self) -> EpochReport {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let wall_start = Instant::now();
        // Shared time origin for the epoch: the producer stamps transfer
        // spans against it and we stamp propagation windows, so the
        // intersection measures the wire time the staging rings hid.
        let origin = wall_start;

        let order = Arc::new(self.batcher.epoch_order(epoch));
        let total_batch = self.split.total;
        let scaled_iters = self.batcher.iterations(total_batch);
        let functional_iters = self
            .cfg
            .train
            .max_functional_iters
            .map_or(scaled_iters, |cap| scaled_iters.min(cap))
            .max(1);

        let prefetch_depth = self.cfg.train.prefetch_depth;
        let ctx = Arc::new(PrepareCtx {
            dataset: Arc::clone(&self.dataset),
            batcher: self.batcher.clone(),
            sampler: self.sampler.clone(),
            precision: self.cfg.train.transfer_precision,
            hybrid: self.cfg.opt.hybrid,
            workers: Arc::clone(&self.workers),
            numa_domains: self.cfg.platform.numa_domains(),
            rings: Arc::clone(&self.rings),
            transfer_gate: Arc::clone(&self.transfer_gate),
            origin,
        });
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            epoch,
            functional_iters,
            prefetch_depth,
            Arc::clone(&self.pool),
            self.split.quotas(),
        );

        let mut trace = Vec::with_capacity(functional_iters);
        let mut sum_iter_time = 0.0f64;
        let mut last_loss = f32::NAN;
        let mut last_acc = 0.0f32;
        // Propagation windows (relative to `origin`) of completed
        // iterations: a later batch's transfer span intersected with
        // these is exactly the wire time the rings hid behind compute.
        let mut train_windows: Vec<(f64, f64)> = Vec::with_capacity(functional_iters);

        for iter in 0..functional_iters {
            let iter_wall = Instant::now();
            // Salvage accounting snapshot: everything the feed salvages
            // or flushes during this iteration (stale-recovery inside
            // `obtain`, DRM/scripted invalidations below) lands in this
            // iteration's measured walls.
            let (salvaged0, flushed0) = feed.salvage_stats();
            let invalidation0 = feed.invalidation_wall_s();
            let quotas = self.split.quotas();
            // Sampling + Feature Loading + wire round-trip: prepared
            // inline at depth 0, received from the producer otherwise.
            let Some(prepared) = feed.obtain(iter, &quotas) else {
                break; // epoch seeds exhausted
            };
            let PreparedIteration {
                seed_sets,
                batches,
                features,
                sample_wall_s,
                load_wall_s,
                transfer_wall_s,
                transfer_span,
                lane_transfer_walls,
                lane_transfer_spans,
                transfer_lanes,
                slots,
                threads: observed_threads,
                ..
            } = prepared;

            // --- Workload accounting for the timing layer ---
            let zero = WorkloadStats::zero(self.dims.len() - 1);
            let cpu_stats = if self.cfg.opt.hybrid {
                batches[0].as_ref().map_or(zero.clone(), |b| b.stats())
            } else {
                zero.clone()
            };
            let accel_offset = usize::from(self.cfg.opt.hybrid);
            let accel_stats: Vec<WorkloadStats> = (0..self.cfg.platform.num_accelerators)
                .map(|a| {
                    batches
                        .get(accel_offset + a)
                        .and_then(|b| b.as_ref())
                        .map_or(zero.clone(), |b| b.stats())
                })
                .collect();

            // --- GNN Propagation under the training protocol ---
            let train_wall = Instant::now();
            let train_window_start = origin.elapsed().as_secs_f64();
            let labels_of = |seeds: &[u32]| -> Vec<u32> {
                seeds
                    .iter()
                    .map(|&s| self.dataset.data.labels[s as usize])
                    .collect()
            };
            let work: Vec<(usize, &MiniBatch, &Matrix, Vec<u32>)> = batches
                .iter()
                .zip(&features)
                .zip(&seed_sets)
                .enumerate()
                .filter_map(|(idx, ((b, f), seeds))| match (b.as_ref(), f.as_ref()) {
                    (Some(b), Some(f)) if !seeds.is_empty() => Some((idx, b, f, labels_of(seeds))),
                    _ => None,
                })
                .collect();

            let round = Arc::new(TrainingRound::new(work.len()));
            let model = &self.model;
            let sync = &self.sync;
            let workers = &self.workers;
            let hybrid = self.cfg.opt.hybrid;
            let mut results: Vec<(usize, f32, f32, usize)> = Vec::with_capacity(work.len());
            let mut averaged: Option<Arc<Gradients>> = None;
            std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .iter()
                    .enumerate()
                    .map(|(slot, (idx, mb, x, labels))| {
                        let round = Arc::clone(&round);
                        scope.spawn(move || {
                            // The CPU trainer's kernels run under the
                            // trainer pool's width; accelerator trainers
                            // are simulated and keep the default.
                            let out = if hybrid && *idx == 0 {
                                workers
                                    .trainer()
                                    .install(|| model.train_step(mb, x, labels))
                            } else {
                                model.train_step(mb, x, labels)
                            };
                            let batch = labels.len();
                            let loss = out.loss;
                            let acc = out.accuracy;
                            // DONE++, wait for broadcast (Listing 1)
                            let _avg = round.trainer_done(slot, out.grads);
                            round.trainer_ack();
                            (*idx, loss, acc, batch)
                        })
                    })
                    .collect();
                // Runtime thread: synchronize + wait for ACKs
                averaged = Some(round.synchronize(sync));
                round.runtime_wait_acks();
                for h in handles {
                    results.push(h.join().expect("trainer thread panicked"));
                }
            });
            let averaged = averaged.expect("synchronizer ran");
            // Identical update applied to the (conceptually replicated)
            // model — replicas stay in lock-step.
            self.model
                .apply_gradients(&averaged, self.optimizer.as_mut());
            let train_wall_s = train_wall.elapsed().as_secs_f64();
            let train_window_end = origin.elapsed().as_secs_f64();

            // How much of each lane's wire round-trip ran while we were
            // inside the propagation of an earlier batch — the transfer
            // time that lane's staging ring hid. Serial execution
            // transfers inline between propagations, so this is
            // naturally zero. Transfer spans are stamped in iteration
            // order, so a window that ended before the union span began
            // can never overlap a later span either — pruning keeps the
            // scan O(in-flight), not O(epoch).
            train_windows.retain(|&(_, e)| e > transfer_span.0);
            let lane_transfer_hidden_s: Vec<f64> = lane_transfer_spans
                .iter()
                .zip(&lane_transfer_walls)
                .map(|(span, &wall)| {
                    span.map_or(0.0, |(s0, s1)| {
                        train_windows
                            .iter()
                            .map(|&(s, e)| (s1.min(e) - s0.max(s)).max(0.0))
                            .sum::<f64>()
                            .min(wall)
                    })
                })
                .collect();
            let transfer_hidden_s = lane_transfer_hidden_s
                .iter()
                .sum::<f64>()
                .min(transfer_wall_s);
            train_windows.push((train_window_start, train_window_end));

            // Feature matrices go back for reuse — accelerator batches
            // to their lane's staging-ring free list, the CPU batch to
            // the shared pool: steady-state iterations allocate no
            // fresh ones.
            for (idx, m) in features.into_iter().enumerate() {
                if let Some(m) = m {
                    match ctx.accel_of(idx) {
                        Some(a) => self.rings.ring(a).put_buffer(m),
                        None => self.pool.release(m),
                    }
                }
            }
            // Propagation done: free this batch's staging slots so the
            // transfer stage can ship the next batch into them.
            drop(slots);

            let total_seeds: usize = results.iter().map(|r| r.3).sum();
            last_loss = results.iter().map(|r| r.1 * r.3 as f32).sum::<f32>() / total_seeds as f32;
            last_acc = results.iter().map(|r| r.2 * r.3 as f32).sum::<f32>() / total_seeds as f32;

            // --- Timing layer ---
            let inputs = StageInputs {
                cpu_stats: &cpu_stats,
                accel_stats: &accel_stats,
                dims: &self.dims,
                width_factor: self.cfg.train.model.update_width_factor(),
                model_bytes: self.model.nbytes() as u64,
                sampling_on_accel: self.split.sampling_on_accel,
                precision: self.cfg.train.transfer_precision,
            };
            let times = compute_stage_times(&self.cfg.platform, &self.threads, &inputs, true);
            let iter_time = if self.cfg.opt.tfp {
                times.pipelined_iteration()
            } else {
                times.serial_iteration()
            };
            sum_iter_time += iter_time;
            let edges: u64 = cpu_stats.total_edges()
                + accel_stats
                    .iter()
                    .map(WorkloadStats::total_edges)
                    .sum::<u64>();
            let mteps = edges as f64 / iter_time / 1e6;

            // --- DRM fine-tuning for the next iteration ---
            // Overlap-aware accelerator estimate: how much wire time is
            // *visible* on the accelerator's critical path. Derived from
            // the pipeline configuration, not from measured walls — DRM
            // decisions must stay bitwise-identical across prefetch
            // depths and host core counts (the equivalence harness
            // compares trajectories), so the estimate may depend only on
            // the simulated times and the configured overlap machinery:
            // no TFP or a single staging slot can hide nothing (the
            // whole transfer rides the critical path, biasing
            // balance_work away from bandwidth-bound lanes); ring depth
            // ≥ 2 hides the wire behind accelerator compute, leaving
            // only the excess — Algorithm 1's max(T_Tran, T_TA) bundle.
            let visible_transfer = if !self.cfg.opt.tfp || self.cfg.train.staging_ring_depth <= 1 {
                times.transfer
            } else {
                (times.transfer - times.train_accel).max(0.0)
            };
            let action = if self.cfg.opt.drm {
                self.drm.adjust_with_visible(
                    &times,
                    visible_transfer,
                    &mut self.split,
                    &mut self.threads,
                )
            } else {
                DrmAction::None
            };
            // A balance_work move changed the per-trainer quotas: drain
            // the prefetch queue and restart the producer under the new
            // split before it takes effect (the determinism contract).
            // A balance_thread move only shifts the thread budget, so it
            // re-sizes the shared worker pools in place — the producer
            // picks the new widths up on its next dispatch and measured
            // stage walls shift without losing prepared iterations.
            match action {
                DrmAction::BalanceWork { .. } => feed.invalidate(iter + 1, self.split.quotas()),
                DrmAction::BalanceThread { .. } => feed.rebalance_threads(&self.threads),
                _ => {}
            }

            // Scripted DRM moves (test/bench injection) ride the exact
            // same invalidation paths as live engine decisions.
            for k in 0..self.drm_schedule.len() {
                let ev = self.drm_schedule[k];
                if ev.epoch != epoch || ev.iter != iter {
                    continue;
                }
                match ev.action {
                    ScriptedDrm::BalanceWork { to_cpu } => {
                        if to_cpu >= 0 {
                            self.split.shift_to_cpu(to_cpu as usize);
                        } else {
                            self.split.shift_to_accel(to_cpu.unsigned_abs());
                        }
                        feed.invalidate(iter + 1, self.split.quotas());
                    }
                    ScriptedDrm::BalanceThread { from, to } => {
                        if self.threads.shift(from, to) {
                            feed.rebalance_threads(&self.threads);
                        }
                    }
                    ScriptedDrm::Noop => feed.invalidate(iter + 1, self.split.quotas()),
                }
            }

            let (salvaged, flushed) = feed.salvage_stats();
            let invalidation_s = feed.invalidation_wall_s() - invalidation0;

            trace.push(IterationReport {
                iter,
                times,
                iter_time_s: iter_time,
                loss: last_loss,
                accuracy: last_acc,
                cpu_quota: self.split.cpu_quota,
                drm_action: action,
                mteps,
                wall: WallStageTimes {
                    sample_s: sample_wall_s,
                    load_s: load_wall_s,
                    transfer_s: transfer_wall_s,
                    transfer_hidden_s,
                    transfer_lanes,
                    lane_transfer_s: lane_transfer_walls,
                    lane_transfer_hidden_s,
                    train_s: train_wall_s,
                    iter_s: iter_wall.elapsed().as_secs_f64(),
                    batches_salvaged: salvaged - salvaged0,
                    batches_flushed: flushed - flushed0,
                    invalidation_s,
                    threads: observed_threads,
                },
            });
        }

        let prefetch_restarts = feed.restarts();
        feed.finish();

        let _ = sum_iter_time;
        // Steady-state iteration time: skip the first half of the trace
        // while the DRM is still settling from the coarse design-time
        // mapping (the paper measures warmed-up epochs).
        let executed = trace.len().max(1);
        let settled: Vec<f64> = if trace.len() >= 4 {
            trace[trace.len() / 2..]
                .iter()
                .map(|t| t.iter_time_s)
                .collect()
        } else {
            trace.iter().map(|t| t.iter_time_s).collect()
        };
        let mean_iter = if settled.is_empty() {
            0.0
        } else {
            settled.iter().sum::<f64>() / settled.len() as f64
        };
        let full_iters = self.dataset.full_scale_iterations(total_batch);
        let flush = if self.cfg.opt.tfp {
            calib::PIPELINE_FLUSH_ITERS * mean_iter
        } else {
            0.0
        };
        let epoch_time = full_iters as f64 * mean_iter + flush;
        let mteps = trace.iter().map(|t| t.mteps).sum::<f64>() / executed as f64;

        let wall_stages = WallStageTimes::mean_of(trace.iter().map(|t| &t.wall));

        EpochReport {
            epoch,
            epoch_time_s: epoch_time,
            mean_iter_time_s: mean_iter,
            full_scale_iters: full_iters,
            functional_iters: trace.len(),
            loss: last_loss,
            accuracy: last_acc,
            mteps,
            wall_s: wall_start.elapsed().as_secs_f64(),
            wall_stages,
            prefetch_depth,
            prefetch_restarts,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AcceleratorKind, OptFlags, PlatformConfig, SystemConfig, TrainConfig};
    use hyscale_gnn::GnnKind;

    fn toy_config(opt: OptFlags) -> SystemConfig {
        SystemConfig {
            platform: PlatformConfig::paper_node(AcceleratorKind::u250(), 2),
            opt,
            train: TrainConfig {
                model: GnnKind::Gcn,
                batch_per_trainer: 32,
                fanouts: vec![5, 3],
                hidden_dim: 16,
                learning_rate: 0.3,
                optimizer: crate::config::OptimizerKind::Sgd,
                seed: 7,
                max_functional_iters: Some(4),
                transfer_precision: hyscale_tensor::Precision::F32,
                prefetch_depth: 0,
                staging_ring_depth: 2,
                transfer_lanes: 0,
            },
        }
    }

    #[test]
    fn epoch_runs_and_reports() {
        let ds = Dataset::toy(3);
        let mut t = HybridTrainer::new(toy_config(OptFlags::full()), ds);
        let r = t.train_epoch();
        assert!(r.functional_iters >= 1);
        assert!(r.epoch_time_s > 0.0);
        assert!(r.loss.is_finite());
        assert!(r.mteps > 0.0);
        assert_eq!(r.epoch, 0);
        let r2 = t.train_epoch();
        assert_eq!(r2.epoch, 1);
    }

    #[test]
    fn loss_decreases_across_epochs() {
        let ds = Dataset::toy(5);
        let mut cfg = toy_config(OptFlags::full());
        cfg.train.max_functional_iters = Some(6);
        let mut t = HybridTrainer::new(cfg, ds);
        let reports = t.train_epochs(6);
        let first = reports.first().unwrap().loss;
        let last = reports.last().unwrap().loss;
        assert!(
            last < first * 0.9,
            "training did not converge: {first} -> {last}"
        );
    }

    #[test]
    fn tfp_shortens_iterations() {
        let ds = Dataset::toy(9);
        let mut with = HybridTrainer::new(toy_config(OptFlags::full()), ds.clone());
        let mut cfg = toy_config(OptFlags::hybrid_drm());
        cfg.train.seed = 7;
        let mut without = HybridTrainer::new(cfg, ds);
        let a = with.train_epoch().mean_iter_time_s;
        let b = without.train_epoch().mean_iter_time_s;
        assert!(a < b, "TFP {a} should beat serial {b}");
    }

    #[test]
    fn baseline_has_no_cpu_trainer() {
        let ds = Dataset::toy(11);
        let mut t = HybridTrainer::new(toy_config(OptFlags::baseline()), ds);
        let r = t.train_epoch();
        assert_eq!(t.split().cpu_quota, 0);
        assert!(r.trace.iter().all(|it| it.times.train_cpu == 0.0));
    }

    #[test]
    fn drm_changes_mapping_when_enabled() {
        let ds = Dataset::toy(13);
        let mut cfg = toy_config(OptFlags::full());
        cfg.train.max_functional_iters = Some(8);
        let mut t = HybridTrainer::new(cfg, ds);
        let r = t.train_epoch();
        let acted = r.trace.iter().any(|it| it.drm_action != DrmAction::None);
        assert!(
            acted,
            "DRM never acted: {:?}",
            r.trace.iter().map(|i| i.drm_action).collect::<Vec<_>>()
        );
    }

    #[test]
    fn prefetch_depths_train_bitwise_identical_weights() {
        let run = |depth: usize| {
            let ds = Dataset::toy(21);
            let mut cfg = toy_config(OptFlags::full());
            cfg.train.prefetch_depth = depth;
            cfg.train.max_functional_iters = Some(6);
            let mut t = HybridTrainer::new(cfg, ds);
            t.train_epochs(2);
            t.model().flatten_params()
        };
        let serial = run(0);
        for depth in [1usize, 3] {
            assert_eq!(serial, run(depth), "depth {depth} diverged from serial");
        }
    }

    #[test]
    fn prefetch_reports_depth_and_measured_walls() {
        let ds = Dataset::toy(23);
        let mut cfg = toy_config(OptFlags::full());
        cfg.train.prefetch_depth = 2;
        let mut t = HybridTrainer::new(cfg, ds);
        let r = t.train_epoch();
        assert_eq!(r.prefetch_depth, 2);
        assert!(r.wall_stages.train_s > 0.0, "propagation wall unmeasured");
        assert!(
            r.trace.iter().all(|it| it.wall.iter_s > 0.0),
            "iteration wall unmeasured"
        );
        // measured hidden transfer time never exceeds measured transfer
        assert!(r
            .trace
            .iter()
            .all(|it| it.wall.transfer_hidden_s <= it.wall.transfer_s + 1e-12));
        // buffers are primed for the next epoch: the CPU batch back in
        // the shared pool, accelerator batches on their lanes' rings
        assert!(
            t.pool.idle() > 0,
            "feature buffers were not returned to the pool"
        );
        assert_eq!(t.rings().in_flight_total(), 0, "staging slots leaked");
        assert_eq!(t.rings().depth(), 2);
        assert!(
            (0..t.rings().num_rings()).any(|a| t.rings().ring(a).take_buffer().is_some()),
            "no lane-local buffer was recycled to a staging ring"
        );
    }

    #[test]
    fn serial_execution_hides_no_transfer_time() {
        let ds = Dataset::toy(23);
        let mut cfg = toy_config(OptFlags::full());
        cfg.train.prefetch_depth = 0;
        let mut t = HybridTrainer::new(cfg, ds);
        let r = t.train_epoch();
        assert!(
            r.trace.iter().all(|it| it.wall.transfer_hidden_s == 0.0),
            "serial iterations transfer inline between propagations"
        );
        assert_eq!(r.wall_stages.transfer_overlap_ratio(), 0.0);
    }

    #[test]
    fn evaluation_accuracy_improves() {
        let ds = Dataset::toy(17);
        let test_seeds = ds.splits.test.clone();
        let mut cfg = toy_config(OptFlags::full());
        cfg.train.max_functional_iters = Some(6);
        let mut t = HybridTrainer::new(cfg, ds);
        let before = t.evaluate(&test_seeds);
        t.train_epochs(8);
        let after = t.evaluate(&test_seeds);
        assert!(
            after > before + 0.1,
            "test accuracy did not improve: {before} -> {after}"
        );
        // learnable SBM: should beat random guessing (4 classes) solidly
        assert!(after > 0.5, "final accuracy {after}");
    }
}
