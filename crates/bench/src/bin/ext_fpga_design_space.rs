//! Ablation of the FPGA kernel design (paper §IV-C / Table IV): sweep
//! the scatter-gather PE count `n` and systolic MAC count `m`, reporting
//! resource feasibility and predicted propagation time — the
//! aggregation/update balance that motivates the paper's (8, 2048)
//! choice.

use hyscale_bench::Table;
use hyscale_device::fpga::resource::{ResourceUsage, U250_RESOURCES};
use hyscale_device::spec::ALVEO_U250;
use hyscale_device::timing::{FpgaTiming, TrainerTiming};
use hyscale_graph::dataset::OGBN_PAPERS100M;
use hyscale_sampler::expected_workload;

fn main() {
    println!("FPGA kernel design space (papers100M, GCN, batch 1024, fanout (25,10))\n");
    let ds = OGBN_PAPERS100M;
    let stats = expected_workload(ds.num_vertices, ds.avg_degree(), 1024, &[25, 10]);
    let dims = [ds.f0, 256, ds.f2];

    let mut t = Table::new(&[
        "(n, m)",
        "DSP",
        "LUT",
        "fits",
        "agg (ms)",
        "upd (ms)",
        "prop (ms)",
    ]);
    for &(n, m) in &[
        (2usize, 512usize),
        (4, 1024),
        (8, 1024),
        (8, 2048),
        (16, 2048),
        (8, 4096),
        (16, 4096),
    ] {
        let usage = ResourceUsage::estimate(n, m, &U250_RESOURCES);
        let timing = FpgaTiming::new(ALVEO_U250, n, m);
        let work = hyscale_device::timing::layer_work(&stats, &dims, 1);
        let agg: f64 = work.iter().map(|w| timing.aggregate_time(w)).sum();
        let upd: f64 = work.iter().map(|w| timing.update_time(w)).sum();
        let prop = timing.propagation_time(&stats, &dims, 1);
        t.row(vec![
            format!("({n}, {m})"),
            format!("{:.0}%", usage.dsp * 100.0),
            format!("{:.0}%", usage.lut * 100.0),
            usage.fits().to_string(),
            format!("{:.3}", agg * 1e3),
            format!("{:.3}", upd * 1e3),
            format!("{:.3}", prop * 1e3),
        ]);
    }
    t.print();
    println!("\nthe paper's (8, 2048) balances the pipelined agg/update stages while");
    println!("fitting the U250 (Table IV: LUT 72% DSP 90% URAM 48% BRAM 40%);");
    println!("larger m overruns DSPs for little propagation gain (aggregation-bound).");
}
