//! The Synchronizer: gradient all-reduce (paper §III-A).
//!
//! Gathers per-trainer gradients, computes the batch-size-weighted
//! average, and broadcasts it back (through [`crate::protocol`]). The
//! weighting keeps hybrid training with unequal CPU/accelerator quotas
//! *algorithmically identical* to single-device training with one large
//! batch (paper §II-B), which the workspace's equivalence tests assert.

use hyscale_gnn::Gradients;

/// Stateless all-reduce operator (runs on a CPU thread; the paper notes
/// the CPU's central position in Fig. 2 makes it the natural host).
#[derive(Debug, Default, Clone)]
pub struct Synchronizer;

impl Synchronizer {
    /// A new synchronizer.
    pub fn new() -> Self {
        Self
    }

    /// Gather + weighted-average (the reduce step of the all-reduce; the
    /// broadcast is performed by the protocol round).
    pub fn all_reduce(&self, parts: &[Gradients]) -> Gradients {
        Gradients::weighted_average(parts)
    }

    /// Eq. 13: synchronization time — the model crosses PCIe twice
    /// (gather then broadcast) per accelerator-resident trainer; parallel
    /// links make this independent of accelerator count.
    pub fn sync_time(&self, model_bytes: u64, pcie: &hyscale_device::PcieLink) -> f64 {
        pcie.allreduce_time(model_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_device::PcieLink;
    use hyscale_tensor::Matrix;

    fn grad(v: f32, batch: usize) -> Gradients {
        Gradients {
            d_weights: vec![Matrix::full(1, 2, v)],
            d_biases: vec![vec![v; 2]],
            batch_size: batch,
        }
    }

    #[test]
    fn all_reduce_weighted() {
        let s = Synchronizer::new();
        let avg = s.all_reduce(&[grad(2.0, 10), grad(6.0, 30)]);
        assert!((avg.d_weights[0][(0, 0)] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn sync_time_eq13() {
        let s = Synchronizer::new();
        let pcie = PcieLink::new(10.0, 0.0);
        // 1 MB model: 2 crossings at 10 GB/s
        let t = s.sync_time(1_000_000, &pcie);
        assert!((t - 2.0 * 1e6 / 10e9).abs() < 1e-12);
    }
}
