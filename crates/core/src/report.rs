//! Training reports: per-iteration traces and per-epoch summaries.

use crate::drm::DrmAction;
use crate::stages::StageTimes;

/// One iteration's record.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Iteration index within the epoch.
    pub iter: usize,
    /// Simulated stage times.
    pub times: StageTimes,
    /// Simulated iteration latency (pipelined or serial per config).
    pub iter_time_s: f64,
    /// Mean training loss across trainers (batch-weighted).
    pub loss: f32,
    /// Mean training accuracy across trainers (batch-weighted).
    pub accuracy: f32,
    /// CPU trainer seed quota at this iteration.
    pub cpu_quota: usize,
    /// DRM decision taken after this iteration.
    pub drm_action: DrmAction,
    /// Throughput in MTEPS (Eq. 5) for this iteration.
    pub mteps: f64,
}

/// One epoch's summary.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: u64,
    /// Simulated epoch time extrapolated to the full-scale dataset
    /// (iterations × mean iteration time + pipeline fill/flush).
    pub epoch_time_s: f64,
    /// Mean simulated iteration latency.
    pub mean_iter_time_s: f64,
    /// Full-scale iterations per epoch.
    pub full_scale_iters: u64,
    /// Functional iterations actually executed.
    pub functional_iters: usize,
    /// Final training loss of the epoch.
    pub loss: f32,
    /// Final training accuracy of the epoch.
    pub accuracy: f32,
    /// Mean throughput in MTEPS.
    pub mteps: f64,
    /// Host wall-clock seconds spent on the functional work.
    pub wall_s: f64,
    /// Per-iteration traces.
    pub trace: Vec<IterationReport>,
}

impl EpochReport {
    /// Fixed-width summary line for harness output.
    pub fn summary_line(&self) -> String {
        format!(
            "epoch {:>3}  sim {:>9.3}s  iter {:>8.4}s  loss {:>7.4}  acc {:>6.3}  {:>9.1} MTEPS",
            self.epoch, self.epoch_time_s, self.mean_iter_time_s, self.loss, self.accuracy, self.mteps
        )
    }
}

impl std::fmt::Display for EpochReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.summary_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_formats() {
        let r = EpochReport {
            epoch: 2,
            epoch_time_s: 1.5,
            mean_iter_time_s: 0.005,
            full_scale_iters: 300,
            functional_iters: 8,
            loss: 1.23,
            accuracy: 0.78,
            mteps: 123.4,
            wall_s: 0.9,
            trace: Vec::new(),
        };
        let line = r.summary_line();
        assert!(line.contains("epoch   2"));
        assert!(line.contains("1.230"));
        assert!(line.contains("MTEPS"));
        assert_eq!(format!("{r}"), line);
    }
}
