//! CPU-resident vertex features and labels.
//!
//! The feature matrix `X` is stored in CPU memory (paper §III-B step 2:
//! "an input feature matrix X is too large to fit in the device memory
//! for large-scale graphs"). The Feature Loader gathers sampled rows into
//! the mini-batch matrix `X'`.

use crate::csr::CsrGraph;
use hyscale_tensor::init::randn;
use hyscale_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Vertex features plus labels, the trainable payload of a dataset.
#[derive(Clone)]
pub struct VertexData {
    /// `|V| × f0` feature matrix, row `v` = features of vertex `v`.
    pub features: Matrix,
    /// Class label per vertex.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
}

impl VertexData {
    /// Pure-noise features with uniform random labels (stress testing).
    pub fn random(num_vertices: usize, feat_dim: usize, num_classes: usize, seed: u64) -> Self {
        let features = randn(num_vertices, feat_dim, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
        let labels = (0..num_vertices)
            .map(|_| rng.gen_range(0..num_classes) as u32)
            .collect();
        Self {
            features,
            labels,
            num_classes,
        }
    }

    /// Features correlated with planted community labels: class `c` gets a
    /// distinct random mean vector, vertices get `mean[label] + noise`.
    /// This is what makes the convergence tests meaningful — the signal is
    /// recoverable, like the community structure in ogbn-products.
    pub fn from_labels(
        labels: &[u32],
        num_classes: usize,
        feat_dim: usize,
        signal: f32,
        seed: u64,
    ) -> Self {
        let means = randn(num_classes, feat_dim, seed);
        let noise = randn(labels.len(), feat_dim, seed ^ 0xabcd_ef01);
        let mut features = noise;
        features
            .as_mut_slice()
            .par_chunks_mut(feat_dim)
            .zip(labels.par_iter())
            .for_each(|(row, &label)| {
                let mean = means.row(label as usize);
                for (v, m) in row.iter_mut().zip(mean) {
                    *v += signal * *m;
                }
            });
        Self {
            features,
            labels: labels.to_vec(),
            num_classes,
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.features.rows()
    }

    /// Feature dimension `f0`.
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Size of the feature matrix in bytes (CPU-memory footprint).
    pub fn nbytes(&self) -> usize {
        self.features.nbytes() + self.labels.len() * 4
    }
}

/// Train/validation/test vertex splits.
#[derive(Clone, Debug)]
pub struct Splits {
    /// Training vertex ids.
    pub train: Vec<u32>,
    /// Validation vertex ids.
    pub val: Vec<u32>,
    /// Test vertex ids.
    pub test: Vec<u32>,
}

impl Splits {
    /// Deterministic shuffled split by fractions (must sum to ≤ 1).
    ///
    /// # Panics
    /// If fractions are negative or sum above 1.
    pub fn random(num_vertices: usize, train_frac: f64, val_frac: f64, seed: u64) -> Self {
        assert!(train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0);
        let mut ids: Vec<u32> = (0..num_vertices as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Fisher-Yates
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let n_train = (num_vertices as f64 * train_frac).round() as usize;
        let n_val = (num_vertices as f64 * val_frac).round() as usize;
        let train = ids[..n_train].to_vec();
        let val = ids[n_train..(n_train + n_val).min(ids.len())].to_vec();
        let test = ids[(n_train + n_val).min(ids.len())..].to_vec();
        Self { train, val, test }
    }
}

/// Parallel feature gather: `X' = X[indices, :]` using Rayon over output
/// rows. This is the *Feature Loading* stage kernel (paper Fig. 4 stage 2);
/// its measured byte volume drives Eq. 7 of the performance model.
pub fn gather_features(x: &Matrix, indices: &[u32]) -> Matrix {
    let mut out = Matrix::uninit(indices.len(), x.cols());
    gather_features_into(&mut out, x, indices);
    out
}

/// Allocation-free variant of [`gather_features`]: reshape `out` (reusing
/// its buffer) and gather `X[indices, :]` into it. With a recycled
/// matrix pool, steady-state training iterations perform zero
/// feature-matrix allocations — the prefetching executor's hot path.
///
/// Produces bitwise-identical contents to [`gather_features`] for the
/// same `(x, indices)` regardless of the previous contents of `out`.
pub fn gather_features_into(out: &mut Matrix, x: &Matrix, indices: &[u32]) {
    let dim = x.cols();
    out.resize(indices.len(), dim);
    out.as_mut_slice()
        .par_chunks_mut(dim)
        .zip(indices.par_iter())
        .for_each(|(dst, &src)| {
            dst.copy_from_slice(x.row(src as usize));
        });
}

/// Row-ownership histogram of a gather: how many of `indices` fall in
/// each of `num_domains` contiguous row domains of `rows_per_domain`
/// source rows. This is the weight vector the NUMA gather hands to
/// [`rayon::WorkerGroup::run_sharded_weighted`] so each socket's thread
/// share matches the rows it actually serves — a cheap `O(n)` count
/// folded into the loading stage.
pub fn domain_histogram(indices: &[u32], rows_per_domain: usize, num_domains: usize) -> Vec<usize> {
    let mut hist = vec![0usize; num_domains];
    for &src in indices {
        let d = (src as usize / rows_per_domain).min(num_domains - 1);
        hist[d] += 1;
    }
    hist
}

/// NUMA-aware variant of [`gather_features_into`]: the source matrix `X`
/// is modeled as range-partitioned across `num_domains` sockets
/// (contiguous row domains, the dual-socket layout of the paper's
/// evaluation node), and the gather is dispatched through `group` so
/// each socket's rows are copied by the worker threads pinned to that
/// socket — with per-socket thread shares weighted by the sampled rows'
/// ownership histogram ([`domain_histogram`] +
/// [`rayon::WorkerGroup::run_sharded_weighted`]), so a batch whose rows
/// skew heavily to one socket gives that socket's pool the threads
/// instead of idling the other socket's fair share.
///
/// Every owning domain's threads sweep the full output range but copy
/// only the rows whose *source* vertex lives in their domain (a domain
/// owning no sampled rows is skipped outright), so each output row is
/// written exactly once and the result is bitwise-identical to
/// [`gather_features_into`] for any `(num_domains, group width)` and
/// any skew.
pub fn gather_features_numa_into(
    out: &mut Matrix,
    x: &Matrix,
    indices: &[u32],
    num_domains: usize,
    group: &rayon::WorkerGroup,
) {
    let dim = x.cols();
    out.resize(indices.len(), dim);
    if num_domains <= 1 {
        // Flat memory model: the plain gather, at this group's width.
        group.install(|| gather_features_into(out, x, indices));
        return;
    }
    // Contiguous range partition of X's rows: socket d owns rows
    // [d*per, (d+1)*per).
    let per = x.rows().div_ceil(num_domains).max(1);
    let hist = domain_histogram(indices, per, num_domains);
    let base = out.as_mut_slice().as_mut_ptr() as usize;
    group.run_sharded_weighted(indices.len(), &hist, |d, s, e| {
        for (i, &src) in indices[s..e].iter().enumerate() {
            if src as usize / per != d {
                continue; // row owned by another socket's workers
            }
            // SAFETY: source vertex `src` belongs to exactly one domain
            // and output index `s + i` to exactly one sub-range of that
            // domain, so this row has a unique writer; `out` outlives
            // the scoped threads inside the dispatch.
            let dst = unsafe {
                std::slice::from_raw_parts_mut((base as *mut f32).add((s + i) * dim), dim)
            };
            dst.copy_from_slice(x.row(src as usize));
        }
    });
}

/// Sanity check: every vertex with at least one edge has a feature row.
pub fn check_coverage(graph: &CsrGraph, data: &VertexData) -> bool {
    graph.num_vertices() == data.num_vertices()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_data_shapes() {
        let d = VertexData::random(50, 16, 4, 1);
        assert_eq!(d.num_vertices(), 50);
        assert_eq!(d.feat_dim(), 16);
        assert!(d.labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn from_labels_is_separable() {
        let labels: Vec<u32> = (0..100).map(|i| (i % 2) as u32).collect();
        let d = VertexData::from_labels(&labels, 2, 8, 3.0, 7);
        // class means should differ: compare centroid distance to noise scale
        let mut c0 = vec![0.0f32; 8];
        let mut c1 = vec![0.0f32; 8];
        for (v, &label) in labels.iter().enumerate() {
            let row = d.features.row(v);
            let c = if label == 0 { &mut c0 } else { &mut c1 };
            for (acc, x) in c.iter_mut().zip(row) {
                *acc += x / 50.0;
            }
        }
        let dist: f32 = c0
            .iter()
            .zip(&c1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "class centroids too close: {dist}");
    }

    #[test]
    fn splits_partition_vertices() {
        let s = Splits::random(100, 0.6, 0.2, 3);
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 20);
        let mut all: Vec<u32> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn splits_deterministic() {
        let a = Splits::random(50, 0.5, 0.25, 9);
        let b = Splits::random(50, 0.5, 0.25, 9);
        assert_eq!(a.train, b.train);
    }

    #[test]
    fn gather_matches_serial() {
        let x = randn(40, 6, 2);
        let idx = vec![5, 0, 39, 5];
        let g = gather_features(&x, &idx);
        let serial = x.gather_rows(&idx);
        assert_eq!(g.as_slice(), serial.as_slice());
    }

    #[test]
    fn gather_into_reuses_buffer_and_matches() {
        let x = randn(64, 12, 4);
        let mut out = Matrix::full(200, 12, f32::NAN); // stale contents
        let cap = out.capacity();
        let idx: Vec<u32> = (0..150).map(|i| (i * 13) % 64).collect();
        gather_features_into(&mut out, &x, &idx);
        assert_eq!(
            out.capacity(),
            cap,
            "gather_into must not reallocate within capacity"
        );
        let fresh = gather_features(&x, &idx);
        assert_eq!(
            out.as_slice(),
            fresh.as_slice(),
            "stale buffer leaked into gather"
        );
    }

    #[test]
    fn numa_gather_matches_flat_for_all_domain_counts_and_widths() {
        let x = randn(97, 9, 11);
        let idx: Vec<u32> = (0..300).map(|i| (i * 31) % 97).collect();
        let reference = gather_features(&x, &idx);
        for domains in [1usize, 2, 3, 8] {
            for width in [1usize, 2, 5, 16] {
                let group = rayon::WorkerGroup::new("loader", width);
                let mut out = Matrix::full(10, 2, f32::NAN); // stale shape + contents
                gather_features_numa_into(&mut out, &x, &idx, domains, &group);
                assert_eq!(
                    out.as_slice(),
                    reference.as_slice(),
                    "NUMA gather diverged at {domains} domains, width {width}"
                );
            }
        }
    }

    #[test]
    fn numa_gather_matches_under_forced_concurrency() {
        // On a 1-core host every dispatch degrades to the inline path;
        // force 4 real threads so the disjoint-write SAFETY argument is
        // actually exercised concurrently. Sibling tests are
        // width-independent, so the transient override is harmless.
        std::env::set_var("HYSCALE_RAYON_THREADS", "4");
        let x = randn(256, 7, 23);
        let idx: Vec<u32> = (0..1200).map(|i| (i * 53) % 256).collect();
        let reference = gather_features(&x, &idx);
        for domains in [1usize, 2, 4] {
            let group = rayon::WorkerGroup::new("loader", 4);
            let mut out = Matrix::uninit(0, 0);
            gather_features_numa_into(&mut out, &x, &idx, domains, &group);
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "concurrent NUMA gather diverged at {domains} domains"
            );
        }
        std::env::remove_var("HYSCALE_RAYON_THREADS");
    }

    #[test]
    fn domain_histogram_pins_the_skewed_split() {
        // 97 source rows over 2 domains: per = 49, domain 0 = rows 0..49
        let skewed: Vec<u32> = (0..300).map(|i| (i * 7) % 49).collect();
        let hist = domain_histogram(&skewed, 49, 2);
        assert_eq!(hist, vec![300, 0], "all rows owned by socket 0");
        // the weighted split hands socket 0 every loader thread
        assert_eq!(rayon::weighted_shares(8, &hist), vec![8, 0]);
        // 3:1 skew pins a 3:1 thread share (the ROADMAP skew case)
        let mixed: Vec<u32> = (0..400)
            .map(|i| if i % 4 == 0 { 60 } else { i as u32 % 49 })
            .collect();
        let hist = domain_histogram(&mixed, 49, 2);
        assert_eq!(hist, vec![300, 100]);
        assert_eq!(rayon::weighted_shares(8, &hist), vec![6, 2]);
    }

    #[test]
    fn numa_gather_matches_flat_under_heavy_skew() {
        // Every sampled row lives on socket 0: the weighted dispatch
        // skips socket 1 entirely and must still be bitwise-identical.
        std::env::set_var("HYSCALE_RAYON_THREADS", "4");
        let x = randn(128, 6, 31);
        let skewed: Vec<u32> = (0..500).map(|i| (i * 13) % 64).collect(); // rows 0..64
        let reference = gather_features(&x, &skewed);
        for domains in [2usize, 4] {
            let group = rayon::WorkerGroup::new("loader", 4);
            let mut out = Matrix::full(3, 3, f32::NAN);
            gather_features_numa_into(&mut out, &x, &skewed, domains, &group);
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "skewed NUMA gather diverged at {domains} domains"
            );
        }
        std::env::remove_var("HYSCALE_RAYON_THREADS");
    }

    #[test]
    fn numa_gather_more_domains_than_rows() {
        let x = randn(3, 4, 5);
        let idx = vec![2, 0, 1, 2];
        let group = rayon::WorkerGroup::new("loader", 4);
        let mut out = Matrix::uninit(0, 0);
        gather_features_numa_into(&mut out, &x, &idx, 8, &group);
        assert_eq!(out.as_slice(), gather_features(&x, &idx).as_slice());
    }

    #[test]
    fn coverage_check() {
        let g = CsrGraph::empty(10);
        let d = VertexData::random(10, 4, 2, 0);
        assert!(check_coverage(&g, &d));
        let d2 = VertexData::random(9, 4, 2, 0);
        assert!(!check_coverage(&g, &d2));
    }
}
