//! System configuration: platform description, optimization flags, and
//! training hyper-parameters.

use hyscale_device::pcie::PcieLink;
use hyscale_device::spec::{DeviceSpec, ALVEO_U250, EPYC_7763, RTX_A5000};
use hyscale_device::timing::{FpgaTiming, GpuTiming, TrainerTiming};
use hyscale_gnn::GnnKind;
use hyscale_tensor::Precision;
use std::sync::Arc;

/// Which accelerator family populates the node (paper evaluates CPU-GPU
/// and CPU-FPGA; `Custom` covers "AI-specific accelerators", §III-C).
#[derive(Clone)]
pub enum AcceleratorKind {
    /// GPUs driven through a PyTorch-style stack.
    Gpu(DeviceSpec),
    /// FPGAs with the fused scatter-gather/systolic kernel.
    Fpga(DeviceSpec),
    /// Any accelerator with a caller-supplied timing model — the protocol
    /// is defined at the application layer and is device-agnostic.
    Custom(Arc<dyn TrainerTiming>),
}

impl AcceleratorKind {
    /// The paper's CPU-GPU setup: RTX A5000.
    pub fn a5000() -> Self {
        AcceleratorKind::Gpu(RTX_A5000)
    }

    /// The paper's CPU-FPGA setup: Alveo U250, Table IV kernel config.
    pub fn u250() -> Self {
        AcceleratorKind::Fpga(ALVEO_U250)
    }

    /// Build the timing model for this accelerator.
    pub fn timing(&self) -> Arc<dyn TrainerTiming> {
        match self {
            AcceleratorKind::Gpu(spec) => Arc::new(GpuTiming::new(*spec)),
            AcceleratorKind::Fpga(spec) => {
                if *spec == ALVEO_U250 {
                    Arc::new(FpgaTiming::u250())
                } else {
                    Arc::new(FpgaTiming::new(*spec, 8, 2048))
                }
            }
            AcceleratorKind::Custom(t) => Arc::clone(t),
        }
    }

    /// Device spec of the accelerator.
    pub fn spec(&self) -> DeviceSpec {
        match self {
            AcceleratorKind::Gpu(s) | AcceleratorKind::Fpga(s) => *s,
            AcceleratorKind::Custom(t) => *t.spec(),
        }
    }

    /// Short display name.
    pub fn label(&self) -> &'static str {
        match self {
            AcceleratorKind::Gpu(_) => "GPU",
            AcceleratorKind::Fpga(_) => "FPGA",
            AcceleratorKind::Custom(_) => "ACCEL",
        }
    }

    /// Per-iteration overhead of the *CPU trainer* under this
    /// accelerator's software stack: the paper's CPU-GPU design is
    /// PyTorch end-to-end (§VI-A1) so its CPU trainer pays Python
    /// dispatch; the CPU-FPGA design drives the CPU trainer natively via
    /// Pthreads+MKL (§III-C).
    pub fn cpu_stack_overhead(&self) -> f64 {
        match self {
            AcceleratorKind::Gpu(_) => hyscale_device::calib::PYTORCH_CPU_TRAINER_OVERHEAD_S,
            AcceleratorKind::Fpga(_) | AcceleratorKind::Custom(_) => 0.0,
        }
    }
}

/// The heterogeneous node (paper Fig. 2).
#[derive(Clone)]
pub struct PlatformConfig {
    /// Host CPU spec (per socket).
    pub cpu: DeviceSpec,
    /// Socket count.
    pub sockets: usize,
    /// Worker threads available to CPU-resident stages.
    pub total_threads: usize,
    /// Accelerator family.
    pub accelerator: AcceleratorKind,
    /// Number of attached accelerators.
    pub num_accelerators: usize,
    /// Per-accelerator PCIe link.
    pub pcie: PcieLink,
}

impl PlatformConfig {
    /// The paper's evaluation node: dual EPYC 7763 + `n` accelerators.
    pub fn paper_node(accelerator: AcceleratorKind, num_accelerators: usize) -> Self {
        Self {
            cpu: EPYC_7763,
            sockets: 2,
            total_threads: 128,
            accelerator,
            num_accelerators,
            pcie: PcieLink::default(),
        }
    }

    /// NUMA domains of the CPU-memory-resident feature matrix: one per
    /// socket (the paper's dual-socket node keeps `X` interleaved across
    /// two memory controllers). The Feature Loader's socket-sharded
    /// gather partitions `X`'s rows into this many contiguous domains
    /// and pins each domain's copies to that socket's share of the
    /// loader worker group.
    pub fn numa_domains(&self) -> usize {
        self.sockets.max(1)
    }
}

/// Optimization toggles — the knobs of the paper's ablation (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// CPU trainers participate (hybrid training). Off = pure offload
    /// ("Baseline" bar in Fig. 11).
    pub hybrid: bool,
    /// Dynamic Resource Management engine active.
    pub drm: bool,
    /// Two-stage Feature Prefetching (pipelined stages).
    pub tfp: bool,
}

impl OptFlags {
    /// Everything on — the full HyScale-GNN system.
    pub fn full() -> Self {
        Self {
            hybrid: true,
            drm: true,
            tfp: true,
        }
    }

    /// Pure offload baseline (Fig. 11 "Baseline").
    pub fn baseline() -> Self {
        Self {
            hybrid: false,
            drm: false,
            tfp: false,
        }
    }

    /// Hybrid with static mapping (Fig. 11 "Hybrid (Static)").
    pub fn hybrid_static() -> Self {
        Self {
            hybrid: true,
            drm: false,
            tfp: false,
        }
    }

    /// Hybrid + DRM, no prefetching (Fig. 11 "Hybrid+DRM").
    pub fn hybrid_drm() -> Self {
        Self {
            hybrid: true,
            drm: true,
            tfp: false,
        }
    }
}

/// Optimizer selection for the synchronous-SGD update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD (the evaluation default).
    Sgd,
    /// SGD with momentum.
    Momentum(f32),
    /// Adam.
    Adam,
}

impl OptimizerKind {
    /// Instantiate the optimizer at the given learning rate.
    pub fn build(self, lr: f32) -> Box<dyn hyscale_tensor::Optimizer + Send> {
        match self {
            OptimizerKind::Sgd => Box::new(hyscale_tensor::Sgd::new(lr)),
            OptimizerKind::Momentum(m) => Box::new(hyscale_tensor::Sgd::with_momentum(lr, m)),
            OptimizerKind::Adam => Box::new(hyscale_tensor::Adam::new(lr)),
        }
    }
}

/// Training hyper-parameters (paper §VI-A2 defaults).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// GNN model family.
    pub model: GnnKind,
    /// Per-trainer mini-batch size (paper: 1024).
    pub batch_per_trainer: usize,
    /// Neighbor-sampling fanouts, seed-side first (paper: (25, 10)).
    pub fanouts: Vec<usize>,
    /// Hidden dimension (paper: 256).
    pub hidden_dim: usize,
    /// Learning rate for the shared optimizer.
    pub learning_rate: f32,
    /// Which optimizer performs the synchronized update.
    pub optimizer: OptimizerKind,
    /// RNG seed governing init, sampling, and shuffling.
    pub seed: u64,
    /// Cap on functional iterations per epoch (timing is extrapolated to
    /// the full-scale iteration count); `None` = run the whole epoch.
    pub max_functional_iters: Option<usize>,
    /// Wire precision of mini-batch features on the PCIe transfer —
    /// the paper's §VIII data-quantization extension. Features are
    /// really quantized/dequantized in the functional path, so accuracy
    /// effects are measurable.
    pub transfer_precision: Precision,
    /// Task-level Feature Prefetching depth `d` (paper §IV-B) for the
    /// *real* executor pipeline: how many iterations of sampled +
    /// gathered mini-batches the background producer may run ahead of
    /// GNN propagation. `0` executes every stage serially on the
    /// consumer thread. Any depth produces bitwise-identical training
    /// to `0` — prefetching is pure wall-clock overlap (enforced by
    /// `tests/equivalence.rs`).
    pub prefetch_depth: usize,
    /// Per-accelerator staging-ring depth for the producer's transfer
    /// stage (clamped ≥ 1 when prefetching). Each accelerator lane owns
    /// this many staging slots; a slot is held from the start of a
    /// batch's wire-precision round-trip until its propagation
    /// completes, so `1` serializes transfer with accelerator compute
    /// (a single staging buffer) while `2` double-buffers — the wire
    /// transfer of batch `i+1` overlaps the compute of batch `i`.
    /// Bitwise-neutral like `prefetch_depth`: ring depth changes
    /// wall-clock only (enforced by `tests/equivalence.rs`).
    pub staging_ring_depth: usize,
    /// Concurrent transfer-lane cap for the producer's per-accelerator
    /// transfer stage. Each accelerator owns a dedicated transfer lane
    /// (its staging ring plus a bounded lane channel fed by the gather
    /// stage); this cap bounds how many of those lanes may run their
    /// wire-precision round-trips *concurrently*, WorkerGroup-style
    /// (the effective concurrency is further capped by the host's real
    /// parallelism). `0` means "follow the DRM's loader thread budget":
    /// a `balance_thread` move then re-sizes the live lane concurrency
    /// in place — no queue or ring drain, exactly like pool widths.
    /// Bitwise-neutral like `prefetch_depth` and `staging_ring_depth`:
    /// lane concurrency changes wall-clock only (enforced by the
    /// multi-lane matrix in `tests/proptest_invariants.rs`).
    pub transfer_lanes: usize,
}

impl TrainConfig {
    /// The paper's defaults for a given model.
    pub fn paper_default(model: GnnKind) -> Self {
        Self {
            model,
            batch_per_trainer: 1024,
            fanouts: vec![25, 10],
            hidden_dim: 256,
            learning_rate: 0.05,
            optimizer: OptimizerKind::Sgd,
            seed: 42,
            max_functional_iters: Some(8),
            transfer_precision: Precision::F32,
            prefetch_depth: 2,
            staging_ring_depth: 2,
            transfer_lanes: 0,
        }
    }

    /// Layer dimensions for a dataset with input width `f0` and `classes`
    /// outputs: `[f0, hidden, ..., classes]` with `fanouts.len()` layers.
    pub fn layer_dims(&self, f0: usize, classes: usize) -> Vec<usize> {
        let mut dims = vec![f0];
        for _ in 1..self.fanouts.len() {
            dims.push(self.hidden_dim);
        }
        dims.push(classes);
        dims
    }
}

/// Complete system configuration.
#[derive(Clone)]
pub struct SystemConfig {
    /// Node description.
    pub platform: PlatformConfig,
    /// Optimization toggles.
    pub opt: OptFlags,
    /// Training hyper-parameters.
    pub train: TrainConfig,
}

impl SystemConfig {
    /// Paper defaults: dual-EPYC node, 4 accelerators, all optimizations.
    pub fn paper_default(accelerator: AcceleratorKind, model: GnnKind) -> Self {
        Self {
            platform: PlatformConfig::paper_node(accelerator, 4),
            opt: OptFlags::full(),
            train: TrainConfig::paper_default(model),
        }
    }

    /// Trainer count: accelerators plus one CPU trainer when hybrid.
    pub fn num_trainers(&self) -> usize {
        self.platform.num_accelerators + usize::from(self.opt.hybrid)
    }

    /// Total seeds consumed per iteration (constant across DRM moves).
    pub fn total_batch(&self) -> usize {
        self.train.batch_per_trainer * self.num_trainers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_shape() {
        let p = PlatformConfig::paper_node(AcceleratorKind::u250(), 4);
        assert_eq!(p.num_accelerators, 4);
        assert_eq!(p.sockets, 2);
        assert_eq!(p.cpu.name, "AMD EPYC 7763");
    }

    #[test]
    fn total_batch_counts_cpu_trainer() {
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::a5000(), GnnKind::Gcn);
        assert_eq!(cfg.num_trainers(), 5);
        assert_eq!(cfg.total_batch(), 5 * 1024);
        cfg.opt = OptFlags::baseline();
        assert_eq!(cfg.num_trainers(), 4);
        assert_eq!(cfg.total_batch(), 4 * 1024);
    }

    #[test]
    fn layer_dims_from_fanouts() {
        let t = TrainConfig::paper_default(GnnKind::Gcn);
        assert_eq!(t.layer_dims(100, 47), vec![100, 256, 47]);
        let mut t3 = t.clone();
        t3.fanouts = vec![15, 10, 5];
        assert_eq!(t3.layer_dims(128, 172), vec![128, 256, 256, 172]);
    }

    #[test]
    fn flags_presets() {
        assert!(OptFlags::full().tfp);
        assert!(!OptFlags::baseline().hybrid);
        assert!(OptFlags::hybrid_static().hybrid && !OptFlags::hybrid_static().drm);
        assert!(OptFlags::hybrid_drm().drm && !OptFlags::hybrid_drm().tfp);
    }

    #[test]
    fn custom_accelerator_timing() {
        use hyscale_device::timing::FpgaTiming;
        let custom = AcceleratorKind::Custom(Arc::new(FpgaTiming::u250()));
        assert_eq!(custom.label(), "ACCEL");
        assert_eq!(custom.spec().name, "Xilinx Alveo U250");
        assert!(custom.timing().pipelined());
    }
}
