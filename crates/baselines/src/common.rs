//! Shared machinery for the baseline system models.

use hyscale_device::timing::{GpuTiming, TrainerTiming};
use hyscale_gnn::GnnKind;
use hyscale_graph::DatasetSpec;
use hyscale_sampler::{expected_workload, WorkloadStats};

/// Per-iteration overhead of a Python DataLoader collation pipeline
/// (PyG `NeighborLoader` worker hand-off + tensor assembly). Applies to
/// the PyG baseline only; DGL-based systems use their own constant.
pub const PYG_DATALOADER_OVERHEAD_S: f64 = 6e-3;

/// Per-iteration overhead of the DGL/distributed stacks (PaGraph, P3,
/// DistDGL): graph-store RPC, KVStore lookups, Python dispatch.
pub const DGL_FRAMEWORK_OVERHEAD_S: f64 = 10e-3;

/// A model-configuration row of paper Table V: each state-of-the-art
/// comparison reuses the *competitor's* sample size and hidden dim.
#[derive(Debug, Clone)]
pub struct SotaConfig {
    /// Neighbor fanouts, seed-side first.
    pub fanouts: Vec<usize>,
    /// Hidden feature dimension.
    pub hidden_dim: usize,
    /// Per-trainer mini-batch size.
    pub batch_per_trainer: usize,
}

impl SotaConfig {
    /// PaGraph row: fanout (25, 10), hidden 256.
    pub fn pagraph() -> Self {
        Self {
            fanouts: vec![25, 10],
            hidden_dim: 256,
            batch_per_trainer: 1024,
        }
    }

    /// P3 row: fanout (25, 10), hidden 32.
    pub fn p3() -> Self {
        Self {
            fanouts: vec![25, 10],
            hidden_dim: 32,
            batch_per_trainer: 1024,
        }
    }

    /// DistDGLv2 row: fanout (15, 10, 5), hidden 256.
    pub fn distdgl() -> Self {
        Self {
            fanouts: vec![15, 10, 5],
            hidden_dim: 256,
            batch_per_trainer: 1024,
        }
    }

    /// Layer dims for a dataset under this config.
    pub fn layer_dims(&self, ds: &DatasetSpec) -> Vec<usize> {
        let mut dims = vec![ds.f0];
        for _ in 1..self.fanouts.len() {
            dims.push(self.hidden_dim);
        }
        dims.push(ds.f2);
        dims
    }

    /// Expected per-trainer batch workload on `ds`.
    pub fn workload(&self, ds: &DatasetSpec) -> WorkloadStats {
        expected_workload(
            ds.num_vertices,
            ds.avg_degree(),
            self.batch_per_trainer,
            &self.fanouts,
        )
    }
}

/// A baseline training system: produces epoch times for Table VI and
/// normalized comparisons for Table VII.
pub trait BaselineSystem {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Aggregate platform peak performance in TFLOPS (Table VII
    /// normalization: "epoch time × platform peak performance").
    fn platform_tflops(&self) -> f64;

    /// Total seeds consumed per iteration across all trainers.
    fn total_batch(&self, cfg: &SotaConfig) -> usize;

    /// Simulated per-iteration latency.
    fn iteration_time(&self, ds: &DatasetSpec, model: GnnKind, cfg: &SotaConfig) -> f64;

    /// Simulated epoch time (labelled train set / total batch iterations).
    fn epoch_time(&self, ds: &DatasetSpec, model: GnnKind, cfg: &SotaConfig) -> f64 {
        let iters = ds.train_vertices.div_ceil(self.total_batch(cfg) as u64);
        iters as f64 * self.iteration_time(ds, model, cfg)
    }

    /// Table VII metric: epoch seconds × platform TFLOPS.
    fn normalized_epoch(&self, ds: &DatasetSpec, model: GnnKind, cfg: &SotaConfig) -> f64 {
        self.epoch_time(ds, model, cfg) * self.platform_tflops()
    }
}

/// GPU propagation time (with framework overhead) for one batch on a
/// PyTorch/DGL-stack trainer.
pub fn gpu_propagation_time(
    gpu: &GpuTiming,
    stats: &WorkloadStats,
    dims: &[usize],
    model: GnnKind,
    framework_overhead: f64,
) -> f64 {
    gpu.propagation_time(stats, dims, model.update_width_factor()) + framework_overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::dataset::OGBN_PRODUCTS;

    #[test]
    fn sota_configs_match_table_v() {
        assert_eq!(SotaConfig::pagraph().fanouts, vec![25, 10]);
        assert_eq!(SotaConfig::pagraph().hidden_dim, 256);
        assert_eq!(SotaConfig::p3().hidden_dim, 32);
        assert_eq!(SotaConfig::distdgl().fanouts, vec![15, 10, 5]);
    }

    #[test]
    fn layer_dims_three_layer_for_distdgl() {
        let dims = SotaConfig::distdgl().layer_dims(&OGBN_PRODUCTS);
        assert_eq!(dims, vec![100, 256, 256, 47]);
    }

    #[test]
    fn workload_positive() {
        let w = SotaConfig::pagraph().workload(&OGBN_PRODUCTS);
        assert!(w.input_nodes > 1024);
        assert!(w.total_edges() > 0);
    }
}
