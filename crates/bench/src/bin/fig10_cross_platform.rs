//! Regenerates paper Fig. 10: cross-platform comparison — epoch time of
//! the multi-GPU PyG baseline vs. hybrid CPU+GPU vs. hybrid CPU+FPGA on
//! all three datasets and both models (4 accelerators each).

use hyscale_baselines::{BaselineSystem, PygMultiGpu, SotaConfig};
use hyscale_bench::{geo_mean, simulate_epoch, Table, DRM_SETTLE_ITERS};
use hyscale_core::config::AcceleratorKind;
use hyscale_core::SystemConfig;
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::ALL_DATASETS;

fn main() {
    println!("Fig. 10: cross-platform comparison, epoch time (s), 4 accelerators\n");
    let baseline = PygMultiGpu::paper_baseline();
    let sota = SotaConfig::pagraph(); // fanout (25,10), hidden 256 = paper default
    let mut t = Table::new(&[
        "Dataset",
        "Model",
        "Multi-GPU (s)",
        "CPU+GPU (s)",
        "CPU+FPGA (s)",
        "GPU speedup",
        "FPGA speedup",
    ]);
    let mut gpu_speedups = Vec::new();
    let mut fpga_speedups = Vec::new();
    for ds in ALL_DATASETS {
        for model in [GnnKind::Gcn, GnnKind::GraphSage] {
            let t_base = baseline.epoch_time(&ds, model, &sota);
            let gpu_cfg = SystemConfig::paper_default(AcceleratorKind::a5000(), model);
            let fpga_cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
            let t_gpu = simulate_epoch(&gpu_cfg, &ds, DRM_SETTLE_ITERS).epoch_time_s;
            let t_fpga = simulate_epoch(&fpga_cfg, &ds, DRM_SETTLE_ITERS).epoch_time_s;
            gpu_speedups.push(t_base / t_gpu);
            fpga_speedups.push(t_base / t_fpga);
            t.row(vec![
                ds.name.to_string(),
                model.name().to_string(),
                format!("{t_base:.2}"),
                format!("{t_gpu:.2}"),
                format!("{t_fpga:.2}"),
                format!("{:.2}x", t_base / t_gpu),
                format!("{:.2}x", t_base / t_fpga),
            ]);
        }
    }
    t.print();
    println!(
        "\ngeo-mean speedup vs multi-GPU:  CPU+GPU {:.2}x   CPU+FPGA {:.2}x",
        geo_mean(&gpu_speedups),
        geo_mean(&fpga_speedups)
    );
    println!("paper: CPU+GPU up to 2.08x, CPU+FPGA up to 12.6x (products 8.87-9.98x,");
    println!("       papers100M 10.5-12.6x, MAG240M 9.46-11.5x); FPGA/GPU gap 5-6x.");
}
