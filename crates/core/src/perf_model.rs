//! The design-time performance model (paper §V, Eq. 5–13).
//!
//! Predicts stage times from *algorithmic parameters* (batch size,
//! fanouts, feature widths) and *platform metadata* (Table II specs,
//! PCIe bandwidth). HyScale-GNN uses the prediction to derive the
//! coarse-grained initial task mapping at design time; the DRM engine
//! then fine-tunes at runtime (paper §IV-A).
//!
//! [`compute_stage_times`] is shared with the runtime executor: the
//! model feeds it *analytic* expected workloads (sampling cost estimated
//! offline, §V), while the executor feeds it *measured* per-batch
//! workloads — the difference, plus launch/flush overheads, is exactly
//! the prediction error the paper reports in Fig. 8 (5–14 %).

use crate::config::{OptFlags, PlatformConfig, SystemConfig, TrainConfig};
use crate::drm::{ThreadAlloc, WorkloadSplit};
use crate::stages::StageTimes;
use hyscale_device::calib;
use hyscale_device::stage::{LoaderModel, SamplerModel};
use hyscale_device::timing::{CpuTiming, TrainerTiming};
use hyscale_graph::DatasetSpec;
use hyscale_sampler::{expected_workload, WorkloadStats};

/// Everything [`compute_stage_times`] needs for one iteration.
pub struct StageInputs<'a> {
    /// CPU trainer's batch workload (zero-stats when no CPU trainer).
    pub cpu_stats: &'a WorkloadStats,
    /// Per-accelerator batch workloads.
    pub accel_stats: &'a [WorkloadStats],
    /// Model layer dimensions `[f0 .. fL]`.
    pub dims: &'a [usize],
    /// Update-input width factor (2 for SAGE).
    pub width_factor: usize,
    /// All-reduce payload in bytes (model size, Eq. 13 numerator).
    pub model_bytes: u64,
    /// Fraction of sampling executed on accelerators.
    pub sampling_on_accel: f64,
    /// Wire precision of transferred features (§VIII extension).
    pub precision: hyscale_tensor::Precision,
}

/// Compute all stage times for one iteration.
///
/// `include_overheads` selects runtime fidelity (kernel-launch overhead
/// charged to the accelerator stage) versus the paper's pure Eq. 5–13
/// model (design-time prediction).
pub fn compute_stage_times(
    platform: &PlatformConfig,
    threads: &ThreadAlloc,
    inputs: &StageInputs<'_>,
    include_overheads: bool,
) -> StageTimes {
    let accel_timing = platform.accelerator.timing();
    let loader = LoaderModel::new(platform.cpu, platform.sockets);
    let sampler = SamplerModel::default();
    let f0 = inputs.dims[0];

    // --- Sampling (T_SC, T_SA): total sampled edges split by share ---
    let total_edges: u64 = inputs.cpu_stats.total_edges()
        + inputs
            .accel_stats
            .iter()
            .map(WorkloadStats::total_edges)
            .sum::<u64>();
    let accel_edges = (total_edges as f64 * inputs.sampling_on_accel) as u64;
    let cpu_edges = total_edges - accel_edges;
    let sample_cpu = sampler.sample_time(cpu_edges, threads.sampler);
    let sample_accel = match accel_timing.sampling_eps() {
        Some(eps) if accel_edges > 0 => {
            sampler.accel_sample_time(accel_edges, eps * platform.num_accelerators as f64)
        }
        _ => 0.0,
    };

    // --- Feature Loading (T_Load, Eq. 7): loader gathers X' for every
    // trainer (CPU-resident stage) ---
    let mut merged = inputs.cpu_stats.clone();
    for s in inputs.accel_stats {
        merged = merged.merge(s);
    }
    let load = loader.load_time(&merged, f0, threads.loader);

    // --- Data Transfer (T_Tran, Eq. 8): per-accelerator links run in
    // parallel; the stage time is the slowest single link ---
    let transfer = per_lane_transfer_times(platform, inputs)
        .into_iter()
        .fold(0.0f64, f64::max);

    // --- GNN Propagation (Eq. 9–12) ---
    let cpu_timing = CpuTiming::new(
        platform.cpu,
        platform.sockets,
        threads.trainer.max(1),
        platform.total_threads,
    );
    let cpu_stack = if include_overheads {
        platform.accelerator.cpu_stack_overhead()
    } else {
        0.0
    };
    let train_cpu = if inputs.cpu_stats.batch_size == 0 {
        0.0
    } else {
        cpu_timing.propagation_time(inputs.cpu_stats, inputs.dims, inputs.width_factor) + cpu_stack
    };
    let launch = if include_overheads {
        accel_timing.launch_overhead()
    } else {
        0.0
    };
    let train_accel = inputs
        .accel_stats
        .iter()
        .map(|s| {
            if s.batch_size == 0 {
                0.0
            } else {
                accel_timing.propagation_time(s, inputs.dims, inputs.width_factor) + launch
            }
        })
        .fold(0.0f64, f64::max);

    // --- Synchronization (Eq. 13) ---
    let sync = platform.pcie.allreduce_time(inputs.model_bytes);

    StageTimes {
        sample_cpu,
        sample_accel,
        load,
        transfer,
        train_cpu,
        train_accel,
        sync,
    }
}

/// Per-accelerator wire-transfer times for one iteration (Eq. 8, one
/// entry per attached link). Eq. 8's stage time is the max over these
/// — valid only when the links actually run in parallel; a single
/// transfer thread serving every link round-robin pays the *sum*
/// instead. These per-lane times are the inputs to
/// [`crate::pipeline::simulate_pipeline_multilane`], which models that
/// difference explicitly.
pub fn per_lane_transfer_times(platform: &PlatformConfig, inputs: &StageInputs<'_>) -> Vec<f64> {
    let f0 = inputs.dims[0];
    inputs
        .accel_stats
        .iter()
        .map(|s| {
            let bytes = inputs.precision.wire_bytes(s.input_nodes, f0) + s.total_edges() * 8;
            platform.pcie.transfer_time(bytes)
        })
        .collect()
}

/// The design-time performance model.
pub struct PerfModel {
    platform: PlatformConfig,
    train: TrainConfig,
    opt: OptFlags,
}

impl PerfModel {
    /// Model for a system configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        Self {
            platform: cfg.platform.clone(),
            train: cfg.train.clone(),
            opt: cfg.opt,
        }
    }

    /// Expected per-batch workload for `quota` seeds on `dataset`
    /// (closed-form, §V: sampling cost is profiled/estimated offline).
    pub fn analytic_workload(&self, dataset: &DatasetSpec, quota: usize) -> WorkloadStats {
        if quota == 0 {
            return WorkloadStats::zero(self.train.fanouts.len());
        }
        expected_workload(
            dataset.num_vertices,
            dataset.avg_degree(),
            quota,
            &self.train.fanouts,
        )
    }

    /// Model layer dims for `dataset`.
    pub fn dims(&self, dataset: &DatasetSpec) -> Vec<usize> {
        self.train.layer_dims(dataset.f0, dataset.f2)
    }

    /// All-reduce payload: Σ_l (f_in·width·f_out + f_out) × 4 bytes.
    pub fn model_bytes(&self, dataset: &DatasetSpec) -> u64 {
        let dims = self.dims(dataset);
        let width = self.train.model.update_width_factor() as u64;
        dims.windows(2)
            .map(|w| (w[0] as u64 * width * w[1] as u64 + w[1] as u64) * 4)
            .sum()
    }

    /// Predicted stage times for a given mapping (no runtime overheads —
    /// the paper's Eq. 5–13 exactly).
    pub fn stage_times(
        &self,
        dataset: &DatasetSpec,
        split: &WorkloadSplit,
        threads: &ThreadAlloc,
    ) -> StageTimes {
        let cpu_stats = self.analytic_workload(dataset, split.cpu_quota);
        let accel_stats: Vec<WorkloadStats> = (0..split.num_accelerators)
            .map(|i| self.analytic_workload(dataset, split.accel_quota(i)))
            .collect();
        let dims = self.dims(dataset);
        let inputs = StageInputs {
            cpu_stats: &cpu_stats,
            accel_stats: &accel_stats,
            dims: &dims,
            width_factor: self.train.model.update_width_factor(),
            model_bytes: self.model_bytes(dataset),
            sampling_on_accel: split.sampling_on_accel,
            precision: self.train.transfer_precision,
        };
        compute_stage_times(&self.platform, threads, &inputs, false)
    }

    /// Stage times *with* runtime overheads (kernel launch) — the
    /// executor-fidelity view over analytic workloads, used by the
    /// benchmark harness's fast timing-only simulations.
    pub fn stage_times_runtime(
        &self,
        dataset: &DatasetSpec,
        split: &WorkloadSplit,
        threads: &ThreadAlloc,
    ) -> StageTimes {
        let cpu_stats = self.analytic_workload(dataset, split.cpu_quota);
        let accel_stats: Vec<WorkloadStats> = (0..split.num_accelerators)
            .map(|i| self.analytic_workload(dataset, split.accel_quota(i)))
            .collect();
        let dims = self.dims(dataset);
        let inputs = StageInputs {
            cpu_stats: &cpu_stats,
            accel_stats: &accel_stats,
            dims: &dims,
            width_factor: self.train.model.update_width_factor(),
            model_bytes: self.model_bytes(dataset),
            sampling_on_accel: split.sampling_on_accel,
            precision: self.train.transfer_precision,
        };
        compute_stage_times(&self.platform, threads, &inputs, true)
    }

    /// Predicted iteration time (Eq. 6 when prefetching pipelines the
    /// stages; serial sum otherwise).
    pub fn iteration_time(
        &self,
        dataset: &DatasetSpec,
        split: &WorkloadSplit,
        threads: &ThreadAlloc,
    ) -> f64 {
        let t = self.stage_times(dataset, split, threads);
        if self.opt.tfp {
            t.pipelined_iteration()
        } else {
            t.serial_iteration()
        }
    }

    /// Predicted per-accelerator wire times for a given mapping — the
    /// lane inputs to
    /// [`crate::pipeline::simulate_pipeline_multilane`], letting the
    /// model quantify what concurrent transfer lanes buy over a single
    /// serialized transfer thread for this dataset and split.
    pub fn lane_transfer_times(&self, dataset: &DatasetSpec, split: &WorkloadSplit) -> Vec<f64> {
        let cpu_stats = self.analytic_workload(dataset, split.cpu_quota);
        let accel_stats: Vec<WorkloadStats> = (0..split.num_accelerators)
            .map(|i| self.analytic_workload(dataset, split.accel_quota(i)))
            .collect();
        let dims = self.dims(dataset);
        let inputs = StageInputs {
            cpu_stats: &cpu_stats,
            accel_stats: &accel_stats,
            dims: &dims,
            width_factor: self.train.model.update_width_factor(),
            model_bytes: self.model_bytes(dataset),
            sampling_on_accel: split.sampling_on_accel,
            precision: self.train.transfer_precision,
        };
        per_lane_transfer_times(&self.platform, &inputs)
    }

    /// Predicted producer-side cost of one DRM `balance_work`
    /// invalidation under this model's stage times: the prepared window
    /// (`prefetch_depth + ring_depth` iterations in queue and staging
    /// slots) redoes the work of the trainers whose quota moved.
    /// `changed_trainers / total_trainers` is the surgical share; pass
    /// `changed = total` for the pre-surgical full flush. The gap
    /// between the two is exactly what per-trainer re-slicing saves per
    /// re-mapping event.
    pub fn invalidation_cost(
        &self,
        dataset: &DatasetSpec,
        split: &WorkloadSplit,
        threads: &ThreadAlloc,
        prefetch_depth: usize,
        ring_depth: usize,
        changed_trainers: usize,
    ) -> f64 {
        let times = self.stage_times_runtime(dataset, split, threads);
        let costs = crate::pipeline::PipelineStageCosts::from_stage_times(&times);
        let total = 1 + split.num_accelerators;
        let share = changed_trainers.min(total) as f64 / total as f64;
        crate::pipeline::invalidation_cost(&costs, prefetch_depth, ring_depth, share)
    }

    /// Optimal sampling share for the accelerators given the CPU
    /// sampler's thread budget: balance `T_SC == T_SA` analytically.
    fn sampling_share(&self, sampler_threads: usize) -> f64 {
        let accel_eps = self
            .platform
            .accelerator
            .timing()
            .sampling_eps()
            .unwrap_or(0.0)
            * self.platform.num_accelerators as f64;
        let cpu_eps = sampler_threads as f64 * calib::CPU_SAMPLE_EPS_PER_THREAD;
        if accel_eps <= 0.0 {
            0.0
        } else {
            accel_eps / (accel_eps + cpu_eps)
        }
    }

    /// Design-time *coarse-grained* task mapping (paper §IV-A: the
    /// design-time mapping is coarse; the DRM engine fine-tunes at
    /// runtime): scan the CPU trainer share in 12.5 % steps with the
    /// default thread allocation and the analytic sampling split.
    pub fn initial_mapping(&self, dataset: &DatasetSpec) -> (WorkloadSplit, ThreadAlloc) {
        let total = self.train.batch_per_trainer
            * (self.platform.num_accelerators + usize::from(self.opt.hybrid));
        let threads = ThreadAlloc::default_for(self.platform.total_threads);
        let shares: Vec<usize> = if self.opt.hybrid {
            (0..=6).map(|i| total * i / 8).collect()
        } else {
            vec![0]
        };
        let mut best: Option<(f64, WorkloadSplit)> = None;
        for cpu_quota in shares {
            let mut split = WorkloadSplit::new(cpu_quota, total, self.platform.num_accelerators);
            split.sampling_on_accel = self.sampling_share(threads.sampler);
            let t = self.iteration_time(dataset, &split, &threads);
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, split));
            }
        }
        let (_, split) = best.expect("at least one candidate");
        (split, threads)
    }

    /// Steady-state mapping: run the DRM policy over the model's own
    /// (overhead-free) stage times until it settles — this is what the
    /// model *predicts* the runtime will converge to, and what epoch-time
    /// predictions are quoted at.
    pub fn settled_mapping(&self, dataset: &DatasetSpec) -> (WorkloadSplit, ThreadAlloc) {
        let (mut split, mut threads) = self.initial_mapping(dataset);
        let drm = crate::drm::DrmEngine::new(self.opt.hybrid);
        let objective =
            |pm: &PerfModel, s: &WorkloadSplit, th: &ThreadAlloc| pm.iteration_time(dataset, s, th);
        let mut best = (objective(self, &split, &threads), split.clone(), threads);
        for _ in 0..60 {
            let t = self.stage_times(dataset, &split, &threads);
            drm.adjust(&t, &mut split, &mut threads);
            let obj = objective(self, &split, &threads);
            if obj < best.0 {
                best = (obj, split.clone(), threads);
            }
        }
        (best.1, best.2)
    }

    /// Predicted epoch time: iterations × iteration time (Eq. 5–6 over
    /// the labelled training set) at the settled mapping.
    pub fn predict_epoch_time(&self, dataset: &DatasetSpec) -> f64 {
        let (split, threads) = self.settled_mapping(dataset);
        let iters = dataset.train_vertices.div_ceil(split.total as u64);
        iters as f64 * self.iteration_time(dataset, &split, &threads)
    }

    /// Training throughput in MTEPS (Eq. 5): million traversed edges per
    /// second at the predicted iteration time.
    pub fn throughput_mteps(&self, dataset: &DatasetSpec) -> f64 {
        let (split, threads) = self.settled_mapping(dataset);
        let cpu = self.analytic_workload(dataset, split.cpu_quota);
        let accel: u64 = (0..split.num_accelerators)
            .map(|i| {
                self.analytic_workload(dataset, split.accel_quota(i))
                    .total_edges()
            })
            .sum();
        let edges = cpu.total_edges() + accel;
        edges as f64 / self.iteration_time(dataset, &split, &threads) / 1e6
    }

    /// Predicted scalability (paper Fig. 9): normalized speedup over the
    /// single-accelerator configuration, per accelerator count. Work per
    /// trainer is constant (weak scaling, §II-B), so speedup is the
    /// throughput ratio.
    pub fn scalability(&self, dataset: &DatasetSpec, counts: &[usize]) -> Vec<(usize, f64)> {
        let tput = |n: usize| {
            let mut cfg = self.platform.clone();
            cfg.num_accelerators = n;
            let model = PerfModel {
                platform: cfg,
                train: self.train.clone(),
                opt: self.opt,
            };
            model.throughput_mteps(dataset)
        };
        let base = tput(1);
        counts.iter().map(|&n| (n, tput(n) / base)).collect()
    }

    /// Expected pipeline-flush + launch epoch overhead (the §VI-C error
    /// sources) for error analysis.
    pub fn unmodelled_epoch_overhead(&self, dataset: &DatasetSpec) -> f64 {
        let (split, threads) = self.settled_mapping(dataset);
        let iters = dataset.train_vertices.div_ceil(split.total as u64);
        let launch = self.platform.accelerator.timing().launch_overhead();
        let flush = calib::PIPELINE_FLUSH_ITERS * self.iteration_time(dataset, &split, &threads);
        iters as f64 * launch + flush
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorKind;
    use hyscale_gnn::GnnKind;
    use hyscale_graph::dataset::{MAG240M_HOMO, OGBN_PAPERS100M, OGBN_PRODUCTS};

    fn fpga_cfg(model: GnnKind) -> SystemConfig {
        SystemConfig::paper_default(AcceleratorKind::u250(), model)
    }

    fn gpu_cfg(model: GnnKind) -> SystemConfig {
        SystemConfig::paper_default(AcceleratorKind::a5000(), model)
    }

    #[test]
    fn stage_times_all_positive() {
        let cfg = fpga_cfg(GnnKind::Gcn);
        let pm = PerfModel::new(&cfg);
        let (split, threads) = pm.initial_mapping(&OGBN_PAPERS100M);
        let t = pm.stage_times(&OGBN_PAPERS100M, &split, &threads);
        assert!(t.load > 0.0 && t.transfer > 0.0 && t.train_accel > 0.0 && t.sync > 0.0);
        assert!(t.sample_cpu > 0.0);
    }

    #[test]
    fn initial_mapping_uses_cpu_when_hybrid() {
        let cfg = fpga_cfg(GnnKind::Gcn);
        let pm = PerfModel::new(&cfg);
        let (split, _) = pm.initial_mapping(&OGBN_PAPERS100M);
        assert_eq!(split.total, 5 * 1024);
        // quota conservation
        assert_eq!(split.quotas().iter().sum::<usize>(), split.total);
    }

    #[test]
    fn baseline_mapping_has_no_cpu_quota() {
        let mut cfg = fpga_cfg(GnnKind::Gcn);
        cfg.opt = crate::config::OptFlags::baseline();
        let pm = PerfModel::new(&cfg);
        let (split, _) = pm.initial_mapping(&OGBN_PAPERS100M);
        assert_eq!(split.cpu_quota, 0);
        assert_eq!(split.total, 4 * 1024);
    }

    #[test]
    fn partial_invalidation_costs_less_than_full() {
        let cfg = fpga_cfg(GnnKind::GraphSage);
        let pm = PerfModel::new(&cfg);
        let (split, threads) = pm.initial_mapping(&OGBN_PRODUCTS);
        let total = 1 + split.num_accelerators;
        let one_lane = pm.invalidation_cost(&OGBN_PRODUCTS, &split, &threads, 2, 2, 2);
        let full = pm.invalidation_cost(&OGBN_PRODUCTS, &split, &threads, 2, 2, total);
        assert!(one_lane > 0.0, "a real re-map is never free");
        assert!(
            one_lane < full * 0.5,
            "2-of-{total} trainers re-sliced should cost well under a full flush: \
             {one_lane} vs {full}"
        );
        // zero changed trainers = zero-diff no-op
        assert_eq!(
            pm.invalidation_cost(&OGBN_PRODUCTS, &split, &threads, 2, 2, 0),
            0.0
        );
    }

    #[test]
    fn lane_transfer_times_match_the_stage_max() {
        let cfg = fpga_cfg(GnnKind::GraphSage);
        let pm = PerfModel::new(&cfg);
        let (split, threads) = pm.initial_mapping(&OGBN_PRODUCTS);
        let lanes = pm.lane_transfer_times(&OGBN_PRODUCTS, &split);
        assert_eq!(lanes.len(), split.num_accelerators);
        assert!(lanes.iter().all(|&t| t > 0.0));
        // Eq. 8's stage time is exactly the slowest lane
        let t = pm.stage_times(&OGBN_PRODUCTS, &split, &threads);
        let max = lanes.iter().copied().fold(0.0f64, f64::max);
        assert!((t.transfer - max).abs() < 1e-12);
        // symmetric quotas -> near-symmetric lanes (remainder seeds only)
        let min = lanes.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.1, "lanes implausibly skewed: {lanes:?}");
    }

    #[test]
    fn epoch_time_scales_with_dataset() {
        let cfg = fpga_cfg(GnnKind::GraphSage);
        let pm = PerfModel::new(&cfg);
        let products = pm.predict_epoch_time(&OGBN_PRODUCTS);
        let papers = pm.predict_epoch_time(&OGBN_PAPERS100M);
        // papers100M has ~6x the train vertices and wider features
        assert!(
            papers > 2.0 * products,
            "papers {papers} vs products {products}"
        );
    }

    #[test]
    fn pipelining_helps() {
        let mut cfg = fpga_cfg(GnnKind::Gcn);
        let pm_tfp = PerfModel::new(&cfg);
        cfg.opt.tfp = false;
        let pm_serial = PerfModel::new(&cfg);
        let (split, threads) = pm_tfp.initial_mapping(&MAG240M_HOMO);
        let t_tfp = pm_tfp.iteration_time(&MAG240M_HOMO, &split, &threads);
        let t_serial = pm_serial.iteration_time(&MAG240M_HOMO, &split, &threads);
        assert!(t_tfp < t_serial, "pipelined {t_tfp} vs serial {t_serial}");
    }

    #[test]
    fn fpga_system_beats_gpu_system() {
        // the paper's headline: CPU-FPGA ~5-6x faster than CPU-GPU
        let fpga = PerfModel::new(&fpga_cfg(GnnKind::Gcn));
        let gpu = PerfModel::new(&gpu_cfg(GnnKind::Gcn));
        let (fs, ft) = fpga.settled_mapping(&OGBN_PAPERS100M);
        let (gs, gt) = gpu.settled_mapping(&OGBN_PAPERS100M);
        // include runtime overheads for the honest per-iteration compare
        let f_times = {
            let cpu = fpga.analytic_workload(&OGBN_PAPERS100M, fs.cpu_quota);
            let acc: Vec<_> = (0..4)
                .map(|i| fpga.analytic_workload(&OGBN_PAPERS100M, fs.accel_quota(i)))
                .collect();
            let dims = fpga.dims(&OGBN_PAPERS100M);
            compute_stage_times(
                &fpga.platform,
                &ft,
                &StageInputs {
                    cpu_stats: &cpu,
                    accel_stats: &acc,
                    dims: &dims,
                    width_factor: 1,
                    model_bytes: fpga.model_bytes(&OGBN_PAPERS100M),
                    sampling_on_accel: 0.0,
                    precision: hyscale_tensor::Precision::F32,
                },
                true,
            )
        };
        let g_times = {
            let cpu = gpu.analytic_workload(&OGBN_PAPERS100M, gs.cpu_quota);
            let acc: Vec<_> = (0..4)
                .map(|i| gpu.analytic_workload(&OGBN_PAPERS100M, gs.accel_quota(i)))
                .collect();
            let dims = gpu.dims(&OGBN_PAPERS100M);
            compute_stage_times(
                &gpu.platform,
                &gt,
                &StageInputs {
                    cpu_stats: &cpu,
                    accel_stats: &acc,
                    dims: &dims,
                    width_factor: 1,
                    model_bytes: gpu.model_bytes(&OGBN_PAPERS100M),
                    sampling_on_accel: 0.0,
                    precision: hyscale_tensor::Precision::F32,
                },
                true,
            )
        };
        let ratio = g_times.pipelined_iteration() / f_times.pipelined_iteration();
        assert!(
            (2.0..12.0).contains(&ratio),
            "CPU-FPGA should beat CPU-GPU ~5-6x, got {ratio:.2} \
             (fpga {:.4}s, gpu {:.4}s)",
            f_times.pipelined_iteration(),
            g_times.pipelined_iteration()
        );
    }

    #[test]
    fn scalability_saturates_at_high_accel_counts() {
        let cfg = fpga_cfg(GnnKind::GraphSage);
        let pm = PerfModel::new(&cfg);
        let s = pm.scalability(&OGBN_PAPERS100M, &[1, 2, 4, 8, 16]);
        assert_eq!(s.len(), 5);
        assert!((s[0].1 - 1.0).abs() < 1e-9);
        // monotone non-decreasing speedup
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.99, "speedup regressed: {s:?}");
        }
        // sub-linear at 16 (CPU memory bandwidth saturation, Fig. 9)
        let s16 = s[4].1;
        assert!(s16 > 4.0, "16-accel speedup too low: {s16}");
        assert!(s16 < 15.0, "16-accel speedup implausibly linear: {s16}");
    }

    #[test]
    fn model_bytes_counts_sage_concat() {
        let gcn = PerfModel::new(&fpga_cfg(GnnKind::Gcn));
        let sage = PerfModel::new(&fpga_cfg(GnnKind::GraphSage));
        assert!(sage.model_bytes(&OGBN_PRODUCTS) > gcn.model_bytes(&OGBN_PRODUCTS));
        // GCN products: (100*256+256 + 256*47+47)*4 bytes
        assert_eq!(
            gcn.model_bytes(&OGBN_PRODUCTS),
            ((100 * 256 + 256 + 256 * 47 + 47) * 4) as u64
        );
    }

    #[test]
    fn unmodelled_overhead_is_small_fraction_on_fpga() {
        // Fig. 8: prediction error 5-14%; launch+flush alone must be well
        // under the epoch time.
        let pm = PerfModel::new(&fpga_cfg(GnnKind::Gcn));
        let epoch = pm.predict_epoch_time(&MAG240M_HOMO);
        let overhead = pm.unmodelled_epoch_overhead(&MAG240M_HOMO);
        assert!(
            overhead < epoch * 0.2,
            "overhead {overhead} vs epoch {epoch}"
        );
    }
}
