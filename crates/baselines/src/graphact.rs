//! GraphACT/HP-GNN-style single-accelerator, device-resident baseline
//! (paper §VII: "works like GraphACT \[9] and HP-GNN \[17] store the input
//! graph in the device memory, and thus cannot support large-scale
//! graphs").
//!
//! With the whole graph resident in device DRAM there is no per-batch
//! PCIe traffic at all — these systems are *fast* on graphs that fit
//! (ogbn-products) and simply *cannot run* on graphs that do not — the
//! capacity cliff that motivates HyScale-GNN.

use crate::common::SotaConfig;
use hyscale_device::memory::check_device_placement;
use hyscale_device::spec::{DeviceSpec, ALVEO_U250};
use hyscale_device::stage::SamplerModel;
use hyscale_device::timing::{FpgaTiming, TrainerTiming};
use hyscale_gnn::GnnKind;
use hyscale_graph::DatasetSpec;

/// Why a device-resident run cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityError {
    /// Bytes the graph needs.
    pub required_bytes: u64,
    /// Device capacity in bytes.
    pub capacity_bytes: u64,
    /// Dataset name.
    pub dataset: &'static str,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} needs {:.1} GB but the device holds {:.1} GB",
            self.dataset,
            self.required_bytes as f64 / 1e9,
            self.capacity_bytes as f64 / 1e9
        )
    }
}

impl std::error::Error for CapacityError {}

/// GraphACT-style single-FPGA trainer with the graph in device memory.
pub struct GraphActStyle {
    /// The single accelerator.
    pub device: DeviceSpec,
    /// Kernel parallelism (reuses the paper's FPGA kernel model).
    pub timing: FpgaTiming,
}

impl GraphActStyle {
    /// A U250 with the Table IV kernel.
    pub fn u250() -> Self {
        Self {
            device: ALVEO_U250,
            timing: FpgaTiming::u250(),
        }
    }

    /// Epoch time, or a capacity error when the graph cannot be
    /// device-resident.
    pub fn epoch_time(
        &self,
        ds: &DatasetSpec,
        model: GnnKind,
        cfg: &SotaConfig,
    ) -> Result<f64, CapacityError> {
        let placement = check_device_placement(ds, &self.device);
        if !placement.fits {
            return Err(CapacityError {
                required_bytes: placement.graph_bytes,
                capacity_bytes: placement.capacity_bytes,
                dataset: ds.name,
            });
        }
        let stats = cfg.workload(ds);
        let dims = cfg.layer_dims(ds);
        // sampling on the host CPU (GraphACT samples on CPU), zero PCIe
        // for features (device-resident), propagation on the device
        let sampler = SamplerModel::default();
        let t_samp = sampler.sample_time(stats.total_edges(), 32);
        let t_prop = self
            .timing
            .propagation_time(&stats, &dims, model.update_width_factor())
            + self.timing.launch_overhead();
        let iter = t_samp.max(t_prop); // GraphACT overlaps sampling
        let iters = ds.train_vertices.div_ceil(cfg.batch_per_trainer as u64);
        Ok(iters as f64 * iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::dataset::{MAG240M_HOMO, OGBN_PAPERS100M, OGBN_PRODUCTS};

    #[test]
    fn runs_on_products() {
        let g = GraphActStyle::u250();
        let t = g
            .epoch_time(&OGBN_PRODUCTS, GnnKind::Gcn, &SotaConfig::pagraph())
            .unwrap();
        assert!(t > 0.0 && t < 60.0, "epoch {t}");
    }

    #[test]
    fn refuses_large_graphs() {
        let g = GraphActStyle::u250();
        for ds in [OGBN_PAPERS100M, MAG240M_HOMO] {
            let err = g
                .epoch_time(&ds, GnnKind::Gcn, &SotaConfig::pagraph())
                .unwrap_err();
            assert!(err.required_bytes > err.capacity_bytes);
            assert!(err.to_string().contains("GB"));
        }
    }

    #[test]
    fn no_pcie_makes_it_quick_per_seed() {
        // device-resident: per-iteration cost is pure propagation, which
        // must beat the hybrid system's *transfer* time for one batch
        let g = GraphActStyle::u250();
        let cfg = SotaConfig::pagraph();
        let t = g.epoch_time(&OGBN_PRODUCTS, GnnKind::Gcn, &cfg).unwrap();
        let iters = OGBN_PRODUCTS.train_vertices.div_ceil(1024);
        let per_iter = t / iters as f64;
        assert!(per_iter < 0.02, "device-resident iteration {per_iter}s");
    }
}
