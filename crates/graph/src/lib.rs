//! # hyscale-graph
//!
//! Graph substrate for the HyScale-GNN reproduction.
//!
//! The paper trains on ogbn-products, ogbn-papers100M and MAG240M (homo)
//! — graphs with up to 1.6 B edges that live in *CPU memory* (paper §I,
//! §III-B). This crate provides:
//!
//! * [`csr::CsrGraph`] — compressed sparse row adjacency, the layout the
//!   samplers and the FPGA kernel walk.
//! * [`builder::GraphBuilder`] — edge-list ingestion with sorting/dedup.
//! * [`generator`] — seeded synthetic generators (R-MAT, preferential
//!   attachment, Erdős–Rényi, stochastic block model). The SBM plants
//!   learnable community labels so convergence tests train on real signal.
//! * [`dataset`] — Table III dataset specs with full-scale statistics and
//!   scaled-down functional materialization.
//! * [`features`] — CPU-resident feature matrix + label synthesis.
//! * [`partition`] — hash/range partitioners and edge-cut statistics for
//!   the multi-node baselines (P3, DistDGLv2).

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod dataset;
pub mod degree;
pub mod features;
pub mod generator;
pub mod io;
pub mod partition;
pub mod reorder;
pub mod stats;
pub mod traversal;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dataset::{Dataset, DatasetSpec};
pub use types::{EdgeCount, GraphError, VertexId};
