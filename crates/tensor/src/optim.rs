//! Optimizers for synchronous SGD training.
//!
//! Each trainer replica applies the *same averaged gradients* to its local
//! weight copy (paper §II-B), so the optimizer must be deterministic:
//! identical state + identical gradients ⇒ identical updates.

use crate::matrix::Matrix;

/// A parameter-update rule over flat parameter/gradient pairs.
///
/// Parameters are updated in-place; `step` must be called once per
/// synchronised iteration with gradients in a fixed order.
pub trait Optimizer {
    /// Update `param` given `grad`. `slot` identifies the parameter so
    /// stateful optimizers (momentum, Adam) can keep per-parameter state;
    /// callers must use stable, dense slot indices.
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent with optional momentum and weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Add L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    fn slot_mut(&mut self, slot: usize) -> &mut Option<Matrix> {
        if self.velocity.len() <= slot {
            self.velocity.resize_with(slot + 1, || None);
        }
        &mut self.velocity[slot]
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "optimizer shape mismatch");
        let (lr, momentum, wd) = (self.lr, self.momentum, self.weight_decay);
        if momentum == 0.0 {
            if wd != 0.0 {
                let decay = 1.0 - lr * wd;
                param.scale(decay);
            }
            param.axpy(-lr, grad);
            return;
        }
        let v = self.slot_mut(slot);
        let vel = v.get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
        assert_eq!(vel.shape(), grad.shape(), "momentum state shape mismatch");
        vel.scale(momentum);
        vel.add_assign(grad);
        if wd != 0.0 {
            let decay = 1.0 - lr * wd;
            param.scale(decay);
        }
        param.axpy(-lr, vel);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    state: Vec<Option<(Matrix, Matrix)>>,
    stepped_slots: usize,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
            stepped_slots: 0,
        }
    }

    /// Override the exponential-decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "optimizer shape mismatch");
        // A new optimization step begins whenever we revisit slot 0 or a
        // lower slot than the previous call.
        if slot <= self.stepped_slots {
            self.t += 1;
        }
        self.stepped_slots = slot;

        if self.state.len() <= slot {
            self.state.resize_with(slot + 1, || None);
        }
        let (m, v) = self.state[slot].get_or_insert_with(|| {
            (
                Matrix::zeros(grad.rows(), grad.cols()),
                Matrix::zeros(grad.rows(), grad.cols()),
            )
        });
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr_t = self.lr * bc2.sqrt() / bc1;

        let (ms, vs, gs, ps) = (
            m.as_mut_slice(),
            v.as_mut_slice(),
            grad.as_slice(),
            param.as_mut_slice(),
        );
        for i in 0..gs.len() {
            ms[i] = b1 * ms[i] + (1.0 - b1) * gs[i];
            vs[i] = b2 * vs[i] + (1.0 - b2) * gs[i] * gs[i];
            ps[i] -= lr_t * ms[i] / (vs[i].sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Matrix::full(1, 2, 1.0);
        let g = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let mut opt = Sgd::new(0.1);
        opt.step(0, &mut p, &g);
        assert!((p[(0, 0)] - 0.95).abs() < 1e-6);
        assert!((p[(0, 1)] - 1.05).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut p = Matrix::zeros(1, 1);
        let g = Matrix::full(1, 1, 1.0);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        opt.step(0, &mut p, &g); // v=1, p=-0.1
        opt.step(0, &mut p, &g); // v=1.9, p=-0.29
        assert!((p[(0, 0)] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut p = Matrix::full(1, 1, 2.0);
        let g = Matrix::zeros(1, 1);
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        opt.step(0, &mut p, &g);
        assert!((p[(0, 0)] - 2.0 * 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize f(x) = (x-3)^2 => grad = 2(x-3)
        let mut x = Matrix::zeros(1, 1);
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let g = Matrix::full(1, 1, 2.0 * (x[(0, 0)] - 3.0));
            opt.step(0, &mut x, &g);
        }
        assert!(
            (x[(0, 0)] - 3.0).abs() < 0.05,
            "adam ended at {}",
            x[(0, 0)]
        );
    }

    #[test]
    fn adam_multiple_slots_keep_separate_state() {
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(2, 2);
        let mut opt = Adam::new(0.1);
        for _ in 0..3 {
            opt.step(0, &mut a, &Matrix::full(1, 1, 1.0));
            opt.step(1, &mut b, &Matrix::full(2, 2, -1.0));
        }
        assert!(a[(0, 0)] < 0.0);
        assert!(b[(0, 0)] > 0.0);
    }

    #[test]
    fn deterministic_updates() {
        let run = || {
            let mut p = Matrix::full(2, 2, 0.3);
            let mut opt = Sgd::with_momentum(0.05, 0.9);
            for i in 0..10 {
                let g = Matrix::full(2, 2, (i as f32 * 0.1).sin());
                opt.step(0, &mut p, &g);
            }
            p
        };
        assert_eq!(run().as_slice(), run().as_slice());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_shape_mismatch() {
        let mut p = Matrix::zeros(1, 2);
        let g = Matrix::zeros(2, 1);
        Sgd::new(0.1).step(0, &mut p, &g);
    }
}
