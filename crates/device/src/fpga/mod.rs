//! Functional FPGA kernel simulation (paper §IV-C, Fig. 6) and the
//! resource model behind Table IV.

pub mod kernel;
pub mod resource;

pub use kernel::{simulate_aggregation, simulate_update, FpgaKernelConfig, KernelRun};
pub use resource::{ResourceUsage, U250_RESOURCES};
