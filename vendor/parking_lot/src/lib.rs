//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides `Mutex` and `Condvar` with parking_lot's ergonomics
//! (no poison `Result`s, `Condvar::wait(&mut guard)`) implemented on top
//! of `std::sync`. Poisoned locks are recovered transparently — the
//! workspace's training protocol treats a panicking trainer thread as
//! fatal at `join` time, not at lock time.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take ownership.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable whose `wait` re-locks through the same guard.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified;
    /// the lock is re-acquired into the same guard before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        t.join().unwrap();
        assert!(*ready);
    }
}
