//! Cache-blocked, Rayon-parallel GEMM kernels.
//!
//! The update stage of a GNN layer (paper Eq. 2) is a GEMM against the
//! weight matrix; its backward pass needs the `Aᵀ·B` and `A·Bᵀ` variants.
//! Parallelism is over disjoint *output row blocks*, so results are
//! bitwise independent of the number of worker threads — a property the
//! workspace's semantics-preservation tests rely on.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Rows per parallel task. Small enough to load-balance mini-batch sized
/// matrices (a few thousand rows), large enough to amortize task overhead.
const ROW_BLOCK: usize = 64;
/// Columns of the shared operand kept hot in L1/L2 per inner tile.
const K_BLOCK: usize = 256;

/// `C = alpha * op_a(A) · op_b(B) + beta * C` dispatcher.
///
/// Convenience wrapper so callers can select the transpose variant at
/// runtime (the trainers pick variants per backward step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gemm {
    /// `A · B`
    NN,
    /// `Aᵀ · B`
    TN,
    /// `A · Bᵀ`
    NT,
}

impl Gemm {
    /// Execute the selected variant: returns `op_a(A) · op_b(B)`.
    pub fn run(self, a: &Matrix, b: &Matrix) -> Matrix {
        match self {
            Gemm::NN => gemm_nn(a, b),
            Gemm::TN => gemm_tn(a, b),
            Gemm::NT => gemm_nt(a, b),
        }
    }
}

/// `C = A·B` for row-major `A (m×k)`, `B (k×n)`.
///
/// # Panics
/// On inner-dimension mismatch.
pub fn gemm_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm_nn inner dimension mismatch: {k} vs {kb}");
    let mut c = Matrix::zeros(m, n);
    let b_data = b.as_slice();

    c.as_mut_slice()
        .par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_block)| {
            let r0 = blk * ROW_BLOCK;
            let rows = c_block.len() / n;
            // Tile over k so the strip of B stays cache-resident.
            for k0 in (0..k).step_by(K_BLOCK) {
                let k1 = (k0 + K_BLOCK).min(k);
                for (ri, c_row) in c_block.chunks_exact_mut(n).enumerate() {
                    let a_row = a.row(r0 + ri);
                    for kk in k0..k1 {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[kk * n..(kk + 1) * n];
                        for (cv, bv) in c_row.iter_mut().zip(b_row) {
                            *cv += aik * *bv;
                        }
                    }
                }
            }
            let _ = rows;
        });
    c
}

/// `C = Aᵀ·B` for row-major `A (k×m)`, `B (k×n)` → `C (m×n)`.
///
/// This is the weight-gradient GEMM (`∂L/∂W = aggᵀ · ∂L/∂h`).
///
/// # Panics
/// On inner-dimension mismatch.
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm_tn inner dimension mismatch: {k} vs {kb}");
    let mut c = Matrix::zeros(m, n);

    // Parallelize over output rows (columns of A). Each task reads all of
    // A and B but owns a disjoint slice of C.
    c.as_mut_slice()
        .par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_block)| {
            let r0 = blk * ROW_BLOCK;
            for kk in 0..k {
                let a_row = a.row(kk);
                let b_row = b.row(kk);
                for (ri, c_row) in c_block.chunks_exact_mut(n).enumerate() {
                    let aik = a_row[r0 + ri];
                    if aik == 0.0 {
                        continue;
                    }
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * *bv;
                    }
                }
            }
        });
    c
}

/// `C = A·Bᵀ` for row-major `A (m×k)`, `B (n×k)` → `C (m×n)`.
///
/// This is the input-gradient GEMM (`∂L/∂agg = ∂L/∂h · Wᵀ`).
///
/// # Panics
/// On inner-dimension mismatch.
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "gemm_nt inner dimension mismatch: {k} vs {kb}");
    let mut c = Matrix::zeros(m, n);

    c.as_mut_slice()
        .par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_block)| {
            let r0 = blk * ROW_BLOCK;
            for (ri, c_row) in c_block.chunks_exact_mut(n).enumerate() {
                let a_row = a.row(r0 + ri);
                for (j, cv) in c_row.iter_mut().enumerate() {
                    // dot(a_row, b_row_j)
                    let b_row = b.row(j);
                    let mut acc = 0.0f32;
                    for (av, bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *cv += acc;
                }
            }
        });
    c
}

/// Number of multiply-accumulate operations in `A(m×k)·B(k×n)`.
///
/// The FPGA/GPU update-time models (paper Eq. 12) count MACs.
pub fn gemm_macs(m: usize, k: usize, n: usize) -> u64 {
    m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nn(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[(i, kk)] * b[(kk, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn test_mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 17) as f32 * 0.01 + seed).sin()
        })
    }

    #[test]
    fn nn_matches_naive() {
        let a = test_mat(70, 33, 0.1);
        let b = test_mat(33, 41, 0.2);
        assert!(gemm_nn(&a, &b).approx_eq(&naive_nn(&a, &b), 1e-4));
    }

    #[test]
    fn nn_identity() {
        let a = test_mat(9, 9, 0.4);
        let eye = Matrix::from_fn(9, 9, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(gemm_nn(&a, &eye).approx_eq(&a, 1e-6));
        assert!(gemm_nn(&eye, &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn tn_matches_transpose_then_nn() {
        let a = test_mat(33, 21, 0.3);
        let b = test_mat(33, 18, 0.4);
        let expect = naive_nn(&a.transpose(), &b);
        assert!(gemm_tn(&a, &b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn nt_matches_transpose_then_nn() {
        let a = test_mat(21, 33, 0.5);
        let b = test_mat(18, 33, 0.6);
        let expect = naive_nn(&a, &b.transpose());
        assert!(gemm_nt(&a, &b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn dispatcher_selects_variants() {
        let a = test_mat(8, 6, 0.7);
        let b = test_mat(6, 5, 0.8);
        assert!(Gemm::NN.run(&a, &b).approx_eq(&gemm_nn(&a, &b), 0.0));
        let c = test_mat(8, 5, 0.1);
        assert!(Gemm::TN.run(&a, &c).approx_eq(&gemm_tn(&a, &c), 0.0));
        let d = test_mat(5, 6, 0.2);
        let nt = Gemm::NT.run(&b.transpose(), &d);
        assert!(nt.approx_eq(&gemm_nt(&b.transpose(), &d), 0.0));
        assert_eq!(nt.shape(), (5, 5));
    }

    #[test]
    fn empty_dimensions() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let c = gemm_nn(&a, &b);
        assert_eq!(c.shape(), (0, 3));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn nn_rejects_mismatch() {
        let _ = gemm_nn(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Row-block ownership means any pool size yields identical bits.
        let a = test_mat(130, 64, 0.9);
        let b = test_mat(64, 48, 0.11);
        let reference = gemm_nn(&a, &b);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let single = pool.install(|| gemm_nn(&a, &b));
        assert_eq!(reference.as_slice(), single.as_slice());
    }

    #[test]
    fn macs_counted() {
        assert_eq!(gemm_macs(2, 3, 4), 24);
    }
}
