//! The FPGA kernel simulator must be *semantically identical* to the
//! reference CPU aggregation on real sampled mini-batches (paper §IV:
//! the hardware optimizations do not alter training semantics), while
//! demonstrating the §IV-C data-reuse claim: input traffic O(|V^0|)
//! instead of O(|E^1|).

use hyscale::device::fpga::kernel::{simulate_aggregation, simulate_update, FpgaKernelConfig};
use hyscale::device::fpga::resource::{ResourceUsage, U250_RESOURCES};
use hyscale::gnn::aggregate::{aggregate_gcn, aggregate_mean, GcnCoefficients};
use hyscale::graph::Dataset;
use hyscale::sampler::NeighborSampler;
use hyscale::tensor::init::randn;
use hyscale::tensor::xavier_uniform;

fn sampled_block() -> (hyscale::sampler::Block, usize) {
    let ds = Dataset::toy(31);
    let sampler = NeighborSampler::new(vec![10, 5], 2);
    let seeds: Vec<u32> = ds.splits.train[..64].to_vec();
    let mb = sampler.sample(&ds.graph, &seeds, 0);
    let block = mb.blocks[0].clone();
    let n_src = block.num_src;
    (block, n_src)
}

#[test]
fn kernel_matches_gcn_aggregation_on_sampled_batch() {
    let (block, n_src) = sampled_block();
    let h = randn(n_src, 24, 3);
    let coef = GcnCoefficients::from_block(&block);
    let reference = aggregate_gcn(&block, &h, &coef);
    let run = simulate_aggregation(
        &block,
        &h,
        &coef.edge,
        &coef.self_loop,
        &FpgaKernelConfig::default(),
        false,
    );
    assert!(
        run.result.approx_eq(&reference, 1e-4),
        "FPGA kernel output diverges from the CPU reference"
    );
}

#[test]
fn kernel_matches_mean_aggregation_on_sampled_batch() {
    let (block, n_src) = sampled_block();
    let h = randn(n_src, 16, 4);
    let deg = block.dst_in_degrees();
    // mean = weighted aggregation with 1/deg coefficients, no self loop
    let edge_coef: Vec<f32> = block
        .edge_dst
        .iter()
        .map(|&d| 1.0 / deg[d as usize].max(1) as f32)
        .collect();
    let reference = aggregate_mean(&block, &h);
    let run = simulate_aggregation(
        &block,
        &h,
        &edge_coef,
        &[],
        &FpgaKernelConfig::default(),
        false,
    );
    assert!(run.result.approx_eq(&reference, 1e-4));
}

#[test]
fn duplicator_traffic_is_o_v0_not_o_e() {
    let (block, n_src) = sampled_block();
    let f = 32usize;
    let h = randn(n_src, f, 5);
    let coef = vec![1.0f32; block.num_edges()];
    let run = simulate_aggregation(&block, &h, &coef, &[], &FpgaKernelConfig::default(), false);
    // every referenced source row is read at most once
    let max_v0_bytes = (n_src * f * 4) as u64;
    assert!(
        run.dram_read_bytes <= max_v0_bytes,
        "duplicator read {} bytes > |V0| bound {}",
        run.dram_read_bytes,
        max_v0_bytes
    );
    // a naive edge-streaming kernel would read one row per edge
    let naive = (block.num_edges() * f * 4) as u64;
    assert!(
        run.dram_read_bytes < naive,
        "no reuse achieved: {} vs naive {}",
        run.dram_read_bytes,
        naive
    );
}

#[test]
fn full_layer_on_chip_dataflow() {
    // aggregate -> update without intermediate write-back; only the
    // final stage leaves the chip (paper Fig. 6 datapath).
    let (block, n_src) = sampled_block();
    let f_in = 16;
    let f_out = 8;
    let h = randn(n_src, f_in, 6);
    let coef = GcnCoefficients::from_block(&block);
    let agg = simulate_aggregation(
        &block,
        &h,
        &coef.edge,
        &coef.self_loop,
        &FpgaKernelConfig::default(),
        false,
    );
    assert_eq!(agg.dram_write_bytes, 0);
    let w = xavier_uniform(f_in, f_out, 7);
    let bias = vec![0.1f32; f_out];
    let upd = simulate_update(&agg.result, &w, &bias, &FpgaKernelConfig::default(), true);
    assert_eq!(upd.dram_read_bytes, 0, "update must consume on-chip data");
    assert_eq!(upd.dram_write_bytes, (block.num_dst * f_out * 4) as u64);
    assert!(!upd.spilled);
}

#[test]
fn table_iv_configuration_fits_and_runs() {
    let usage = ResourceUsage::estimate(8, 2048, &U250_RESOURCES);
    assert!(
        usage.fits(),
        "the paper's (8, 2048) kernel must fit the U250"
    );
    // and a kernel with that geometry actually processes a batch
    let (block, n_src) = sampled_block();
    let h = randn(n_src, 8, 8);
    let coef = vec![0.5f32; block.num_edges()];
    let cfg = FpgaKernelConfig {
        n_pes: 8,
        m_macs: 2048,
        ..Default::default()
    };
    let run = simulate_aggregation(&block, &h, &coef, &[], &cfg, true);
    assert!(run.cycles > 0);
    assert!(run.result.as_slice().iter().all(|v| v.is_finite()));
}
