//! Concurrency stress for the Processor–Accelerator Training Protocol:
//! many trainers, many iterations, randomized completion order — the
//! DONE/ACK handshake must never deadlock, drop a gradient, or produce
//! an order-dependent average.

use hyscale::core::protocol::TrainingRound;
use hyscale::core::sync::Synchronizer;
use hyscale::gnn::Gradients;
use hyscale::tensor::Matrix;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn grad(v: f32, batch: usize) -> Gradients {
    Gradients {
        d_weights: vec![Matrix::full(4, 4, v)],
        d_biases: vec![vec![v; 4]],
        batch_size: batch,
    }
}

#[test]
fn sixteen_trainers_fifty_iterations() {
    let n = 16;
    let round = Arc::new(TrainingRound::new(n));
    let sync = Synchronizer::new();
    for iter in 0..50u32 {
        thread::scope(|s| {
            for i in 0..n {
                let round = Arc::clone(&round);
                s.spawn(move || {
                    // stagger completions to shuffle arrival order
                    if (i + iter as usize).is_multiple_of(3) {
                        thread::sleep(Duration::from_micros(50));
                    }
                    let avg = round.trainer_done(i, grad(i as f32, 10 + i));
                    // expected weighted mean of 0..16 with weights 10+i
                    let total: usize = (0..n).map(|k| 10 + k).sum();
                    let expect: f32 =
                        (0..n).map(|k| k as f32 * (10 + k) as f32).sum::<f32>() / total as f32;
                    assert!(
                        (avg.d_weights[0][(0, 0)] - expect).abs() < 1e-4,
                        "iteration {iter}: wrong average"
                    );
                    round.trainer_ack();
                });
            }
            let avg = round.synchronize(&sync);
            assert_eq!(avg.batch_size, (0..n).map(|k| 10 + k).sum::<usize>());
            round.runtime_wait_acks();
        });
    }
}

#[test]
fn average_is_arrival_order_independent() {
    // run the same round many times; staggered threads arrive in
    // different orders but the slot-indexed gather must give identical
    // bits every time
    let n = 8;
    let reference: Option<Vec<f32>> = None;
    let mut reference = reference;
    for round_no in 0..10 {
        let round = Arc::new(TrainingRound::new(n));
        let sync = Synchronizer::new();
        let mut result = None;
        thread::scope(|s| {
            for i in 0..n {
                let round = Arc::clone(&round);
                s.spawn(move || {
                    if (i * 7 + round_no) % 4 == 0 {
                        thread::sleep(Duration::from_micros(30 * (i as u64 + 1)));
                    }
                    round.trainer_done(i, grad((i as f32 * 1.1).sin(), 5 * (i + 1)));
                    round.trainer_ack();
                });
            }
            result = Some(round.synchronize(&sync));
            round.runtime_wait_acks();
        });
        let bits: Vec<f32> = result.unwrap().d_weights[0].as_slice().to_vec();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "round {round_no} diverged"),
        }
    }
}

#[test]
fn single_trainer_degenerate_round() {
    let round = Arc::new(TrainingRound::new(1));
    let sync = Synchronizer::new();
    thread::scope(|s| {
        let r = Arc::clone(&round);
        s.spawn(move || {
            let avg = r.trainer_done(0, grad(2.5, 7));
            assert_eq!(avg.d_weights[0][(0, 0)], 2.5);
            r.trainer_ack();
        });
        round.synchronize(&sync);
        round.runtime_wait_acks();
    });
}
