//! The paper's headline workload at reduced scale: GraphSAGE on an
//! ogbn-products-like graph, comparing the multi-GPU organization
//! against hybrid CPU+GPU and hybrid CPU+FPGA (paper Fig. 10).
//!
//! ```sh
//! cargo run --release --example products_sage
//! ```

use hyscale::core::{AcceleratorKind, HybridTrainer, OptFlags, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::OGBN_PRODUCTS;
use hyscale::graph::features::Splits;

fn main() {
    // Materialize products at 1/500 scale (~4.9k vertices) with a wide
    // train split so full mini-batches can be drawn.
    let mut dataset = OGBN_PRODUCTS.materialize(500, 1);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 2);
    println!(
        "dataset: {} @ 1/500 scale: {} vertices, {} edges (full scale: {} / {})\n",
        dataset.spec.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges(),
        dataset.spec.num_vertices,
        dataset.spec.num_edges
    );

    let mut results = Vec::new();
    for (label, accel, opt) in [
        ("multi-GPU-style (offload, no overlap)", AcceleratorKind::a5000(), OptFlags::baseline()),
        ("hybrid CPU+GPU  (full HyScale-GNN)", AcceleratorKind::a5000(), OptFlags::full()),
        ("hybrid CPU+FPGA (full HyScale-GNN)", AcceleratorKind::u250(), OptFlags::full()),
    ] {
        let mut cfg = SystemConfig::paper_default(accel, GnnKind::GraphSage);
        cfg.opt = opt;
        cfg.train.batch_per_trainer = 256;
        cfg.train.max_functional_iters = Some(4);
        let mut trainer = HybridTrainer::new(cfg, dataset.clone());
        let reports = trainer.train_epochs(2);
        let last = reports.last().expect("two epochs");
        println!(
            "{label:<40} simulated epoch {:>8.3}s  ({:>8.1} MTEPS, loss {:.3})",
            last.epoch_time_s, last.mteps, last.loss
        );
        results.push((label, last.epoch_time_s));
    }

    let base = results[0].1;
    println!();
    for (label, t) in &results {
        println!("{label:<40} speedup vs multi-GPU: {:>5.2}x", base / t);
    }
    println!("\npaper Fig. 10 (products, SAGE): CPU+GPU 1.87x, CPU+FPGA 9.98x");
}
