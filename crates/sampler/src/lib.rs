//! # hyscale-sampler
//!
//! Mini-batch production for HyScale-GNN (paper Fig. 3 "Mini-batch
//! Sampler").
//!
//! * [`neighbor::NeighborSampler`] — GraphSAGE-style fanout sampling
//!   (paper §VI-A2: batch 1024, fanouts (25, 10)), producing layered
//!   [`minibatch::MiniBatch`]es with dst-nodes-prefix-of-src layout.
//! * [`walk::RandomWalkSampler`] — GraphSAINT-style random-walk subgraph
//!   sampling (the second sampling algorithm the paper cites, \[29]).
//! * [`batcher::EpochBatcher`] — shuffled seed scheduling with *per-trainer
//!   batch quotas*, the knob the DRM engine's `balance_work` turns.
//! * [`estimate`] — closed-form expected workload per batch, used by the
//!   design-time performance model (paper §V estimates sampling cost
//!   offline).
//!
//! Sampling is deterministic given `(seed, epoch, iteration, trainer)` so
//! hybrid runs are reproducible and semantics-preservation is testable.

#![warn(missing_docs)]

pub mod batcher;
pub mod estimate;
pub mod minibatch;
pub mod neighbor;
pub mod saint;
pub mod walk;

pub use batcher::EpochBatcher;
pub use estimate::expected_workload;
pub use minibatch::{Block, MiniBatch, WorkloadStats};
pub use neighbor::NeighborSampler;
pub use saint::{EdgeSampler, NodeSampler};
pub use walk::RandomWalkSampler;
