//! The protocol is accelerator-agnostic (paper §III-C): plug in a custom
//! AI-accelerator timing model and the whole system — protocol, DRM,
//! prefetching, performance model — works unchanged.
//!
//! This example defines a fictional "TPU-like" systolic accelerator and
//! trains with it.
//!
//! ```sh
//! cargo run --release --example custom_accelerator
//! ```

use hyscale::core::{AcceleratorKind, HybridTrainer, SystemConfig};
use hyscale::device::spec::{DeviceKind, DeviceSpec};
use hyscale::device::timing::{LayerWork, TrainerTiming};
use hyscale::gnn::GnnKind;
use hyscale::graph::Dataset;
use std::sync::Arc;

/// A fictional AI accelerator: big systolic array, HBM, no host stack
/// overhead, aggregation and update fully pipelined.
#[derive(Debug)]
struct TpuLike {
    spec: DeviceSpec,
}

impl TpuLike {
    fn new() -> Self {
        Self {
            spec: DeviceSpec {
                name: "TPU-like AI accelerator",
                kind: DeviceKind::Custom,
                peak_tflops: 90.0,
                mem_bandwidth_gbs: 1200.0,
                mem_capacity_gb: 32.0,
                freq_ghz: 1.0,
                onchip_mb: 128.0,
                cores: 65536,
            },
        }
    }
}

impl TrainerTiming for TpuLike {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn aggregate_time(&self, w: &LayerWork) -> f64 {
        // sparse gather at 40% of HBM bandwidth
        (w.edges as f64 * w.f_in as f64 * 4.0) / (self.spec.mem_bandwidth_gbs * 1e9 * 0.4)
    }

    fn update_time(&self, w: &LayerWork) -> f64 {
        (w.dst_nodes as f64 * w.f_in as f64 * w.f_out as f64 * 2.0)
            / (self.spec.peak_tflops * 1e12 * 0.6)
    }

    fn pipelined(&self) -> bool {
        true
    }

    fn launch_overhead(&self) -> f64 {
        50e-6 // single fused graph execution
    }

    fn sampling_eps(&self) -> Option<f64> {
        None // this accelerator cannot sample; the CPU does it all
    }
}

fn main() {
    let dataset = Dataset::toy(9);
    let test = dataset.splits.test.clone();

    let mut cfg = SystemConfig::paper_default(
        AcceleratorKind::Custom(Arc::new(TpuLike::new())),
        GnnKind::Gcn,
    );
    cfg.platform.num_accelerators = 2;
    cfg.train.batch_per_trainer = 128;
    cfg.train.fanouts = vec![10, 5];
    cfg.train.hidden_dim = 32;
    cfg.train.learning_rate = 0.3;
    cfg.train.max_functional_iters = Some(4);

    let mut trainer = HybridTrainer::new(cfg, dataset);
    println!("training GCN on CPU + 2x custom AI accelerator:");
    for r in trainer.train_epochs(6) {
        println!("{r}");
    }
    println!("\ntest accuracy: {:.3}", trainer.evaluate(&test));
    println!("(no code outside the timing model knew the device type — §III-C's claim)");
}
