//! Neighbor-sampling throughput (the paper's T_SC "profiling", §V).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyscale_graph::generator::{rmat, RmatConfig};
use hyscale_sampler::{NeighborSampler, RandomWalkSampler};
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let graph = rmat(
        RmatConfig {
            scale: 14,
            avg_degree: 16,
            ..Default::default()
        },
        7,
    )
    .symmetrize();
    let seeds: Vec<u32> = (0..512u32).collect();

    let mut g = c.benchmark_group("sampling");
    g.sample_size(10);
    for fanouts in [vec![25usize, 10], vec![15, 10, 5]] {
        let sampler = NeighborSampler::new(fanouts.clone(), 3);
        let edges = sampler.sample(&graph, &seeds, 0).total_edges();
        g.throughput(Throughput::Elements(edges));
        g.bench_with_input(
            BenchmarkId::new("neighbor", format!("{fanouts:?}")),
            &(),
            |b, ()| {
                let mut stream = 0u64;
                b.iter(|| {
                    stream += 1;
                    black_box(sampler.sample(&graph, &seeds, stream))
                })
            },
        );
    }
    let walker = RandomWalkSampler::new(256, 4, 2, 5);
    g.bench_function("random_walk/256x4", |b| {
        let mut stream = 0u64;
        b.iter(|| {
            stream += 1;
            black_box(walker.sample(&graph, &seeds, stream))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
