//! Benchmark harness utilities shared by the table/figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the index). The heavy lifting here is
//! [`simulate_epoch`]: a timing-only run of the HyScale-GNN system —
//! design-time mapping from the performance model, then the DRM loop
//! over runtime-fidelity stage times until the mapping settles, exactly
//! what the functional executor does minus the f32 math.

#![warn(missing_docs)]

use hyscale_core::drm::DrmEngine;
use hyscale_core::{PerfModel, StageTimes, SystemConfig, ThreadAlloc, WorkloadSplit};
use hyscale_device::calib;
use hyscale_graph::DatasetSpec;

/// Result of a timing-only system simulation.
pub struct SimulatedRun {
    /// Steady-state iteration latency (after DRM settles), seconds.
    pub iter_time_s: f64,
    /// Full-scale epoch time, seconds.
    pub epoch_time_s: f64,
    /// Full-scale iterations per epoch.
    pub iterations: u64,
    /// Final workload split.
    pub split: WorkloadSplit,
    /// Final thread allocation.
    pub threads: ThreadAlloc,
    /// Final stage times.
    pub times: StageTimes,
    /// Training throughput in MTEPS (Eq. 5).
    pub mteps: f64,
}

/// Simulate an epoch of the configured system on `dataset`:
/// design-time initial mapping, `drm_iters` iterations of runtime DRM
/// fine-tuning over overhead-inclusive stage times, then extrapolation
/// to the full-scale iteration count (plus pipeline fill/flush when TFP
/// is on).
pub fn simulate_epoch(cfg: &SystemConfig, dataset: &DatasetSpec, drm_iters: usize) -> SimulatedRun {
    let pm = PerfModel::new(cfg);
    let (mut split, mut threads) = pm.initial_mapping(dataset);
    let drm = DrmEngine::new(cfg.opt.hybrid);
    let objective = |t: &StageTimes| {
        if cfg.opt.tfp {
            t.pipelined_iteration()
        } else {
            t.serial_iteration()
        }
    };
    let mut times = pm.stage_times_runtime(dataset, &split, &threads);
    if cfg.opt.drm {
        // The DRM engine explores; keep the best mapping it visits (the
        // steady state the runtime settles into).
        let mut best = (objective(&times), split.clone(), threads, times);
        for _ in 0..drm_iters {
            drm.adjust(&times, &mut split, &mut threads);
            times = pm.stage_times_runtime(dataset, &split, &threads);
            let obj = objective(&times);
            if obj < best.0 {
                best = (obj, split.clone(), threads, times);
            }
        }
        split = best.1;
        threads = best.2;
        times = best.3;
    }
    let iter_time = objective(&times);
    let iterations = dataset.train_vertices.div_ceil(split.total as u64);
    let flush = if cfg.opt.tfp {
        calib::PIPELINE_FLUSH_ITERS * iter_time
    } else {
        0.0
    };
    let epoch = iterations as f64 * iter_time + flush;
    // Eq. 5 numerator: edges traversed per iteration
    let edges: u64 = {
        let cpu = pm.analytic_workload(dataset, split.cpu_quota);
        let accel: u64 = (0..split.num_accelerators)
            .map(|i| {
                pm.analytic_workload(dataset, split.accel_quota(i))
                    .total_edges()
            })
            .sum();
        cpu.total_edges() + accel
    };
    SimulatedRun {
        iter_time_s: iter_time,
        epoch_time_s: epoch,
        iterations,
        split,
        threads,
        times,
        mteps: edges as f64 / iter_time / 1e6,
    }
}

/// Default DRM settling budget for harness runs.
pub const DRM_SETTLE_ITERS: usize = 40;

/// Fixed-width table printer for harness output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with per-column padding.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Geometric mean of a slice of positive ratios.
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_core::config::AcceleratorKind;
    use hyscale_gnn::GnnKind;
    use hyscale_graph::dataset::OGBN_PAPERS100M;

    #[test]
    fn simulate_epoch_produces_settled_run() {
        let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
        let run = simulate_epoch(&cfg, &OGBN_PAPERS100M, DRM_SETTLE_ITERS);
        assert!(run.iter_time_s > 0.0);
        assert!(run.epoch_time_s > run.iter_time_s);
        assert!(run.mteps > 0.0);
        assert_eq!(run.split.quotas().iter().sum::<usize>(), run.split.total);
    }

    #[test]
    fn fpga_beats_gpu_system_in_simulation() {
        let fpga = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
        let gpu = SystemConfig::paper_default(AcceleratorKind::a5000(), GnnKind::Gcn);
        let f = simulate_epoch(&fpga, &OGBN_PAPERS100M, DRM_SETTLE_ITERS);
        let g = simulate_epoch(&gpu, &OGBN_PAPERS100M, DRM_SETTLE_ITERS);
        let ratio = g.epoch_time_s / f.epoch_time_s;
        assert!(
            (1.5..15.0).contains(&ratio),
            "CPU-FPGA/CPU-GPU epoch ratio {ratio:.2}"
        );
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "metric"]);
        t.row(vec!["x".into(), "1.00".into()]);
        let s = t.render();
        assert!(s.contains("metric"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn geo_mean_basic() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }
}
