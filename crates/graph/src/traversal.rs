//! Graph traversal utilities: BFS and connected components.
//!
//! Used for dataset sanity (a synthesized training graph should be
//! mostly one component, or label signal cannot propagate) and by the
//! examples/CLI for quick structural reports.

use crate::csr::CsrGraph;
use crate::types::VertexId;
use std::collections::VecDeque;

/// Breadth-first distances from `source` (`u32::MAX` = unreachable).
pub fn bfs_distances(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &t in graph.neighbors(v) {
            if dist[t as usize] == u32::MAX {
                dist[t as usize] = d + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

/// Weakly-connected components (treats edges as undirected). Returns a
/// component id per vertex and the number of components.
pub fn connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let rev = graph.reverse();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as VertexId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &t in graph.neighbors(v).iter().chain(rev.neighbors(v)) {
                if comp[t as usize] == u32::MAX {
                    comp[t as usize] = count;
                    queue.push_back(t);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Size of the largest weakly-connected component, as a fraction of |V|.
pub fn largest_component_fraction(graph: &CsrGraph) -> f64 {
    if graph.num_vertices() == 0 {
        return 0.0;
    }
    let (comp, count) = connected_components(graph);
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    *sizes.iter().max().unwrap() as f64 / graph.num_vertices() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{sbm, SbmConfig};

    #[test]
    fn bfs_on_path_graph() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        // from the other end, directed edges make everything unreachable
        let d3 = bfs_distances(&g, 3);
        assert_eq!(d3[0], u32::MAX);
        assert_eq!(d3[3], 0);
    }

    #[test]
    fn components_on_disjoint_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[5]);
    }

    #[test]
    fn weak_connectivity_ignores_direction() {
        let g = CsrGraph::from_edges(3, &[(1, 0), (1, 2)]).unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn synthesized_dataset_is_mostly_connected() {
        let (g, _) = sbm(
            SbmConfig {
                num_vertices: 500,
                communities: 5,
                avg_degree: 12,
                p_intra: 0.8,
            },
            1,
        );
        let g = g.symmetrize();
        assert!(
            largest_component_fraction(&g) > 0.95,
            "training graph is fragmented"
        );
    }

    #[test]
    fn empty_graph_components() {
        let g = CsrGraph::empty(0);
        assert_eq!(largest_component_fraction(&g), 0.0);
        let g1 = CsrGraph::empty(4);
        let (_, count) = connected_components(&g1);
        assert_eq!(count, 4);
    }
}
