//! The paper's headline workload at reduced scale: GraphSAGE on an
//! ogbn-products-like graph, comparing the multi-GPU organization
//! against hybrid CPU+GPU and hybrid CPU+FPGA (paper Fig. 10) — then
//! demonstrating the *real* task-level feature-prefetching pipeline:
//! identical training, measured wall-clock, serial vs. overlapped.
//!
//! ```sh
//! cargo run --release --example products_sage
//! ```

use hyscale::core::{AcceleratorKind, HybridTrainer, OptFlags, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::OGBN_PRODUCTS;
use hyscale::graph::features::Splits;
use hyscale::tensor::Precision;

fn main() {
    // Materialize products at 1/500 scale (~4.9k vertices) with a wide
    // train split so full mini-batches can be drawn.
    let mut dataset = OGBN_PRODUCTS.materialize(500, 1);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 2);
    println!(
        "dataset: {} @ 1/500 scale: {} vertices, {} edges (full scale: {} / {})\n",
        dataset.spec.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges(),
        dataset.spec.num_vertices,
        dataset.spec.num_edges
    );

    let mut results = Vec::new();
    for (label, accel, opt) in [
        (
            "multi-GPU-style (offload, no overlap)",
            AcceleratorKind::a5000(),
            OptFlags::baseline(),
        ),
        (
            "hybrid CPU+GPU  (full HyScale-GNN)",
            AcceleratorKind::a5000(),
            OptFlags::full(),
        ),
        (
            "hybrid CPU+FPGA (full HyScale-GNN)",
            AcceleratorKind::u250(),
            OptFlags::full(),
        ),
    ] {
        let mut cfg = SystemConfig::paper_default(accel, GnnKind::GraphSage);
        cfg.opt = opt;
        cfg.train.batch_per_trainer = 256;
        cfg.train.max_functional_iters = Some(4);
        let mut trainer = HybridTrainer::new(cfg, dataset.clone());
        let reports = trainer.train_epochs(2);
        let last = reports.last().expect("two epochs");
        println!(
            "{label:<40} simulated epoch {:>8.3}s  ({:>8.1} MTEPS, loss {:.3})",
            last.epoch_time_s, last.mteps, last.loss
        );
        results.push((label, last.epoch_time_s));
    }

    let base = results[0].1;
    println!();
    for (label, t) in &results {
        println!("{label:<40} speedup vs multi-GPU: {:>5.2}x", base / t);
    }
    println!("\npaper Fig. 10 (products, SAGE): CPU+GPU 1.87x, CPU+FPGA 9.98x");

    real_pipeline_demo();
}

/// The real pipeline (paper §IV-B as wall-clock, not simulation):
/// producer stages on a background thread feeding a bounded queue,
/// overlapped with propagation. Training is bitwise-identical at every
/// depth; only the measured wall changes. Uses a larger materialization
/// and int8 wire precision — the PCIe-bound regime the paper's §VIII
/// quantization extension targets, where there is real transfer work to
/// hide.
fn real_pipeline_demo() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut dataset = OGBN_PRODUCTS.materialize(50, 1);
    dataset.splits = Splits::random(dataset.graph.num_vertices(), 0.6, 0.2, 2);
    println!(
        "\nreal prefetch pipeline: {} @ 1/50 scale on {cpus} cpu(s), int8 wire precision",
        dataset.spec.name
    );

    let run = |depth: usize| {
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
        // Static mapping: the paper's TFP analysis (Eq. 6) is about the
        // settled steady state; with DRM live, every balance_work move
        // would invalidate the speculative queue (correctness of that
        // path is covered by tests/equivalence.rs).
        cfg.opt = OptFlags {
            hybrid: true,
            drm: false,
            tfp: true,
        };
        cfg.train.batch_per_trainer = 512;
        cfg.train.hidden_dim = 32;
        cfg.train.transfer_precision = Precision::Int8;
        cfg.train.max_functional_iters = Some(6);
        cfg.train.prefetch_depth = depth;
        let mut trainer = HybridTrainer::new(cfg, dataset.clone());
        let reports = trainer.train_epochs(2);
        let last = reports.last().expect("two epochs");
        let stages = &last.wall_stages;
        println!(
            "  depth {depth}: epoch wall {:>7.3}s  (stages s/l/t/p {:>6.1}/{:>5.1}/{:>6.1}/{:>6.1} ms, \
             overlap {:>4.2}x, transfer hidden {:>3.0}%, loss {:.3})",
            last.wall_s,
            stages.sample_s * 1e3,
            stages.load_s * 1e3,
            stages.transfer_s * 1e3,
            stages.train_s * 1e3,
            stages.overlap_factor(),
            stages.transfer_overlap_ratio() * 100.0,
            last.loss,
        );
        last.wall_s
    };

    let serial = run(0);
    let piped = run(2);
    println!(
        "  prefetch depth 2 speedup: {:.2}x{}",
        serial / piped,
        if cpus == 1 {
            "  (single core: nothing to overlap on, and DRM re-mapping makes \
             speculative prefetch pure overhead — run on a multi-core host)"
        } else {
            ""
        }
    );
}
