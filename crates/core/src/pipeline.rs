//! Discrete-event simulation of the 4-stage training pipeline.
//!
//! The analytic iteration-time model (Eq. 6, [`crate::stages`]) assumes a
//! perfectly overlapped steady state. This module simulates the pipeline
//! *exactly*: each iteration's mini-batches flow through Sampling →
//! Feature Loading → Data Transfer → GNN Propagation(+sync) with a
//! bounded prefetch queue between stages (paper Fig. 7: while the
//! accelerator executes batch 1, batch 2 is in flight on PCIe and batch
//! 3 is being loaded). It reproduces the pipeline-fill/drain overhead the
//! paper names as a §VI-C prediction-error source, and verifies that the
//! steady-state latency equals `max(stage times)`.

use crate::stages::StageTimes;

/// Per-iteration stage latencies fed to the simulator (one entry per
/// iteration; reuse one value for homogeneous epochs).
#[derive(Debug, Clone, Copy)]
pub struct PipelineStageCosts {
    /// Sampling time (CPU/accelerator samplers overlapped).
    pub sample: f64,
    /// Feature-loading time (CPU DRAM).
    pub load: f64,
    /// PCIe transfer time.
    pub transfer: f64,
    /// Propagation + synchronization time.
    pub propagate: f64,
}

impl PipelineStageCosts {
    /// Extract pipeline costs from measured stage times.
    pub fn from_stage_times(t: &StageTimes) -> Self {
        Self {
            sample: t.sampling(),
            load: t.load,
            transfer: t.transfer,
            propagate: t.propagation(),
        }
    }

    /// Extract pipeline costs from *measured host wall-clock* stage
    /// times (see [`crate::report::WallStageTimes`]). This lets the
    /// discrete-event simulator predict what the real prefetching
    /// executor should achieve at a given depth — the bench harness
    /// compares that prediction against the measured epoch wall.
    pub fn from_wall(w: &crate::report::WallStageTimes) -> Self {
        Self {
            sample: w.sample_s,
            load: w.load_s,
            transfer: w.transfer_s,
            propagate: w.train_s,
        }
    }

    fn as_array(&self) -> [f64; 4] {
        [self.sample, self.load, self.transfer, self.propagate]
    }

    /// The steady-state bound: slowest stage (Eq. 6).
    pub fn bottleneck(&self) -> f64 {
        self.as_array().into_iter().fold(0.0, f64::max)
    }

    /// Serial execution (no prefetching).
    pub fn serial(&self) -> f64 {
        self.as_array().into_iter().sum()
    }
}

/// Result of simulating an epoch through the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Total makespan of the epoch, seconds.
    pub makespan: f64,
    /// Completion time of every iteration's propagation stage.
    pub completions: Vec<f64>,
    /// Steady-state inter-completion gap (last two iterations).
    pub steady_gap: f64,
}

/// Simulate `iterations` identical iterations through the 4-stage
/// pipeline with a prefetch look-ahead of `depth` batches per stage
/// (`depth = 0` serializes everything — the no-TFP configuration;
/// `depth = 1` is classic double buffering; the paper's two-stage scheme
/// is `depth ≥ 2`). The transfer stage is unconstrained by staging
/// buffers here — see [`simulate_pipeline_ringed`] for the
/// bounded-staging variant.
pub fn simulate_pipeline(
    costs: &PipelineStageCosts,
    iterations: usize,
    depth: usize,
) -> PipelineRun {
    simulate_pipeline_ringed(costs, iterations, depth, 0)
}

/// Index of the Data Transfer stage in [`PipelineStageCosts::as_array`].
const TRANSFER_STAGE: usize = 2;

/// One DRM invalidation in the simulated pipeline: fired when iteration
/// `at_iter - 1`'s propagation completes (the moment Algorithm 1 makes
/// its decision), it discards `changed_share` of every in-flight
/// iteration's producer work.
///
/// `changed_share = 1.0` models the pre-surgical behavior — every
/// prepared batch thrown away; smaller shares model the surgical
/// re-slice, where only the trainers whose quota moved are redone;
/// `0.0` is the zero-diff no-op and costs nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushEvent {
    /// First iteration prepared under the new quotas (must be ≥ 1: the
    /// decision is made after some iteration completes).
    pub at_iter: usize,
    /// Share of each in-flight iteration's producer work invalidated,
    /// clamped to `[0, 1]`.
    pub changed_share: f64,
}

/// Producer work one DRM invalidation discards: up to
/// `depth + ring_depth` iterations are speculatively in flight (queue
/// plus staging slots), and each loses `changed_share` of its prepare
/// cost (sampling + loading + transfer). This is the per-event flush
/// tax the surgical invalidator shrinks: a single-lane re-map on an
/// `n`-trainer split pays roughly `1/n` of the full-flush cost.
pub fn invalidation_cost(
    costs: &PipelineStageCosts,
    depth: usize,
    ring_depth: usize,
    changed_share: f64,
) -> f64 {
    if depth == 0 {
        return 0.0; // serial execution stages nothing ahead
    }
    let window = (depth + ring_depth.max(1)) as f64;
    window * changed_share.clamp(0.0, 1.0) * (costs.sample + costs.load + costs.transfer)
}

/// [`simulate_pipeline_ringed`] with DRM invalidations: each
/// [`FlushEvent`] gates iterations at the decision instant and makes
/// the in-flight window (`depth + ring_depth` iterations from
/// `at_iter`) redo `changed_share` of its producer-stage work. A
/// zero-share event is skipped entirely — the modeled twin of the
/// zero-diff `balance_work` no-op.
#[allow(clippy::needless_range_loop)] // gates read finished[i - k]
pub fn simulate_pipeline_ringed_flushed(
    costs: &PipelineStageCosts,
    iterations: usize,
    depth: usize,
    ring_depth: usize,
    flushes: &[FlushEvent],
) -> PipelineRun {
    assert!(iterations > 0, "need at least one iteration");
    if depth == 0 || flushes.iter().all(|f| f.changed_share <= 0.0) {
        // serial execution redoes everything inline anyway; zero-share
        // events cost nothing by construction
        return simulate_pipeline_ringed(costs, iterations, depth, ring_depth);
    }
    let stage_costs = costs.as_array();
    let window = depth + ring_depth.max(1);
    let mut stage_free = vec![0.0f64; stage_costs.len()];
    let mut completions = Vec::with_capacity(iterations);
    let mut finished = vec![0.0f64; iterations];

    for i in 0..iterations {
        let gate = if i > depth {
            finished[i - depth - 1]
        } else {
            0.0
        };
        let mut batch_ready = gate;
        // Active invalidations: the redo work of a flush at `k` with
        // share `s` occupies the producer stages after the decision
        // instant `finished[k - 1]`, scaled to the discarded share; the
        // salvaged share flows through for free. An iteration hit by
        // several flushes redoes each one's share in turn, so shares
        // *add* (matching one `invalidation_cost` charge per event and
        // possibly exceeding a single fresh prepare) — they never
        // multiply, which would make two re-maps cheaper than one.
        let mut redo = 0.0f64;
        let mut in_window = false;
        for f in flushes {
            let k = f.at_iter.max(1);
            let s = f.changed_share.clamp(0.0, 1.0);
            if s <= 0.0 || i < k {
                continue;
            }
            batch_ready = batch_ready.max(finished[k - 1]);
            if i < k + window {
                redo += s;
                in_window = true;
            }
        }
        let scale = if in_window { redo } else { 1.0 };
        for (st, &cost) in stage_costs.iter().enumerate() {
            // only the producer stages (sample/load/transfer) redo work
            let effective = if st <= TRANSFER_STAGE {
                cost * scale
            } else {
                cost
            };
            let mut start = batch_ready.max(stage_free[st]);
            if st == TRANSFER_STAGE && ring_depth > 0 && i >= ring_depth {
                start = start.max(finished[i - ring_depth]);
            }
            let end = start + effective;
            stage_free[st] = end;
            batch_ready = end;
        }
        finished[i] = batch_ready;
        completions.push(batch_ready);
    }

    let steady_gap = if iterations >= 2 {
        completions[iterations - 1] - completions[iterations - 2]
    } else {
        completions[0]
    };
    PipelineRun {
        makespan: completions[iterations - 1],
        completions,
        steady_gap,
    }
}

/// [`simulate_pipeline_ringed`] with the Data Transfer stage split into
/// per-accelerator *lanes*: `lane_transfer[a]` is accelerator `a`'s wire
/// time per iteration, and up to `concurrent_lanes` lanes run their
/// round-trips concurrently. The real producer's lane cap is a
/// *work-conserving* counting semaphore (`TransferLaneGate`): any idle
/// slot picks up any waiting round-trip, so the stage's per-iteration
/// occupancy is modeled as the work-conserving makespan bound
/// `max(longest lane, Σ lanes / cap)` — monotone non-increasing in the
/// cap, unlike any static lane→thread partition (which can *regress*
/// when a cap change rebins an unlucky lane mix). `concurrent_lanes =
/// 1` is the serialized single-transfer-thread model (the *sum* of the
/// lane times); `concurrent_lanes ≥ lanes` overlaps every round-trip
/// (the *max*). With ≥ 2 transfer-bound lanes the concurrent model
/// therefore predicts a strictly smaller wall. `costs.transfer` is
/// ignored — the lane times replace it; the other stages behave exactly
/// as in [`simulate_pipeline_ringed`], including the `depth` prefetch
/// window and the `ring_depth` staging-slot gate.
#[allow(clippy::needless_range_loop)] // gates read finished[i - k]
pub fn simulate_pipeline_multilane(
    costs: &PipelineStageCosts,
    lane_transfer: &[f64],
    iterations: usize,
    depth: usize,
    ring_depth: usize,
    concurrent_lanes: usize,
) -> PipelineRun {
    assert!(iterations > 0, "need at least one iteration");
    let cap = concurrent_lanes.max(1).min(lane_transfer.len().max(1));
    // Work-conserving occupancy of the transfer stage per iteration:
    // `cap` gate slots serve the lanes' round-trips greedily, so the
    // stage can finish no earlier than its longest single round-trip
    // and no earlier than the total wire work spread over the slots.
    let total: f64 = lane_transfer.iter().sum();
    let longest = lane_transfer.iter().copied().fold(0.0f64, f64::max);
    let transfer_occupancy = longest.max(total / cap as f64);
    let pre = [costs.sample, costs.load];
    let mut completions = Vec::with_capacity(iterations);
    let mut finished = vec![0.0f64; iterations];

    if depth == 0 {
        // serial execution round-trips the lanes inline, one after the
        // other, between load and propagation — no concurrency at all
        let serial_iter = costs.sample + costs.load + total + costs.propagate;
        let mut clock = 0.0;
        for i in 0..iterations {
            clock += serial_iter;
            finished[i] = clock;
            completions.push(clock);
        }
    } else {
        let mut pre_free = [0.0f64; 2];
        let mut transfer_free = 0.0f64;
        let mut prop_free = 0.0f64;
        for i in 0..iterations {
            let gate = if i > depth {
                finished[i - depth - 1]
            } else {
                0.0
            };
            let mut batch_ready = gate;
            for (s, &cost) in pre.iter().enumerate() {
                let start = batch_ready.max(pre_free[s]);
                let end = start + cost;
                pre_free[s] = end;
                batch_ready = end;
            }
            // Transfer: the lanes' round-trips may start once the batch
            // is gathered, the gate slots are free of the previous
            // iteration, and the staging slots are released (iteration
            // i - ring_depth finished propagation).
            let mut start = batch_ready.max(transfer_free);
            if ring_depth > 0 && i >= ring_depth {
                start = start.max(finished[i - ring_depth]);
            }
            let transfer_done = start + transfer_occupancy;
            transfer_free = transfer_done;
            let start = transfer_done.max(prop_free);
            let end = start + costs.propagate;
            prop_free = end;
            finished[i] = end;
            completions.push(end);
        }
    }

    let steady_gap = if iterations >= 2 {
        completions[iterations - 1] - completions[iterations - 2]
    } else {
        completions[0]
    };
    PipelineRun {
        makespan: completions[iterations - 1],
        completions,
        steady_gap,
    }
}

/// [`simulate_pipeline`] with per-accelerator staging rings of
/// `ring_depth` slots between the transfer and propagation stages: the
/// wire transfer of iteration `i` may not start before the propagation
/// of iteration `i - ring_depth` has completed (its staging slot is
/// still occupied). `ring_depth = 1` is a single staging buffer —
/// transfer and propagation serialize; `ring_depth = 2` is the
/// double-buffered arrangement where transfer of batch `i+1` hides
/// behind compute of batch `i`; `ring_depth = 0` means unbounded
/// staging (no slot gate — the idealized model of
/// [`simulate_pipeline`]).
#[allow(clippy::needless_range_loop)] // gates read finished[i - k]
pub fn simulate_pipeline_ringed(
    costs: &PipelineStageCosts,
    iterations: usize,
    depth: usize,
    ring_depth: usize,
) -> PipelineRun {
    assert!(iterations > 0, "need at least one iteration");
    let stage_costs = costs.as_array();
    let stages = stage_costs.len();
    // ready[s] = time stage s becomes free
    let mut stage_free = vec![0.0f64; stages];
    // completion[i][s] tracked implicitly; batch_done = when the batch
    // finished its previous stage
    let mut completions = Vec::with_capacity(iterations);
    // start times of each iteration at stage 0 are gated by the prefetch
    // window: iteration i may not *enter* the pipeline before iteration
    // i - depth - 1 has fully completed (bounded buffers).
    let mut finished = vec![0.0f64; iterations];

    if depth == 0 {
        // serial: each iteration runs all stages back-to-back
        let mut clock = 0.0;
        for i in 0..iterations {
            clock += costs.serial();
            finished[i] = clock;
            completions.push(clock);
        }
    } else {
        for i in 0..iterations {
            let gate = if i > depth {
                finished[i - depth - 1]
            } else {
                0.0
            };
            let mut batch_ready = gate;
            for (s, &cost) in stage_costs.iter().enumerate() {
                let mut start = batch_ready.max(stage_free[s]);
                if s == TRANSFER_STAGE && ring_depth > 0 && i >= ring_depth {
                    // staging-slot gate: the ring slot this transfer
                    // needs is released when iteration i - ring_depth
                    // finishes its propagation
                    start = start.max(finished[i - ring_depth]);
                }
                let end = start + cost;
                stage_free[s] = end;
                batch_ready = end;
            }
            finished[i] = batch_ready;
            completions.push(batch_ready);
        }
    }

    let steady_gap = if iterations >= 2 {
        completions[iterations - 1] - completions[iterations - 2]
    } else {
        completions[0]
    };
    PipelineRun {
        makespan: completions[iterations - 1],
        completions,
        steady_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(sample: f64, load: f64, transfer: f64, propagate: f64) -> PipelineStageCosts {
        PipelineStageCosts {
            sample,
            load,
            transfer,
            propagate,
        }
    }

    #[test]
    fn steady_state_equals_bottleneck() {
        // The analytic Eq. 6 claim, verified by event simulation.
        let c = costs(1.0, 2.0, 5.0, 3.0);
        let run = simulate_pipeline(&c, 50, 2);
        assert!(
            (run.steady_gap - c.bottleneck()).abs() < 1e-9,
            "steady gap {} vs bottleneck {}",
            run.steady_gap,
            c.bottleneck()
        );
    }

    #[test]
    fn serial_mode_sums_stages() {
        let c = costs(1.0, 2.0, 3.0, 4.0);
        let run = simulate_pipeline(&c, 10, 0);
        assert!((run.steady_gap - c.serial()).abs() < 1e-9);
        assert!((run.makespan - 10.0 * c.serial()).abs() < 1e-9);
    }

    #[test]
    fn fill_overhead_is_bounded_by_pipeline_depth() {
        let c = costs(1.0, 1.0, 1.0, 1.0);
        let n = 100;
        let run = simulate_pipeline(&c, n, 3);
        // steady state: 1s per iteration; fill adds the first batch's
        // full traversal (4s) minus one steady gap
        let ideal = n as f64 * c.bottleneck();
        let overhead = run.makespan - ideal;
        assert!(overhead > 0.0, "pipelines must pay a fill cost");
        assert!(
            overhead <= c.serial(),
            "fill overhead {overhead} exceeds one full traversal"
        );
    }

    #[test]
    fn deeper_prefetch_never_hurts() {
        let c = costs(2.0, 1.0, 4.0, 3.0);
        let d1 = simulate_pipeline(&c, 30, 1).makespan;
        let d2 = simulate_pipeline(&c, 30, 2).makespan;
        let d4 = simulate_pipeline(&c, 30, 4).makespan;
        assert!(d2 <= d1 + 1e-9);
        assert!(d4 <= d2 + 1e-9);
    }

    #[test]
    fn pipelined_beats_serial() {
        let c = costs(1.0, 1.5, 2.0, 2.5);
        let serial = simulate_pipeline(&c, 20, 0).makespan;
        let piped = simulate_pipeline(&c, 20, 2).makespan;
        assert!(
            piped < serial * 0.5,
            "pipelining too weak: {piped} vs {serial}"
        );
    }

    #[test]
    fn completions_monotone() {
        let c = costs(0.5, 2.0, 1.0, 0.25);
        let run = simulate_pipeline(&c, 25, 2);
        assert!(run.completions.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(run.completions.len(), 25);
    }

    #[test]
    fn from_stage_times_maps_fields() {
        let t = StageTimes {
            sample_cpu: 1.0,
            sample_accel: 2.0,
            load: 3.0,
            transfer: 4.0,
            train_cpu: 5.0,
            train_accel: 6.0,
            sync: 0.5,
        };
        let c = PipelineStageCosts::from_stage_times(&t);
        assert_eq!(c.sample, 2.0);
        assert_eq!(c.load, 3.0);
        assert_eq!(c.transfer, 4.0);
        assert_eq!(c.propagate, 6.5);
        assert_eq!(c.bottleneck(), 6.5);
    }

    #[test]
    fn from_wall_maps_measured_stages() {
        let w = crate::report::WallStageTimes {
            sample_s: 0.5,
            load_s: 1.5,
            transfer_s: 0.25,
            train_s: 2.0,
            iter_s: 4.25,
            ..Default::default()
        };
        let c = PipelineStageCosts::from_wall(&w);
        assert_eq!(c.sample, 0.5);
        assert_eq!(c.load, 1.5);
        assert_eq!(c.transfer, 0.25);
        assert_eq!(c.propagate, 2.0);
        assert!((c.serial() - w.serial_sum()).abs() < 1e-12);
    }

    #[test]
    fn single_iteration() {
        let c = costs(1.0, 1.0, 1.0, 1.0);
        let run = simulate_pipeline(&c, 1, 2);
        assert!((run.makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_staging_buffer_serializes_transfer_with_propagation() {
        // transfer 2s, propagate 3s: with one slot the steady cadence is
        // their sum; the pipeline can't hide the wire time at all.
        let c = costs(0.1, 0.1, 2.0, 3.0);
        let run = simulate_pipeline_ringed(&c, 40, 4, 1);
        assert!(
            (run.steady_gap - 5.0).abs() < 1e-9,
            "ring-1 steady gap {} should be transfer + propagate",
            run.steady_gap
        );
    }

    #[test]
    fn double_buffer_hides_transfer_when_compute_dominates() {
        let c = costs(0.1, 0.1, 2.0, 3.0);
        let ring2 = simulate_pipeline_ringed(&c, 40, 4, 2);
        // double buffering recovers the idealized bottleneck bound
        assert!(
            (ring2.steady_gap - c.bottleneck()).abs() < 1e-9,
            "ring-2 steady gap {} vs bottleneck {}",
            ring2.steady_gap,
            c.bottleneck()
        );
        let ring1 = simulate_pipeline_ringed(&c, 40, 4, 1);
        assert!(
            ring2.makespan < ring1.makespan,
            "deeper ring must hide transfer time: {} vs {}",
            ring2.makespan,
            ring1.makespan
        );
    }

    #[test]
    fn unbounded_ring_matches_plain_simulation() {
        let c = costs(1.0, 2.0, 5.0, 3.0);
        let plain = simulate_pipeline(&c, 30, 2);
        let ringed = simulate_pipeline_ringed(&c, 30, 2, 0);
        assert_eq!(plain.completions, ringed.completions);
        // a ring at least as deep as the prefetch window changes nothing
        let deep = simulate_pipeline_ringed(&c, 30, 2, 30);
        assert_eq!(plain.completions, deep.completions);
    }

    #[test]
    fn zero_share_flush_is_free() {
        // the modeled twin of the zero-diff balance_work no-op
        let c = costs(1.0, 1.0, 2.0, 3.0);
        let base = simulate_pipeline_ringed(&c, 30, 2, 2);
        let ev = [FlushEvent {
            at_iter: 10,
            changed_share: 0.0,
        }];
        let flushed = simulate_pipeline_ringed_flushed(&c, 30, 2, 2, &ev);
        assert_eq!(base.completions, flushed.completions);
        assert_eq!(invalidation_cost(&c, 2, 2, 0.0), 0.0);
    }

    #[test]
    fn partial_flush_costs_less_than_full() {
        let c = costs(1.0, 1.5, 2.0, 2.5);
        let at = |share: f64| {
            simulate_pipeline_ringed_flushed(
                &c,
                40,
                3,
                2,
                &[FlushEvent {
                    at_iter: 15,
                    changed_share: share,
                }],
            )
            .makespan
        };
        let none = simulate_pipeline_ringed(&c, 40, 3, 2).makespan;
        let (quarter, half, full) = (at(0.25), at(0.5), at(1.0));
        assert!(none <= quarter + 1e-9, "a flush can never be free");
        assert!(
            quarter <= half + 1e-9 && half <= full + 1e-9,
            "monotone in share"
        );
        assert!(
            full > quarter + 1e-9,
            "full flush must cost strictly more than a quarter re-slice: {full} vs {quarter}"
        );
        // analytic tax orders the same way
        assert!(invalidation_cost(&c, 3, 2, 0.25) < invalidation_cost(&c, 3, 2, 1.0));
        assert_eq!(
            invalidation_cost(&c, 0, 2, 1.0),
            0.0,
            "serial stages nothing"
        );
    }

    #[test]
    fn overlapping_flushes_accumulate_redo_work() {
        // two half-flushes with overlapping windows must cost at least
        // as much as either alone (shares add; they never multiply)
        let c = costs(1.0, 1.5, 2.0, 2.5);
        let one = simulate_pipeline_ringed_flushed(
            &c,
            40,
            3,
            2,
            &[FlushEvent {
                at_iter: 15,
                changed_share: 0.5,
            }],
        )
        .makespan;
        let two = simulate_pipeline_ringed_flushed(
            &c,
            40,
            3,
            2,
            &[
                FlushEvent {
                    at_iter: 15,
                    changed_share: 0.5,
                },
                FlushEvent {
                    at_iter: 16,
                    changed_share: 0.5,
                },
            ],
        )
        .makespan;
        assert!(
            two >= one - 1e-9,
            "a second re-map made the epoch cheaper: {two} vs {one}"
        );
    }

    #[test]
    fn flush_gates_at_the_decision_instant() {
        // every post-event iteration completes at or after the event
        let c = costs(0.5, 0.5, 1.0, 1.0);
        let ev = [FlushEvent {
            at_iter: 5,
            changed_share: 1.0,
        }];
        let run = simulate_pipeline_ringed_flushed(&c, 20, 2, 2, &ev);
        let decision = run.completions[4];
        for (i, &t) in run.completions.iter().enumerate().skip(5) {
            assert!(
                t >= decision,
                "iteration {i} finished before the flush event"
            );
        }
        assert!(run.completions.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn multilane_single_lane_matches_ringed() {
        // one accelerator: the lane model degenerates to the serialized
        // transfer stage, whatever the concurrency cap
        let c = costs(0.5, 0.5, 0.0, 2.0);
        for depth in [0usize, 2, 3] {
            for ring in [0usize, 1, 2] {
                let reference = {
                    let mut cr = c;
                    cr.transfer = 1.5;
                    simulate_pipeline_ringed(&cr, 25, depth, ring)
                };
                for cap in [1usize, 2, 8] {
                    let lane = simulate_pipeline_multilane(&c, &[1.5], 25, depth, ring, cap);
                    assert_eq!(
                        reference.completions, lane.completions,
                        "depth {depth} ring {ring} cap {cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn multilane_concurrency_beats_serialized_when_transfer_bound() {
        // two transfer-bound lanes (wire 2s each vs 0.5s compute): the
        // serialized transfer thread pays 4s per iteration, concurrent
        // lanes pay 2s — strictly smaller wall
        let c = costs(0.2, 0.2, 0.0, 0.5);
        let lanes = [2.0f64, 2.0];
        let serialized = simulate_pipeline_multilane(&c, &lanes, 30, 2, 2, 1);
        let concurrent = simulate_pipeline_multilane(&c, &lanes, 30, 2, 2, 2);
        assert!(
            concurrent.makespan < serialized.makespan - 1e-9,
            "concurrent lanes must beat the single transfer thread: {} vs {}",
            concurrent.makespan,
            serialized.makespan
        );
        // steady state: serialized gap = sum of lanes, concurrent = max
        assert!((serialized.steady_gap - 4.0).abs() < 1e-9);
        assert!((concurrent.steady_gap - 2.0).abs() < 1e-9);
    }

    #[test]
    fn multilane_cap_is_monotone_and_bounded() {
        let c = costs(0.3, 0.3, 0.0, 0.8);
        let lanes = [1.0f64, 0.7, 1.3, 0.9];
        let mut prev = f64::INFINITY;
        for cap in 1..=4 {
            let run = simulate_pipeline_multilane(&c, &lanes, 25, 3, 2, cap);
            assert!(
                run.makespan <= prev + 1e-9,
                "cap {cap} regressed: {} vs {prev}",
                run.makespan
            );
            prev = run.makespan;
        }
        // a cap beyond the lane count changes nothing
        let at4 = simulate_pipeline_multilane(&c, &lanes, 25, 3, 2, 4).makespan;
        let at16 = simulate_pipeline_multilane(&c, &lanes, 25, 3, 2, 16).makespan;
        assert_eq!(at4, at16);
        // completions stay monotone
        let run = simulate_pipeline_multilane(&c, &lanes, 25, 3, 2, 2);
        assert!(run.completions.windows(2).all(|w| w[1] >= w[0]));

        // Regression: the lane mix that breaks any static lane→thread
        // binning. [3,1,1,3] round-robined over 3 threads would load
        // them [3+3, 1, 1] — *worse* than 2 threads' [3+1, 1+3]. The
        // work-conserving gate model must keep cap 3 ≤ cap 2.
        let skewed = [3.0f64, 1.0, 1.0, 3.0];
        let mut prev = f64::INFINITY;
        for cap in 1..=4 {
            let m = simulate_pipeline_multilane(&c, &skewed, 25, 3, 2, cap).makespan;
            assert!(
                m <= prev + 1e-9,
                "skewed lanes: cap {cap} regressed ({m} vs {prev})"
            );
            prev = m;
        }
    }

    #[test]
    fn multilane_serial_depth_sums_all_lanes() {
        // depth 0 round-trips lanes inline: concurrency cannot help
        let c = costs(0.5, 0.5, 0.0, 1.0);
        let lanes = [1.0f64, 2.0];
        let a = simulate_pipeline_multilane(&c, &lanes, 10, 0, 2, 1);
        let b = simulate_pipeline_multilane(&c, &lanes, 10, 0, 2, 2);
        assert_eq!(a.completions, b.completions);
        assert!((a.steady_gap - 5.0).abs() < 1e-9);
    }

    #[test]
    fn multilane_ring_gate_still_binds() {
        // transfer-bound symmetric lanes at ring depth 1 serialize each
        // lane's wire with propagation even when lanes are concurrent
        let c = costs(0.1, 0.1, 0.0, 3.0);
        let lanes = [2.0f64, 2.0];
        let ring1 = simulate_pipeline_multilane(&c, &lanes, 40, 4, 1, 2);
        let ring2 = simulate_pipeline_multilane(&c, &lanes, 40, 4, 2, 2);
        assert!(
            (ring1.steady_gap - 5.0).abs() < 1e-9,
            "{}",
            ring1.steady_gap
        );
        assert!(
            (ring2.steady_gap - 3.0).abs() < 1e-9,
            "{}",
            ring2.steady_gap
        );
    }

    #[test]
    fn ring_depth_monotone() {
        let c = costs(0.5, 0.5, 3.0, 2.0);
        let m1 = simulate_pipeline_ringed(&c, 25, 3, 1).makespan;
        let m2 = simulate_pipeline_ringed(&c, 25, 3, 2).makespan;
        let m3 = simulate_pipeline_ringed(&c, 25, 3, 3).makespan;
        assert!(m2 <= m1 + 1e-9);
        assert!(m3 <= m2 + 1e-9);
    }
}
