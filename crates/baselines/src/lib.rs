//! # hyscale-baselines
//!
//! The training systems HyScale-GNN is compared against, re-implemented
//! as system-organization models over the shared substrates:
//!
//! * [`pyg::PygMultiGpu`] — the paper's multi-GPU PyTorch-Geometric
//!   baseline (Fig. 10): GPU-only trainers, CPU used only for sampling
//!   and loading, no prefetch overlap, pageable PCIe transfers.
//! * [`pagraph::PaGraph`] — single node, 8× V100, degree-ordered device
//!   feature cache (Table V/VI).
//! * [`p3::P3`] — 4 nodes × 4 P100, intra-layer model parallelism with
//!   push-pull activation exchange over the NIC (Table V/VI).
//! * [`distdgl::DistDglV2`] — 8 nodes × 8 T4, partitioned graph with
//!   hybrid-static CPU+GPU training (Table V/VI).
//!
//! Every system implements [`common::BaselineSystem`], producing epoch
//! times for Table VI and normalized `sec × TFLOPS` for Table VII.

#![warn(missing_docs)]

pub mod common;
pub mod distdgl;
pub mod graphact;
pub mod p3;
pub mod pagraph;
pub mod pyg;

pub use common::{BaselineSystem, SotaConfig};
pub use distdgl::DistDglV2;
pub use graphact::GraphActStyle;
pub use p3::P3;
pub use pagraph::PaGraph;
pub use pyg::PygMultiGpu;
