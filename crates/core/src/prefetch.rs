//! Task-level Feature Prefetching — the *real* pipeline.
//!
//! The paper's headline optimization (§IV-B, Fig. 7) overlaps the
//! CPU-side producer stages — Mini-batch Sampling, Feature Loading, and
//! the wire-precision round-trip standing in for Data Transfer — with
//! GNN Propagation. [`crate::pipeline`] *simulates* that overlap with a
//! discrete-event model; this module *executes* it: a background
//! producer walks the epoch's batch plan, prepares iterations, and
//! feeds them through a bounded channel of depth `d`
//! (`TrainConfig::prefetch_depth`) to the consuming trainer.
//!
//! ## Double-buffered transfer (staging rings)
//!
//! The producer is itself a two-stage pipeline. A *gather* thread
//! samples and NUMA-gathers features; a *transfer* thread performs the
//! wire-precision round-trip. Between the transfer stage and the
//! consuming trainer sit per-accelerator [`StagingRing`]s of
//! `TrainConfig::staging_ring_depth` slots: a slot is occupied from the
//! start of a batch's round-trip until its propagation completes (the
//! consumer drops the batch's [`SlotToken`]s after training), so at ring
//! depth 2 the wire transfer of batch `i+1` overlaps the accelerator
//! compute of batch `i` — double buffering *within* the producer, not
//! only across the producer/consumer queue. Ring depth 1 is a single
//! staging buffer: transfer and compute serialize, exactly like the
//! `ring_depth = 1` case of `hyscale_device::stage::StagingModel` and
//! [`crate::pipeline::simulate_pipeline_ringed`].
//!
//! ## Determinism contract
//!
//! A prepared iteration is a pure function of `(epoch_order, epoch,
//! iter, quotas)`: seed slicing comes from
//! [`EpochBatcher::plan`](hyscale_sampler::EpochBatcher) and every
//! sampler draw is keyed by `(seed, epoch, iter, trainer)` streams, so a
//! batch prepared three iterations ahead on a worker thread is
//! bitwise-identical to one prepared inline, and staging rings only
//! re-time the round-trip (which is itself deterministic per matrix).
//! The one hazard is the DRM engine re-balancing `quotas` mid-epoch:
//! prepared iterations carry the quotas they were built under, and
//! [`IterationFeed`] drains and invalidates the queue *and the staging
//! rings* (restarting the producer with the new quotas) whenever they
//! disagree with what the consumer currently wants —
//! `tests/equivalence.rs` pins weights bitwise across prefetch depths
//! {0, 1, 2, 4} × ring depths {1, 2} including across re-mapping events.
//!
//! ## Allocation discipline
//!
//! Feature matrices cycle through a [`MatrixPool`], with ring-aware
//! reuse on top: a recycled accelerator batch returns its buffer to that
//! accelerator's [`StagingRing`] free list, so each lane re-gathers into
//! the buffer it last shipped (lane-local reuse); the shared pool is the
//! fallback and serves the CPU trainer. Steady-state iterations perform
//! zero feature-matrix allocations.
//!
//! ## Thread budget (DRM `balance_thread`)
//!
//! The producer dispatches its stages on the shared
//! [`StageWorkers`] pools: sampling runs
//! under the sampler pool's width, and the `n` per-trainer feature
//! matrices fan out across loader lanes
//! ([`rayon::WorkerGroup::fan_out`]) whose gathers are sharded across
//! the feature matrix's NUMA row domains. A DRM `balance_thread` move
//! re-sizes the pools in place ([`IterationFeed::rebalance_threads`]);
//! widths only change wall-clock, so the queue keeps its prepared
//! iterations, staging rings keep their in-flight transfers, and each
//! [`PreparedIteration`] records the [`ThreadAlloc`] it was built under
//! so traces show the shift land.

use crate::drm::ThreadAlloc;
use crate::stages::StageWorkers;
use hyscale_graph::features::gather_features_numa_into;
use hyscale_graph::Dataset;
use hyscale_sampler::{EpochBatcher, MiniBatch, NeighborSampler};
use hyscale_tensor::{Matrix, Precision};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A recycling pool of feature-matrix buffers shared between the
/// producer threads and the consuming trainer.
///
/// ```
/// use hyscale_core::MatrixPool;
///
/// let pool = MatrixPool::new();
/// let mut x = pool.acquire();      // arbitrary shape — overwrite before reading
/// x.resize(128, 16);
/// pool.release(x);                 // back to the pool after propagation
/// assert_eq!(pool.idle(), 1);
/// assert_eq!(pool.acquire().shape(), (128, 16)); // allocation reused
/// ```
#[derive(Default)]
pub struct MatrixPool {
    free: Mutex<Vec<Matrix>>,
}

impl MatrixPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a buffer (arbitrary shape/contents) or mint an empty one.
    /// Callers must `resize`/overwrite before reading — `gather_features_into`
    /// does both.
    pub fn acquire(&self) -> Matrix {
        self.free
            .lock()
            .pop()
            .unwrap_or_else(|| Matrix::uninit(0, 0))
    }

    /// Return a buffer for reuse.
    pub fn release(&self, m: Matrix) {
        self.free.lock().push(m);
    }

    /// Number of buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

/// One accelerator's device-side staging buffer, modeled as a bounded
/// slot counter plus a lane-local free list of recycled feature buffers.
///
/// A slot is *occupied* from the moment the producer's transfer stage
/// starts a batch's wire-precision round-trip until the consumer
/// finishes that batch's propagation (and drops its [`SlotToken`]).
/// With `depth = 2` the ring is a classic double buffer: while the
/// accelerator computes on batch `i`'s slot, the transfer of batch
/// `i+1` proceeds into the second slot. With `depth = 1` there is
/// nowhere to stage ahead, so transfer and compute serialize.
///
/// ```
/// use hyscale_core::prefetch::StagingRing;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let ring = StagingRing::new(2);           // double buffer
/// let stop = AtomicBool::new(false);
/// assert!(ring.acquire(&stop));             // transfer of batch i starts
/// assert!(ring.acquire(&stop));             // transfer of batch i+1 overlaps
/// assert_eq!(ring.in_flight(), 2);
/// stop.store(true, Ordering::Release);
/// assert!(!ring.acquire(&stop));            // full ring + stop: refuse, don't block
/// ring.release_slot();                      // batch i propagation done
/// assert_eq!(ring.in_flight(), 1);
/// ```
pub struct StagingRing {
    depth: usize,
    state: Mutex<RingState>,
    cv: Condvar,
    drains: AtomicUsize,
}

#[derive(Default)]
struct RingState {
    in_flight: usize,
    free: Vec<Matrix>,
}

impl StagingRing {
    /// A ring of `depth` staging slots (clamped ≥ 1).
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            state: Mutex::new(RingState::default()),
            cv: Condvar::new(),
            drains: AtomicUsize::new(0),
        }
    }

    /// Number of staging slots.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Slots currently occupied by a batch in transfer or in compute.
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight
    }

    /// Times this ring has been drained by a DRM re-mapping event.
    pub fn drains(&self) -> usize {
        self.drains.load(Ordering::Relaxed)
    }

    /// Occupy a slot, blocking while the ring is full. Returns `false`
    /// (without occupying) once `stop` is raised — a producer being shut
    /// down must not wedge on a slot that will never free.
    pub fn acquire(&self, stop: &AtomicBool) -> bool {
        let mut st = self.state.lock();
        loop {
            if stop.load(Ordering::Acquire) {
                return false;
            }
            if st.in_flight < self.depth {
                st.in_flight += 1;
                return true;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Free a slot (the batch's propagation completed, or its transfer
    /// was abandoned) and wake any transfer blocked on a full ring.
    pub fn release_slot(&self) {
        {
            let mut st = self.state.lock();
            st.in_flight = st.in_flight.saturating_sub(1);
        }
        self.cv.notify_all();
    }

    /// Take a lane-local recycled buffer, if any.
    pub fn take_buffer(&self) -> Option<Matrix> {
        self.state.lock().free.pop()
    }

    /// Return a buffer to this lane's free list for ring-aware reuse.
    pub fn put_buffer(&self, m: Matrix) {
        self.state.lock().free.push(m);
    }

    /// Record a DRM drain event (the queued transfers this ring staged
    /// were discarded along with the producer queue). Buffers stay on
    /// the free list — a drain invalidates *contents*, not allocations.
    fn drain(&self) {
        self.drains.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// Wake any waiter so it can observe a raised stop flag.
    fn interrupt(&self) {
        self.cv.notify_all();
    }
}

/// The per-accelerator staging rings of one trainer instance (shared by
/// the producer's transfer stage, the executor, and the DRM drain path).
pub struct StagingRings {
    rings: Vec<StagingRing>,
    depth: usize,
}

impl StagingRings {
    /// One ring of `depth` slots per accelerator.
    pub fn new(num_accelerators: usize, depth: usize) -> Self {
        let depth = depth.max(1);
        Self {
            rings: (0..num_accelerators)
                .map(|_| StagingRing::new(depth))
                .collect(),
            depth,
        }
    }

    /// Number of accelerator lanes.
    pub fn num_rings(&self) -> usize {
        self.rings.len()
    }

    /// Slots per ring.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Accelerator `a`'s ring.
    ///
    /// # Panics
    /// If `a >= num_rings()`.
    pub fn ring(&self, a: usize) -> &StagingRing {
        &self.rings[a]
    }

    /// Total occupied slots across all rings.
    pub fn in_flight_total(&self) -> usize {
        self.rings.iter().map(StagingRing::in_flight).sum()
    }

    /// Total DRM drain events across all rings.
    pub fn drains_total(&self) -> usize {
        self.rings.iter().map(StagingRing::drains).sum()
    }

    /// Record a DRM `balance_work` drain on every ring. Called by
    /// [`IterationFeed`] after the producer generation serving the old
    /// quotas has been shut down and its staged batches recycled.
    pub(crate) fn drain_all(&self) {
        for r in &self.rings {
            r.drain();
        }
    }

    /// Wake every slot waiter (producer shutdown).
    fn interrupt_all(&self) {
        for r in &self.rings {
            r.interrupt();
        }
    }

    /// Occupy a slot on ring `a`, returning an RAII token that frees the
    /// slot on drop. `None` once `stop` is raised.
    pub fn acquire_token(self: &Arc<Self>, a: usize, stop: &AtomicBool) -> Option<SlotToken> {
        if self.rings[a].acquire(stop) {
            Some(SlotToken {
                rings: Arc::clone(self),
                accel: a,
            })
        } else {
            None
        }
    }
}

/// RAII occupancy of one staging slot: held from the start of a batch's
/// wire round-trip until the batch's propagation completes; dropping the
/// token frees the slot and wakes the transfer stage.
pub struct SlotToken {
    rings: Arc<StagingRings>,
    accel: usize,
}

impl SlotToken {
    /// The accelerator lane this token occupies a slot on.
    pub fn accel(&self) -> usize {
        self.accel
    }
}

impl Drop for SlotToken {
    fn drop(&mut self) {
        self.rings.ring(self.accel).release_slot();
    }
}

/// Everything the producer needs to prepare iterations without touching
/// the trainer's mutable state.
pub struct PrepareCtx {
    /// Shared dataset (graph + CPU-resident features + labels).
    pub dataset: Arc<Dataset>,
    /// Epoch seed scheduler (pure slicing; cheap clone of the trainer's).
    pub batcher: EpochBatcher,
    /// Seeded neighbor sampler (streams keyed per (epoch, iter, trainer)).
    pub sampler: NeighborSampler,
    /// Wire precision applied to accelerator-bound feature matrices.
    pub precision: Precision,
    /// Whether trainer 0 is the CPU trainer (reads host memory directly,
    /// skipping the precision round-trip).
    pub hybrid: bool,
    /// Live worker pools whose widths mirror the DRM's [`ThreadAlloc`].
    /// Shared with the executor: a `balance_thread` move re-sizes these
    /// in place and the producer observes the new widths on its next
    /// dispatch — no queue invalidation needed, because prepared
    /// iterations are bitwise-independent of pool widths.
    pub workers: Arc<StageWorkers>,
    /// NUMA domains of the CPU feature matrix (one per socket): the
    /// gather is sharded so each socket's rows are copied by that
    /// socket's share of the loader pool, weighted by the sampled rows'
    /// ownership histogram.
    pub numa_domains: usize,
    /// Per-accelerator staging rings gating the transfer stage (shared
    /// with the executor, which releases slots after propagation).
    pub rings: Arc<StagingRings>,
    /// Epoch time origin: transfer spans and propagation windows are
    /// recorded relative to this instant so the executor can measure how
    /// much wire time the rings hid behind compute.
    pub origin: Instant,
}

impl PrepareCtx {
    /// Accelerator (staging-ring) index serving trainer `trainer_idx`,
    /// or `None` for the CPU trainer (which, when hybrid, occupies
    /// trainer index 0 and never stages). The single source of truth
    /// for the trainer→lane mapping — the executor returns buffers to
    /// rings through this too.
    pub(crate) fn accel_of(&self, trainer_idx: usize) -> Option<usize> {
        let offset = usize::from(self.hybrid);
        if trainer_idx >= offset && trainer_idx - offset < self.rings.num_rings() {
            Some(trainer_idx - offset)
        } else {
            None
        }
    }
}

/// One fully-prepared training iteration: sampled mini-batches plus
/// gathered (and precision-round-tripped) feature matrices, with the
/// producer-side wall-clock stage timings and the staging slots the
/// batch still occupies.
pub struct PreparedIteration {
    /// Iteration index within the epoch.
    pub iter: usize,
    /// The per-trainer seed quotas this iteration was prepared under —
    /// the consumer validates these against the live workload split.
    pub quotas: Vec<usize>,
    /// Per-trainer seed sets (empty for idle trainers).
    pub seed_sets: Vec<Vec<u32>>,
    /// Per-trainer sampled mini-batches (`None` for idle trainers).
    pub batches: Vec<Option<MiniBatch>>,
    /// Per-trainer gathered feature matrices, pool-backed.
    pub features: Vec<Option<Matrix>>,
    /// Wall-clock seconds spent sampling.
    pub sample_wall_s: f64,
    /// Wall-clock seconds of the loader fan-out (feature gathering).
    pub load_wall_s: f64,
    /// Wall-clock seconds of the precision round-trip (the functional
    /// stand-in for the PCIe transfer), measured on the transfer stage.
    pub transfer_wall_s: f64,
    /// `(start, end)` of the round-trip relative to the epoch origin
    /// ([`PrepareCtx::origin`]): the executor intersects this with its
    /// propagation windows to measure the wire time the staging rings
    /// hid behind accelerator compute.
    pub transfer_span: (f64, f64),
    /// Staging slots this batch occupies, one per accelerator batch —
    /// released (by drop) when the consumer finishes propagation. Empty
    /// in serial execution, which stages nothing ahead.
    pub slots: Vec<SlotToken>,
    /// The worker-pool widths (the DRM [`ThreadAlloc`]) this iteration
    /// was prepared under — the measured-wall twin of the simulated
    /// thread model, surfaced in
    /// [`WallStageTimes`](crate::report::WallStageTimes).
    pub threads: ThreadAlloc,
}

impl PreparedIteration {
    /// Return every pooled buffer for reuse and free the staging slots.
    pub fn recycle(self, pool: &MatrixPool) {
        for m in self.features.into_iter().flatten() {
            pool.release(m);
        }
        // self.slots dropped here: slot tokens release their rings
    }
}

/// Output of the producer's gather stage: a sampled iteration whose
/// feature matrices have not yet made the wire round-trip.
struct StagedIteration {
    iter: usize,
    quotas: Vec<usize>,
    seed_sets: Vec<Vec<u32>>,
    batches: Vec<Option<MiniBatch>>,
    features: Vec<Option<Matrix>>,
    sample_wall_s: f64,
    load_wall_s: f64,
    threads: ThreadAlloc,
}

impl StagedIteration {
    fn recycle(self, pool: &MatrixPool) {
        for m in self.features.into_iter().flatten() {
            pool.release(m);
        }
    }
}

/// Gather stage: slice seeds under `quotas`, sample one mini-batch per
/// non-idle trainer, and gather features into pooled buffers (ring-local
/// free lists first). Returns `None` once the epoch's seeds are
/// exhausted.
fn stage_gather(
    ctx: &PrepareCtx,
    order: &[u32],
    epoch: u64,
    iter: usize,
    quotas: &[usize],
    pool: &MatrixPool,
) -> Option<StagedIteration> {
    let (plan_iter, seed_sets) = ctx.batcher.plan(order, iter, quotas).next()?;
    debug_assert_eq!(plan_iter, iter);
    // Pool widths as budgeted right now — recorded with the iteration so
    // the trace shows when a balance_thread move reached the producer.
    let threads = ctx.workers.observed();

    // --- Sampling: n mini-batches, one per (non-empty) trainer, drawn
    // under the sampler pool's width (nested parallel draws inherit it) ---
    let sample_start = Instant::now();
    let stream_base = epoch.wrapping_mul(1 << 20) + iter as u64 * 64;
    let seed_refs: Vec<&[u32]> = seed_sets.iter().map(|s| s.as_slice()).collect();
    let batches: Vec<Option<MiniBatch>> = {
        let non_empty: Vec<&[u32]> = seed_refs
            .iter()
            .copied()
            .filter(|s| !s.is_empty())
            .collect();
        let mut sampled = ctx
            .workers
            .sampler()
            .install(|| {
                ctx.sampler
                    .sample_many(&ctx.dataset.graph, &non_empty, stream_base)
            })
            .into_iter();
        seed_refs
            .iter()
            .map(|s| if s.is_empty() { None } else { sampled.next() })
            .collect()
    };
    let sample_wall_s = sample_start.elapsed().as_secs_f64();

    // --- Feature Loading into pooled buffers: the n trainer matrices
    // fan out across loader lanes (one per accelerator/CPU trainer, up
    // to the pool's width), and each lane's gather is itself sharded
    // across the NUMA row domains of `X`, thread shares weighted by the
    // sampled rows' ownership histogram. Accelerator lanes draw their
    // buffer from the staging ring's free list first (lane-local
    // reuse). ---
    let active: Vec<(usize, &MiniBatch)> = batches
        .iter()
        .enumerate()
        .filter_map(|(idx, b)| b.as_ref().map(|mb| (idx, mb)))
        .collect();
    let gathered: Mutex<Vec<(usize, Matrix)>> = Mutex::new(Vec::with_capacity(active.len()));
    let fan_out_start = Instant::now();
    ctx.workers.loader().fan_out(active.len(), |k, lane| {
        let (idx, mb) = active[k];
        let mut x = ctx
            .accel_of(idx)
            .and_then(|a| ctx.rings.ring(a).take_buffer())
            .unwrap_or_else(|| pool.acquire());
        gather_features_numa_into(
            &mut x,
            &ctx.dataset.data.features,
            &mb.input_nodes,
            ctx.numa_domains,
            lane,
        );
        gathered.lock().push((idx, x));
    });
    let load_wall_s = fan_out_start.elapsed().as_secs_f64();
    let mut features: Vec<Option<Matrix>> = batches.iter().map(|_| None).collect();
    for (idx, x) in gathered.into_inner() {
        features[idx] = Some(x);
    }

    Some(StagedIteration {
        iter,
        quotas: quotas.to_vec(),
        seed_sets,
        batches,
        features,
        sample_wall_s,
        load_wall_s,
        threads,
    })
}

/// Occupy one staging slot per accelerator batch of `staged`, in trainer
/// order. `None` (releasing any slots already taken) once `stop` rises.
fn acquire_slots(
    ctx: &PrepareCtx,
    staged: &StagedIteration,
    stop: &AtomicBool,
) -> Option<Vec<SlotToken>> {
    let mut slots = Vec::new();
    for (idx, b) in staged.batches.iter().enumerate() {
        if b.is_none() {
            continue;
        }
        if let Some(a) = ctx.accel_of(idx) {
            slots.push(ctx.rings.acquire_token(a, stop)?);
        }
    }
    Some(slots)
}

/// Transfer stage: round-trip accelerator-bound matrices at the wire
/// precision (identity at F32; the §VIII quantization extension),
/// stamping the transfer span against the epoch origin. `slots` are the
/// staging slots this batch holds until propagation completes (empty in
/// serial execution).
fn apply_transfer(
    ctx: &PrepareCtx,
    staged: StagedIteration,
    slots: Vec<SlotToken>,
) -> PreparedIteration {
    let StagedIteration {
        iter,
        quotas,
        seed_sets,
        batches,
        mut features,
        sample_wall_s,
        load_wall_s,
        threads,
    } = staged;
    let span_start = ctx.origin.elapsed().as_secs_f64();
    let transfer_start = Instant::now();
    for (idx, x) in features.iter_mut().enumerate() {
        if let (Some(x), Some(_)) = (x.as_mut(), ctx.accel_of(idx)) {
            ctx.workers
                .loader()
                .install(|| ctx.precision.round_trip_in_place(x));
        }
    }
    let transfer_wall_s = transfer_start.elapsed().as_secs_f64();
    let span_end = ctx.origin.elapsed().as_secs_f64();

    PreparedIteration {
        iter,
        quotas,
        seed_sets,
        batches,
        features,
        sample_wall_s,
        load_wall_s,
        transfer_wall_s,
        transfer_span: (span_start, span_end),
        slots,
        threads,
    }
}

/// Prepare iteration `iter` of `epoch` inline: gather stage plus
/// transfer stage back-to-back on the caller thread, staging nothing
/// (no ring slots are taken). Returns `None` once the epoch's seeds are
/// exhausted.
///
/// This is the single implementation of the producer stages — the
/// serial (`depth = 0`) path calls it directly and the pipelined path
/// runs the same two stages on background threads, which is what makes
/// them bitwise-identical by construction.
pub fn prepare_iteration(
    ctx: &PrepareCtx,
    order: &[u32],
    epoch: u64,
    iter: usize,
    quotas: &[usize],
    pool: &MatrixPool,
) -> Option<PreparedIteration> {
    let staged = stage_gather(ctx, order, epoch, iter, quotas, pool)?;
    Some(apply_transfer(ctx, staged, Vec::new()))
}

/// Handle to one background producer run (one contiguous span of
/// iterations under fixed quotas): a gather thread feeding a transfer
/// thread feeding the consumer queue.
struct Prefetcher {
    rx: Receiver<PreparedIteration>,
    stop: Arc<AtomicBool>,
    rings: Arc<StagingRings>,
    handles: Vec<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn a producer covering `start_iter..end_iter` under `quotas`,
    /// buffering at most `depth` prepared iterations per stage boundary.
    #[allow(clippy::too_many_arguments)]
    fn spawn(
        ctx: Arc<PrepareCtx>,
        order: Arc<Vec<u32>>,
        epoch: u64,
        start_iter: usize,
        end_iter: usize,
        quotas: Vec<usize>,
        depth: usize,
        pool: Arc<MatrixPool>,
    ) -> Self {
        let cap = depth.max(1);
        let (staged_tx, staged_rx) = sync_channel::<StagedIteration>(cap);
        let (ready_tx, rx) = sync_channel::<PreparedIteration>(cap);
        let stop = Arc::new(AtomicBool::new(false));
        let rings = Arc::clone(&ctx.rings);

        let gather_handle = {
            let ctx = Arc::clone(&ctx);
            let order = Arc::clone(&order);
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("hyscale-prefetch".into())
                .spawn(move || {
                    for iter in start_iter..end_iter {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        match stage_gather(&ctx, &order, epoch, iter, &quotas, &pool) {
                            // A closed channel means the transfer stage
                            // moved on; recycle the rejected iteration's
                            // buffers so a restart doesn't force fresh
                            // allocations.
                            Some(staged) => {
                                if let Err(rejected) = staged_tx.send(staged) {
                                    rejected.0.recycle(&pool);
                                    break;
                                }
                            }
                            None => break, // epoch seeds exhausted
                        }
                    }
                })
                .expect("spawn prefetch gather stage")
        };

        let transfer_handle = {
            let ctx = Arc::clone(&ctx);
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("hyscale-transfer".into())
                .spawn(move || {
                    while let Ok(staged) = staged_rx.recv() {
                        if stop.load(Ordering::Acquire) {
                            staged.recycle(&pool);
                            break;
                        }
                        // The staging-slot gate: blocks while every slot
                        // of an accelerator's ring holds a batch still
                        // in transfer or compute — this is where ring
                        // depth 1 serializes and depth 2 double-buffers.
                        let Some(slots) = acquire_slots(&ctx, &staged, &stop) else {
                            staged.recycle(&pool);
                            break;
                        };
                        let prep = apply_transfer(&ctx, staged, slots);
                        if let Err(rejected) = ready_tx.send(prep) {
                            rejected.0.recycle(&pool);
                            break;
                        }
                    }
                    // Recycle whatever the gather stage had buffered.
                    // Blocking receives, not `try_recv`: a gather thread
                    // parked in `send` on the full channel completes its
                    // send into the capacity each receive frees, and a
                    // `try_recv` drain would race past that iteration
                    // and destroy its buffers instead of pooling them.
                    // This terminates: by the time the main loop breaks,
                    // `stop` is raised (every break path follows it), so
                    // the gather thread exits its loop and drops its
                    // sender after at most one in-flight iteration.
                    while let Ok(staged) = staged_rx.recv() {
                        staged.recycle(&pool);
                    }
                })
                .expect("spawn prefetch transfer stage")
        };

        Self {
            rx,
            stop,
            rings,
            handles: vec![gather_handle, transfer_handle],
        }
    }

    /// Blocking receive; `None` when the producer finished the epoch.
    fn recv(&self) -> Option<PreparedIteration> {
        self.rx.recv().ok()
    }

    /// Stop the producer, recycling every buffered iteration and freeing
    /// their staging slots.
    fn shutdown(mut self, pool: &MatrixPool) {
        self.stop.store(true, Ordering::Release);
        // Wake a transfer stage blocked on a full staging ring so it can
        // observe `stop` and bail out.
        self.rings.interrupt_all();
        // Drain whatever is buffered so a producer blocked on a full
        // channel can complete its send, observe `stop`, and exit;
        // recycling drops the slot tokens, freeing the rings.
        while let Ok(prep) = self.rx.try_recv() {
            prep.recycle(pool);
        }
        // Close the channel: any in-flight send now errors out (the
        // producer recycles the rejected iteration's buffers itself).
        drop(self.rx);
        for h in self.handles.drain(..) {
            // Bounded wait: at most one in-flight iteration per stage —
            // the same work the consumer would do inline anyway before
            // it can proceed under the new quotas.
            let _ = h.join();
        }
    }
}

/// The executor's iteration source: serial preparation at `depth = 0`,
/// a background producer pipeline otherwise. Transparently restarts the
/// producer (draining the queue *and* the staging rings) when the
/// consumer's quotas change (DRM re-mapping).
pub struct IterationFeed {
    ctx: Arc<PrepareCtx>,
    order: Arc<Vec<u32>>,
    epoch: u64,
    end_iter: usize,
    depth: usize,
    pool: Arc<MatrixPool>,
    pipeline: Option<Prefetcher>,
    restarts: usize,
}

impl IterationFeed {
    /// Create the feed for one epoch, spawning the producer at iteration
    /// 0 when `depth > 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ctx: Arc<PrepareCtx>,
        order: Arc<Vec<u32>>,
        epoch: u64,
        end_iter: usize,
        depth: usize,
        pool: Arc<MatrixPool>,
        initial_quotas: Vec<usize>,
    ) -> Self {
        let mut feed = Self {
            ctx,
            order,
            epoch,
            end_iter,
            depth,
            pool,
            pipeline: None,
            restarts: 0,
        };
        if depth > 0 {
            feed.pipeline = Some(feed.spawn_at(0, initial_quotas));
        }
        feed
    }

    fn spawn_at(&self, start_iter: usize, quotas: Vec<usize>) -> Prefetcher {
        Prefetcher::spawn(
            Arc::clone(&self.ctx),
            Arc::clone(&self.order),
            self.epoch,
            start_iter,
            self.end_iter,
            quotas,
            self.depth,
            Arc::clone(&self.pool),
        )
    }

    /// Obtain iteration `iter` prepared under exactly `quotas`.
    /// Returns `None` once the epoch's seeds are exhausted.
    pub fn obtain(&mut self, iter: usize, quotas: &[usize]) -> Option<PreparedIteration> {
        if self.depth == 0 {
            return prepare_iteration(&self.ctx, &self.order, self.epoch, iter, quotas, &self.pool);
        }
        loop {
            let prep = self.pipeline.as_ref().expect("pipeline alive").recv();
            match prep {
                Some(prep) if prep.iter == iter && prep.quotas == quotas => return Some(prep),
                Some(stale) => {
                    // Produced under an outdated plan (missed DRM event or
                    // an out-of-band `set_mapping`): invalidate and redo.
                    stale.recycle(&self.pool);
                    self.restart(iter, quotas.to_vec());
                }
                None => return None,
            }
        }
    }

    /// Proactively restart the producer at `next_iter` under new
    /// `quotas` — called by the executor the moment a DRM `balance_work`
    /// decision changes the split, before the change takes effect. The
    /// prefetch queue *and* the staging rings are drained: staged
    /// transfers were built under quotas that no longer exist.
    pub fn invalidate(&mut self, next_iter: usize, quotas: Vec<usize>) {
        if self.depth > 0 {
            self.restart(next_iter, quotas);
        }
    }

    /// Apply a DRM `balance_thread` re-allocation: re-size the shared
    /// worker pools so the producer's next dispatch runs at the new
    /// widths. Unlike [`invalidate`](Self::invalidate) this is an
    /// immediate cross-thread atomic store, not a message through the
    /// queue — it is unordered with respect to in-flight iterations and
    /// deliberately drains neither the queue nor the staging rings:
    /// pool widths change wall-clock, never bytes, so already-prepared
    /// iterations and in-flight transfers remain valid
    /// (`tests/equivalence.rs` pins this bitwise).
    pub fn rebalance_threads(&self, alloc: &ThreadAlloc) {
        self.ctx.workers.apply(alloc);
    }

    /// The live worker pools this feed's producer dispatches on.
    pub fn workers(&self) -> &StageWorkers {
        &self.ctx.workers
    }

    /// The per-accelerator staging rings this feed's transfer stage
    /// runs through.
    pub fn rings(&self) -> &Arc<StagingRings> {
        &self.ctx.rings
    }

    fn restart(&mut self, start_iter: usize, quotas: Vec<usize>) {
        if let Some(p) = self.pipeline.take() {
            p.shutdown(&self.pool);
        }
        // Count the drain on every ring: the staged wire transfers died
        // with the producer generation that prepared them.
        self.ctx.rings.drain_all();
        self.restarts += 1;
        self.pipeline = Some(self.spawn_at(start_iter, quotas));
    }

    /// Number of producer restarts this epoch (DRM invalidations).
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// Tear down the producer, recycling buffered iterations.
    pub fn finish(mut self) {
        if let Some(p) = self.pipeline.take() {
            p.shutdown(&self.pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_tensor::init::randn;

    fn ctx_with_rings(ring_depth: usize) -> (Arc<PrepareCtx>, Arc<Vec<u32>>) {
        let dataset = Arc::new(Dataset::toy(5));
        let batcher = EpochBatcher::new(dataset.splits.train.clone(), 99);
        let order = Arc::new(batcher.epoch_order(0));
        let ctx = PrepareCtx {
            dataset,
            batcher,
            sampler: NeighborSampler::new(vec![4, 3], 17),
            precision: Precision::F32,
            hybrid: true,
            workers: Arc::new(StageWorkers::from_alloc(&ThreadAlloc::default_for(8))),
            numa_domains: 2,
            rings: Arc::new(StagingRings::new(2, ring_depth)),
            origin: Instant::now(),
        };
        (Arc::new(ctx), order)
    }

    fn ctx() -> (Arc<PrepareCtx>, Arc<Vec<u32>>) {
        ctx_with_rings(2)
    }

    #[test]
    fn pool_recycles_buffers() {
        let pool = MatrixPool::new();
        let mut m = pool.acquire();
        assert_eq!(pool.idle(), 0);
        m.resize(8, 4);
        pool.release(m);
        assert_eq!(pool.idle(), 1);
        let m2 = pool.acquire();
        assert_eq!(m2.shape(), (8, 4), "recycled buffer keeps its allocation");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn ring_slots_bound_in_flight_batches() {
        let rings = Arc::new(StagingRings::new(1, 2));
        let stop = AtomicBool::new(false);
        let t0 = rings.acquire_token(0, &stop).expect("slot 0");
        let t1 = rings.acquire_token(0, &stop).expect("slot 1");
        assert_eq!(rings.ring(0).in_flight(), 2);
        // full + stop raised: acquire refuses instead of blocking
        stop.store(true, Ordering::Release);
        assert!(rings.acquire_token(0, &stop).is_none());
        stop.store(false, Ordering::Release);
        drop(t0); // batch 0's propagation completed
        assert_eq!(rings.ring(0).in_flight(), 1);
        let t2 = rings.acquire_token(0, &stop).expect("slot freed by drop");
        assert_eq!(t2.accel(), 0);
        drop(t1);
        drop(t2);
        assert_eq!(rings.in_flight_total(), 0);
    }

    #[test]
    fn ring_free_list_is_lane_local() {
        let rings = StagingRings::new(2, 2);
        assert!(rings.ring(0).take_buffer().is_none());
        let mut m = Matrix::uninit(0, 0);
        m.resize(4, 3);
        rings.ring(0).put_buffer(m);
        assert!(rings.ring(1).take_buffer().is_none(), "lanes don't share");
        let back = rings.ring(0).take_buffer().expect("lane 0 buffer");
        assert_eq!(back.shape(), (4, 3));
    }

    #[test]
    fn blocked_transfer_wakes_when_slot_frees() {
        // A transfer blocked on a full ring must wake when the consumer
        // releases the slot (token drop), not spin or deadlock.
        let rings = Arc::new(StagingRings::new(1, 1));
        let stop = Arc::new(AtomicBool::new(false));
        let held = rings.acquire_token(0, &stop).expect("slot");
        let waiter = {
            let rings = Arc::clone(&rings);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || rings.acquire_token(0, &stop).is_some())
        };
        // give the waiter time to block, then release the slot
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().expect("waiter"), "waiter never acquired");
        // the waiter's token dropped with its thread: slot freed again
        assert_eq!(rings.in_flight_total(), 0);
    }

    #[test]
    fn prepare_is_deterministic_and_pool_independent() {
        let (ctx, order) = ctx();
        let pool = MatrixPool::new();
        let quotas = [16usize, 16, 16];
        let a = prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).unwrap();
        // poison the pool and the ring free lists with stale buffers
        pool.release(randn(200, 3, 1));
        pool.release(Matrix::full(1, 1, f32::NAN));
        ctx.rings.ring(0).put_buffer(Matrix::full(7, 7, f32::NAN));
        let b = prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).unwrap();
        assert_eq!(a.seed_sets, b.seed_sets);
        for (x, y) in a.features.iter().zip(&b.features) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.as_slice(), y.as_slice()),
                (None, None) => {}
                _ => panic!("feature presence diverged"),
            }
        }
        assert!(a.slots.is_empty(), "serial preparation must stage nothing");
    }

    #[test]
    fn prepare_ends_after_epoch_exhausted() {
        let (ctx, order) = ctx();
        let pool = MatrixPool::new();
        let n = order.len();
        let quotas = [n / 2 + 1, n / 2 + 1]; // 1 iteration consumes all
        assert!(prepare_iteration(&ctx, &order, 0, 0, &quotas, &pool).is_some());
        assert!(prepare_iteration(&ctx, &order, 0, 1, &quotas, &pool).is_none());
    }

    #[test]
    fn feed_pipelined_matches_serial_across_ring_depths() {
        for ring_depth in [1usize, 2] {
            let (serial_ctx, order) = ctx_with_rings(ring_depth);
            let (piped_ctx, _) = ctx_with_rings(ring_depth);
            let quotas = vec![8usize, 8, 8];
            let serial_pool = Arc::new(MatrixPool::new());
            let mut serial = IterationFeed::new(
                Arc::clone(&serial_ctx),
                Arc::clone(&order),
                0,
                usize::MAX,
                0,
                Arc::clone(&serial_pool),
                quotas.clone(),
            );
            let piped_pool = Arc::new(MatrixPool::new());
            let mut piped = IterationFeed::new(
                Arc::clone(&piped_ctx),
                Arc::clone(&order),
                0,
                usize::MAX,
                3,
                Arc::clone(&piped_pool),
                quotas.clone(),
            );
            let mut iter = 0;
            loop {
                let a = serial.obtain(iter, &quotas);
                let b = piped.obtain(iter, &quotas);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.iter, b.iter);
                        assert_eq!(a.seed_sets, b.seed_sets);
                        for (x, y) in a.features.iter().zip(&b.features) {
                            if let (Some(x), Some(y)) = (x, y) {
                                assert_eq!(x.as_slice(), y.as_slice());
                            }
                        }
                        // two accelerator batches -> two staging slots held
                        assert_eq!(b.slots.len(), 2, "ring depth {ring_depth}");
                        a.recycle(&serial_pool);
                        b.recycle(&piped_pool);
                    }
                    (None, None) => break,
                    _ => panic!("serial and pipelined feeds disagree on epoch length"),
                }
                iter += 1;
            }
            assert!(iter >= 2, "epoch too short to exercise the pipeline");
            piped.finish();
            serial.finish();
            assert_eq!(
                piped_ctx.rings.in_flight_total(),
                0,
                "staging slots leaked at ring depth {ring_depth}"
            );
        }
    }

    #[test]
    fn rebalance_resizes_pools_the_producer_observes() {
        // A balance_thread move must change the partition widths the
        // producer dispatches on — not only the simulated StageTimes —
        // and must leave the staging rings untouched.
        let (ctx, order) = ctx();
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize, 8, 8];
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            1,
            Arc::clone(&pool),
            quotas.clone(),
        );
        let before = feed.obtain(0, &quotas).expect("first iteration");
        assert_eq!(before.threads, ThreadAlloc::default_for(8));
        before.recycle(&pool);

        // DRM moves two threads from the trainer pool to the loader pool.
        let moved = ThreadAlloc {
            sampler: 2,
            loader: 4,
            trainer: 2,
        };
        feed.rebalance_threads(&moved);
        assert_eq!(feed.workers().observed(), moved);
        assert_eq!(feed.workers().loader().width(), 4);

        // Subsequent prepared iterations carry (and ran under) the new
        // widths, without the queue having been invalidated. At depth 1
        // up to a few iterations (buffered or in flight across the two
        // producer stages) may predate the re-size; the move must land
        // within a few more.
        let mut landed = false;
        for iter in 1..=6 {
            let prep = feed
                .obtain(iter, &quotas)
                .expect("post-rebalance iteration");
            let threads = prep.threads;
            prep.recycle(&pool);
            if threads == moved {
                landed = true;
                break;
            }
        }
        assert!(landed, "producer never observed the balance_thread move");
        assert_eq!(feed.restarts(), 0, "thread moves must not drain the queue");
        assert_eq!(
            feed.rings().drains_total(),
            0,
            "thread moves must not drain the staging rings"
        );
        feed.finish();
    }

    #[test]
    fn feed_restarts_on_quota_change_and_drains_rings() {
        let (ctx, order) = ctx();
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize, 8, 8];
        let mut feed = IterationFeed::new(
            Arc::clone(&ctx),
            Arc::clone(&order),
            0,
            usize::MAX,
            2,
            Arc::clone(&pool),
            quotas.clone(),
        );
        let first = feed.obtain(0, &quotas).expect("first iteration");
        first.recycle(&pool);
        assert_eq!(feed.rings().drains_total(), 0);
        // consumer re-balances: 4 seeds move from trainer 1 to trainer 0
        let new_quotas = vec![12usize, 4, 8];
        feed.invalidate(1, new_quotas.clone());
        assert_eq!(
            feed.rings().drains_total(),
            feed.rings().num_rings(),
            "balance_work must drain every staging ring"
        );
        let second = feed.obtain(1, &new_quotas).expect("post-remap iteration");
        assert_eq!(second.quotas, new_quotas);
        assert_eq!(second.seed_sets[0].len(), 12);
        assert_eq!(second.seed_sets[1].len(), 4);
        // bitwise identical to preparing serially under the new quotas
        let reference =
            prepare_iteration(&ctx, &order, 0, 1, &new_quotas, &pool).expect("reference");
        assert_eq!(second.seed_sets, reference.seed_sets);
        for (x, y) in second.features.iter().zip(&reference.features) {
            if let (Some(x), Some(y)) = (x, y) {
                assert_eq!(x.as_slice(), y.as_slice());
            }
        }
        assert!(feed.restarts() >= 1);
        second.recycle(&pool);
        reference.recycle(&pool);
        feed.finish();
        assert_eq!(ctx.rings.in_flight_total(), 0, "slots leaked after finish");
    }
}
