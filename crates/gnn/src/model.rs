//! GCN and GraphSAGE models with hand-derived backward passes.
//!
//! Layer `l` (block `l`, input-most first) computes, for GCN (Eq. 3):
//!
//! ```text
//! agg = C_gcn · H_src            (num_dst × f_in)
//! z   = agg · W + b              (num_dst × f_out)
//! h   = ReLU(z)                  (hidden layers; the last layer emits z)
//! ```
//!
//! and for GraphSAGE (Eq. 4):
//!
//! ```text
//! cat = [H_src[..num_dst] ‖ mean(H_src)]   (num_dst × 2·f_in)
//! z   = cat · W + b
//! h   = ReLU(z)
//! ```
//!
//! Backward walks the same graph in reverse (paper Fig. 1: "Backward
//! propagation performs the same set of GNN operations ... in a reverse
//! direction"), producing `∂W`/`∂b` per layer.

use crate::aggregate::{
    aggregate_gcn, aggregate_gcn_backward, aggregate_mean, aggregate_mean_backward, GcnCoefficients,
};
use crate::grads::Gradients;
use hyscale_sampler::MiniBatch;
use hyscale_tensor::ops::{add_bias_inplace, bias_grad, relu_backward_inplace, relu_inplace};
use hyscale_tensor::optim::Optimizer;
use hyscale_tensor::{gemm_nn, gemm_nt, gemm_tn, softmax_cross_entropy, xavier_uniform, Matrix};

/// Which aggregate-update model to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnnKind {
    /// Graph Convolutional Network (paper Eq. 3).
    Gcn,
    /// GraphSAGE with mean aggregator and concatenation (paper Eq. 4).
    GraphSage,
    /// Graph Isomorphism Network (GIN-0): unnormalised sum aggregation
    /// with self-loop. Not in the paper's evaluation, but the system
    /// claims to train "various GNN models" under the aggregate-update
    /// paradigm (§II-A) — GIN exercises that claim.
    Gin,
}

impl GnnKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            GnnKind::Gcn => "GCN",
            GnnKind::GraphSage => "GraphSAGE",
            GnnKind::Gin => "GIN",
        }
    }

    /// Width multiplier of the update GEMM input (SAGE concatenates
    /// self + neighbour features).
    pub fn update_width_factor(self) -> usize {
        match self {
            GnnKind::Gcn | GnnKind::Gin => 1,
            GnnKind::GraphSage => 2,
        }
    }
}

/// One GNN layer's parameters.
#[derive(Clone)]
struct LayerParams {
    w: Matrix,
    b: Vec<f32>,
}

/// A multi-layer GNN model (replicated per trainer under synchronous SGD).
#[derive(Clone)]
pub struct GnnModel {
    kind: GnnKind,
    dims: Vec<usize>,
    layers: Vec<LayerParams>,
}

/// Output of a single forward+backward training step.
pub struct StepOutput {
    /// Mean cross-entropy loss over this trainer's seeds.
    pub loss: f32,
    /// Training accuracy over this trainer's seeds.
    pub accuracy: f32,
    /// Parameter gradients (mean over this trainer's batch).
    pub grads: Gradients,
}

impl GnnModel {
    /// Build a model with layer dimensions `dims = [f0, f1, ..., fL]`
    /// (paper Table III rows give `[f0, 256, f2]`), Xavier-initialised
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// If fewer than two dims are given.
    pub fn new(kind: GnnKind, dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| {
                let fan_in = w[0] * kind.update_width_factor();
                LayerParams {
                    w: xavier_uniform(fan_in, w[1], seed.wrapping_add(l as u64 * 7919)),
                    b: vec![0.0; w[1]],
                }
            })
            .collect();
        Self {
            kind,
            dims: dims.to_vec(),
            layers,
        }
    }

    /// Model kind.
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// Layer dimensions `[f0 .. fL]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of GNN layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Weight shapes, for building zero gradients.
    pub fn weight_shapes(&self) -> Vec<(usize, usize)> {
        self.layers.iter().map(|l| l.w.shape()).collect()
    }

    /// Total scalar parameter count (weights + biases).
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Model size in bytes — Eq. 13's all-reduce payload.
    pub fn nbytes(&self) -> usize {
        self.num_params() * 4
    }

    /// Forward pass only: logits for the seed vertices.
    ///
    /// `x` holds the gathered input features (`mb.input_nodes` rows).
    pub fn forward(&self, mb: &MiniBatch, x: &Matrix) -> Matrix {
        self.forward_cached(mb, x).logits
    }

    fn forward_cached(&self, mb: &MiniBatch, x: &Matrix) -> ForwardCache {
        assert_eq!(
            mb.num_layers(),
            self.layers.len(),
            "mini-batch layer count mismatch"
        );
        assert_eq!(
            x.rows(),
            mb.input_nodes.len(),
            "feature rows must match input nodes"
        );
        assert_eq!(x.cols(), self.dims[0], "feature width must match f0");

        let mut h = x.clone();
        let mut cache = ForwardCache {
            per_layer: Vec::with_capacity(self.layers.len()),
            logits: Matrix::zeros(0, 0),
        };
        for (l, (block, params)) in mb.blocks.iter().zip(&self.layers).enumerate() {
            let last = l + 1 == self.layers.len();
            let (update_in, gcn_coef) = match self.kind {
                GnnKind::Gcn => {
                    let coef = GcnCoefficients::from_block(block);
                    let agg = aggregate_gcn(block, &h, &coef);
                    (agg, Some(coef))
                }
                GnnKind::Gin => {
                    let coef = GcnCoefficients::gin(block, 0.0);
                    let agg = aggregate_gcn(block, &h, &coef);
                    (agg, Some(coef))
                }
                GnnKind::GraphSage => {
                    let mean = aggregate_mean(block, &h);
                    // dst features are the src prefix
                    let mut self_feats = Matrix::zeros(block.num_dst, h.cols());
                    for d in 0..block.num_dst {
                        self_feats.row_mut(d).copy_from_slice(h.row(d));
                    }
                    (self_feats.hconcat(&mean), None)
                }
            };
            let mut z = gemm_nn(&update_in, &params.w);
            add_bias_inplace(&mut z, &params.b);
            let out = if last {
                z.clone()
            } else {
                let mut a = z.clone();
                relu_inplace(&mut a);
                a
            };
            cache.per_layer.push(LayerCache {
                h_src: h,
                update_in,
                z,
                gcn_coef,
            });
            h = out;
        }
        cache.logits = h;
        cache
    }

    /// One training step: forward, loss, backward. Returns loss/accuracy
    /// and gradients (mean over this batch); does *not* update weights —
    /// the synchronizer averages first (paper Fig. 4 step "GNN
    /// Propagation" → "Synchronizer").
    pub fn train_step(&self, mb: &MiniBatch, x: &Matrix, labels: &[u32]) -> StepOutput {
        let cache = self.forward_cached(mb, x);
        let loss_out = softmax_cross_entropy(&cache.logits, labels);
        let acc = hyscale_tensor::accuracy(&cache.logits, labels);

        let mut d_weights: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let mut d_biases: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len());
        let mut d_h = loss_out.grad; // ∂L/∂logits
        for (l, (block, params)) in mb.blocks.iter().zip(&self.layers).enumerate().rev() {
            let lc = &cache.per_layer[l];
            let last = l + 1 == self.layers.len();
            let mut d_z = d_h;
            if !last {
                relu_backward_inplace(&mut d_z, &lc.z);
            }
            // update backward
            let d_w = gemm_tn(&lc.update_in, &d_z);
            let d_b = bias_grad(&d_z);
            let d_update_in = gemm_nt(&d_z, &params.w);
            // aggregate backward
            let d_src = match self.kind {
                GnnKind::Gcn | GnnKind::Gin => {
                    let coef = lc
                        .gcn_coef
                        .as_ref()
                        .expect("aggregation cache has coefficients");
                    aggregate_gcn_backward(block, &d_update_in, coef)
                }
                GnnKind::GraphSage => {
                    let f_in = lc.h_src.cols();
                    let (d_self, d_mean) = d_update_in.hsplit(f_in);
                    let mut d_src = aggregate_mean_backward(block, &d_mean);
                    for d in 0..block.num_dst {
                        let row = d_self.row(d);
                        let dst = d_src.row_mut(d);
                        for (o, v) in dst.iter_mut().zip(row) {
                            *o += *v;
                        }
                    }
                    d_src
                }
            };
            d_weights.push(d_w);
            d_biases.push(d_b);
            d_h = d_src;
        }
        d_weights.reverse();
        d_biases.reverse();

        StepOutput {
            loss: loss_out.loss,
            accuracy: acc,
            grads: Gradients {
                d_weights,
                d_biases,
                batch_size: mb.seeds.len(),
            },
        }
    }

    /// Apply (already averaged) gradients with the given optimizer.
    /// All replicas call this with identical inputs, keeping weights in
    /// lock-step.
    pub fn apply_gradients(&mut self, grads: &Gradients, opt: &mut dyn Optimizer) {
        assert_eq!(
            grads.num_layers(),
            self.layers.len(),
            "gradient layer mismatch"
        );
        for (l, (params, (dw, db))) in self
            .layers
            .iter_mut()
            .zip(grads.d_weights.iter().zip(&grads.d_biases))
            .enumerate()
        {
            opt.step(2 * l, &mut params.w, dw);
            let mut b = Matrix::from_vec(1, params.b.len(), params.b.clone());
            let db_m = Matrix::from_vec(1, db.len(), db.clone());
            opt.step(2 * l + 1, &mut b, &db_m);
            params.b.copy_from_slice(b.as_slice());
        }
    }

    /// Apply layer `layer`'s update stage (`z = in·W + b`, optional
    /// ReLU) to an already-aggregated input. Shared by training and the
    /// exact-inference path.
    pub fn apply_update(&self, update_in: &Matrix, layer: usize, relu: bool) -> Matrix {
        let params = &self.layers[layer];
        let mut z = gemm_nn(update_in, &params.w);
        add_bias_inplace(&mut z, &params.b);
        if relu {
            relu_inplace(&mut z);
        }
        z
    }

    /// Replace one layer's parameters (checkpoint loading, grad-check).
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn set_layer_params(&mut self, layer: usize, w: Matrix, b: Vec<f32>) {
        let params = &mut self.layers[layer];
        assert_eq!(params.w.shape(), w.shape(), "weight shape mismatch");
        assert_eq!(params.b.len(), b.len(), "bias length mismatch");
        params.w = w;
        params.b = b;
    }

    /// Flatten all parameters (weights then bias per layer) for
    /// replica-consistency checks.
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(l.w.as_slice());
            out.extend_from_slice(&l.b);
        }
        out
    }
}

struct LayerCache {
    /// Input features of the layer (`H_src`).
    h_src: Matrix,
    /// The GEMM input (aggregated for GCN, concatenated for SAGE).
    update_in: Matrix,
    /// Pre-activation output.
    z: Matrix,
    /// GCN coefficients (None for SAGE).
    gcn_coef: Option<GcnCoefficients>,
}

struct ForwardCache {
    per_layer: Vec<LayerCache>,
    logits: Matrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::features::gather_features;
    use hyscale_graph::Dataset;
    use hyscale_sampler::NeighborSampler;
    use hyscale_tensor::Sgd;

    fn setup(kind: GnnKind) -> (Dataset, NeighborSampler, GnnModel) {
        let ds = Dataset::toy(7);
        let sampler = NeighborSampler::new(vec![8, 5], 3);
        let model = GnnModel::new(kind, &[16, 32, 4], 11);
        (ds, sampler, model)
    }

    fn labels_of(ds: &Dataset, seeds: &[u32]) -> Vec<u32> {
        seeds.iter().map(|&s| ds.data.labels[s as usize]).collect()
    }

    #[test]
    fn forward_shapes() {
        for kind in [GnnKind::Gcn, GnnKind::GraphSage] {
            let (ds, sampler, model) = setup(kind);
            let seeds: Vec<u32> = ds.splits.train[..32].to_vec();
            let mb = sampler.sample(&ds.graph, &seeds, 0);
            let x = gather_features(&ds.data.features, &mb.input_nodes);
            let logits = model.forward(&mb, &x);
            assert_eq!(logits.shape(), (32, 4));
            assert!(logits.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn train_step_reduces_loss_over_epochs() {
        for kind in [GnnKind::Gcn, GnnKind::GraphSage] {
            let (ds, sampler, mut model) = setup(kind);
            let mut opt = Sgd::new(0.3);
            let mut first = None;
            let mut last = 0.0;
            for step in 0..30 {
                let start = (step * 32) % 512;
                let seeds: Vec<u32> = ds.splits.train[start..start + 32].to_vec();
                let mb = sampler.sample(&ds.graph, &seeds, step as u64);
                let x = gather_features(&ds.data.features, &mb.input_nodes);
                let out = model.train_step(&mb, &x, &labels_of(&ds, &seeds));
                model.apply_gradients(&out.grads, &mut opt);
                if first.is_none() {
                    first = Some(out.loss);
                }
                last = out.loss;
            }
            let first = first.unwrap();
            assert!(
                last < first * 0.8,
                "{}: loss did not fall ({first} -> {last})",
                kind.name()
            );
        }
    }

    #[test]
    fn deterministic_step() {
        let (ds, sampler, model) = setup(GnnKind::GraphSage);
        let seeds: Vec<u32> = ds.splits.train[..16].to_vec();
        let mb = sampler.sample(&ds.graph, &seeds, 1);
        let x = gather_features(&ds.data.features, &mb.input_nodes);
        let l = labels_of(&ds, &seeds);
        let a = model.train_step(&mb, &x, &l);
        let b = model.train_step(&mb, &x, &l);
        assert_eq!(a.loss, b.loss);
        assert!(a.grads.approx_eq(&b.grads, 0.0));
    }

    #[test]
    fn param_accounting() {
        let model = GnnModel::new(GnnKind::Gcn, &[100, 256, 47], 1);
        assert_eq!(model.num_params(), 100 * 256 + 256 + 256 * 47 + 47);
        let sage = GnnModel::new(GnnKind::GraphSage, &[100, 256, 47], 1);
        assert_eq!(sage.num_params(), 200 * 256 + 256 + 512 * 47 + 47);
        assert_eq!(model.nbytes(), model.num_params() * 4);
    }

    #[test]
    fn three_layer_model_runs() {
        // DistDGLv2 comparison uses a 3-layer model (Table V fanout (15,10,5)).
        let ds = Dataset::toy(9);
        let sampler = NeighborSampler::new(vec![5, 4, 3], 2);
        let model = GnnModel::new(GnnKind::GraphSage, &[16, 32, 32, 4], 3);
        let seeds: Vec<u32> = ds.splits.train[..16].to_vec();
        let mb = sampler.sample(&ds.graph, &seeds, 0);
        let x = gather_features(&ds.data.features, &mb.input_nodes);
        let out = model.train_step(&mb, &x, &labels_of(&ds, &seeds));
        assert!(out.loss.is_finite());
        assert_eq!(out.grads.num_layers(), 3);
    }

    #[test]
    fn replicas_stay_in_lockstep() {
        let (ds, sampler, model) = setup(GnnKind::Gcn);
        let mut a = model.clone();
        let mut b = model;
        let mut opt_a = Sgd::with_momentum(0.1, 0.9);
        let mut opt_b = Sgd::with_momentum(0.1, 0.9);
        for step in 0..5 {
            let seeds: Vec<u32> = ds.splits.train[step * 16..(step + 1) * 16].to_vec();
            let mb = sampler.sample(&ds.graph, &seeds, step as u64);
            let x = gather_features(&ds.data.features, &mb.input_nodes);
            let l = labels_of(&ds, &seeds);
            let ga = a.train_step(&mb, &x, &l).grads;
            let gb = b.train_step(&mb, &x, &l).grads;
            let avg = Gradients::weighted_average(&[ga, gb]);
            a.apply_gradients(&avg, &mut opt_a);
            b.apply_gradients(&avg, &mut opt_b);
        }
        assert_eq!(a.flatten_params(), b.flatten_params());
    }

    #[test]
    #[should_panic(expected = "mini-batch layer count mismatch")]
    fn rejects_wrong_layer_count() {
        let (ds, _, model) = setup(GnnKind::Gcn);
        let one_hop = NeighborSampler::new(vec![4], 0);
        let seeds: Vec<u32> = ds.splits.train[..8].to_vec();
        let mb = one_hop.sample(&ds.graph, &seeds, 0);
        let x = gather_features(&ds.data.features, &mb.input_nodes);
        let _ = model.forward(&mb, &x);
    }
}
