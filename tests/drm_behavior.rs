//! System-level DRM behaviour (paper §IV-A): starting from a bad task
//! mapping, Algorithm 1 must converge to a faster one while preserving
//! the per-iteration seed total and the CPU thread budget.

use hyscale::core::drm::{DrmEngine, ThreadAlloc, WorkloadSplit};
use hyscale::core::{AcceleratorKind, PerfModel, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::{OGBN_PAPERS100M, OGBN_PRODUCTS};

fn settle(
    cfg: &SystemConfig,
    split: &mut WorkloadSplit,
    threads: &mut ThreadAlloc,
    iters: usize,
) -> (f64, f64) {
    let pm = PerfModel::new(cfg);
    let drm = DrmEngine::new(cfg.opt.hybrid);
    let first = pm
        .stage_times_runtime(&OGBN_PAPERS100M, split, threads)
        .pipelined_iteration();
    let mut best = first;
    for _ in 0..iters {
        let t = pm.stage_times_runtime(&OGBN_PAPERS100M, split, threads);
        drm.adjust(&t, split, threads);
        best = best.min(
            pm.stage_times_runtime(&OGBN_PAPERS100M, split, threads)
                .pipelined_iteration(),
        );
    }
    (first, best)
}

#[test]
fn drm_improves_bad_mapping() {
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    // pathological start: half the batch on the CPU trainer, starved
    // sampler threads
    let mut split = WorkloadSplit::new(2560, 5120, 4);
    let mut threads = ThreadAlloc {
        sampler: 2,
        loader: 2,
        trainer: 124,
    };
    let (first, best) = settle(&cfg, &mut split, &mut threads, 120);
    assert!(
        best < first * 0.7,
        "DRM failed to improve the mapping: {first:.5}s -> {best:.5}s"
    );
}

#[test]
fn drm_conserves_totals() {
    let cfg = SystemConfig::paper_default(AcceleratorKind::a5000(), GnnKind::GraphSage);
    let pm = PerfModel::new(&cfg);
    let drm = DrmEngine::new(true);
    let mut split = WorkloadSplit::new(1000, 5120, 4);
    let mut threads = ThreadAlloc::default_for(128);
    let thread_budget = threads.total();
    for _ in 0..60 {
        let t = pm.stage_times_runtime(&OGBN_PRODUCTS, &split, &threads);
        drm.adjust(&t, &mut split, &mut threads);
        assert_eq!(
            split.quotas().iter().sum::<usize>(),
            5120,
            "seed total changed — synchronous SGD semantics broken"
        );
        assert_eq!(threads.total(), thread_budget, "thread budget leaked");
        assert!(split.sampling_on_accel >= 0.0 && split.sampling_on_accel <= 1.0);
    }
}

#[test]
fn initial_mapping_is_coarse_but_sane() {
    // the paper's two-phase mapping story: the design-time mapping is
    // coarse; runtime DRM fine-tunes it. The coarse mapping should be
    // within a small factor of the settled optimum, and settling should
    // never make things worse.
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&cfg);
    let (mut split, mut threads) = pm.initial_mapping(&OGBN_PAPERS100M);
    let initial = pm
        .stage_times_runtime(&OGBN_PAPERS100M, &split, &threads)
        .pipelined_iteration();
    let (_, settled) = settle(&cfg, &mut split, &mut threads, 80);
    assert!(settled <= initial * 1.001, "DRM made the mapping worse");
    assert!(
        settled > initial * 0.2,
        "design-time mapping was absurdly far off: {initial:.5}s vs {settled:.5}s"
    );
}

#[test]
fn balance_thread_resizes_live_worker_pools() {
    // A DRM balance_thread decision must reach the rayon-shim worker
    // groups the real producer dispatches on — not only the simulated
    // StageTimes. Drive the engine with a loader-bottlenecked profile
    // and mirror its ThreadAlloc into StageWorkers, as the executor does.
    use hyscale::core::drm::DrmAction;
    use hyscale::core::stages::{Stage, StageTimes, StageWorkers};

    let engine = DrmEngine::new(true);
    let mut split = WorkloadSplit::new(1024, 5120, 4);
    let mut threads = ThreadAlloc {
        sampler: 10,
        loader: 10,
        trainer: 44,
    };
    let workers = StageWorkers::from_alloc(&threads);
    assert_eq!(workers.loader().width(), 10);

    // loader is the bottleneck, CPU sampler the fastest CPU task
    let times = StageTimes {
        sample_cpu: 0.05,
        sample_accel: 0.2,
        load: 3.0,
        transfer: 0.5,
        train_cpu: 1.0,
        train_accel: 0.5,
        sync: 0.0,
    };
    let action = engine.adjust(&times, &mut split, &mut threads);
    assert_eq!(
        action,
        DrmAction::BalanceThread {
            from: Stage::SampleCpu,
            to: Stage::Load
        }
    );
    workers.apply(&threads);
    assert_eq!(workers.loader().width(), 11, "loader pool not widened");
    assert_eq!(workers.sampler().width(), 9, "sampler pool not narrowed");
    assert_eq!(workers.observed(), threads);
    assert_eq!(
        workers.group(Stage::Load).unwrap().width(),
        threads.threads_for(Stage::Load)
    );
}
