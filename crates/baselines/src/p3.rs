//! P3 system model (paper Table V/VI; Gandhi & Iyer, OSDI'21).
//!
//! 4 nodes, each 1× Xeon E5-2690 + 4× P100, hidden dim 32. P3's pitch:
//! *push-pull parallelism* — input-layer features are partitioned across
//! nodes and never moved; instead each node computes partial layer-1
//! activations for every sampled vertex and exchanges the (hidden-width)
//! partials over the network. The paper's critique (§VI-E2): "P3 incurs
//! inter-node data communication ... which causes extra communication
//! overhead compared with HyScale-GNN."

use crate::common::{gpu_propagation_time, BaselineSystem, SotaConfig, DGL_FRAMEWORK_OVERHEAD_S};
use hyscale_device::calib;
use hyscale_device::pcie::PcieLink;
use hyscale_device::spec::{DeviceSpec, P100, XEON_E5_2690};
use hyscale_device::stage::SamplerModel;
use hyscale_device::timing::GpuTiming;
use hyscale_gnn::GnnKind;
use hyscale_graph::DatasetSpec;

/// P3 system model.
pub struct P3 {
    /// GPU spec (P100).
    pub gpu: DeviceSpec,
    /// GPUs per node (4).
    pub gpus_per_node: usize,
    /// Node count (4).
    pub nodes: usize,
    /// Host CPU per node.
    pub cpu: DeviceSpec,
    /// NIC bandwidth between nodes, GB/s.
    pub nic_gbs: f64,
    /// Per-iteration pipeline-stall overhead: P3's push-pull runs two
    /// extra all-to-all synchronisation rounds per layer, each a
    /// distributed barrier over all 16 workers (straggler-bound).
    pub pipeline_stall_s: f64,
}

impl P3 {
    /// The Table V configuration.
    pub fn paper_setup() -> Self {
        Self {
            gpu: P100,
            gpus_per_node: 4,
            nodes: 4,
            cpu: XEON_E5_2690,
            nic_gbs: calib::NIC_BW_GBS,
            pipeline_stall_s: 20e-3,
        }
    }

    /// Inter-node traffic per mini-batch: every sampled layer-1 vertex's
    /// partial activation (hidden width) is exchanged with the other
    /// `P-1` partitions (push), then the reduced activation is pulled
    /// back — 2 crossings of `(P-1)/P` of the rows.
    pub fn network_bytes(&self, cfg: &SotaConfig, ds: &DatasetSpec) -> u64 {
        let w = cfg.workload(ds);
        let v1 = *w.nodes_per_layer.first().unwrap_or(&0) as u64;
        let frac = (self.nodes as f64 - 1.0) / self.nodes as f64;
        (2.0 * v1 as f64 * cfg.hidden_dim as f64 * 4.0 * frac) as u64
    }
}

impl BaselineSystem for P3 {
    fn name(&self) -> &'static str {
        "P3"
    }

    fn platform_tflops(&self) -> f64 {
        (self.gpu.peak_tflops * self.gpus_per_node as f64 + self.cpu.peak_tflops)
            * self.nodes as f64
    }

    fn total_batch(&self, cfg: &SotaConfig) -> usize {
        cfg.batch_per_trainer * self.gpus_per_node * self.nodes
    }

    fn iteration_time(&self, ds: &DatasetSpec, model: GnnKind, cfg: &SotaConfig) -> f64 {
        let per_gpu = cfg.workload(ds);
        let dims = cfg.layer_dims(ds);
        let sampler = SamplerModel::default();
        // each node samples for its own GPUs
        let node_edges = per_gpu.total_edges() * self.gpus_per_node as u64;
        let t_samp = sampler.sample_time(node_edges, self.cpu.cores);
        // P3 avoids raw-feature movement: only hidden-width partials
        // cross the NIC (+ per-message latency for the all-to-all)
        let net_bytes = self.network_bytes(cfg, ds) * self.gpus_per_node as u64;
        let t_net = net_bytes as f64 / (self.nic_gbs * 1e9)
            + (self.nodes * self.nodes) as f64 * calib::NIC_LATENCY_S;
        // local feature slice to GPU over PCIe: 1/P of the input rows
        let pcie = PcieLink::new(calib::PCIE_EFF_BW_GBS, calib::PCIE_LATENCY_S);
        let local_bytes = per_gpu.feature_bytes(ds.f0) / self.nodes as u64;
        let t_trans = pcie.transfer_time(local_bytes + per_gpu.total_edges() * 8);
        // GPU propagation: the narrow hidden dim (32) makes compute cheap
        let gpu = GpuTiming::new(self.gpu);
        let t_gpu = gpu_propagation_time(&gpu, &per_gpu, &dims, model, DGL_FRAMEWORK_OVERHEAD_S);
        // P3 pipelines push-pull with compute; sampling + the slower of
        // (network, transfer+gpu) define the iteration, plus the
        // per-iteration barrier stalls of the push-pull exchange
        t_samp + t_net.max(t_trans + t_gpu) + self.pipeline_stall_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::dataset::{OGBN_PAPERS100M, OGBN_PRODUCTS};

    #[test]
    fn network_traffic_scales_with_hidden_dim() {
        let p = P3::paper_setup();
        let narrow = SotaConfig::p3();
        let mut wide = SotaConfig::p3();
        wide.hidden_dim = 256;
        assert!(
            p.network_bytes(&wide, &OGBN_PRODUCTS) > 4 * p.network_bytes(&narrow, &OGBN_PRODUCTS)
        );
    }

    #[test]
    fn platform_tflops_counts_all_nodes() {
        let p = P3::paper_setup();
        assert!((p.platform_tflops() - 4.0 * (4.0 * 9.3 + 0.7)).abs() < 1e-9);
    }

    #[test]
    fn epoch_magnitude_band() {
        // paper Table VI: P3 products GCN 1.11s, papers100M GCN 2.61s
        let p = P3::paper_setup();
        let cfg = SotaConfig::p3();
        let products = p.epoch_time(&OGBN_PRODUCTS, GnnKind::Gcn, &cfg);
        let papers = p.epoch_time(&OGBN_PAPERS100M, GnnKind::Gcn, &cfg);
        assert!(products > 0.1 && products < 10.0, "products {products}");
        assert!(
            papers > products * 1.5,
            "papers {papers} vs products {products}"
        );
    }
}
