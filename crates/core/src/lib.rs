//! # hyscale-core
//!
//! The HyScale-GNN training system (the paper's primary contribution):
//!
//! * [`protocol`] — the Processor–Accelerator Training Protocol
//!   (paper §III-C, Listing 1): DONE/ACK handshakes between trainer
//!   threads, the synchronizer, and the runtime, built on
//!   `parking_lot` mutex/condvar exactly like the paper's Pthreads
//!   implementation.
//! * [`sync`] — the Synchronizer: size-weighted gradient all-reduce
//!   (gather → average → broadcast, paper §III-A).
//! * [`drm`] — the Dynamic Resource Management engine (paper
//!   Algorithm 1): a bottleneck-guided optimizer with `balance_work`
//!   and `balance_thread` moves.
//! * [`perf_model`] — the design-time performance model (paper §V,
//!   Eq. 5–13) used for the initial task mapping and the scalability
//!   study.
//! * [`prefetch`] — Task-level Feature Prefetching as a *real*
//!   pipeline (paper §IV-B): a background producer samples, gathers and
//!   precision-round-trips iterations into a bounded queue, overlapped
//!   with GNN propagation, with pool-recycled feature buffers and
//!   DRM-aware queue invalidation.
//! * [`executor`] — the hybrid trainer: 4-stage pipeline (Sampling →
//!   Feature Loading → Data Transfer → GNN Propagation) with Two-stage
//!   Feature Prefetching (paper §IV-B), functional training plus
//!   simulated device timing and measured per-stage wall-clock.
//!
//! The [`executor::HybridTrainer`] is the public entry point; see the
//! workspace `examples/` for end-to-end usage.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod drm;
pub mod executor;
pub mod metrics;
pub mod perf_model;
pub mod pipeline;
pub mod prefetch;
pub mod protocol;
pub mod report;
pub mod stages;
pub mod sync;

pub use config::{AcceleratorKind, OptFlags, PlatformConfig, SystemConfig, TrainConfig};
pub use drm::{DrmEngine, ThreadAlloc, WorkloadSplit};
pub use executor::HybridTrainer;
pub use perf_model::PerfModel;
pub use prefetch::MatrixPool;
pub use report::{EpochReport, IterationReport, WallStageTimes};
pub use stages::StageTimes;
