//! Degree statistics and degree-ordered vertex ranking.
//!
//! PaGraph's device cache (baseline for Table VI) caches the features of
//! the *highest out-degree* vertices; the FPGA kernel's data-reuse factor
//! is the out-degree of the streamed source vertex (paper §IV-C).

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Histogram of out-degrees in power-of-two buckets
/// (`[0], [1], [2-3], [4-7], ...`).
pub fn degree_histogram(graph: &CsrGraph) -> Vec<(usize, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in 0..graph.num_vertices() as VertexId {
        let d = graph.out_degree(v);
        let b = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(b, count)| (if b == 0 { 0 } else { 1 << (b - 1) }, count))
        .collect()
}

/// Vertices sorted by descending out-degree (ties by ascending id, so the
/// order is total and deterministic).
pub fn vertices_by_degree_desc(graph: &CsrGraph) -> Vec<VertexId> {
    let mut ids: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    ids.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
    ids
}

/// Fraction of all edges covered by the `top_k` highest-degree vertices —
/// the analytic cache-hit-rate upper bound for a PaGraph-style static
/// cache holding `top_k` feature rows.
pub fn top_k_edge_coverage(graph: &CsrGraph, top_k: usize) -> f64 {
    if graph.num_edges() == 0 {
        return 0.0;
    }
    let order = vertices_by_degree_desc(graph);
    let covered: u64 = order
        .iter()
        .take(top_k)
        .map(|&v| graph.out_degree(v) as u64)
        .sum();
    covered as f64 / graph.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{preferential_attachment, rmat, RmatConfig};

    #[test]
    fn histogram_covers_all_vertices() {
        let g = rmat(
            RmatConfig {
                scale: 8,
                avg_degree: 8,
                ..Default::default()
            },
            1,
        );
        let hist = degree_histogram(&g);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn degree_order_is_descending() {
        let g = preferential_attachment(300, 3, 2).symmetrize();
        let order = vertices_by_degree_desc(&g);
        assert!(order
            .windows(2)
            .all(|w| g.out_degree(w[0]) >= g.out_degree(w[1])));
    }

    #[test]
    fn coverage_monotone_and_bounded() {
        let g = preferential_attachment(500, 4, 3).symmetrize();
        let c10 = top_k_edge_coverage(&g, 10);
        let c100 = top_k_edge_coverage(&g, 100);
        let call = top_k_edge_coverage(&g, 500);
        assert!(c10 <= c100 + 1e-12);
        assert!((call - 1.0).abs() < 1e-12);
        // power-law: small cache covers a disproportionate share of edges
        assert!(c100 > 100.0 / 500.0, "coverage {c100} not skewed");
    }

    #[test]
    fn empty_graph_coverage() {
        let g = CsrGraph::empty(5);
        assert_eq!(top_k_edge_coverage(&g, 3), 0.0);
    }
}
