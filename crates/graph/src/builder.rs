//! Incremental edge-list builder with normalisation options.

use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId};

/// Collects edges, then normalises (sort / dedup / drop self-loops /
/// symmetrize) and freezes into a [`CsrGraph`].
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    dedup: bool,
    drop_self_loops: bool,
    symmetrize: bool,
}

impl GraphBuilder {
    /// Builder for a graph over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            dedup: false,
            drop_self_loops: false,
            symmetrize: false,
        }
    }

    /// Pre-size the edge buffer.
    pub fn with_capacity(num_vertices: usize, edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(edges);
        b
    }

    /// Remove duplicate edges when building.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Remove self-loops when building.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Add the reverse of every edge when building (undirected view).
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Append one edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.edges.push((src, dst));
        self
    }

    /// Append many edges.
    pub fn add_edges(
        &mut self,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> &mut Self {
        self.edges.extend(edges);
        self
    }

    /// Current number of staged edges (before normalisation).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Normalise and freeze into CSR.
    pub fn build(mut self) -> Result<CsrGraph, GraphError> {
        if self.symmetrize {
            let rev: Vec<_> = self.edges.iter().map(|&(s, t)| (t, s)).collect();
            self.edges.extend(rev);
        }
        if self.drop_self_loops {
            self.edges.retain(|&(s, t)| s != t);
        }
        if self.dedup || self.symmetrize {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        CsrGraph::from_edges(self.num_vertices, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_plain() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut b = GraphBuilder::new(2).dedup(true);
        b.add_edges([(0, 1), (0, 1), (1, 0)]);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(2).drop_self_loops(true);
        b.add_edges([(0, 0), (0, 1), (1, 1)]);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn symmetrize_adds_reverse_and_dedups() {
        let mut b = GraphBuilder::new(3).symmetrize(true);
        b.add_edges([(0, 1), (1, 0), (1, 2)]);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn out_of_range_propagates() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 3);
        assert!(b.build().is_err());
    }

    #[test]
    fn staged_edges_counts() {
        let mut b = GraphBuilder::with_capacity(4, 16);
        b.add_edges([(0, 1), (2, 3)]);
        assert_eq!(b.staged_edges(), 2);
    }
}
