//! Softmax cross-entropy loss with fused gradient, plus accuracy.
//!
//! Mini-batch GNN training compares output embeddings with ground-truth
//! labels for loss calculation (paper Fig. 1 step 2). The gradient w.r.t.
//! the logits is `(softmax(z) - onehot(y)) / batch`, the standard fused
//! form.

use crate::matrix::Matrix;

/// Result of a softmax cross-entropy evaluation.
pub struct LossOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits, already divided by the batch size.
    pub grad: Matrix,
}

/// Numerically-stable softmax cross-entropy over rows of `logits`.
///
/// `labels[i]` is the class index of row `i`. Returns mean loss and the
/// logits gradient. Rows are independent so the reduction order is fixed
/// regardless of parallelism.
///
/// # Panics
/// If `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u32]) -> LossOutput {
    let (rows, cols) = logits.shape();
    assert_eq!(labels.len(), rows, "label count must match logit rows");
    assert!(rows > 0, "empty batch");
    let inv_batch = 1.0 / rows as f32;
    let mut grad = Matrix::zeros(rows, cols);
    let mut loss_sum = 0.0f64;

    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let label = label as usize;
        assert!(
            label < cols,
            "label {label} out of range for {cols} classes"
        );
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        // loss_r = -(z_y - max - log denom)
        loss_sum += f64::from(-(row[label] - max - log_denom));
        let g_row = grad.row_mut(r);
        for (c, &v) in row.iter().enumerate() {
            let p = (v - max).exp() / denom;
            g_row[c] = (p - if c == label { 1.0 } else { 0.0 }) * inv_batch;
        }
    }

    LossOutput {
        loss: (loss_sum * f64::from(inv_batch)) as f32,
        grad,
    }
}

/// Fraction of rows whose arg-max logit equals the label.
///
/// # Panics
/// If `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, labels: &[u32]) -> f32 {
    let rows = logits.rows();
    assert_eq!(labels.len(), rows, "label count must match logit rows");
    if rows == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let mut best = 0usize;
        for (c, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = c;
            }
        }
        if best == label as usize {
            correct += 1;
        }
    }
    correct as f32 / rows as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let logits = Matrix::zeros(4, 10);
        let labels = vec![0, 3, 7, 9];
        let out = softmax_cross_entropy(&logits, &labels);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Matrix::from_fn(3, 5, |r, c| ((r + 2 * c) as f32).sin());
        let labels = vec![1, 4, 0];
        let out = softmax_cross_entropy(&logits, &labels);
        for r in 0..3 {
            let s: f32 = out.grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sums to {s}");
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = Matrix::from_fn(2, 4, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32));
        let labels = vec![2, 0];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..4 {
                let mut plus = logits.clone();
                plus[(r, c)] += eps;
                let mut minus = logits.clone();
                minus[(r, c)] -= eps;
                let lp = softmax_cross_entropy(&plus, &labels).loss;
                let lm = softmax_cross_entropy(&minus, &labels).loss;
                let fd = (lp - lm) / (2.0 * eps);
                let an = out.grad[(r, c)];
                assert!(
                    (fd - an).abs() < 1e-3,
                    "grad mismatch at ({r},{c}): fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn loss_decreases_when_correct_logit_grows() {
        let mut logits = Matrix::zeros(1, 3);
        let labels = vec![1u32];
        let base = softmax_cross_entropy(&logits, &labels).loss;
        logits[(0, 1)] = 2.0;
        let better = softmax_cross_entropy(&logits, &labels).loss;
        assert!(better < base);
    }

    #[test]
    fn stable_under_large_logits() {
        let logits = Matrix::from_vec(1, 3, vec![1e4, 1e4 - 5.0, -1e4]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.grad.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.9, 0.1]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn rejects_out_of_range_label() {
        let _ = softmax_cross_entropy(&Matrix::zeros(1, 2), &[5]);
    }
}
