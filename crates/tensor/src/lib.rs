//! # hyscale-tensor
//!
//! Dense `f32` linear-algebra substrate for the HyScale-GNN reproduction.
//!
//! The paper's GNN trainers (paper §II-A) reduce to three kernel families:
//!
//! * **GEMM** — the feature-update stage (`h = φ(a·W + b)`) and its
//!   backward transposes. [`gemm`] provides cache-blocked, Rayon-parallel
//!   `NN`/`TN`/`NT` multiplies.
//! * **Element-wise ops** — ReLU and friends ([`ops`]).
//! * **Loss** — softmax cross-entropy with fused gradient ([`loss`]).
//!
//! Plus the training-side pieces: Xavier/Glorot initialisation ([`init`])
//! and SGD/Adam optimizers ([`optim`]).
//!
//! Everything is deterministic given a seed; parallel reductions are
//! arranged so that thread count does not change results (parallelism is
//! over independent output rows), which the semantics-preservation tests
//! in the workspace rely on.

#![warn(missing_docs)]

pub mod gemm;
pub mod init;
pub mod loss;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod quant;

pub use gemm::{gemm_nn, gemm_nt, gemm_tn, Gemm};
pub use init::{xavier_uniform, Initializer};
pub use loss::{accuracy, softmax_cross_entropy, LossOutput};
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
pub use quant::Precision;
