//! System-level DRM behaviour (paper §IV-A): starting from a bad task
//! mapping, Algorithm 1 must converge to a faster one while preserving
//! the per-iteration seed total and the CPU thread budget — and its two
//! move kinds must have the right drain semantics on the producer's
//! staging rings: `balance_work` drains *only the lanes whose share
//! moved* (salvaging the untouched trainers' queued batches; a
//! zero-diff move drains nothing), `balance_thread` drains none.

use hyscale::core::drm::{DrmEngine, ThreadAlloc, WorkloadSplit};
use hyscale::core::{AcceleratorKind, PerfModel, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::{OGBN_PAPERS100M, OGBN_PRODUCTS};

fn settle(
    cfg: &SystemConfig,
    split: &mut WorkloadSplit,
    threads: &mut ThreadAlloc,
    iters: usize,
) -> (f64, f64) {
    let pm = PerfModel::new(cfg);
    let drm = DrmEngine::new(cfg.opt.hybrid);
    let first = pm
        .stage_times_runtime(&OGBN_PAPERS100M, split, threads)
        .pipelined_iteration();
    let mut best = first;
    for _ in 0..iters {
        let t = pm.stage_times_runtime(&OGBN_PAPERS100M, split, threads);
        drm.adjust(&t, split, threads);
        best = best.min(
            pm.stage_times_runtime(&OGBN_PAPERS100M, split, threads)
                .pipelined_iteration(),
        );
    }
    (first, best)
}

#[test]
fn drm_improves_bad_mapping() {
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    // pathological start: half the batch on the CPU trainer, starved
    // sampler threads
    let mut split = WorkloadSplit::new(2560, 5120, 4);
    let mut threads = ThreadAlloc {
        sampler: 2,
        loader: 2,
        trainer: 124,
    };
    let (first, best) = settle(&cfg, &mut split, &mut threads, 120);
    assert!(
        best < first * 0.7,
        "DRM failed to improve the mapping: {first:.5}s -> {best:.5}s"
    );
}

#[test]
fn drm_conserves_totals() {
    let cfg = SystemConfig::paper_default(AcceleratorKind::a5000(), GnnKind::GraphSage);
    let pm = PerfModel::new(&cfg);
    let drm = DrmEngine::new(true);
    let mut split = WorkloadSplit::new(1000, 5120, 4);
    let mut threads = ThreadAlloc::default_for(128);
    let thread_budget = threads.total();
    for _ in 0..60 {
        let t = pm.stage_times_runtime(&OGBN_PRODUCTS, &split, &threads);
        drm.adjust(&t, &mut split, &mut threads);
        assert_eq!(
            split.quotas().iter().sum::<usize>(),
            5120,
            "seed total changed — synchronous SGD semantics broken"
        );
        assert_eq!(threads.total(), thread_budget, "thread budget leaked");
        assert!(split.sampling_on_accel >= 0.0 && split.sampling_on_accel <= 1.0);
    }
}

#[test]
fn initial_mapping_is_coarse_but_sane() {
    // the paper's two-phase mapping story: the design-time mapping is
    // coarse; runtime DRM fine-tunes it. The coarse mapping should be
    // within a small factor of the settled optimum, and settling should
    // never make things worse.
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&cfg);
    let (mut split, mut threads) = pm.initial_mapping(&OGBN_PAPERS100M);
    let initial = pm
        .stage_times_runtime(&OGBN_PAPERS100M, &split, &threads)
        .pipelined_iteration();
    let (_, settled) = settle(&cfg, &mut split, &mut threads, 80);
    assert!(settled <= initial * 1.001, "DRM made the mapping worse");
    assert!(
        settled > initial * 0.2,
        "design-time mapping was absurdly far off: {initial:.5}s vs {settled:.5}s"
    );
}

#[test]
fn balance_thread_resizes_live_worker_pools() {
    // A DRM balance_thread decision must reach the rayon-shim worker
    // groups the real producer dispatches on — not only the simulated
    // StageTimes. Drive the engine with a loader-bottlenecked profile
    // and mirror its ThreadAlloc into StageWorkers, as the executor does.
    use hyscale::core::drm::DrmAction;
    use hyscale::core::stages::{Stage, StageTimes, StageWorkers};

    let engine = DrmEngine::new(true);
    let mut split = WorkloadSplit::new(1024, 5120, 4);
    let mut threads = ThreadAlloc {
        sampler: 10,
        loader: 10,
        trainer: 44,
    };
    let workers = StageWorkers::from_alloc(&threads);
    assert_eq!(workers.loader().width(), 10);

    // loader is the bottleneck, CPU sampler the fastest CPU task
    let times = StageTimes {
        sample_cpu: 0.05,
        sample_accel: 0.2,
        load: 3.0,
        transfer: 0.5,
        train_cpu: 1.0,
        train_accel: 0.5,
        sync: 0.0,
    };
    let action = engine.adjust(&times, &mut split, &mut threads);
    assert_eq!(
        action,
        DrmAction::BalanceThread {
            from: Stage::SampleCpu,
            to: Stage::Load
        }
    );
    workers.apply(&threads);
    assert_eq!(workers.loader().width(), 11, "loader pool not widened");
    assert_eq!(workers.sampler().width(), 9, "sampler pool not narrowed");
    assert_eq!(workers.observed(), threads);
    assert_eq!(
        workers.group(Stage::Load).unwrap().width(),
        threads.threads_for(Stage::Load)
    );
}

/// Build an [`IterationFeed`] over a toy dataset with `num_accel`
/// accelerator trainers, prefetch depth `depth`, and staging rings of
/// `ring_depth` slots, plus the quotas it was spawned under.
mod ring_fixture {
    use hyscale::core::drm::ThreadAlloc;
    use hyscale::core::stages::StageWorkers;
    use hyscale::core::{IterationFeed, MatrixPool, PrepareCtx, StagingRings, TransferLaneGate};
    use hyscale::graph::Dataset;
    use hyscale::sampler::{EpochBatcher, NeighborSampler};
    use hyscale::tensor::Precision;
    use std::sync::Arc;
    use std::time::Instant;

    pub fn feed(
        num_accel: usize,
        depth: usize,
        ring_depth: usize,
    ) -> (IterationFeed, Arc<MatrixPool>, Vec<usize>) {
        feed_with_quotas(num_accel, depth, ring_depth, vec![8usize; 1 + num_accel])
    }

    pub fn feed_with_quotas(
        num_accel: usize,
        depth: usize,
        ring_depth: usize,
        quotas: Vec<usize>,
    ) -> (IterationFeed, Arc<MatrixPool>, Vec<usize>) {
        let alloc = ThreadAlloc::default_for(8);
        // auto mode: the transfer-lane cap follows the loader budget
        let gate = Arc::new(TransferLaneGate::new(alloc.loader, true));
        feed_with_gate(num_accel, depth, ring_depth, quotas, gate)
    }

    pub fn feed_with_gate(
        num_accel: usize,
        depth: usize,
        ring_depth: usize,
        quotas: Vec<usize>,
        gate: Arc<TransferLaneGate>,
    ) -> (IterationFeed, Arc<MatrixPool>, Vec<usize>) {
        let dataset = Arc::new(Dataset::toy(5));
        let batcher = EpochBatcher::new(dataset.splits.train.clone(), 99);
        let order = Arc::new(batcher.epoch_order(0));
        let ctx = Arc::new(PrepareCtx {
            dataset,
            batcher,
            sampler: NeighborSampler::new(vec![4, 3], 17),
            precision: Precision::Int8,
            hybrid: true,
            workers: Arc::new(StageWorkers::from_alloc(&ThreadAlloc::default_for(8))),
            numa_domains: 2,
            rings: Arc::new(StagingRings::new(num_accel, ring_depth)),
            transfer_gate: gate,
            origin: Instant::now(),
        });
        let pool = Arc::new(MatrixPool::new());
        let feed = IterationFeed::new(
            ctx,
            order,
            0,
            usize::MAX,
            depth,
            Arc::clone(&pool),
            quotas.clone(),
        );
        (feed, pool, quotas)
    }

    /// Poll until the feed has at least `n` fully-prepared iterations
    /// buffered (salvage tests need a known amount of queued work
    /// before firing a re-map). Panics after ~5 s.
    pub fn wait_buffered(feed: &IterationFeed, n: usize) {
        for _ in 0..500 {
            if feed.buffered() >= n {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!(
            "producer never buffered {n} iterations (got {})",
            feed.buffered()
        );
    }
}

/// `balance_work` semantics are *surgical*: a quota change invalidates
/// only the trainers whose seed slice moved and drains only the staging
/// rings — and transfer lane channels — of the lanes whose share moved.
/// Untouched lanes keep their drain counts and their staged batches.
/// (The re-slice itself is deferred to the next `obtain`, where bursts
/// coalesce.)
#[test]
fn balance_work_drains_only_changed_lanes() {
    let (mut feed, pool, quotas) = ring_fixture::feed(2, 2, 2);
    let first = feed.obtain(0, &quotas).expect("first iteration");
    assert_eq!(first.slots.len(), 2, "one staging slot per accel batch");
    first.recycle(&pool);
    assert_eq!(feed.rings().drains_total(), 0);

    // the DRM moves 4 seeds from accel trainer 1 (lane 0) to the CPU
    // trainer; lane 1's slice (prefix 16, quota 8) is untouched
    let new_quotas = vec![12usize, 4, 8];
    feed.invalidate(1, new_quotas.clone());
    let second = feed.obtain(1, &new_quotas).expect("post-remap iteration");
    second.recycle(&pool);
    assert_eq!(feed.restarts(), 1, "balance_work must restart the producer");
    assert_eq!(feed.rings().ring(0).drains(), 1, "changed lane drained");
    assert_eq!(feed.rings().ring(1).drains(), 0, "untouched lane spared");
    assert_eq!(
        feed.rings().ring(0).channel_drains(),
        1,
        "changed lane's transfer channel drained"
    );
    assert_eq!(
        feed.rings().ring(1).channel_drains(),
        0,
        "untouched lane's transfer channel spared"
    );

    // the reverse move changes lane 0 again, and again spares lane 1
    let newer_quotas = vec![8usize, 8, 8];
    feed.invalidate(2, newer_quotas.clone());
    let third = feed.obtain(2, &newer_quotas).expect("post-drain iteration");
    assert_eq!(third.quotas, newer_quotas);
    assert_eq!(feed.rings().ring(0).drains(), 2);
    assert_eq!(feed.rings().ring(1).drains(), 0);
    assert_eq!(feed.rings().ring(0).channel_drains(), 2);
    assert_eq!(feed.rings().ring(1).channel_drains(), 0);
    third.recycle(&pool);
    let rings = std::sync::Arc::clone(feed.rings());
    feed.finish();
    assert_eq!(rings.in_flight_total(), 0, "slots leaked");
}

/// The ROADMAP coalescing follow-up, pinned: two back-to-back
/// `balance_work` moves of the *same* trainer (lane 0 donates seeds to
/// the CPU twice before the consumer's next obtain) must fold into ONE
/// re-slice against the final quotas — one producer restart, one ring
/// drain, one channel drain, and the queued iterations re-sliced once,
/// not twice.
#[test]
fn burst_of_same_trainer_moves_reslices_once() {
    let old_quotas = vec![12usize, 8, 8, 8];
    let (mut feed, pool, _) = ring_fixture::feed_with_quotas(3, 3, 2, old_quotas.clone());
    let first = feed.obtain(0, &old_quotas).expect("first iteration");
    first.recycle(&pool);
    ring_fixture::wait_buffered(&feed, 2);
    let queued = feed.buffered();
    assert_eq!(queued, 2, "ring depth 2 caps the prepared look-ahead at 2");

    // burst: [12,8,8,8] -> [14,6,8,8] -> [16,4,8,8], both moving seeds
    // from lane 0 to the CPU, recorded back-to-back between obtains
    feed.invalidate(1, vec![14usize, 6, 8, 8]);
    feed.invalidate(1, vec![16usize, 4, 8, 8]);
    assert_eq!(feed.remaps_coalesced(), 1, "second event must coalesce");

    let final_quotas = vec![16usize, 4, 8, 8];
    let second = feed.obtain(1, &final_quotas).expect("post-burst iteration");
    assert_eq!(second.quotas, final_quotas);
    assert_eq!(second.seed_sets[0].len(), 16);
    assert_eq!(second.seed_sets[1].len(), 4);
    second.recycle(&pool);

    // ONE re-slice for the whole burst: lane 0 drained once (ring and
    // channel), untouched lanes spared, producer restarted once, and
    // each queued iteration's movers flushed exactly once
    assert_eq!(feed.restarts(), 1, "burst must pay a single restart");
    assert_eq!(feed.rings().ring(0).drains(), 1, "lane 0 drains once");
    assert_eq!(feed.rings().ring(0).channel_drains(), 1);
    assert_eq!(feed.rings().ring(1).drains(), 0);
    assert_eq!(feed.rings().ring(2).drains(), 0);
    assert_eq!(feed.rings().ring(1).channel_drains(), 0);
    assert_eq!(feed.rings().ring(2).channel_drains(), 0);
    let (salvaged, flushed) = feed.salvage_stats();
    assert_eq!(
        salvaged,
        2 * queued,
        "lanes 1 and 2 of every queued iteration survive the burst"
    );
    assert_eq!(
        flushed,
        2 * queued,
        "CPU + lane 0 of every queued iteration re-sliced exactly once"
    );
    feed.finish();
}

/// The headline salvage pin: with 3 accelerator lanes, a quota diff
/// touching the CPU trainer and lane 0 (prefixes and quotas of lanes 1
/// and 2 unchanged) drains exactly lane 0's ring and salvages the
/// queued batches of the untouched trainers instead of flushing them.
#[test]
fn single_lane_quota_diff_salvages_untouched_trainers() {
    let old_quotas = vec![12usize, 8, 8, 8];
    let (mut feed, pool, _) = ring_fixture::feed_with_quotas(3, 3, 2, old_quotas.clone());
    let first = feed.obtain(0, &old_quotas).expect("first iteration");
    first.recycle(&pool);
    // Wait for the producer's *steady* fill: at ring depth 2 exactly two
    // iterations can be fully prepared (each holds a slot per lane; the
    // third blocks in acquire_slots), so the buffered count is stable at
    // 2 and the salvage accounting below is deterministic.
    ring_fixture::wait_buffered(&feed, 2);
    let queued = feed.buffered();
    assert_eq!(queued, 2, "ring depth 2 caps the prepared look-ahead at 2");

    // 4 seeds move from lane 0 to the CPU: [12,8,8,8] -> [16,4,8,8].
    // Lanes 1 and 2 keep both prefix (20, 28) and quota (8, 8).
    let new_quotas = vec![16usize, 4, 8, 8];
    feed.invalidate(1, new_quotas.clone());
    // deferred: the re-slice runs at the next obtain
    let second = feed.obtain(1, &new_quotas).expect("post-remap iteration");

    assert_eq!(feed.rings().ring(0).drains(), 1, "moved lane must drain");
    assert_eq!(feed.rings().ring(1).drains(), 0, "lane 1 spared");
    assert_eq!(feed.rings().ring(2).drains(), 0, "lane 2 spared");
    assert_eq!(
        feed.rings().ring(0).channel_drains(),
        1,
        "moved lane's transfer channel must drain"
    );
    assert_eq!(feed.rings().ring(1).channel_drains(), 0);
    assert_eq!(feed.rings().ring(2).channel_drains(), 0);

    let (salvaged, flushed) = feed.salvage_stats();
    assert!(
        salvaged >= 2,
        "lanes 1 and 2 of every queued iteration must be salvaged (got {salvaged})"
    );
    assert_eq!(
        salvaged,
        2 * queued,
        "exactly the two untouched trainers per queued iteration survive"
    );
    assert_eq!(
        flushed,
        2 * queued,
        "exactly the CPU trainer and lane 0 per queued iteration are re-sliced"
    );
    assert!(
        feed.invalidation_wall_s() > 0.0,
        "re-mapping wall-clock must be accounted"
    );

    // the salvaged iterations are served under the new quotas
    assert_eq!(second.quotas, new_quotas);
    assert_eq!(second.seed_sets[0].len(), 16);
    assert_eq!(second.seed_sets[1].len(), 4);
    assert_eq!(second.seed_sets[2].len(), 8);
    assert_eq!(second.seed_sets[3].len(), 8);
    second.recycle(&pool);
    let rings = std::sync::Arc::clone(feed.rings());
    feed.finish();
    assert_eq!(rings.in_flight_total(), 0, "slots leaked");
}

/// Regression for the latent zero-diff bug: a `balance_work` whose new
/// quotas equal the old used to pay a full drain + producer restart.
/// It must now be a complete no-op — nothing drained, nothing flushed,
/// no restart — and the feed keeps serving without a hiccup.
#[test]
fn zero_diff_balance_work_drains_nothing() {
    let (mut feed, pool, quotas) = ring_fixture::feed(3, 2, 2);
    let first = feed.obtain(0, &quotas).expect("first iteration");
    first.recycle(&pool);

    feed.invalidate(1, quotas.clone());
    for iter in 1..=2 {
        let prep = feed.obtain(iter, &quotas).expect("iteration after no-op");
        assert_eq!(prep.iter, iter);
        prep.recycle(&pool);
    }
    assert_eq!(
        feed.restarts(),
        0,
        "zero-diff re-map restarted the producer"
    );
    assert_eq!(feed.rings().drains_total(), 0, "zero-diff re-map drained");
    assert_eq!(
        feed.rings().channel_drains_total(),
        0,
        "zero-diff re-map drained a lane channel"
    );
    assert_eq!(
        feed.salvage_stats(),
        (0, 0),
        "zero-diff re-map flushed work"
    );
    assert_eq!(
        feed.invalidation_wall_s(),
        0.0,
        "a no-op re-map must not charge invalidation time"
    );
    feed.finish();
}

/// `balance_thread` semantics: re-sizing the worker pools — and, in
/// auto mode, the transfer-lane concurrency — must leave the staging
/// rings and lane channels intact: no drain, no restart, in-flight
/// staged batches stay valid (widths and lane counts change wall-clock,
/// never bytes).
#[test]
fn balance_thread_leaves_staging_rings_intact() {
    let (mut feed, pool, quotas) = ring_fixture::feed(2, 2, 2);
    let first = feed.obtain(0, &quotas).expect("first iteration");
    first.recycle(&pool);
    let cap_before = feed.transfer_gate().cap();
    assert!(cap_before >= 1);

    let moved = ThreadAlloc {
        sampler: 2,
        loader: 4,
        trainer: 2,
    };
    feed.rebalance_threads(&moved);
    assert_eq!(feed.workers().observed(), moved);
    // auto mode: the lane concurrency cap followed the loader budget —
    // a live resize with no draining of any kind
    assert_eq!(
        feed.transfer_gate().cap(),
        4,
        "transfer-lane cap must follow the loader budget in auto mode"
    );
    assert_eq!(feed.restarts(), 0, "balance_thread must not restart");
    assert_eq!(
        feed.rings().drains_total(),
        0,
        "balance_thread must not drain the staging rings"
    );
    assert_eq!(
        feed.rings().channel_drains_total(),
        0,
        "balance_thread must not drain the lane channels"
    );

    // prepared iterations keep flowing through the untouched rings,
    // including across a second lane-count change mid-stream
    for iter in 1..=3 {
        if iter == 2 {
            feed.rebalance_threads(&ThreadAlloc {
                sampler: 2,
                loader: 1,
                trainer: 5,
            });
            assert_eq!(feed.transfer_gate().cap(), 1, "lane cap narrowed live");
        }
        let prep = feed.obtain(iter, &quotas).expect("post-move iteration");
        assert_eq!(prep.slots.len(), 2);
        prep.recycle(&pool);
    }
    assert_eq!(feed.rings().drains_total(), 0);
    assert_eq!(feed.rings().channel_drains_total(), 0);
    let rings = std::sync::Arc::clone(feed.rings());
    feed.finish();
    assert_eq!(rings.in_flight_total(), 0, "slots leaked");
}

/// A fixed (non-auto) transfer-lane cap ignores `balance_thread` moves:
/// the operator pinned the lane concurrency, the DRM only re-sizes the
/// worker pools.
#[test]
fn fixed_transfer_lane_cap_ignores_thread_moves() {
    use hyscale::core::TransferLaneGate;
    let gate = std::sync::Arc::new(TransferLaneGate::new(2, false));
    let (mut feed, pool, quotas) = ring_fixture::feed_with_gate(2, 1, 2, vec![8usize, 8, 8], gate);
    let first = feed.obtain(0, &quotas).expect("first iteration");
    first.recycle(&pool);
    assert_eq!(feed.transfer_gate().cap(), 2);
    feed.rebalance_threads(&ThreadAlloc {
        sampler: 1,
        loader: 6,
        trainer: 1,
    });
    assert_eq!(
        feed.transfer_gate().cap(),
        2,
        "a pinned lane cap must not follow the loader budget"
    );
    feed.finish();
}

/// Lane starvation: one lane's channel backed up (its ring slots are
/// all held by the consumer) while the other lane idles — a DRM re-map
/// fired in that state must neither deadlock nor corrupt service, and
/// the starved lane's channel drain is surgical.
#[test]
fn lane_starvation_survives_remap_without_deadlock() {
    // ring depth 1 + held slots: after iteration 0 is obtained (and NOT
    // recycled), both rings' single slots stay occupied, so the lanes
    // block on slot acquisition and the gather stage backs work up into
    // the lane channels (prefetch depth 1 bounds each channel at 1).
    let (mut feed, pool, quotas) = ring_fixture::feed(2, 1, 1);
    let held = feed.obtain(0, &quotas).expect("first iteration");
    assert_eq!(held.slots.len(), 2, "iteration 0 holds both rings' slots");
    // give the producer time to wedge its lanes against the held slots
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert_eq!(
        feed.buffered(),
        0,
        "nothing can assemble while slots are held"
    );

    // re-map while the lanes are starved: lane 0's slice moves, lane 1
    // settles
    let new_quotas = vec![10usize, 6, 8];
    feed.invalidate(1, new_quotas.clone());
    // release the held slots only now — the apply path must cope with a
    // producer that was fully wedged
    held.recycle(&pool);
    let next = feed
        .obtain(1, &new_quotas)
        .expect("post-starvation iteration");
    assert_eq!(next.quotas, new_quotas);
    assert_eq!(next.seed_sets[0].len(), 10);
    assert_eq!(next.seed_sets[1].len(), 6);
    assert_eq!(
        feed.rings().ring(0).channel_drains(),
        1,
        "starved lane drained"
    );
    assert_eq!(
        feed.rings().ring(1).channel_drains(),
        0,
        "settled lane spared"
    );
    next.recycle(&pool);
    // the feed keeps serving normally afterwards
    let after = feed.obtain(2, &new_quotas).expect("steady service resumes");
    after.recycle(&pool);
    let rings = std::sync::Arc::clone(feed.rings());
    feed.finish();
    assert_eq!(rings.in_flight_total(), 0, "slots leaked");
}

/// Single-slot rings (ring depth 1) still serve the feed correctly —
/// the transfer stage just serializes against slot release.
#[test]
fn single_slot_rings_serve_and_drain() {
    let (mut feed, pool, quotas) = ring_fixture::feed(2, 1, 1);
    for iter in 0..3 {
        let prep = feed.obtain(iter, &quotas).expect("iteration");
        assert_eq!(prep.slots.len(), 2);
        assert!(prep.slots.iter().all(|s| s.accel() < 2));
        prep.recycle(&pool);
    }
    let new_quotas = vec![10usize, 6, 8];
    feed.invalidate(3, new_quotas.clone());
    let next = feed.obtain(3, &new_quotas).expect("post-drain");
    // surgical: only lane 0's slice moved ([8..16] -> [10..16])
    assert_eq!(feed.rings().ring(0).drains(), 1);
    assert_eq!(feed.rings().ring(1).drains(), 0);
    next.recycle(&pool);
    let rings = std::sync::Arc::clone(feed.rings());
    feed.finish();
    assert_eq!(rings.in_flight_total(), 0);
}
