//! Regenerates paper Table IV: FPGA hardware parameters and resource
//! utilization, plus a small design-space exploration around it.

use hyscale_bench::Table;
use hyscale_device::fpga::resource::{ResourceUsage, U250_RESOURCES};

fn main() {
    println!("Table IV: Hardware parameters and resource utilization (U250)\n");
    let mut t = Table::new(&["(n, m)", "LUTs", "DSPs", "URAM", "BRAM", "fits"]);
    for (n, m) in [(4usize, 1024usize), (8, 2048), (16, 2048), (8, 4096)] {
        let u = ResourceUsage::estimate(n, m, &U250_RESOURCES);
        t.row(vec![
            format!("({n}, {m})"),
            format!("{:.0}%", u.lut * 100.0),
            format!("{:.0}%", u.dsp * 100.0),
            format!("{:.0}%", u.uram * 100.0),
            format!("{:.0}%", u.bram * 100.0),
            u.fits().to_string(),
        ]);
    }
    t.print();
    println!("\npaper row (8, 2048): LUT 72%  DSP 90%  URAM 48%  BRAM 40%");
    let (n, m) = ResourceUsage::max_config(&U250_RESOURCES);
    println!("largest feasible configuration found by the explorer: (n, m) = ({n}, {m})");
}
