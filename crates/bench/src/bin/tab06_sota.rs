//! Regenerates paper Table VI: epoch-time comparison with
//! state-of-the-art large-scale GNN training systems. Each comparison
//! reuses the competitor's model configuration (Table V): PaGraph and P3
//! with fanout (25,10); P3 with hidden dim 32; DistDGLv2 with a 3-layer
//! model, fanout (15,10,5). "This Work" is the CPU + 4×U250 system.

use hyscale_baselines::{BaselineSystem, DistDglV2, PaGraph, SotaConfig, P3};
use hyscale_bench::{geo_mean, simulate_epoch, Table, DRM_SETTLE_ITERS};
use hyscale_core::config::AcceleratorKind;
use hyscale_core::SystemConfig;
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::{DatasetSpec, OGBN_PAPERS100M, OGBN_PRODUCTS};

fn this_work(ds: &DatasetSpec, model: GnnKind, sota: &SotaConfig) -> f64 {
    let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
    cfg.train.fanouts = sota.fanouts.clone();
    cfg.train.hidden_dim = sota.hidden_dim;
    cfg.train.batch_per_trainer = sota.batch_per_trainer;
    simulate_epoch(&cfg, ds, DRM_SETTLE_ITERS).epoch_time_s
}

fn main() {
    println!("Table VI: epoch time (s) comparison with state-of-the-art\n");
    let datasets = [OGBN_PRODUCTS, OGBN_PAPERS100M];

    let mut t = Table::new(&[
        "System",
        "products GCN",
        "products SAGE",
        "papers GCN",
        "papers SAGE",
        "geo-mean speedup",
    ]);

    // --- PaGraph block ---
    let pagraph = PaGraph::paper_setup();
    let cfg = SotaConfig::pagraph();
    let theirs: Vec<f64> = datasets
        .iter()
        .flat_map(|ds| [GnnKind::Gcn, GnnKind::GraphSage].map(|m| pagraph.epoch_time(ds, m, &cfg)))
        .collect();
    let ours: Vec<f64> = datasets
        .iter()
        .flat_map(|ds| [GnnKind::Gcn, GnnKind::GraphSage].map(|m| this_work(ds, m, &cfg)))
        .collect();
    push_pair(&mut t, "PaGraph", &theirs, &ours);

    // --- P3 block ---
    let p3 = P3::paper_setup();
    let cfg = SotaConfig::p3();
    let theirs: Vec<f64> = datasets
        .iter()
        .flat_map(|ds| [GnnKind::Gcn, GnnKind::GraphSage].map(|m| p3.epoch_time(ds, m, &cfg)))
        .collect();
    let ours: Vec<f64> = datasets
        .iter()
        .flat_map(|ds| [GnnKind::Gcn, GnnKind::GraphSage].map(|m| this_work(ds, m, &cfg)))
        .collect();
    push_pair(&mut t, "P3", &theirs, &ours);

    // --- DistDGLv2 block (SAGE only, as in the paper) ---
    let dd = DistDglV2::paper_setup();
    let cfg = SotaConfig::distdgl();
    let theirs: Vec<f64> = datasets
        .iter()
        .map(|ds| dd.epoch_time(ds, GnnKind::GraphSage, &cfg))
        .collect();
    let ours: Vec<f64> = datasets
        .iter()
        .map(|ds| this_work(ds, GnnKind::GraphSage, &cfg))
        .collect();
    let speedups: Vec<f64> = theirs.iter().zip(&ours).map(|(t, o)| t / o).collect();
    t.row(vec![
        "DistDGLv2".into(),
        "-".into(),
        format!("{:.2}", theirs[0]),
        "-".into(),
        format!("{:.2}", theirs[1]),
        "1x".into(),
    ]);
    t.row(vec![
        "This Work".into(),
        "-".into(),
        format!("{:.2}", ours[0]),
        "-".into(),
        format!("{:.2}", ours[1]),
        format!("{:.2}x", geo_mean(&speedups)),
    ]);

    t.print();
    println!("\npaper: vs PaGraph 1.76x, vs P3 4.57x, vs DistDGLv2 0.45x (geo-mean)");
}

fn push_pair(t: &mut Table, name: &str, theirs: &[f64], ours: &[f64]) {
    let speedups: Vec<f64> = theirs.iter().zip(ours).map(|(a, b)| a / b).collect();
    t.row(vec![
        name.into(),
        format!("{:.2}", theirs[0]),
        format!("{:.2}", theirs[1]),
        format!("{:.2}", theirs[2]),
        format!("{:.2}", theirs[3]),
        "1x".into(),
    ]);
    t.row(vec![
        "This Work".into(),
        format!("{:.2}", ours[0]),
        format!("{:.2}", ours[1]),
        format!("{:.2}", ours[2]),
        format!("{:.2}", ours[3]),
        format!("{:.2}x", geo_mean(&speedups)),
    ]);
}
