//! Deterministic weight initialisation.
//!
//! Every trainer replica must start from identical weights (synchronous
//! SGD keeps replicas in lock-step; paper §II-B), so all initialisers are
//! seeded.

use crate::matrix::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Weight initialisation schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initializer {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Kaiming/He uniform for ReLU networks: `a = sqrt(6 / fan_in)`.
    KaimingUniform,
    /// All zeros (used for biases).
    Zeros,
}

impl Initializer {
    /// Materialize a `fan_in × fan_out` matrix with this scheme.
    pub fn init(self, fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
        match self {
            Initializer::XavierUniform => xavier_uniform(fan_in, fan_out, seed),
            Initializer::KaimingUniform => {
                let bound = (6.0 / fan_in.max(1) as f32).sqrt();
                uniform(fan_in, fan_out, bound, seed)
            }
            Initializer::Zeros => Matrix::zeros(fan_in, fan_out),
        }
    }
}

/// Glorot/Xavier uniform initialisation of a `fan_in × fan_out` weight
/// matrix, deterministic in `seed`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(fan_in, fan_out, bound, seed)
}

fn uniform(rows: usize, cols: usize, bound: f32, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Standard-normal samples via Box–Muller (avoids the `rand_distr`
/// dependency), deterministic in `seed`. Used for synthetic features.
pub fn randn(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos());
        if data.len() < n {
            data.push(r * theta.sin());
        }
    }
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound() {
        let m = xavier_uniform(64, 32, 7);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = xavier_uniform(10, 10, 42);
        let b = xavier_uniform(10, 10, 42);
        let c = xavier_uniform(10, 10, 43);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn zeros_initializer() {
        let m = Initializer::Zeros.init(3, 4, 0);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn kaiming_bound_uses_fan_in() {
        let m = Initializer::KaimingUniform.init(24, 8, 1);
        let bound = (6.0f32 / 24.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn randn_moments_are_plausible() {
        let m = randn(200, 50, 3);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn randn_odd_count() {
        // Box-Muller emits pairs; ensure odd lengths are handled.
        let m = randn(3, 3, 5);
        assert_eq!(m.len(), 9);
    }
}
