//! Set-associative gather-cache simulation.
//!
//! Grounds the GPU cache-inefficiency factor α (paper §VI-E1 cites \[33]:
//! "traditional cache policies fail to capture the data access pattern in
//! GNN training"). Feature-row gathers during aggregation are simulated
//! against an LRU set-associative cache sized like a GPU L2; the measured
//! miss traffic divided by compulsory traffic is the α used by
//! [`crate::timing::GpuTiming`].

/// LRU set-associative cache over feature-row addresses.
#[derive(Debug, Clone)]
pub struct GatherCacheSim {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    /// `tags[set]` holds up to `ways` line tags in LRU order (front =
    /// most recent).
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl GatherCacheSim {
    /// Cache with `capacity_bytes` arranged as `ways`-way sets of
    /// `line_bytes` lines.
    ///
    /// # Panics
    /// If geometry does not divide evenly or is zero-sized.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && line_bytes > 0);
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways, "cache smaller than one set");
        let sets = lines / ways;
        Self {
            sets,
            ways,
            line_bytes,
            tags: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// A 6 MB, 16-way, 128-byte-line cache (RTX A5000 L2 scale).
    pub fn a5000_l2() -> Self {
        Self::new(6 * 1024 * 1024, 16, 128)
    }

    /// Access one byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let ways = self.ways;
        let tags = &mut self.tags[set];
        if let Some(pos) = tags.iter().position(|&t| t == line) {
            let t = tags.remove(pos);
            tags.insert(0, t);
            self.hits += 1;
            true
        } else {
            if tags.len() == ways {
                tags.pop();
            }
            tags.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Simulate gathering `row_bytes`-wide feature rows at the given row
    /// indices (e.g. the `edge_src` stream of a mini-batch block).
    pub fn gather_rows(&mut self, rows: &[u32], row_bytes: usize) {
        for &r in rows {
            let base = r as u64 * row_bytes as u64;
            let mut off = 0usize;
            while off < row_bytes {
                self.access(base + off as u64);
                off += self.line_bytes;
            }
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// DRAM traffic in bytes caused by misses.
    pub fn miss_traffic_bytes(&self) -> u64 {
        self.misses * self.line_bytes as u64
    }

    /// Traffic amplification vs. a perfect (fully-reused) cache:
    /// `miss_traffic / compulsory_traffic` where compulsory = one fetch
    /// per distinct line touched. This is the measured α.
    pub fn alpha(&self, distinct_lines: u64) -> f64 {
        if distinct_lines == 0 {
            return 1.0;
        }
        self.misses as f64 / distinct_lines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn repeated_access_hits() {
        let mut c = GatherCacheSim::new(4096, 4, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(32)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set, 2 ways, 64B lines
        let mut c = GatherCacheSim::new(128, 2, 64);
        assert_eq!(c.sets, 1);
        c.access(0); // line 0
        c.access(64); // line 1
        c.access(128); // line 2, evicts line 0
        assert!(!c.access(0), "line 0 should have been evicted");
        assert!(c.access(128 /* still resident */));
    }

    #[test]
    fn sequential_rows_mostly_hit_after_first() {
        let mut c = GatherCacheSim::new(1 << 20, 8, 128);
        // three passes over a 50 KB working set that fits the 1 MB cache
        let rows: Vec<u32> = (0..100).chain(0..100).chain(0..100).collect();
        c.gather_rows(&rows, 512);
        assert!(c.hits() > c.misses());
    }

    #[test]
    fn random_gather_on_large_table_thrashes() {
        // High reuse potential (40k accesses over 10k rows) but a working
        // set (5 MB) far beyond the cache (64 KB): nearly every access
        // misses, so traffic amplification α approaches the reuse factor.
        // This is the GNN gather pattern of paper §VI-E1 / [33].
        let mut c = GatherCacheSim::new(64 * 1024, 8, 128);
        let mut rng = SmallRng::seed_from_u64(3);
        let rows: Vec<u32> = (0..40_000).map(|_| rng.gen_range(0..10_000)).collect();
        let row_bytes = 512usize;
        c.gather_rows(&rows, row_bytes);
        let distinct: std::collections::HashSet<u32> = rows.iter().copied().collect();
        let distinct_lines = distinct.len() as u64 * (row_bytes / 128) as u64;
        let alpha = c.alpha(distinct_lines);
        assert!(alpha > 2.5, "expected thrashing, α = {alpha}");
    }

    #[test]
    fn miss_traffic_counts_lines() {
        let mut c = GatherCacheSim::new(4096, 4, 64);
        c.access(0);
        c.access(4096);
        assert_eq!(c.miss_traffic_bytes(), 128);
    }
}
