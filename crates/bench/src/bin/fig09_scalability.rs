//! Regenerates paper Fig. 9: scalability of the hybrid training system —
//! normalized speedup for 1/2/4/8/16 accelerators on all three datasets
//! and both models, predicted by the performance model (as in the
//! paper, §VI-D). The limiting factor at high accelerator counts is CPU
//! memory bandwidth (the Feature Loader saturating DRAM).

use hyscale_bench::Table;
use hyscale_core::config::AcceleratorKind;
use hyscale_core::{PerfModel, SystemConfig};
use hyscale_gnn::GnnKind;
use hyscale_graph::dataset::ALL_DATASETS;

fn main() {
    println!("Fig. 9: scalability (normalized speedup vs 1 accelerator), CPU-FPGA platform\n");
    let counts = [1usize, 2, 4, 8, 16];
    let mut t = Table::new(&["Dataset", "Model", "x1", "x2", "x4", "x8", "x16"]);
    for ds in ALL_DATASETS {
        for model in [GnnKind::Gcn, GnnKind::GraphSage] {
            let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), model);
            let pm = PerfModel::new(&cfg);
            let speedups = pm.scalability(&ds, &counts);
            let mut row = vec![ds.name.to_string(), model.name().to_string()];
            row.extend(speedups.iter().map(|(_, s)| format!("{s:.2}")));
            t.row(row);
        }
    }
    t.print();
    println!("\npaper: good scaling to ~12 FPGAs, CPU memory bandwidth saturates beyond;");
    println!("       ogbn-products + GCN scales worst (PCIe transfer bound).");
}
