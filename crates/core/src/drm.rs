//! Dynamic Resource Management (paper §IV-A, Algorithm 1).
//!
//! A bottleneck-guided optimizer that runs once per training iteration.
//! It identifies the slowest of five tasks — CPU sampling, accelerator
//! sampling, feature loading, CPU training, and the bundled
//! transfer+accelerator-training task — and applies one of two moves:
//!
//! * **`balance_work`** — shift mini-batch seeds (or sampling share)
//!   between the CPUs and the accelerators. The total per-iteration
//!   seed count never changes, so synchronous-SGD semantics are
//!   preserved.
//! * **`balance_thread`** — move one CPU worker thread from the fastest
//!   CPU-resident task to the bottleneck CPU task.

use crate::stages::{Stage, StageTimes};

/// Per-iteration seed quotas: one CPU trainer plus `num_accelerators`
/// identical accelerator trainers. The invariant `cpu_quota +
/// Σ accel = total` holds across every DRM move.
///
/// ```
/// use hyscale_core::WorkloadSplit;
///
/// let mut split = WorkloadSplit::new(1024, 5120, 4);
/// assert_eq!(split.quotas(), vec![1024, 1024, 1024, 1024, 1024]);
/// split.shift_to_cpu(100); // a balance_work move
/// assert_eq!(split.cpu_quota, 1124);
/// assert_eq!(split.quotas().iter().sum::<usize>(), 5120); // invariant
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSplit {
    /// Seeds assigned to the CPU trainer each iteration.
    pub cpu_quota: usize,
    /// Total seeds per iteration (constant).
    pub total: usize,
    /// Number of accelerator trainers.
    pub num_accelerators: usize,
    /// Fraction of the sampling workload executed on accelerators.
    pub sampling_on_accel: f64,
}

impl WorkloadSplit {
    /// Split with `cpu_quota` seeds on the CPU and the rest spread over
    /// the accelerators.
    ///
    /// # Panics
    /// If `cpu_quota > total` or there are no accelerators.
    pub fn new(cpu_quota: usize, total: usize, num_accelerators: usize) -> Self {
        assert!(num_accelerators > 0, "need at least one accelerator");
        assert!(cpu_quota <= total, "cpu quota exceeds total batch");
        Self {
            cpu_quota,
            total,
            num_accelerators,
            sampling_on_accel: 0.0,
        }
    }

    /// Seeds assigned to accelerator `i` (even split, remainder to the
    /// lowest-indexed devices).
    pub fn accel_quota(&self, i: usize) -> usize {
        let pool = self.total - self.cpu_quota;
        let base = pool / self.num_accelerators;
        let rem = pool % self.num_accelerators;
        base + usize::from(i < rem)
    }

    /// All quotas in trainer order: `[cpu, accel_0, .., accel_{A-1}]`.
    pub fn quotas(&self) -> Vec<usize> {
        let mut q = Vec::with_capacity(1 + self.num_accelerators);
        q.push(self.cpu_quota);
        for i in 0..self.num_accelerators {
            q.push(self.accel_quota(i));
        }
        q
    }

    /// Move up to `n` seeds from the accelerator pool to the CPU trainer;
    /// returns the number actually moved.
    pub fn shift_to_cpu(&mut self, n: usize) -> usize {
        let pool = self.total - self.cpu_quota;
        // keep at least one seed per accelerator so every device trains
        let movable = pool.saturating_sub(self.num_accelerators);
        let moved = n.min(movable);
        self.cpu_quota += moved;
        moved
    }

    /// Move up to `n` seeds from the CPU trainer to the accelerator pool;
    /// returns the number actually moved.
    pub fn shift_to_accel(&mut self, n: usize) -> usize {
        let moved = n.min(self.cpu_quota);
        self.cpu_quota -= moved;
        moved
    }
}

/// Trainer-level diff of a `balance_work` re-mapping: which trainers'
/// seed slices move when the per-iteration quotas change from `old` to
/// `new`.
///
/// Within an iteration, trainer `t` consumes the contiguous slice
/// `[prefix(t), prefix(t) + q[t])` of the epoch order (see
/// [`EpochBatcher::iteration_seeds`](hyscale_sampler::EpochBatcher)), so
/// its slice is unchanged exactly when both its prefix offset and its
/// own quota are. Only the changed trainers need re-slicing after a
/// `balance_work` move — settled trainers keep their prepared batches,
/// and only the staging rings of *changed* accelerator lanes need a
/// drain. A diff where nothing moved ([`is_noop`](Self::is_noop)) is
/// the zero-diff `balance_work` the prefetcher treats as a no-op.
///
/// ```
/// use hyscale_core::drm::QuotaDiff;
///
/// // CPU gains 4 seeds from accelerator lane 0; lanes 1 and 2 settle.
/// let diff = QuotaDiff::between(&[12, 8, 8, 8], &[16, 4, 8, 8]);
/// assert!(!diff.is_noop());
/// assert_eq!(diff.num_changed(), 2); // CPU trainer + accel trainer 0
/// assert_eq!(diff.changed_lanes(true, 3), vec![true, false, false]);
/// assert!(QuotaDiff::between(&[8, 8], &[8, 8]).is_noop());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaDiff {
    changed: Vec<bool>,
}

impl QuotaDiff {
    /// Diff the per-trainer quotas `old` → `new`. A change in trainer
    /// count or in the per-iteration total moves *every* slice (the
    /// iteration's start offset depends on the total), so those diffs
    /// mark all trainers changed.
    pub fn between(old: &[usize], new: &[usize]) -> Self {
        if old.len() != new.len() || old.iter().sum::<usize>() != new.iter().sum::<usize>() {
            return Self {
                changed: vec![true; new.len().max(old.len())],
            };
        }
        let mut changed = Vec::with_capacity(new.len());
        let (mut old_prefix, mut new_prefix) = (0usize, 0usize);
        for (&o, &n) in old.iter().zip(new) {
            changed.push(old_prefix != new_prefix || o != n);
            old_prefix += o;
            new_prefix += n;
        }
        Self { changed }
    }

    /// `true` when no trainer's slice moved (a zero-diff re-map).
    pub fn is_noop(&self) -> bool {
        !self.changed.iter().any(|&c| c)
    }

    /// Whether trainer `t`'s seed slice moved (out-of-range trainers
    /// count as changed — a topology change invalidates everything).
    pub fn trainer_changed(&self, t: usize) -> bool {
        self.changed.get(t).copied().unwrap_or(true)
    }

    /// Number of trainers whose slice moved.
    pub fn num_changed(&self) -> usize {
        self.changed.iter().filter(|&&c| c).count()
    }

    /// Per-accelerator-lane change mask: lane `a` serves trainer
    /// `a + usize::from(hybrid)` (the CPU trainer, when hybrid, holds
    /// index 0 and has no staging lane). Only `true` lanes need their
    /// staging ring drained.
    pub fn changed_lanes(&self, hybrid: bool, num_lanes: usize) -> Vec<bool> {
        let offset = usize::from(hybrid);
        (0..num_lanes)
            .map(|a| self.trainer_changed(a + offset))
            .collect()
    }
}

/// CPU worker-thread allocation across the CPU-resident tasks.
///
/// This is the DRM's *model* of the thread budget; the executor mirrors
/// it into live [`StageWorkers`](crate::stages::StageWorkers) pools so a
/// `balance_thread` move re-sizes the partition widths the prefetch
/// producer actually dispatches on.
///
/// ```
/// use hyscale_core::ThreadAlloc;
///
/// let alloc = ThreadAlloc::default_for(128);
/// assert_eq!(alloc.total(), 128);
/// assert_eq!(alloc.trainer, 64); // 25% / 25% / 50% design-time split
/// ```
///
/// The all-zero [`Default`] means "unrecorded" in wall-clock reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadAlloc {
    /// Threads running the Mini-batch Sampler.
    pub sampler: usize,
    /// Threads running the Feature Loader.
    pub loader: usize,
    /// Threads running the CPU GNN Trainer.
    pub trainer: usize,
}

impl ThreadAlloc {
    /// Default design-time allocation over `total` worker threads:
    /// 25 % sampler, 25 % loader, 50 % trainer (at least one each).
    pub fn default_for(total: usize) -> Self {
        let total = total.max(3);
        let sampler = (total / 4).max(1);
        let loader = (total / 4).max(1);
        let trainer = total - sampler - loader;
        Self {
            sampler,
            loader,
            trainer,
        }
    }

    /// Total allocated threads.
    pub fn total(&self) -> usize {
        self.sampler + self.loader + self.trainer
    }

    /// Threads budgeted to `stage` (0 for non-CPU tasks).
    pub fn threads_for(&self, stage: Stage) -> usize {
        match stage {
            Stage::SampleCpu => self.sampler,
            Stage::Load => self.loader,
            Stage::TrainCpu => self.trainer,
            _ => 0,
        }
    }

    /// Move one thread from `from` to `to` (both CPU tasks), as a
    /// scripted `balance_thread` would. Returns `false` without moving
    /// anything when `from` has no thread to spare (≤ 1), when either
    /// stage is not a CPU task, or when `from == to` — so the total
    /// budget is conserved exactly.
    pub fn shift(&mut self, from: Stage, to: Stage) -> bool {
        if from == to || !from.is_cpu_task() || !to.is_cpu_task() || self.threads_for(from) <= 1 {
            return false;
        }
        self.add(from, -1);
        self.add(to, 1);
        true
    }

    fn add(&mut self, stage: Stage, delta: isize) {
        let slot = match stage {
            Stage::SampleCpu => &mut self.sampler,
            Stage::Load => &mut self.loader,
            Stage::TrainCpu => &mut self.trainer,
            _ => return,
        };
        *slot = (*slot as isize + delta).max(1) as usize;
    }
}

/// The action the DRM engine took this iteration (for traces and tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DrmAction {
    /// Moved trainer seeds between CPU and accelerators.
    BalanceWork {
        /// Positive: seeds moved to the CPU; negative: to accelerators.
        to_cpu: isize,
    },
    /// Moved sampling share between CPU and accelerators.
    BalanceSampling {
        /// Positive: share moved to accelerators.
        to_accel: f64,
    },
    /// Moved one thread between CPU tasks.
    BalanceThread {
        /// Donor task.
        from: Stage,
        /// Recipient task.
        to: Stage,
    },
    /// No profitable move found.
    None,
}

/// One scripted DRM move, applied by the executor after iteration
/// `iter` of epoch `epoch` — the deterministic stand-in for an
/// Algorithm 1 decision, used by the randomized DRM-schedule
/// equivalence harness (and benchmarks) to fire `balance_work` /
/// `balance_thread` / no-op events at chosen points without depending
/// on the engine's bottleneck heuristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedDrmEvent {
    /// Epoch the event fires in.
    pub epoch: u64,
    /// Iteration (within the epoch) after which the event fires.
    pub iter: usize,
    /// The move to apply.
    pub action: ScriptedDrm,
}

/// The move kinds a [`ScriptedDrmEvent`] can apply. Each maps onto the
/// same executor paths the live [`DrmEngine`] drives, so a scripted
/// schedule exercises exactly the production invalidation machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScriptedDrm {
    /// `balance_work`: shift up to `to_cpu.unsigned_abs()` seeds toward
    /// the CPU trainer (positive) or the accelerator pool (negative).
    /// The split clamps the move, so a scripted shift may land as a
    /// *zero-diff* re-map — deliberately: that is the no-op
    /// invalidation path under test.
    BalanceWork {
        /// Positive: seeds toward the CPU; negative: toward accelerators.
        to_cpu: isize,
    },
    /// `balance_thread`: move one thread `from` → `to` (clamped like
    /// [`ThreadAlloc::shift`]).
    BalanceThread {
        /// Donor CPU task.
        from: Stage,
        /// Recipient CPU task.
        to: Stage,
    },
    /// Re-issue the current quotas unchanged — a pure zero-diff
    /// `balance_work` that a surgical invalidator must treat as free.
    Noop,
}

/// The bottleneck-guided optimizer of Algorithm 1.
///
/// One [`adjust`](Self::adjust) call inspects the latest stage times and
/// mutates the mapping for the next iteration:
///
/// ```
/// use hyscale_core::{DrmEngine, ThreadAlloc, WorkloadSplit};
/// use hyscale_core::drm::DrmAction;
/// use hyscale_core::stages::StageTimes;
///
/// let engine = DrmEngine::new(true);
/// let mut split = WorkloadSplit::new(1024, 5120, 4);
/// let mut threads = ThreadAlloc::default_for(64);
/// // the bundled transfer + accelerator-training task is the bottleneck
/// let times = StageTimes {
///     sample_cpu: 0.1, sample_accel: 0.1, load: 0.2,
///     transfer: 0.5, train_cpu: 0.3, train_accel: 2.0, sync: 0.0,
/// };
/// let action = engine.adjust(&times, &mut split, &mut threads);
/// assert!(matches!(action, DrmAction::BalanceWork { to_cpu } if to_cpu > 0));
/// assert!(split.cpu_quota > 1024); // seeds moved toward the CPU trainer
/// ```
#[derive(Debug, Clone)]
pub struct DrmEngine {
    /// Fraction of the total batch moved per `balance_work` call.
    pub work_step: f64,
    /// Sampling-share step per `balance_sampling` call.
    pub sampling_step: f64,
    /// Hybrid training enabled (a CPU trainer exists to receive work).
    pub hybrid: bool,
}

impl DrmEngine {
    /// Engine with the default 5 % work step.
    pub fn new(hybrid: bool) -> Self {
        Self {
            work_step: 0.05,
            sampling_step: 0.1,
            hybrid,
        }
    }

    /// One Algorithm 1 decision: inspect `times`, mutate `split` /
    /// `threads` for the next iteration, and report the action taken.
    ///
    /// Uses the paper's bundled `T_Accel = max(T_Tran, T_TA)` — the
    /// perfect-overlap assumption. When the pipeline *measures* (or
    /// models) how much wire time the staging rings actually hid, use
    /// [`adjust_with_visible`](Self::adjust_with_visible) instead.
    pub fn adjust(
        &self,
        times: &StageTimes,
        split: &mut WorkloadSplit,
        threads: &mut ThreadAlloc,
    ) -> DrmAction {
        self.adjust_with_visible(
            times,
            (times.transfer - times.train_accel).max(0.0),
            split,
            threads,
        )
    }

    /// Overlap-aware Algorithm 1 decision: like [`adjust`](Self::adjust)
    /// but the bundled accelerator task is charged
    /// `T_TA + visible_transfer` ([`StageTimes::accel_with_visible`])
    /// instead of `max(T_Tran, T_TA)`. `visible_transfer` is the
    /// un-hidden share of the wire time — full `T_Tran` at staging-ring
    /// depth 1 (nothing can hide), `(T_Tran - T_TA)⁺` under
    /// double-buffered rings (reproducing `adjust` exactly), or the
    /// measured `transfer_s - transfer_hidden_s` from a live
    /// [`WallStageTimes`](crate::report::WallStageTimes). A
    /// bandwidth-bound lane (ring depth 1, fat batches) thus inflates
    /// the accelerator task and biases `balance_work` toward moving
    /// seeds off the starved links.
    pub fn adjust_with_visible(
        &self,
        times: &StageTimes,
        visible_transfer: f64,
        split: &mut WorkloadSplit,
        threads: &mut ThreadAlloc,
    ) -> DrmAction {
        let accel_time = times.accel_with_visible(visible_transfer);
        let tasks = {
            let mut t = times.drm_tasks();
            t[4].1 = accel_time;
            t
        };
        let bottleneck = tasks
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
            .expect("five tasks");
        let fastest = tasks
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
            .expect("five tasks");
        // second-fastest (Sorted_list[3] in the paper's descending sort)
        let mut sorted = tasks;
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let second = sorted[1];

        // Damped, gap-proportional step: moves shrink as the system
        // approaches balance, preventing oscillation (implementation
        // refinement over the paper's fixed-step description).
        let gap_factor = |other: f64| {
            if bottleneck.1 <= 0.0 {
                0.0
            } else {
                ((bottleneck.1 - other) / bottleneck.1).clamp(0.0, 1.0)
            }
        };
        let total = split.total;
        let step = move |other: f64| {
            ((total as f64 * self.work_step * gap_factor(other)).round() as usize).max(1)
        };

        match bottleneck.0 {
            // line 11: accelerator sampler is the bottleneck -> move
            // sampling work to the CPU
            Stage::SampleAccel => {
                let f = gap_factor(times.sample_cpu);
                if f < 0.05 {
                    return DrmAction::None;
                }
                let delta = (self.sampling_step * f).min(split.sampling_on_accel);
                split.sampling_on_accel -= delta;
                DrmAction::BalanceSampling { to_accel: -delta }
            }
            // line 13: transfer+accelerator training is the bottleneck ->
            // move trainer seeds to the CPU
            Stage::Accel => {
                if !self.hybrid || gap_factor(times.train_cpu) < 0.05 {
                    return DrmAction::None;
                }
                let moved = split.shift_to_cpu(step(times.train_cpu));
                if moved == 0 {
                    DrmAction::None
                } else {
                    DrmAction::BalanceWork {
                        to_cpu: moved as isize,
                    }
                }
            }
            // line 15: loader bottleneck -> re-assign threads from the
            // fastest CPU task
            Stage::Load => self.steal_thread(times, threads, Stage::Load),
            // line 17: CPU sampler bottleneck
            Stage::SampleCpu => {
                // the accelerator sampler is an attractive target either
                // when Algorithm 1's conditions name it, or when it has
                // substantial headroom (gross imbalance: thread-stealing
                // alone would take too many iterations to catch up)
                let accel_sampler_fast = fastest.0 == Stage::SampleAccel
                    || (fastest.0 == Stage::Accel && second.0 == Stage::SampleAccel)
                    || gap_factor(times.sample_accel) >= 0.3;
                if accel_sampler_fast && split.sampling_on_accel < 1.0 {
                    let f = gap_factor(times.sample_accel);
                    let delta = (self.sampling_step * f).min(1.0 - split.sampling_on_accel);
                    split.sampling_on_accel += delta;
                    DrmAction::BalanceSampling { to_accel: delta }
                } else {
                    match self.steal_thread(times, threads, Stage::SampleCpu) {
                        // no donor threads left: fall back to offloading
                        // sampling if the accelerators can sample at all
                        DrmAction::None if split.sampling_on_accel < 1.0 => {
                            let delta = self.sampling_step.min(1.0 - split.sampling_on_accel);
                            split.sampling_on_accel += delta;
                            DrmAction::BalanceSampling { to_accel: delta }
                        }
                        other => other,
                    }
                }
            }
            // line 25: CPU trainer bottleneck
            Stage::TrainCpu => {
                let accel_trainer_fast = fastest.0 == Stage::Accel
                    || (fastest.0 == Stage::SampleAccel && second.0 == Stage::Accel)
                    || gap_factor(accel_time) >= 0.3;
                let shift = |split: &mut WorkloadSplit| {
                    let moved = split.shift_to_accel(step(accel_time));
                    if moved == 0 {
                        DrmAction::None
                    } else {
                        DrmAction::BalanceWork {
                            to_cpu: -(moved as isize),
                        }
                    }
                };
                if accel_trainer_fast {
                    shift(split)
                } else {
                    match self.steal_thread(times, threads, Stage::TrainCpu) {
                        // donors exhausted: move work to the accelerators
                        // even though they are not the fastest task
                        DrmAction::None if gap_factor(accel_time) >= 0.05 => shift(split),
                        other => other,
                    }
                }
            }
        }
    }

    /// `balance_thread`: donate one thread from the fastest CPU task
    /// (that is not the bottleneck and still has threads to spare).
    fn steal_thread(&self, times: &StageTimes, threads: &mut ThreadAlloc, to: Stage) -> DrmAction {
        let cpu_tasks = [
            (Stage::SampleCpu, times.sample_cpu),
            (Stage::Load, times.load),
            (Stage::TrainCpu, times.train_cpu),
        ];
        let donor = cpu_tasks
            .iter()
            .filter(|(s, _)| *s != to && threads.threads_for(*s) > 1)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        match donor {
            Some(&(from, _)) => {
                threads.add(from, -1);
                threads.add(to, 1);
                DrmAction::BalanceThread { from, to }
            }
            None => DrmAction::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split() -> WorkloadSplit {
        WorkloadSplit::new(1024, 5120, 4)
    }

    fn times(sc: f64, sa: f64, load: f64, tc: f64, trans: f64, ta: f64) -> StageTimes {
        StageTimes {
            sample_cpu: sc,
            sample_accel: sa,
            load,
            transfer: trans,
            train_cpu: tc,
            train_accel: ta,
            sync: 0.0,
        }
    }

    #[test]
    fn quota_invariant_under_all_moves() {
        let mut s = split();
        let total: usize = s.quotas().iter().sum();
        assert_eq!(total, 5120);
        s.shift_to_cpu(300);
        assert_eq!(s.quotas().iter().sum::<usize>(), 5120);
        s.shift_to_accel(1000);
        assert_eq!(s.quotas().iter().sum::<usize>(), 5120);
    }

    #[test]
    fn accel_quota_even_split_with_remainder() {
        let s = WorkloadSplit::new(1, 10, 3);
        // pool of 9 across 3 accels
        assert_eq!(s.accel_quota(0), 3);
        assert_eq!(s.accel_quota(1), 3);
        assert_eq!(s.accel_quota(2), 3);
        let s2 = WorkloadSplit::new(0, 11, 3);
        assert_eq!(s2.quotas(), vec![0, 4, 4, 3]);
    }

    #[test]
    fn accel_bottleneck_moves_work_to_cpu() {
        let engine = DrmEngine::new(true);
        let mut s = split();
        let mut th = ThreadAlloc::default_for(64);
        let t = times(0.1, 0.1, 0.2, 0.3, 0.5, 2.0);
        let action = engine.adjust(&t, &mut s, &mut th);
        assert!(matches!(action, DrmAction::BalanceWork { to_cpu } if to_cpu > 0));
        assert!(s.cpu_quota > 1024);
    }

    #[test]
    fn overlap_aware_visible_transfer_biases_work_off_the_wire() {
        // Transfer 1.8s, accelerator compute 0.5s, CPU trainer 1.2s.
        // Bundled view: T_Accel = 1.8 > T_TC = 1.2 -> move seeds to CPU.
        // With the wire fully hidden (visible 0), T_Accel = 0.5 < T_TC
        // -> the *CPU* becomes the bottleneck and seeds move the other
        // way. The visible transfer time flips the decision.
        let engine = DrmEngine::new(true);
        let t = times(0.1, 0.1, 0.2, 1.2, 1.8, 0.5);

        let mut bundled = split();
        let mut th = ThreadAlloc::default_for(64);
        let a = engine.adjust(&t, &mut bundled, &mut th);
        assert!(
            matches!(a, DrmAction::BalanceWork { to_cpu } if to_cpu > 0),
            "bundled max(T_Tran, T_TA) must see the accel task as bottleneck: {a:?}"
        );

        let mut hidden = split();
        let mut th2 = ThreadAlloc::default_for(64);
        let b = engine.adjust_with_visible(&t, 0.0, &mut hidden, &mut th2);
        assert!(
            matches!(b, DrmAction::BalanceWork { to_cpu } if to_cpu < 0),
            "a fully-hidden wire must expose the CPU trainer as bottleneck: {b:?}"
        );

        // ring-depth-1 pessimism: the whole wire is visible, so the
        // accel task is charged compute + transfer and sheds even more
        // work toward the CPU than the bundled estimate.
        let mut ring1 = split();
        let mut th3 = ThreadAlloc::default_for(64);
        let c = engine.adjust_with_visible(&t, t.transfer, &mut ring1, &mut th3);
        assert!(matches!(c, DrmAction::BalanceWork { to_cpu } if to_cpu > 0));
        assert!(
            ring1.cpu_quota >= bundled.cpu_quota,
            "full visibility must bias at least as hard as the bundle: \
             {} vs {}",
            ring1.cpu_quota,
            bundled.cpu_quota
        );
    }

    #[test]
    fn adjust_equals_adjust_with_double_buffered_visible() {
        // adjust() is exactly adjust_with_visible at the perfect-overlap
        // share (T_Tran - T_TA)+ — for several profiles.
        let engine = DrmEngine::new(true);
        for t in [
            times(0.1, 0.1, 0.2, 0.3, 0.5, 2.0),
            times(0.5, 0.4, 0.6, 3.0, 0.05, 0.1),
            times(3.0, 0.01, 0.5, 0.6, 0.4, 0.4),
            times(0.05, 0.2, 3.0, 1.0, 0.5, 0.5),
        ] {
            let (mut s1, mut s2) = (split(), split());
            let (mut th1, mut th2) = (ThreadAlloc::default_for(64), ThreadAlloc::default_for(64));
            let a = engine.adjust(&t, &mut s1, &mut th1);
            let b = engine.adjust_with_visible(
                &t,
                (t.transfer - t.train_accel).max(0.0),
                &mut s2,
                &mut th2,
            );
            assert_eq!(a, b);
            assert_eq!(s1, s2);
            assert_eq!(th1, th2);
        }
    }

    #[test]
    fn cpu_trainer_bottleneck_moves_work_to_accel() {
        let engine = DrmEngine::new(true);
        let mut s = split();
        let mut th = ThreadAlloc::default_for(64);
        // fastest = Accel bundle
        let t = times(0.5, 0.4, 0.6, 3.0, 0.05, 0.1);
        let action = engine.adjust(&t, &mut s, &mut th);
        assert!(matches!(action, DrmAction::BalanceWork { to_cpu } if to_cpu < 0));
        assert!(s.cpu_quota < 1024);
    }

    #[test]
    fn loader_bottleneck_steals_thread_from_fastest_cpu_task() {
        let engine = DrmEngine::new(true);
        let mut s = split();
        let mut th = ThreadAlloc {
            sampler: 10,
            loader: 10,
            trainer: 44,
        };
        // CPU sampler is fastest CPU task
        let t = times(0.05, 0.2, 3.0, 1.0, 0.5, 0.5);
        let action = engine.adjust(&t, &mut s, &mut th);
        assert_eq!(
            action,
            DrmAction::BalanceThread {
                from: Stage::SampleCpu,
                to: Stage::Load
            }
        );
        assert_eq!(th.sampler, 9);
        assert_eq!(th.loader, 11);
        assert_eq!(th.total(), 64);
    }

    #[test]
    fn accel_sampler_bottleneck_shifts_sampling_to_cpu() {
        let engine = DrmEngine::new(true);
        let mut s = split();
        s.sampling_on_accel = 0.5;
        let mut th = ThreadAlloc::default_for(64);
        let t = times(0.1, 4.0, 0.2, 0.3, 0.2, 0.2);
        let action = engine.adjust(&t, &mut s, &mut th);
        assert!(matches!(action, DrmAction::BalanceSampling { to_accel } if to_accel < 0.0));
        assert!(s.sampling_on_accel < 0.5);
    }

    #[test]
    fn cpu_sampler_bottleneck_with_fast_accel_sampler_offloads_sampling() {
        let engine = DrmEngine::new(true);
        let mut s = split();
        let mut th = ThreadAlloc::default_for(64);
        // fastest = SampleAccel
        let t = times(3.0, 0.01, 0.5, 0.6, 0.4, 0.4);
        let action = engine.adjust(&t, &mut s, &mut th);
        assert!(matches!(action, DrmAction::BalanceSampling { to_accel } if to_accel > 0.0));
        assert!(s.sampling_on_accel > 0.0);
    }

    #[test]
    fn cpu_sampler_bottleneck_without_fast_accel_steals_threads() {
        let engine = DrmEngine::new(true);
        let mut s = split();
        let mut th = ThreadAlloc {
            sampler: 4,
            loader: 20,
            trainer: 40,
        };
        // fastest = Load (a CPU task): expect thread steal toward sampler
        let t = times(3.0, 2.9, 0.01, 0.5, 2.5, 2.5);
        let action = engine.adjust(&t, &mut s, &mut th);
        assert_eq!(
            action,
            DrmAction::BalanceThread {
                from: Stage::Load,
                to: Stage::SampleCpu
            }
        );
        assert_eq!(th.sampler, 5);
    }

    #[test]
    fn non_hybrid_accel_bottleneck_is_noop() {
        let engine = DrmEngine::new(false);
        let mut s = split();
        let mut th = ThreadAlloc::default_for(64);
        let t = times(0.1, 0.1, 0.2, 0.0, 0.5, 2.0);
        assert_eq!(engine.adjust(&t, &mut s, &mut th), DrmAction::None);
        assert_eq!(s.cpu_quota, 1024);
    }

    #[test]
    fn drm_converges_on_synthetic_cost_model() {
        // Synthetic platform: accel processes seeds at 1.0 s per 1000,
        // CPU at 4.0 s per 1000 over 4 accels; optimum cpu share ~= 1/17
        // of the work per accel-equivalent. DRM should iterate toward a
        // split where |T_TC - T_Accel| is small.
        let engine = DrmEngine::new(true);
        let mut s = WorkloadSplit::new(2560, 5120, 4); // start badly: half on CPU
        let mut th = ThreadAlloc::default_for(64);
        let mut last_gap = f64::INFINITY;
        for _ in 0..60 {
            let accel_per = (s.total - s.cpu_quota) as f64 / 4.0;
            let t = times(
                0.01,
                0.01,
                0.05,
                s.cpu_quota as f64 * 4.0 / 1000.0,
                0.02,
                accel_per * 1.0 / 1000.0,
            );
            engine.adjust(&t, &mut s, &mut th);
            last_gap = (s.cpu_quota as f64 * 4.0 / 1000.0
                - ((s.total - s.cpu_quota) as f64 / 4.0) / 1000.0)
                .abs();
        }
        // balanced: T_TC == T_Accel at cpu_quota = total/17 ≈ 301
        assert!(
            s.cpu_quota < 700,
            "DRM failed to move work off the CPU: quota {}",
            s.cpu_quota
        );
        assert!(last_gap < 1.5, "residual imbalance {last_gap}");
    }

    #[test]
    fn quota_diff_marks_prefix_and_own_changes() {
        // CPU gains from lane 0: lanes 1, 2 keep both prefix and quota.
        let d = QuotaDiff::between(&[12, 8, 8, 8], &[16, 4, 8, 8]);
        assert!(d.trainer_changed(0) && d.trainer_changed(1));
        assert!(!d.trainer_changed(2) && !d.trainer_changed(3));
        assert_eq!(d.num_changed(), 2);
        assert_eq!(d.changed_lanes(true, 3), vec![true, false, false]);
        // same quota but shifted prefix counts as changed
        let d2 = QuotaDiff::between(&[8, 4, 8], &[4, 4, 12]);
        assert!(d2.trainer_changed(1), "prefix moved under trainer 1");
        assert_eq!(d2.num_changed(), 3);
    }

    #[test]
    fn quota_diff_zero_diff_is_noop() {
        let d = QuotaDiff::between(&[8, 8, 8], &[8, 8, 8]);
        assert!(d.is_noop());
        assert_eq!(d.num_changed(), 0);
        assert_eq!(d.changed_lanes(true, 2), vec![false, false]);
    }

    #[test]
    fn quota_diff_total_or_topology_change_invalidates_all() {
        // total changed: every iteration's start offset moves
        let d = QuotaDiff::between(&[8, 8, 8], &[8, 8, 4]);
        assert_eq!(d.num_changed(), 3);
        // trainer count changed
        let d2 = QuotaDiff::between(&[8, 8], &[8, 4, 4]);
        assert_eq!(d2.num_changed(), 3);
        assert!(d2.trainer_changed(9), "out-of-range counts as changed");
    }

    #[test]
    fn quota_diff_lane_mask_respects_hybrid_offset() {
        let d = QuotaDiff::between(&[12, 8, 8, 8], &[16, 4, 8, 8]);
        // non-hybrid: trainer 0 *is* lane 0
        assert_eq!(d.changed_lanes(false, 4), vec![true, true, false, false]);
    }

    #[test]
    fn thread_shift_conserves_budget_and_clamps() {
        let mut t = ThreadAlloc {
            sampler: 1,
            loader: 4,
            trainer: 8,
        };
        assert!(t.shift(Stage::Load, Stage::SampleCpu));
        assert_eq!((t.sampler, t.loader, t.trainer), (2, 3, 8));
        assert_eq!(t.total(), 13);
        // donor with a single thread refuses
        let before = t;
        t.sampler = 1;
        assert!(!t.shift(Stage::SampleCpu, Stage::Load));
        assert_eq!(t.loader, before.loader);
        // non-CPU tasks and self-moves refuse
        assert!(!t.shift(Stage::Accel, Stage::Load));
        assert!(!t.shift(Stage::Load, Stage::Load));
    }

    #[test]
    fn thread_alloc_defaults() {
        let t = ThreadAlloc::default_for(128);
        assert_eq!(t.total(), 128);
        assert!(t.trainer >= t.sampler);
        let tiny = ThreadAlloc::default_for(1);
        assert!(tiny.sampler >= 1 && tiny.loader >= 1 && tiny.trainer >= 1);
    }
}
