//! Calibration constants not specified in the paper.
//!
//! Every simulator constant that the paper does not give is defined here,
//! once, with its justification (DESIGN.md §7). Experiments never tune
//! these per-row; they are global properties of the simulated platform.

/// Effective PCIe bandwidth in GB/s for *pinned* burst transfers (paper
/// Eq. 8 uses "effective bandwidth of performing burst data
/// transactions"). PCIe 4.0 ×16 peaks at 32 GB/s; measured pinned-memory
/// bursts on EPYC hosts reach ~22 GB/s.
pub const PCIE_EFF_BW_GBS: f64 = 22.0;

/// Effective PCIe bandwidth for *pageable* (unpinned) transfers — what a
/// stock PyTorch `cudaMemcpy` from a fresh tensor achieves. Used by the
/// PyG baseline, which does not pre-pin mini-batch buffers.
pub const PCIE_UNPINNED_BW_GBS: f64 = 6.0;

/// Per-transfer PCIe latency (seconds): DMA setup + doorbell.
pub const PCIE_LATENCY_S: f64 = 10e-6;

/// GPU DRAM efficiency on *random row gathers* (the aggregation read
/// pattern). Paper §VI-E1 (citing \[33]): "traditional cache policies
/// fail to capture the data access pattern in GNN training"; measured
/// GNN gather kernels reach 10–20 % of peak GDDR bandwidth.
pub const GPU_GATHER_BW_EFF: f64 = 0.15;

/// GPU DRAM efficiency on streaming (coalesced) access.
pub const GPU_STREAM_BW_EFF: f64 = 0.8;

/// GPU achievable fraction of peak FLOPS on mini-batch-sized GEMMs.
pub const GPU_GEMM_EFFICIENCY: f64 = 0.45;

/// Per-iteration overhead of a PyTorch-stack GPU trainer: Python
/// dispatch, per-op kernel launches (a 2-layer GNN step issues hundreds
/// of kernels), allocator sync. The paper implements both the multi-GPU
/// baseline *and* its CPU-GPU design in PyTorch (§VI-A1), so this applies
/// to both; the FPGA path is a single fused HLS kernel and pays only
/// [`FPGA_LAUNCH_OVERHEAD_S`]. This constant is the main reason the
/// paper's CPU-FPGA design outruns the CPU-GPU design 5–6× (§VI-E1)
/// despite the A5000's 46× FLOPS advantage.
pub const GPU_FRAMEWORK_OVERHEAD_S: f64 = 30e-3;

/// Per-iteration overhead of a PyTorch-stack *CPU* trainer. The paper's
/// CPU-GPU design is implemented in PyTorch (§VI-A1), so its CPU trainer
/// pays Python dispatch like the GPU one; the CPU-FPGA design's CPU
/// trainer is native Pthreads+MKL (§III-C programming layer) and pays
/// nothing.
pub const PYTORCH_CPU_TRAINER_OVERHEAD_S: f64 = 15e-3;

/// CPU achievable fraction of peak FLOPS on GNN training steps. Far
/// below dense-GEMM efficiency: the update GEMMs are skinny, aggregation
/// is scatter-bound, and the trainer shares DRAM with the Feature
/// Loader. Calibrated so hybrid training adds ~10 % over accelerator-only
/// on the 4-FPGA node, matching the paper's Fig. 11 ("Hybrid (static)"
/// ≤ 1.13×).
pub const CPU_GEMM_EFFICIENCY: f64 = 0.15;

/// Fraction of peak DRAM bandwidth reachable by gather-dominated access.
pub const CPU_GATHER_BW_FRACTION: f64 = 0.6;

/// FPGA kernel enqueue overhead via OpenCL (single fused kernel per
/// iteration).
pub const FPGA_LAUNCH_OVERHEAD_S: f64 = 100e-6;

/// Pipeline flush overhead per epoch edge, in iterations — one of the two
/// unmodelled §VI-C latencies (filling/draining the 4-stage pipeline).
pub const PIPELINE_FLUSH_ITERS: f64 = 3.0;

/// Single-thread feature-gather throughput in GB/s (random row copies
/// from CPU DRAM); loader throughput = threads × this, capped by
/// [`CPU_GATHER_BW_FRACTION`] × socket bandwidth.
pub const GATHER_PER_THREAD_GBS: f64 = 3.0;

/// Single CPU thread neighbour-sampling rate, edges/second.
pub const CPU_SAMPLE_EPS_PER_THREAD: f64 = 4.0e6;

/// GPU on-device sampling rate, edges/second per device.
pub const GPU_SAMPLE_EPS: f64 = 400.0e6;

/// FPGA on-device sampling rate, edges/second per device (sampling is a
/// poor fit for the static datapath; modelled slower than GPU).
pub const FPGA_SAMPLE_EPS: f64 = 150.0e6;

/// FPGA aggregation vector lanes per scatter-PE (512-bit AXI / 32-bit).
pub const FPGA_VEC_LANES: usize = 16;

/// NIC bandwidth for the multi-node baselines (100 GbE), GB/s.
pub const NIC_BW_GBS: f64 = 12.5;
/// NIC message latency (seconds).
pub const NIC_LATENCY_S: f64 = 2e-6;

#[cfg(test)]
mod tests {
    #[test]
    #[allow(clippy::assertions_on_constants)] // documents calibration invariants
    fn constants_are_sane() {
        use super::*;
        assert!(PCIE_UNPINNED_BW_GBS < PCIE_EFF_BW_GBS);
        assert!(PCIE_EFF_BW_GBS < 32.0);
        assert!(GPU_GATHER_BW_EFF < GPU_STREAM_BW_EFF);
        assert!(CPU_GATHER_BW_FRACTION <= 1.0);
        assert!(GATHER_PER_THREAD_GBS > 0.0);
        assert!(GPU_FRAMEWORK_OVERHEAD_S > 100.0 * FPGA_LAUNCH_OVERHEAD_S);
    }
}
