//! PaGraph system model (paper Table V/VI; Lin et al., SoCC'20).
//!
//! Single node, 2× Xeon Platinum 8163 + 8× V100. PaGraph's contribution
//! is *computation-aware caching*: the features of the highest-out-degree
//! vertices are cached in each GPU's spare memory; cache misses fetch
//! rows from CPU memory over PCIe. The paper's critique (§VI-E2): "cache
//! miss occurs frequently when training on large-scale graphs like
//! ogbn-papers100M", blowing up PCIe traffic.

use crate::common::{gpu_propagation_time, BaselineSystem, SotaConfig, DGL_FRAMEWORK_OVERHEAD_S};
use hyscale_device::calib;
use hyscale_device::pcie::PcieLink;
use hyscale_device::spec::{DeviceSpec, V100, XEON_8163};
use hyscale_device::stage::{LoaderModel, SamplerModel};
use hyscale_device::timing::GpuTiming;
use hyscale_gnn::GnnKind;
use hyscale_graph::DatasetSpec;

/// PaGraph system model.
pub struct PaGraph {
    /// GPU spec (V100 16 GB).
    pub gpu: DeviceSpec,
    /// GPU count (8).
    pub num_gpus: usize,
    /// Host CPU.
    pub cpu: DeviceSpec,
    /// Host sockets.
    pub sockets: usize,
    /// GPU memory reserved for activations/workspace, GB.
    pub workspace_gb: f64,
}

impl PaGraph {
    /// The Table V configuration.
    pub fn paper_setup() -> Self {
        Self {
            gpu: V100,
            num_gpus: 8,
            cpu: XEON_8163,
            sockets: 2,
            workspace_gb: 6.0,
        }
    }

    /// Fraction of vertices whose features fit the per-GPU cache.
    pub fn cache_fraction(&self, ds: &DatasetSpec) -> f64 {
        let cache_bytes = (self.gpu.mem_capacity_gb - self.workspace_gb).max(0.0) * 1e9;
        let row_bytes = ds.f0 as f64 * 4.0;
        (cache_bytes / row_bytes / ds.num_vertices as f64).min(1.0)
    }

    /// Expected cache hit rate for degree-ordered caching on a power-law
    /// graph: hot vertices are disproportionately sampled, so coverage
    /// grows like the square root of the cached fraction (heuristic
    /// validated against `hyscale_graph::degree::top_k_edge_coverage` on
    /// synthetic power-law graphs — see the workspace integration tests).
    pub fn cache_hit_rate(&self, ds: &DatasetSpec) -> f64 {
        self.cache_fraction(ds).sqrt().min(1.0)
    }

    /// PCIe bytes per mini-batch that miss the cache — the traffic the
    /// paper blames for PaGraph's large-graph slowdown (§VI-E2).
    pub fn miss_bytes(&self, ds: &DatasetSpec, cfg: &SotaConfig) -> u64 {
        let per_gpu = cfg.workload(ds);
        let miss = 1.0 - self.cache_hit_rate(ds);
        (per_gpu.feature_bytes(ds.f0) as f64 * miss) as u64
    }
}

impl BaselineSystem for PaGraph {
    fn name(&self) -> &'static str {
        "PaGraph"
    }

    fn platform_tflops(&self) -> f64 {
        self.gpu.peak_tflops * self.num_gpus as f64 + self.cpu.peak_tflops * self.sockets as f64
    }

    fn total_batch(&self, cfg: &SotaConfig) -> usize {
        cfg.batch_per_trainer * self.num_gpus
    }

    fn iteration_time(&self, ds: &DatasetSpec, model: GnnKind, cfg: &SotaConfig) -> f64 {
        let per_gpu = cfg.workload(ds);
        let dims = cfg.layer_dims(ds);
        let sampler = SamplerModel::default();
        // sampling for all GPUs on the host CPUs
        let total_edges = per_gpu.total_edges() * self.num_gpus as u64;
        let t_samp = sampler.sample_time(total_edges, self.cpu.cores * self.sockets / 2);
        // feature fetch: only cache misses cross PCIe (pinned staging)
        let miss = 1.0 - self.cache_hit_rate(ds);
        let miss_bytes = (per_gpu.feature_bytes(ds.f0) as f64 * miss) as u64;
        let loader = LoaderModel::new(self.cpu, self.sockets);
        let mut miss_stats = per_gpu.clone();
        miss_stats.input_nodes = (miss_stats.input_nodes as f64 * miss) as usize;
        let t_load = loader.load_time(&miss_stats, ds.f0, self.cpu.cores);
        let pcie = PcieLink::new(calib::PCIE_EFF_BW_GBS, calib::PCIE_LATENCY_S);
        let t_trans = pcie.transfer_time(miss_bytes + per_gpu.total_edges() * 8);
        // GPU propagation (DGL stack)
        let gpu = GpuTiming::new(self.gpu);
        let t_gpu = gpu_propagation_time(&gpu, &per_gpu, &dims, model, DGL_FRAMEWORK_OVERHEAD_S);
        // PaGraph overlaps loading with computation (its second
        // optimization), so the iteration is the max of the fetch path
        // and the compute path, plus sampling which stays serial.
        t_samp + (t_load + t_trans).max(t_gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_graph::dataset::{OGBN_PAPERS100M, OGBN_PRODUCTS};

    #[test]
    fn products_fully_cached_papers_not() {
        let p = PaGraph::paper_setup();
        assert!((p.cache_fraction(&OGBN_PRODUCTS) - 1.0).abs() < 1e-9);
        let frac = p.cache_fraction(&OGBN_PAPERS100M);
        assert!(frac < 0.25, "papers100M cache fraction {frac}");
        assert!(p.cache_hit_rate(&OGBN_PAPERS100M) < 0.55);
    }

    #[test]
    fn large_graph_pays_more_pcie() {
        // products is fully cached (zero miss traffic); papers100M pays
        // tens of MB of PCIe per batch — the paper's §VI-E2 critique.
        let p = PaGraph::paper_setup();
        let cfg = SotaConfig::pagraph();
        assert_eq!(p.miss_bytes(&OGBN_PRODUCTS, &cfg), 0);
        assert!(
            p.miss_bytes(&OGBN_PAPERS100M, &cfg) > 10_000_000,
            "papers100M miss bytes {}",
            p.miss_bytes(&OGBN_PAPERS100M, &cfg)
        );
    }

    #[test]
    fn epoch_magnitude_matches_paper_band() {
        // paper Table VI: PaGraph products GCN 1.18s, papers100M GCN 4.0s
        let p = PaGraph::paper_setup();
        let cfg = SotaConfig::pagraph();
        let products = p.epoch_time(&OGBN_PRODUCTS, GnnKind::Gcn, &cfg);
        let papers = p.epoch_time(&OGBN_PAPERS100M, GnnKind::Gcn, &cfg);
        assert!(products > 0.2 && products < 10.0, "products {products}");
        assert!(papers > products, "papers {papers}");
    }
}
