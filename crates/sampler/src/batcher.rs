//! Epoch-level seed scheduling with per-trainer quotas.
//!
//! Each training iteration draws `n` mini-batches, one per GNN Trainer
//! (paper §III-B step 1). The DRM engine re-balances *how many seeds each
//! trainer gets* while keeping the total per-iteration seed count constant
//! (paper §IV-A: "The total mini-batch size executed on the hybrid system
//! remains the same after the re-assignment"), which this scheduler
//! enforces structurally.

use hyscale_graph::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shuffled epoch iterator over training seeds, sliced per trainer.
#[derive(Clone, Debug)]
pub struct EpochBatcher {
    train_ids: Vec<VertexId>,
    seed: u64,
}

impl EpochBatcher {
    /// Batcher over the labelled training vertices.
    pub fn new(train_ids: Vec<VertexId>, seed: u64) -> Self {
        assert!(!train_ids.is_empty(), "no training vertices");
        Self { train_ids, seed }
    }

    /// Number of training seeds per epoch.
    pub fn num_seeds(&self) -> usize {
        self.train_ids.len()
    }

    /// Number of iterations per epoch at a total per-iteration quota.
    pub fn iterations(&self, total_batch: usize) -> usize {
        self.train_ids.len().div_ceil(total_batch.max(1))
    }

    /// Deterministic shuffle of the seeds for `epoch`.
    pub fn epoch_order(&self, epoch: u64) -> Vec<VertexId> {
        let mut ids = self.train_ids.clone();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ epoch.wrapping_mul(0xD1B54A32D192ED03));
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        ids
    }

    /// Slice iteration `iter` of `epoch` into per-trainer seed sets
    /// according to `quotas` (seeds per trainer). Returns one (possibly
    /// empty) `Vec` per trainer; the final iteration of an epoch may run
    /// short. Total consumed per iteration = `quotas.sum()`.
    pub fn iteration_seeds(
        &self,
        epoch_order: &[VertexId],
        iter: usize,
        quotas: &[usize],
    ) -> Vec<Vec<VertexId>> {
        let total: usize = quotas.iter().sum();
        let start = iter * total;
        let mut out = Vec::with_capacity(quotas.len());
        let mut cursor = start;
        for &q in quotas {
            let end = (cursor + q).min(epoch_order.len());
            let begin = cursor.min(epoch_order.len());
            out.push(epoch_order[begin..end].to_vec());
            cursor += q;
        }
        out
    }

    /// Iterator over the per-iteration batch plans of an epoch under
    /// fixed `quotas`, starting at `start_iter`. Each item is
    /// `(iter, seed_sets)` exactly as [`EpochBatcher::iteration_seeds`]
    /// would slice it; the iterator ends once an iteration has no seeds
    /// left.
    ///
    /// Because each plan is a pure function of `(epoch_order, iter,
    /// quotas)`, a prefetching producer can walk this iterator on a
    /// background thread and still hand out batches bitwise-identical
    /// to serial execution — the property the executor's determinism
    /// tests pin down. After a DRM re-mapping the caller simply starts a
    /// fresh plan at the next iteration with the new quotas.
    pub fn plan<'a>(
        &self,
        epoch_order: &'a [VertexId],
        start_iter: usize,
        quotas: &'a [usize],
    ) -> BatchPlan<'a> {
        BatchPlan {
            epoch_order,
            quotas,
            next_iter: start_iter,
        }
    }
}

/// Iterator of per-iteration seed plans; see [`EpochBatcher::plan`].
#[derive(Clone, Debug)]
pub struct BatchPlan<'a> {
    epoch_order: &'a [VertexId],
    quotas: &'a [usize],
    next_iter: usize,
}

impl<'a> Iterator for BatchPlan<'a> {
    type Item = (usize, Vec<Vec<VertexId>>);

    fn next(&mut self) -> Option<Self::Item> {
        let total: usize = self.quotas.iter().sum();
        // A zero-total split can never consume a seed: end immediately
        // (the executor's historical "all seed sets empty" stop).
        if total == 0 {
            return None;
        }
        let start = self.next_iter * total;
        if start >= self.epoch_order.len() {
            return None;
        }
        let mut out = Vec::with_capacity(self.quotas.len());
        let mut cursor = start;
        for &q in self.quotas {
            let end = (cursor + q).min(self.epoch_order.len());
            let begin = cursor.min(self.epoch_order.len());
            out.push(self.epoch_order[begin..end].to_vec());
            cursor += q;
        }
        let iter = self.next_iter;
        self.next_iter += 1;
        Some((iter, out))
    }
}

/// Integer split of `total` seeds into `n` quotas proportional to
/// `weights`, guaranteed to sum to exactly `total` (largest-remainder
/// method). This is how `balance_work` converts a continuous split into
/// whole mini-batch sizes.
pub fn proportional_quotas(total: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty());
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "weights must be positive");
    let raw: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
    let mut quotas: Vec<usize> = raw.iter().map(|r| r.floor() as usize).collect();
    let mut assigned: usize = quotas.iter().sum();
    // distribute the remainder by largest fractional part, stable order
    let mut frac: Vec<(usize, f64)> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r - r.floor()))
        .collect();
    frac.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut k = 0;
    while assigned < total {
        quotas[frac[k % frac.len()].0] += 1;
        assigned += 1;
        k += 1;
    }
    quotas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher() -> EpochBatcher {
        EpochBatcher::new((0..100).collect(), 42)
    }

    #[test]
    fn epoch_order_is_permutation() {
        let b = batcher();
        let mut o = b.epoch_order(3);
        o.sort_unstable();
        assert_eq!(o, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn epoch_orders_differ_across_epochs() {
        let b = batcher();
        assert_ne!(b.epoch_order(0), b.epoch_order(1));
        assert_eq!(b.epoch_order(2), b.epoch_order(2));
    }

    #[test]
    fn iteration_seeds_respect_quotas() {
        let b = batcher();
        let order = b.epoch_order(0);
        let sets = b.iteration_seeds(&order, 0, &[30, 10]);
        assert_eq!(sets[0].len(), 30);
        assert_eq!(sets[1].len(), 10);
        let sets2 = b.iteration_seeds(&order, 1, &[30, 10]);
        assert_eq!(sets2[0].len(), 30);
        // no overlap between iterations
        assert!(sets[0].iter().all(|v| !sets2[0].contains(v)));
    }

    #[test]
    fn final_iteration_runs_short() {
        let b = batcher();
        let order = b.epoch_order(0);
        // 100 seeds, 40/iter => iteration 2 gets 20
        let sets = b.iteration_seeds(&order, 2, &[25, 15]);
        assert_eq!(sets[0].len() + sets[1].len(), 20);
    }

    #[test]
    fn iterations_count() {
        let b = batcher();
        assert_eq!(b.iterations(40), 3);
        assert_eq!(b.iterations(100), 1);
        assert_eq!(b.iterations(101), 1);
    }

    #[test]
    fn quotas_sum_exactly() {
        for total in [1usize, 7, 100, 1024] {
            for w in [
                [1.0, 1.0, 1.0].as_slice(),
                &[0.3, 0.7],
                &[5.0],
                &[1e-3, 1.0, 2.5],
            ] {
                let q = proportional_quotas(total, w);
                assert_eq!(
                    q.iter().sum::<usize>(),
                    total,
                    "total {total} weights {w:?}"
                );
            }
        }
    }

    #[test]
    fn quotas_follow_weights() {
        let q = proportional_quotas(100, &[3.0, 1.0]);
        assert_eq!(q, vec![75, 25]);
    }

    #[test]
    #[should_panic(expected = "no training vertices")]
    fn rejects_empty_train_set() {
        let _ = EpochBatcher::new(vec![], 0);
    }

    #[test]
    fn plan_matches_iteration_seeds() {
        let b = batcher();
        let order = b.epoch_order(4);
        let quotas = [25usize, 15];
        let plans: Vec<_> = b.plan(&order, 0, &quotas).collect();
        assert_eq!(plans.len(), 3, "100 seeds / 40 per iter = 3 iterations");
        for (iter, sets) in &plans {
            assert_eq!(*sets, b.iteration_seeds(&order, *iter, &quotas));
        }
    }

    #[test]
    fn plan_with_zero_quotas_ends_immediately() {
        let b = batcher();
        let order = b.epoch_order(0);
        assert!(b.plan(&order, 0, &[0, 0]).next().is_none());
    }

    #[test]
    fn plan_resumes_mid_epoch() {
        let b = batcher();
        let order = b.epoch_order(1);
        let quotas = [30usize, 10];
        let mut plan = b.plan(&order, 2, &quotas);
        let (iter, sets) = plan.next().unwrap();
        assert_eq!(iter, 2);
        assert_eq!(sets, b.iteration_seeds(&order, 2, &quotas));
        assert!(plan.next().is_none(), "epoch exhausted after iteration 2");
    }
}
