//! System-level DRM behaviour (paper §IV-A): starting from a bad task
//! mapping, Algorithm 1 must converge to a faster one while preserving
//! the per-iteration seed total and the CPU thread budget — and its two
//! move kinds must have the right drain semantics on the producer's
//! staging rings (`balance_work` drains them, `balance_thread` does
//! not).

use hyscale::core::drm::{DrmEngine, ThreadAlloc, WorkloadSplit};
use hyscale::core::{AcceleratorKind, PerfModel, SystemConfig};
use hyscale::gnn::GnnKind;
use hyscale::graph::dataset::{OGBN_PAPERS100M, OGBN_PRODUCTS};

fn settle(
    cfg: &SystemConfig,
    split: &mut WorkloadSplit,
    threads: &mut ThreadAlloc,
    iters: usize,
) -> (f64, f64) {
    let pm = PerfModel::new(cfg);
    let drm = DrmEngine::new(cfg.opt.hybrid);
    let first = pm
        .stage_times_runtime(&OGBN_PAPERS100M, split, threads)
        .pipelined_iteration();
    let mut best = first;
    for _ in 0..iters {
        let t = pm.stage_times_runtime(&OGBN_PAPERS100M, split, threads);
        drm.adjust(&t, split, threads);
        best = best.min(
            pm.stage_times_runtime(&OGBN_PAPERS100M, split, threads)
                .pipelined_iteration(),
        );
    }
    (first, best)
}

#[test]
fn drm_improves_bad_mapping() {
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    // pathological start: half the batch on the CPU trainer, starved
    // sampler threads
    let mut split = WorkloadSplit::new(2560, 5120, 4);
    let mut threads = ThreadAlloc {
        sampler: 2,
        loader: 2,
        trainer: 124,
    };
    let (first, best) = settle(&cfg, &mut split, &mut threads, 120);
    assert!(
        best < first * 0.7,
        "DRM failed to improve the mapping: {first:.5}s -> {best:.5}s"
    );
}

#[test]
fn drm_conserves_totals() {
    let cfg = SystemConfig::paper_default(AcceleratorKind::a5000(), GnnKind::GraphSage);
    let pm = PerfModel::new(&cfg);
    let drm = DrmEngine::new(true);
    let mut split = WorkloadSplit::new(1000, 5120, 4);
    let mut threads = ThreadAlloc::default_for(128);
    let thread_budget = threads.total();
    for _ in 0..60 {
        let t = pm.stage_times_runtime(&OGBN_PRODUCTS, &split, &threads);
        drm.adjust(&t, &mut split, &mut threads);
        assert_eq!(
            split.quotas().iter().sum::<usize>(),
            5120,
            "seed total changed — synchronous SGD semantics broken"
        );
        assert_eq!(threads.total(), thread_budget, "thread budget leaked");
        assert!(split.sampling_on_accel >= 0.0 && split.sampling_on_accel <= 1.0);
    }
}

#[test]
fn initial_mapping_is_coarse_but_sane() {
    // the paper's two-phase mapping story: the design-time mapping is
    // coarse; runtime DRM fine-tunes it. The coarse mapping should be
    // within a small factor of the settled optimum, and settling should
    // never make things worse.
    let cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
    let pm = PerfModel::new(&cfg);
    let (mut split, mut threads) = pm.initial_mapping(&OGBN_PAPERS100M);
    let initial = pm
        .stage_times_runtime(&OGBN_PAPERS100M, &split, &threads)
        .pipelined_iteration();
    let (_, settled) = settle(&cfg, &mut split, &mut threads, 80);
    assert!(settled <= initial * 1.001, "DRM made the mapping worse");
    assert!(
        settled > initial * 0.2,
        "design-time mapping was absurdly far off: {initial:.5}s vs {settled:.5}s"
    );
}

#[test]
fn balance_thread_resizes_live_worker_pools() {
    // A DRM balance_thread decision must reach the rayon-shim worker
    // groups the real producer dispatches on — not only the simulated
    // StageTimes. Drive the engine with a loader-bottlenecked profile
    // and mirror its ThreadAlloc into StageWorkers, as the executor does.
    use hyscale::core::drm::DrmAction;
    use hyscale::core::stages::{Stage, StageTimes, StageWorkers};

    let engine = DrmEngine::new(true);
    let mut split = WorkloadSplit::new(1024, 5120, 4);
    let mut threads = ThreadAlloc {
        sampler: 10,
        loader: 10,
        trainer: 44,
    };
    let workers = StageWorkers::from_alloc(&threads);
    assert_eq!(workers.loader().width(), 10);

    // loader is the bottleneck, CPU sampler the fastest CPU task
    let times = StageTimes {
        sample_cpu: 0.05,
        sample_accel: 0.2,
        load: 3.0,
        transfer: 0.5,
        train_cpu: 1.0,
        train_accel: 0.5,
        sync: 0.0,
    };
    let action = engine.adjust(&times, &mut split, &mut threads);
    assert_eq!(
        action,
        DrmAction::BalanceThread {
            from: Stage::SampleCpu,
            to: Stage::Load
        }
    );
    workers.apply(&threads);
    assert_eq!(workers.loader().width(), 11, "loader pool not widened");
    assert_eq!(workers.sampler().width(), 9, "sampler pool not narrowed");
    assert_eq!(workers.observed(), threads);
    assert_eq!(
        workers.group(Stage::Load).unwrap().width(),
        threads.threads_for(Stage::Load)
    );
}

/// Build an [`IterationFeed`] over a toy dataset with `num_accel`
/// accelerator trainers, prefetch depth `depth`, and staging rings of
/// `ring_depth` slots, plus the quotas it was spawned under.
mod ring_fixture {
    use hyscale::core::drm::ThreadAlloc;
    use hyscale::core::stages::StageWorkers;
    use hyscale::core::{IterationFeed, MatrixPool, PrepareCtx, StagingRings};
    use hyscale::graph::Dataset;
    use hyscale::sampler::{EpochBatcher, NeighborSampler};
    use hyscale::tensor::Precision;
    use std::sync::Arc;
    use std::time::Instant;

    pub fn feed(
        num_accel: usize,
        depth: usize,
        ring_depth: usize,
    ) -> (IterationFeed, Arc<MatrixPool>, Vec<usize>) {
        let dataset = Arc::new(Dataset::toy(5));
        let batcher = EpochBatcher::new(dataset.splits.train.clone(), 99);
        let order = Arc::new(batcher.epoch_order(0));
        let ctx = Arc::new(PrepareCtx {
            dataset,
            batcher,
            sampler: NeighborSampler::new(vec![4, 3], 17),
            precision: Precision::Int8,
            hybrid: true,
            workers: Arc::new(StageWorkers::from_alloc(&ThreadAlloc::default_for(8))),
            numa_domains: 2,
            rings: Arc::new(StagingRings::new(num_accel, ring_depth)),
            origin: Instant::now(),
        });
        let pool = Arc::new(MatrixPool::new());
        let quotas = vec![8usize; 1 + num_accel];
        let feed = IterationFeed::new(
            ctx,
            order,
            0,
            usize::MAX,
            depth,
            Arc::clone(&pool),
            quotas.clone(),
        );
        (feed, pool, quotas)
    }
}

/// `balance_work` semantics: a quota change invalidates the producer
/// queue *and* drains every staging ring — the staged wire transfers
/// were built under a split that no longer exists.
#[test]
fn balance_work_drains_staging_rings() {
    let (mut feed, pool, quotas) = ring_fixture::feed(2, 2, 2);
    let first = feed.obtain(0, &quotas).expect("first iteration");
    assert_eq!(first.slots.len(), 2, "one staging slot per accel batch");
    first.recycle(&pool);
    assert_eq!(feed.rings().drains_total(), 0);

    // the DRM moves 4 seeds from accel trainer 1 to the CPU trainer
    let new_quotas = vec![12usize, 4, 8];
    feed.invalidate(1, new_quotas.clone());
    assert_eq!(feed.restarts(), 1, "balance_work must restart the producer");
    assert_eq!(
        feed.rings().drains_total(),
        feed.rings().num_rings(),
        "balance_work must drain every staging ring"
    );

    // a second balance_work drains again
    let newer_quotas = vec![8usize, 8, 8];
    feed.invalidate(2, newer_quotas.clone());
    assert_eq!(feed.rings().drains_total(), 2 * feed.rings().num_rings());

    // the feed still serves correct iterations afterwards
    let third = feed.obtain(2, &newer_quotas).expect("post-drain iteration");
    assert_eq!(third.quotas, newer_quotas);
    third.recycle(&pool);
    let rings = std::sync::Arc::clone(feed.rings());
    feed.finish();
    assert_eq!(rings.in_flight_total(), 0, "slots leaked");
}

/// `balance_thread` semantics: re-sizing the worker pools must leave
/// the staging rings intact — no drain, no restart, in-flight staged
/// batches stay valid (pool widths change wall-clock, never bytes).
#[test]
fn balance_thread_leaves_staging_rings_intact() {
    let (mut feed, pool, quotas) = ring_fixture::feed(2, 2, 2);
    let first = feed.obtain(0, &quotas).expect("first iteration");
    first.recycle(&pool);

    let moved = ThreadAlloc {
        sampler: 2,
        loader: 4,
        trainer: 2,
    };
    feed.rebalance_threads(&moved);
    assert_eq!(feed.workers().observed(), moved);
    assert_eq!(feed.restarts(), 0, "balance_thread must not restart");
    assert_eq!(
        feed.rings().drains_total(),
        0,
        "balance_thread must not drain the staging rings"
    );

    // prepared iterations keep flowing through the untouched rings
    for iter in 1..=3 {
        let prep = feed.obtain(iter, &quotas).expect("post-move iteration");
        assert_eq!(prep.slots.len(), 2);
        prep.recycle(&pool);
    }
    assert_eq!(feed.rings().drains_total(), 0);
    let rings = std::sync::Arc::clone(feed.rings());
    feed.finish();
    assert_eq!(rings.in_flight_total(), 0, "slots leaked");
}

/// Single-slot rings (ring depth 1) still serve the feed correctly —
/// the transfer stage just serializes against slot release.
#[test]
fn single_slot_rings_serve_and_drain() {
    let (mut feed, pool, quotas) = ring_fixture::feed(2, 1, 1);
    for iter in 0..3 {
        let prep = feed.obtain(iter, &quotas).expect("iteration");
        assert_eq!(prep.slots.len(), 2);
        assert!(prep.slots.iter().all(|s| s.accel() < 2));
        prep.recycle(&pool);
    }
    let new_quotas = vec![10usize, 6, 8];
    feed.invalidate(3, new_quotas.clone());
    assert_eq!(feed.rings().drains_total(), 2);
    let next = feed.obtain(3, &new_quotas).expect("post-drain");
    next.recycle(&pool);
    let rings = std::sync::Arc::clone(feed.rings());
    feed.finish();
    assert_eq!(rings.in_flight_total(), 0);
}
