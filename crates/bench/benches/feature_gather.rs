//! Feature Loader gather throughput (paper Eq. 7's measured reality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyscale_graph::features::gather_features;
use hyscale_tensor::init::randn;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("feature_gather");
    g.sample_size(10);
    let table = randn(200_000, 128, 1);
    let mut rng = SmallRng::seed_from_u64(9);
    for &n in &[10_000usize, 50_000] {
        let idx: Vec<u32> = (0..n).map(|_| rng.gen_range(0..200_000)).collect();
        g.throughput(Throughput::Bytes((n * 128 * 4) as u64));
        g.bench_with_input(BenchmarkId::new("gather", n), &(), |b, ()| {
            b.iter(|| black_box(gather_features(&table, &idx)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gather);
criterion_main!(benches);
