//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the property-testing surface the workspace uses: the
//! [`Strategy`] trait over ranges / tuples / `Just` / `prop::collection::
//! vec`, `prop_flat_map`, the `proptest!` macro (with optional
//! `#![proptest_config]`), and `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no failure
//! persistence: each test runs a fixed number of cases generated from a
//! seed derived from the test's name, so failures reproduce
//! deterministically across runs.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange};
use std::ops::Range;

// Re-exported so the `proptest!` macro can name it via `$crate::rand`
// without requiring consumers to depend on rand themselves.
#[doc(hidden)]
pub use rand;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A strategy producing a single fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Dependent-strategy combinator produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let base = self.base.generate(rng);
        (self.f)(base).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy namespace mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s of `elem`-generated values with a length
        /// drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Vector of values from `elem`, length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Configuration whose case count comes from the `PROPTEST_CASES`
    /// environment variable, falling back to `default_cases` when it is
    /// unset or unparsable — mirroring real proptest's env override so
    /// CI matrices can run the same suite at smoke (`PROPTEST_CASES=8`)
    /// and deep (`PROPTEST_CASES=64`) intensities without a rebuild.
    pub fn env_or(default_cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_cases);
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // real proptest defaults to 256 but reads PROPTEST_CASES; the
        // shim keeps its lighter 32 as the fallback
        Self::env_or(32)
    }
}

/// Deterministic seed for a test, derived from its name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Property-test assertion (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                <$crate::rand::rngs::SmallRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
            for _case in 0..config.cases {
                let strategy = ($($strat,)*);
                let ($($pat,)*) = strategy.generate(&mut rng);
                $body
            }
        }
        $crate::__proptest_items!{$cfg; $($rest)*}
    };
}

/// Define property tests: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{$cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{$crate::ProptestConfig::default(); $($rest)*}
    };
}

/// The proptest prelude.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(max: usize) -> impl Strategy<Value = (usize, Vec<u32>)> {
        (2..max).prop_flat_map(move |n| {
            let items = prop::collection::vec(0..n as u32, 0..10);
            (Just(n), items)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -1.5f32..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((n, items) in pair(40)) {
            prop_assert!((2..40).contains(&n));
            for &v in &items {
                prop_assert!((v as usize) < n, "item {v} out of range {n}");
            }
        }

        #[test]
        fn vec_of_tuples(v in prop::collection::vec((0.0f64..1.0, 0u32..5), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (f, i) in v {
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert_eq!(i.min(4), i);
            }
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("x"), super::seed_for("x"));
    }

    #[test]
    fn env_or_honors_proptest_cases() {
        // under `PROPTEST_CASES=n` both the explicit env config and the
        // default must pick n up; otherwise they fall back
        let expect = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok());
        assert_eq!(ProptestConfig::env_or(7).cases, expect.unwrap_or(7));
        assert_eq!(ProptestConfig::default().cases, expect.unwrap_or(32));
    }
}
