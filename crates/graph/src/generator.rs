//! Seeded synthetic graph generators.
//!
//! The paper's datasets are proprietary-scale downloads; the reproduction
//! synthesizes graphs with matching average degree and a heavy-tailed
//! degree distribution (web/citation graphs are power-law). All
//! generators are deterministic in their seed.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT generator (Chakrabarti et al.) — recursive quadrant sampling
/// yields a power-law-ish degree distribution; this is the standard
/// Graph500 generator for scale-free graph benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average directed degree (edges = `avg_degree << scale`).
    pub avg_degree: usize,
    /// Quadrant probabilities; must sum to ~1.0. Graph500 uses
    /// (0.57, 0.19, 0.19, 0.05).
    pub probs: (f64, f64, f64, f64),
    /// Remove duplicate edges and self-loops.
    pub clean: bool,
}

impl Default for RmatConfig {
    fn default() -> Self {
        Self {
            scale: 10,
            avg_degree: 16,
            probs: (0.57, 0.19, 0.19, 0.05),
            clean: true,
        }
    }
}

/// Generate an R-MAT graph.
///
/// # Panics
/// If the quadrant probabilities do not sum to ≈ 1.
pub fn rmat(config: RmatConfig, seed: u64) -> CsrGraph {
    let (a, b, c, d) = config.probs;
    assert!(
        ((a + b + c + d) - 1.0).abs() < 1e-6,
        "R-MAT probabilities must sum to 1"
    );
    let n = 1usize << config.scale;
    let m = n * config.avg_degree;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m)
        .dedup(config.clean)
        .drop_self_loops(config.clean);
    for _ in 0..m {
        let (mut lo_s, mut hi_s) = (0usize, n);
        let (mut lo_t, mut hi_t) = (0usize, n);
        while hi_s - lo_s > 1 {
            let r: f64 = rng.gen();
            let (down, right) = if r < a {
                (false, false)
            } else if r < a + b {
                (false, true)
            } else if r < a + b + c {
                (true, false)
            } else {
                (true, true)
            };
            let mid_s = (lo_s + hi_s) / 2;
            let mid_t = (lo_t + hi_t) / 2;
            if down {
                lo_s = mid_s;
            } else {
                hi_s = mid_s;
            }
            if right {
                lo_t = mid_t;
            } else {
                hi_t = mid_t;
            }
        }
        builder.add_edge(lo_s as VertexId, lo_t as VertexId);
    }
    builder
        .build()
        .expect("R-MAT edges are in range by construction")
}

/// Preferential-attachment (Barabási–Albert style) generator: each new
/// vertex attaches `m` edges to existing vertices chosen proportionally
/// to degree (implemented with the repeated-endpoint trick).
pub fn preferential_attachment(
    num_vertices: usize,
    edges_per_vertex: usize,
    seed: u64,
) -> CsrGraph {
    assert!(num_vertices >= 2, "need at least two vertices");
    let m = edges_per_vertex.max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    // endpoint pool: every time a vertex gains an edge it is pushed again,
    // so sampling uniformly from the pool is degree-proportional.
    let mut pool: Vec<VertexId> = vec![0, 1];
    let mut builder = GraphBuilder::with_capacity(num_vertices, num_vertices * m)
        .dedup(true)
        .drop_self_loops(true);
    builder.add_edge(0, 1);
    for v in 2..num_vertices as VertexId {
        for _ in 0..m.min(v as usize) {
            let t = pool[rng.gen_range(0..pool.len())];
            builder.add_edge(v, t);
            pool.push(t);
            pool.push(v);
        }
    }
    builder
        .build()
        .expect("PA edges are in range by construction")
}

/// Erdős–Rényi `G(n, m)`: `m` uniform random directed edges.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(num_vertices, num_edges);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..num_vertices) as VertexId;
        let t = rng.gen_range(0..num_vertices) as VertexId;
        builder.add_edge(s, t);
    }
    builder
        .build()
        .expect("ER edges are in range by construction")
}

/// Stochastic block model with `k` equal-size communities.
///
/// Intra-community edges are `p_in`-times likelier than inter-community
/// ones; vertex `v`'s planted community is `v % k`. Community ids serve as
/// *learnable labels* for convergence tests: a GNN that aggregates
/// neighbours can recover the community structure.
#[derive(Debug, Clone, Copy)]
pub struct SbmConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Average directed degree.
    pub avg_degree: usize,
    /// Probability that an edge stays inside its community.
    pub p_intra: f64,
}

impl Default for SbmConfig {
    fn default() -> Self {
        Self {
            num_vertices: 1000,
            communities: 8,
            avg_degree: 16,
            p_intra: 0.85,
        }
    }
}

/// Generate an SBM graph; returns the graph and the planted community
/// label of every vertex.
pub fn sbm(config: SbmConfig, seed: u64) -> (CsrGraph, Vec<u32>) {
    let SbmConfig {
        num_vertices: n,
        communities: k,
        avg_degree,
        p_intra,
    } = config;
    assert!(k >= 1 && n >= k, "need at least one vertex per community");
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels: Vec<u32> = (0..n).map(|v| (v % k) as u32).collect();
    // members[c] lists vertices of community c.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for v in 0..n {
        members[v % k].push(v as VertexId);
    }
    let m = n * avg_degree;
    let mut builder = GraphBuilder::with_capacity(n, m)
        .dedup(true)
        .drop_self_loops(true);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let c = s % k;
        let t = if rng.gen_bool(p_intra) {
            members[c][rng.gen_range(0..members[c].len())]
        } else {
            let other = rng.gen_range(0..k);
            members[other][rng.gen_range(0..members[other].len())]
        };
        builder.add_edge(s as VertexId, t);
    }
    (builder.build().expect("SBM edges in range"), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_shape_and_determinism() {
        let cfg = RmatConfig {
            scale: 8,
            avg_degree: 8,
            ..Default::default()
        };
        let g1 = rmat(cfg, 1);
        let g2 = rmat(cfg, 1);
        let g3 = rmat(cfg, 2);
        assert_eq!(g1.num_vertices(), 256);
        assert!(g1.num_edges() > 0);
        assert_eq!(g1.targets(), g2.targets());
        assert_ne!(g1.targets(), g3.targets());
    }

    #[test]
    fn rmat_is_skewed() {
        let cfg = RmatConfig {
            scale: 10,
            avg_degree: 16,
            clean: false,
            ..Default::default()
        };
        let g = rmat(cfg, 7);
        // power-law-ish: max degree far above average
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probs() {
        let cfg = RmatConfig {
            probs: (0.5, 0.1, 0.1, 0.1),
            ..Default::default()
        };
        let _ = rmat(cfg, 0);
    }

    #[test]
    fn pa_grows_hubs() {
        let g = preferential_attachment(2000, 4, 3);
        assert_eq!(g.num_vertices(), 2000);
        assert!(g.num_edges() > 0);
        let und = g.symmetrize();
        assert!(
            und.max_degree() > 30,
            "expected hubs, max degree {}",
            und.max_degree()
        );
    }

    #[test]
    fn er_edge_count_close() {
        let g = erdos_renyi(500, 4000, 11);
        // duplicates possible but rare at this density
        assert!(g.num_edges() >= 3900);
        g.validate().unwrap();
    }

    #[test]
    fn sbm_labels_match_communities() {
        let (g, labels) = sbm(
            SbmConfig {
                num_vertices: 400,
                communities: 4,
                ..Default::default()
            },
            5,
        );
        assert_eq!(labels.len(), 400);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[5], 1);
        // homophily: most edges stay within community
        let mut intra = 0usize;
        let mut total = 0usize;
        for (s, t) in g.edges_by_source() {
            total += 1;
            if labels[s as usize] == labels[t as usize] {
                intra += 1;
            }
        }
        assert!(total > 0);
        assert!(
            intra as f64 / total as f64 > 0.6,
            "expected homophily, got {intra}/{total}"
        );
    }

    #[test]
    fn sbm_deterministic() {
        let cfg = SbmConfig::default();
        let (g1, _) = sbm(cfg, 9);
        let (g2, _) = sbm(cfg, 9);
        assert_eq!(g1.targets(), g2.targets());
    }
}
