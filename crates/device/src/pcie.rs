//! PCIe link model.
//!
//! Each accelerator hangs off a processor via PCIe (paper Fig. 2); the
//! performance model charges transfers at effective burst bandwidth
//! (Eq. 8) and the all-reduce at two crossings (Eq. 13).

use crate::calib;

/// A point-to-point PCIe link with effective bandwidth and fixed latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLink {
    /// Effective burst bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Per-transfer latency, seconds.
    pub latency_s: f64,
}

impl Default for PcieLink {
    fn default() -> Self {
        Self {
            bandwidth_gbs: calib::PCIE_EFF_BW_GBS,
            latency_s: calib::PCIE_LATENCY_S,
        }
    }
}

impl PcieLink {
    /// A link with explicit parameters.
    pub fn new(bandwidth_gbs: f64, latency_s: f64) -> Self {
        assert!(bandwidth_gbs > 0.0);
        Self {
            bandwidth_gbs,
            latency_s,
        }
    }

    /// Time to move `bytes` across the link (paper Eq. 8).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_s + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }

    /// All-reduce time for a model of `bytes`: gather + broadcast crosses
    /// the link twice (paper Eq. 13).
    pub fn allreduce_time(&self, bytes: u64) -> f64 {
        2.0 * self.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(PcieLink::default().transfer_time(0), 0.0);
    }

    #[test]
    fn bandwidth_term_dominates_large_transfers() {
        let link = PcieLink::new(10.0, 1e-6);
        // 1 GB at 10 GB/s = 0.1 s
        let t = link.transfer_time(1_000_000_000);
        assert!((t - 0.1000010).abs() < 1e-6);
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let link = PcieLink::new(10.0, 1e-5);
        let t = link.transfer_time(100);
        assert!(t > 1e-5 && t < 2e-5);
    }

    #[test]
    fn allreduce_is_two_crossings() {
        let link = PcieLink::default();
        let b = 1_000_000;
        assert!((link.allreduce_time(b) - 2.0 * link.transfer_time(b)).abs() < 1e-12);
    }

    #[test]
    fn eq8_matches_paper_form() {
        // T_trans = |V0| * f0 * S_feat / BW_PCIe
        let link = PcieLink::new(12.0, 0.0);
        let v0 = 290_000u64;
        let f0 = 128u64;
        let bytes = v0 * f0 * 4;
        let expect = bytes as f64 / 12e9;
        assert!((link.transfer_time(bytes) - expect).abs() < 1e-9);
    }
}
