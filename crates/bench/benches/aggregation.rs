//! Aggregation kernels: CPU reference vs. the FPGA scatter-gather
//! simulator (the §IV-C ablation: source-sorted reuse vs naive edge
//! streaming shows up as the DRAM-read counter, reported at the end).

use criterion::{criterion_group, criterion_main, Criterion};
use hyscale_device::fpga::kernel::{simulate_aggregation, FpgaKernelConfig};
use hyscale_gnn::aggregate::{aggregate_gcn, aggregate_mean, GcnCoefficients};
use hyscale_graph::generator::{rmat, RmatConfig};
use hyscale_sampler::NeighborSampler;
use hyscale_tensor::init::randn;
use std::hint::black_box;

fn bench_aggregation(c: &mut Criterion) {
    let graph = rmat(
        RmatConfig {
            scale: 13,
            avg_degree: 16,
            ..Default::default()
        },
        5,
    )
    .symmetrize();
    let sampler = NeighborSampler::new(vec![25, 10], 1);
    let seeds: Vec<u32> = (0..256u32).collect();
    let mb = sampler.sample(&graph, &seeds, 0);
    let block = &mb.blocks[0];
    let h = randn(block.num_src, 128, 2);
    let coef = GcnCoefficients::from_block(block);

    let mut g = c.benchmark_group("aggregation");
    g.sample_size(10);
    g.bench_function("cpu_gcn", |b| {
        b.iter(|| black_box(aggregate_gcn(block, &h, &coef)))
    });
    g.bench_function("cpu_mean", |b| {
        b.iter(|| black_box(aggregate_mean(block, &h)))
    });
    let cfg = FpgaKernelConfig::default();
    g.bench_function("fpga_sim_gcn", |b| {
        b.iter(|| {
            black_box(simulate_aggregation(
                block,
                &h,
                &coef.edge,
                &coef.self_loop,
                &cfg,
                false,
            ))
        })
    });
    g.finish();

    // report the data-reuse win once (not a timed measurement)
    let run = simulate_aggregation(block, &h, &coef.edge, &coef.self_loop, &cfg, false);
    let naive_bytes = (block.num_edges() * 128 * 4) as u64;
    eprintln!(
        "FPGA duplicator DRAM reads: {} bytes vs naive edge streaming {} bytes ({:.2}x reuse)",
        run.dram_read_bytes,
        naive_bytes,
        naive_bytes as f64 / run.dram_read_bytes as f64
    );
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
