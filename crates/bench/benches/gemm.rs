//! GEMM microbenchmarks at GNN update-stage shapes (paper Eq. 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyscale_tensor::init::randn;
use hyscale_tensor::{gemm_nn, gemm_nt, gemm_tn};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    // (rows of the mini-batch layer, f_in, f_out) at paper-like dims
    for &(m, k, n) in &[
        (1024usize, 100usize, 256usize),
        (4096, 128, 256),
        (1024, 256, 47),
    ] {
        let a = randn(m, k, 1);
        let b = randn(k, n, 2);
        g.bench_with_input(
            BenchmarkId::new("nn", format!("{m}x{k}x{n}")),
            &(),
            |bch, ()| bch.iter(|| black_box(gemm_nn(&a, &b))),
        );
        let bt = randn(n, k, 3);
        g.bench_with_input(
            BenchmarkId::new("nt", format!("{m}x{k}x{n}")),
            &(),
            |bch, ()| bch.iter(|| black_box(gemm_nt(&a, &bt))),
        );
        let at = randn(k, m, 4);
        g.bench_with_input(
            BenchmarkId::new("tn", format!("{m}x{k}x{n}")),
            &(),
            |bch, ()| bch.iter(|| black_box(gemm_tn(&at, &b))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
