//! Graph and feature persistence.
//!
//! Simple, dependency-free formats so synthesized datasets can be saved
//! once and reloaded across experiment runs:
//!
//! * **edge-list text** (`src<TAB>dst` per line, `#` comments) — the
//!   interchange format of SNAP/OGB dumps;
//! * **binary CSR** (little-endian `u64` header + arrays) — fast reload;
//! * **binary f32 matrix** for features.

use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId};
use hyscale_tensor::Matrix;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const CSR_MAGIC: u64 = 0x4853_4352_0001; // "HSCR" v1
const MAT_MAGIC: u64 = 0x4853_4d41_0001; // "HSMA" v1

/// Write a graph as `src\tdst` lines.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# hyscale edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, t) in graph.edges_by_source() {
        writeln!(w, "{s}\t{t}")?;
    }
    Ok(())
}

/// Parse an edge-list text stream. Lines starting with `#` are skipped;
/// fields may be separated by tabs or spaces. The vertex count is
/// `max_id + 1` unless `num_vertices` is given.
pub fn read_edge_list<R: Read>(r: R, num_vertices: Option<usize>) -> io::Result<CsrGraph> {
    let reader = BufReader::new(r);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno))
        };
        let s = parse(parts.next())?;
        let t = parse(parts.next())?;
        max_id = max_id.max(s).max(t);
        edges.push((s as VertexId, t as VertexId));
    }
    let n = num_vertices.unwrap_or((max_id + 1) as usize);
    CsrGraph::from_edges(n, &edges).map_err(graph_err)
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge at line {}", lineno + 1),
    )
}

fn graph_err(e: GraphError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Write a graph in the binary CSR format.
pub fn write_csr_binary<W: Write>(graph: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(&CSR_MAGIC.to_le_bytes())?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&graph.num_edges().to_le_bytes())?;
    for &o in graph.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in graph.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()
}

/// Read a graph from the binary CSR format.
pub fn read_csr_binary<R: Read>(r: R) -> io::Result<CsrGraph> {
    let mut r = BufReader::new(r);
    let magic = read_u64(&mut r)?;
    if magic != CSR_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a hyscale CSR file",
        ));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)?);
    }
    let mut targets = Vec::with_capacity(m);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        targets.push(VertexId::from_le_bytes(buf4));
    }
    CsrGraph::from_raw(offsets, targets).map_err(graph_err)
}

/// Write a feature matrix in the binary format.
pub fn write_matrix<W: Write>(m: &Matrix, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(&MAT_MAGIC.to_le_bytes())?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    for &v in m.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read a feature matrix from the binary format.
pub fn read_matrix<R: Read>(r: R) -> io::Result<Matrix> {
    let mut r = BufReader::new(r);
    let magic = read_u64(&mut r)?;
    if magic != MAT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a hyscale matrix file",
        ));
    }
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    let mut data = Vec::with_capacity(rows * cols);
    let mut buf = [0u8; 4];
    for _ in 0..rows * cols {
        r.read_exact(&mut buf)?;
        data.push(f32::from_le_bytes(buf));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Convenience: save a graph to a path in binary CSR.
pub fn save_graph(graph: &CsrGraph, path: &Path) -> io::Result<()> {
    write_csr_binary(graph, std::fs::File::create(path)?)
}

/// Convenience: load a graph from a binary CSR path.
pub fn load_graph(path: &Path) -> io::Result<CsrGraph> {
    read_csr_binary(std::fs::File::open(path)?)
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{rmat, RmatConfig};
    use hyscale_tensor::init::randn;

    fn graph() -> CsrGraph {
        rmat(
            RmatConfig {
                scale: 7,
                avg_degree: 6,
                ..Default::default()
            },
            3,
        )
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = graph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(g.num_vertices())).unwrap();
        assert_eq!(g.offsets(), g2.offsets());
        assert_eq!(g.targets(), g2.targets());
    }

    #[test]
    fn edge_list_infers_vertex_count() {
        let text = b"# comment\n0 3\n2 1\n";
        let g = read_edge_list(&text[..], None).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let text = b"0\tx\n";
        assert!(read_edge_list(&text[..], None).is_err());
    }

    #[test]
    fn csr_binary_roundtrip() {
        let g = graph();
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        let g2 = read_csr_binary(&buf[..]).unwrap();
        assert_eq!(g.offsets(), g2.offsets());
        assert_eq!(g.targets(), g2.targets());
    }

    #[test]
    fn csr_binary_rejects_wrong_magic() {
        let buf = [0u8; 64];
        assert!(read_csr_binary(&buf[..]).is_err());
    }

    #[test]
    fn matrix_roundtrip() {
        let m = randn(17, 9, 4);
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let m2 = read_matrix(&buf[..]).unwrap();
        assert_eq!(m.as_slice(), m2.as_slice());
        assert_eq!(m.shape(), m2.shape());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hyscale_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.csr");
        let g = graph();
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g.targets(), g2.targets());
        std::fs::remove_file(&path).ok();
    }
}
