//! # HyScale-GNN
//!
//! A Rust reproduction of *"HyScale-GNN: A Scalable Hybrid GNN Training
//! System on Single-Node Heterogeneous Architecture"* (Lin & Prasanna,
//! IPDPS 2023, arXiv:2303.00158).
//!
//! This façade crate re-exports the workspace's public API:
//!
//! * [`tensor`] — dense linear algebra (GEMM, losses, optimizers).
//! * [`graph`] — CSR graphs, synthetic generators, Table III datasets.
//! * [`sampler`] — neighbor / random-walk mini-batch samplers.
//! * [`gnn`] — GCN and GraphSAGE with hand-derived backward passes.
//! * [`device`] — simulated heterogeneous devices (Table II specs, PCIe,
//!   FPGA kernel + resource models, GPU cache model).
//! * [`core`] — the HyScale-GNN system: training protocol, two-stage
//!   feature prefetching, DRM engine, performance model, hybrid trainer.
//! * [`baselines`] — PyG multi-GPU, PaGraph, P3, DistDGLv2 system models.
//!
//! ## Quickstart
//!
//! ```
//! use hyscale::core::{AcceleratorKind, HybridTrainer, SystemConfig};
//! use hyscale::gnn::GnnKind;
//! use hyscale::graph::Dataset;
//!
//! // A small learnable dataset and a 2-FPGA hybrid system.
//! let dataset = Dataset::toy(42);
//! let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
//! cfg.platform.num_accelerators = 2;
//! cfg.train.batch_per_trainer = 64;
//! cfg.train.fanouts = vec![10, 5];
//! cfg.train.max_functional_iters = Some(2);
//!
//! let mut trainer = HybridTrainer::new(cfg, dataset);
//! let report = trainer.train_epoch();
//! assert!(report.loss.is_finite());
//! ```

#![warn(missing_docs)]

pub use hyscale_baselines as baselines;
pub use hyscale_core as core;
pub use hyscale_device as device;
pub use hyscale_gnn as gnn;
pub use hyscale_graph as graph;
pub use hyscale_sampler as sampler;
pub use hyscale_tensor as tensor;
