//! Memory placement feasibility (the paper's motivating constraint).
//!
//! Prior single-node accelerated trainers (GraphACT, HP-GNN) store the
//! input graph in *device* memory and therefore cannot train graphs whose
//! features exceed 16–64 GB (paper §I, §VII). HyScale-GNN stores graph +
//! features in CPU memory and streams mini-batches to devices. This
//! module checks both placements so tests and examples can demonstrate
//! the failure mode the paper is designed around.

use crate::spec::DeviceSpec;
use hyscale_graph::DatasetSpec;
use hyscale_sampler::WorkloadStats;

/// Where the full graph (topology + features) is resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// HyScale-GNN: graph in CPU DRAM, mini-batches streamed to devices.
    HostMemory,
    /// GraphACT/HP-GNN-style: entire graph resident in device memory.
    DeviceMemory,
}

/// Outcome of a placement check.
#[derive(Debug, Clone)]
pub struct PlacementReport {
    /// Chosen placement.
    pub placement: Placement,
    /// Bytes the full graph needs (topology + features + labels).
    pub graph_bytes: u64,
    /// Bytes of the per-iteration device working set (mini-batch
    /// features + topology + model + activations).
    pub minibatch_bytes: u64,
    /// Capacity of the constraining memory, bytes.
    pub capacity_bytes: u64,
    /// Whether the placement fits.
    pub fits: bool,
}

/// Full-graph footprint: CSR topology (8 B offsets per vertex + 4 B per
/// edge) + f32 features + labels.
pub fn graph_footprint_bytes(spec: &DatasetSpec) -> u64 {
    let topology = spec.num_vertices * 8 + spec.num_edges * 4;
    let features = spec.feature_bytes();
    let labels = spec.num_vertices * 4;
    topology + features + labels
}

/// Device working set of one mini-batch: gathered features, block
/// topology, model replica, and activations.
pub fn minibatch_footprint_bytes(stats: &WorkloadStats, dims: &[usize], model_bytes: u64) -> u64 {
    let features = stats.feature_bytes(dims[0]);
    let topology: u64 = stats.edges_per_layer.iter().map(|&e| e as u64 * 8).sum();
    let activations: u64 = stats
        .nodes_per_layer
        .iter()
        .zip(dims.iter().skip(1))
        .map(|(&v, &f)| v as u64 * f as u64 * 4)
        .sum();
    features + topology + model_bytes + activations
}

/// Check the HyScale-GNN placement: graph in host DRAM (`host_capacity_gb`
/// aggregate), mini-batch working set within each device.
pub fn check_host_placement(
    dataset: &DatasetSpec,
    stats: &WorkloadStats,
    dims: &[usize],
    model_bytes: u64,
    host_capacity_gb: f64,
    device: &DeviceSpec,
) -> PlacementReport {
    let graph_bytes = graph_footprint_bytes(dataset);
    let minibatch_bytes = minibatch_footprint_bytes(stats, dims, model_bytes);
    let host_cap = (host_capacity_gb * 1e9) as u64;
    let dev_cap = (device.mem_capacity_gb * 1e9) as u64;
    // Double-buffered prefetch (paper §IV-B) keeps up to 3 batches
    // resident: executing + transferred + in-flight.
    let fits = graph_bytes <= host_cap && 3 * minibatch_bytes <= dev_cap;
    PlacementReport {
        placement: Placement::HostMemory,
        graph_bytes,
        minibatch_bytes,
        capacity_bytes: host_cap.min(dev_cap),
        fits,
    }
}

/// Check the GraphACT/HP-GNN-style placement: full graph in device memory.
pub fn check_device_placement(dataset: &DatasetSpec, device: &DeviceSpec) -> PlacementReport {
    let graph_bytes = graph_footprint_bytes(dataset);
    let cap = (device.mem_capacity_gb * 1e9) as u64;
    PlacementReport {
        placement: Placement::DeviceMemory,
        graph_bytes,
        minibatch_bytes: 0,
        capacity_bytes: cap,
        fits: graph_bytes <= cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ALVEO_U250, RTX_A5000};
    use hyscale_graph::dataset::{MAG240M_HOMO, OGBN_PAPERS100M, OGBN_PRODUCTS};

    fn paper_stats() -> WorkloadStats {
        WorkloadStats {
            batch_size: 1024,
            input_nodes: 220_000,
            nodes_per_layer: vec![26_600, 1024],
            edges_per_layer: vec![266_000, 25_600],
        }
    }

    #[test]
    fn large_graphs_do_not_fit_device_memory() {
        // the paper's central motivation (§I)
        for spec in [OGBN_PAPERS100M, MAG240M_HOMO] {
            for dev in [RTX_A5000, ALVEO_U250] {
                let r = check_device_placement(&spec, &dev);
                assert!(!r.fits, "{} should not fit on {}", spec.name, dev.name);
            }
        }
    }

    #[test]
    fn products_fits_device_memory() {
        // medium-scale graphs were fine for prior work
        let r = check_device_placement(&OGBN_PRODUCTS, &ALVEO_U250);
        assert!(r.fits, "{} bytes on U250", r.graph_bytes);
    }

    #[test]
    fn hyscale_placement_fits_everything() {
        for spec in [OGBN_PRODUCTS, OGBN_PAPERS100M, MAG240M_HOMO] {
            let dims = [spec.f0, spec.f1, spec.f2];
            let r = check_host_placement(
                &spec,
                &paper_stats(),
                &dims,
                10_000_000,
                4096.0,
                &ALVEO_U250,
            );
            assert!(r.fits, "{} should fit host placement", spec.name);
        }
    }

    #[test]
    fn minibatch_footprint_counts_components() {
        let stats = paper_stats();
        let dims = [128usize, 256, 172];
        let b = minibatch_footprint_bytes(&stats, &dims, 1000);
        assert!(b > stats.feature_bytes(128));
        assert!(
            b < 2 * 1024 * 1024 * 1024u64,
            "mini-batch should be << device memory"
        );
    }

    #[test]
    fn mag_footprint_exceeds_paper_quote() {
        // paper quotes 202 GB for MAG240M (f16 release); our f32 is ~2x
        let gb = graph_footprint_bytes(&MAG240M_HOMO) as f64 / 1e9;
        assert!(gb > 300.0, "MAG240M footprint {gb} GB");
    }
}
