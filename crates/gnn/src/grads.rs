//! Gradient containers and the weighted all-reduce average.
//!
//! Synchronous SGD gathers per-trainer gradients, averages them, and
//! broadcasts the result (paper §II-B, §III-A "Synchronizer"). With the
//! DRM engine re-balancing batch sizes, trainers contribute *unequal*
//! batch fractions; weighting each gradient by its batch size makes the
//! averaged gradient exactly equal to the gradient of the concatenated
//! batch — the mechanism behind the paper's "optimizations do not alter
//! the semantics" guarantee.

use hyscale_tensor::Matrix;

/// Per-layer parameter gradients (`∂W`, `∂b`) plus the contributing batch
/// size.
#[derive(Clone)]
pub struct Gradients {
    /// Weight gradients, one per layer.
    pub d_weights: Vec<Matrix>,
    /// Bias gradients, one per layer.
    pub d_biases: Vec<Vec<f32>>,
    /// Number of seed vertices that produced these gradients.
    pub batch_size: usize,
}

impl Gradients {
    /// Zero gradients matching the given layer shapes.
    pub fn zeros_like(shapes: &[(usize, usize)]) -> Self {
        Self {
            d_weights: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect(),
            d_biases: shapes.iter().map(|&(_, c)| vec![0.0; c]).collect(),
            batch_size: 0,
        }
    }

    /// Number of layers covered.
    pub fn num_layers(&self) -> usize {
        self.d_weights.len()
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.d_weights.iter().map(Matrix::len).sum::<usize>()
            + self.d_biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Size in bytes of one gradient exchange — the all-reduce payload of
    /// Eq. 13's numerator (model size).
    pub fn nbytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    /// Batch-size-weighted average of many trainers' gradients.
    ///
    /// Each input gradient is assumed to be *mean over its own batch*
    /// (standard loss reduction); the weighted combination therefore
    /// equals the mean over the union batch.
    ///
    /// # Panics
    /// If `parts` is empty, shapes disagree, or all batch sizes are zero.
    pub fn weighted_average(parts: &[Gradients]) -> Gradients {
        assert!(!parts.is_empty(), "no gradients to average");
        let total: usize = parts.iter().map(|g| g.batch_size).sum();
        assert!(total > 0, "all contributing batches are empty");
        let layers = parts[0].num_layers();
        let mut out = Gradients {
            d_weights: parts[0]
                .d_weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            d_biases: parts[0]
                .d_biases
                .iter()
                .map(|b| vec![0.0; b.len()])
                .collect(),
            batch_size: total,
        };
        for g in parts {
            assert_eq!(g.num_layers(), layers, "layer count mismatch in all-reduce");
            if g.batch_size == 0 {
                continue;
            }
            let w = g.batch_size as f32 / total as f32;
            for (acc, part) in out.d_weights.iter_mut().zip(&g.d_weights) {
                acc.axpy(w, part);
            }
            for (acc, part) in out.d_biases.iter_mut().zip(&g.d_biases) {
                for (a, p) in acc.iter_mut().zip(part) {
                    *a += w * *p;
                }
            }
        }
        out
    }

    /// Largest absolute entry across all gradients (for divergence
    /// detection in tests).
    pub fn max_abs(&self) -> f32 {
        let w = self
            .d_weights
            .iter()
            .map(Matrix::max_abs)
            .fold(0.0f32, f32::max);
        let b = self
            .d_biases
            .iter()
            .flat_map(|b| b.iter())
            .fold(0.0f32, |m, v| m.max(v.abs()));
        w.max(b)
    }

    /// Approximate equality for tests.
    pub fn approx_eq(&self, other: &Gradients, tol: f32) -> bool {
        self.num_layers() == other.num_layers()
            && self
                .d_weights
                .iter()
                .zip(&other.d_weights)
                .all(|(a, b)| a.approx_eq(b, tol))
            && self.d_biases.iter().zip(&other.d_biases).all(|(a, b)| {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| {
                        let d = (x - y).abs();
                        d <= tol || d <= tol * x.abs().max(y.abs())
                    })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(v: f32, batch: usize) -> Gradients {
        Gradients {
            d_weights: vec![Matrix::full(2, 2, v)],
            d_biases: vec![vec![v; 2]],
            batch_size: batch,
        }
    }

    #[test]
    fn equal_batches_average_evenly() {
        let avg = Gradients::weighted_average(&[grad(1.0, 10), grad(3.0, 10)]);
        assert!((avg.d_weights[0][(0, 0)] - 2.0).abs() < 1e-6);
        assert!((avg.d_biases[0][0] - 2.0).abs() < 1e-6);
        assert_eq!(avg.batch_size, 20);
    }

    #[test]
    fn unequal_batches_weight_by_size() {
        // 30 seeds @ grad 1.0, 10 seeds @ grad 5.0 => (30*1 + 10*5)/40 = 2.0
        let avg = Gradients::weighted_average(&[grad(1.0, 30), grad(5.0, 10)]);
        assert!((avg.d_weights[0][(0, 0)] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_batch_contributes_nothing() {
        let avg = Gradients::weighted_average(&[grad(1.0, 10), grad(99.0, 0)]);
        assert!((avg.d_weights[0][(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nbytes_matches_param_count() {
        let g = grad(0.0, 1);
        assert_eq!(g.num_params(), 6);
        assert_eq!(g.nbytes(), 24);
    }

    #[test]
    fn zeros_like_shapes() {
        let g = Gradients::zeros_like(&[(3, 4), (4, 2)]);
        assert_eq!(g.d_weights[0].shape(), (3, 4));
        assert_eq!(g.d_biases[1].len(), 2);
        assert_eq!(g.max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "all contributing batches are empty")]
    fn rejects_all_empty() {
        let _ = Gradients::weighted_average(&[grad(1.0, 0)]);
    }

    #[test]
    fn approx_eq_detects_difference() {
        assert!(grad(1.0, 1).approx_eq(&grad(1.0, 2), 1e-6));
        assert!(!grad(1.0, 1).approx_eq(&grad(1.1, 1), 1e-6));
    }
}
