//! The paper's semantics-preservation claim (§IV): "these optimizations
//! do not alter the semantics of the GNN training algorithm; thus, the
//! convergence rate and model accuracy remain the same as the original
//! sequential algorithm."
//!
//! These tests make the claim mechanical:
//! * the protocol-coordinated *parallel* weighted all-reduce produces
//!   exactly the gradients of a sequential reduction over the same
//!   batches;
//! * the timing-layer optimizations (TFP) change no numerics at all;
//! * the *real* prefetching pipeline (background producer + bounded
//!   queue, `prefetch_depth > 0`) trains bitwise-identical weights to
//!   serial execution, including across DRM re-mapping events;
//! * replicas stay in bitwise lock-step across iterations.

use hyscale::core::protocol::TrainingRound;
use hyscale::core::sync::Synchronizer;
use hyscale::core::{AcceleratorKind, HybridTrainer, OptFlags, SystemConfig};
use hyscale::gnn::{GnnKind, GnnModel, Gradients};
use hyscale::graph::features::gather_features;
use hyscale::graph::Dataset;
use hyscale::sampler::NeighborSampler;
use std::sync::Arc;

/// Parallel protocol all-reduce == sequential weighted average, exactly.
#[test]
fn parallel_allreduce_matches_sequential() {
    let ds = Dataset::toy(3);
    let sampler = NeighborSampler::new(vec![6, 4], 5);
    let model = GnnModel::new(GnnKind::GraphSage, &[16, 32, 4], 9);

    // three trainers with deliberately unequal quotas (DRM-style split)
    let quotas = [60usize, 30, 10];
    let mut start = 0;
    let work: Vec<_> = quotas
        .iter()
        .map(|&q| {
            let seeds: Vec<u32> = ds.splits.train[start..start + q].to_vec();
            start += q;
            let mb = sampler.sample(&ds.graph, &seeds, q as u64);
            let x = gather_features(&ds.data.features, &mb.input_nodes);
            let labels: Vec<u32> = seeds.iter().map(|&s| ds.data.labels[s as usize]).collect();
            (mb, x, labels)
        })
        .collect();

    // sequential reference
    let seq_parts: Vec<Gradients> = work
        .iter()
        .map(|(mb, x, l)| model.train_step(mb, x, l).grads)
        .collect();
    let seq_avg = Gradients::weighted_average(&seq_parts);

    // parallel via the training protocol
    let round = Arc::new(TrainingRound::new(3));
    let sync = Synchronizer::new();
    let mut par_avg = None;
    std::thread::scope(|s| {
        for (i, (mb, x, l)) in work.iter().enumerate() {
            let round = Arc::clone(&round);
            let model = &model;
            s.spawn(move || {
                let out = model.train_step(mb, x, l);
                round.trainer_done(i, out.grads);
                round.trainer_ack();
            });
        }
        par_avg = Some(round.synchronize(&sync));
        round.runtime_wait_acks();
    });
    let par_avg = par_avg.unwrap();

    assert_eq!(par_avg.batch_size, seq_avg.batch_size);
    for (a, b) in par_avg.d_weights.iter().zip(&seq_avg.d_weights) {
        assert_eq!(a.as_slice(), b.as_slice(), "parallel all-reduce diverged");
    }
    for (a, b) in par_avg.d_biases.iter().zip(&seq_avg.d_biases) {
        assert_eq!(a, b);
    }
}

/// The TFP optimization is pure timing: with the task mapping pinned,
/// identical final weights with it on or off.
#[test]
fn tfp_does_not_change_numerics() {
    use hyscale::core::drm::{ThreadAlloc, WorkloadSplit};
    let run = |tfp: bool| {
        let ds = Dataset::toy(11);
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
        cfg.platform.num_accelerators = 2;
        cfg.opt = OptFlags {
            hybrid: true,
            drm: false,
            tfp,
        };
        cfg.train.batch_per_trainer = 64;
        cfg.train.fanouts = vec![6, 3];
        cfg.train.hidden_dim = 16;
        cfg.train.max_functional_iters = Some(4);
        let mut t = HybridTrainer::new(cfg, ds);
        t.set_mapping(
            WorkloadSplit::new(64, 192, 2),
            ThreadAlloc::default_for(128),
        );
        t.train_epochs(3);
        t.model().flatten_params()
    };
    assert_eq!(run(true), run(false), "TFP altered training numerics");
}

/// The accelerator *kind* is pure timing too: with the mapping pinned, a
/// GPU system and an FPGA system with identical algorithmic parameters
/// train identical weights.
#[test]
fn accelerator_kind_does_not_change_numerics() {
    use hyscale::core::drm::{ThreadAlloc, WorkloadSplit};
    let run = |accel: AcceleratorKind| {
        let ds = Dataset::toy(13);
        let mut cfg = SystemConfig::paper_default(accel, GnnKind::GraphSage);
        cfg.platform.num_accelerators = 2;
        cfg.opt = OptFlags {
            hybrid: true,
            drm: false,
            tfp: true,
        };
        cfg.train.batch_per_trainer = 48;
        cfg.train.fanouts = vec![5, 3];
        cfg.train.hidden_dim = 16;
        cfg.train.max_functional_iters = Some(3);
        let mut t = HybridTrainer::new(cfg, ds);
        t.set_mapping(
            WorkloadSplit::new(48, 144, 2),
            ThreadAlloc::default_for(128),
        );
        t.train_epochs(2);
        t.model().flatten_params()
    };
    assert_eq!(
        run(AcceleratorKind::u250()),
        run(AcceleratorKind::a5000()),
        "device choice altered training numerics"
    );
}

/// The real prefetching pipeline is pure wall-clock overlap: for every
/// prefetch depth in {1, 2, 4} × staging-ring depth in {1, 2}, final
/// weights are bitwise-identical to serial execution (`depth = 0`).
/// DRM is pinned off here so the whole epoch runs through an
/// uninterrupted producer queue.
#[test]
fn prefetch_depths_are_bitwise_identical_to_serial() {
    use hyscale::core::drm::{ThreadAlloc, WorkloadSplit};
    let run = |depth: usize, ring_depth: usize| {
        let ds = Dataset::toy(29);
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
        cfg.platform.num_accelerators = 2;
        cfg.opt = OptFlags {
            hybrid: true,
            drm: false,
            tfp: true,
        };
        cfg.train.batch_per_trainer = 48;
        cfg.train.fanouts = vec![6, 3];
        cfg.train.hidden_dim = 16;
        cfg.train.max_functional_iters = Some(5);
        cfg.train.prefetch_depth = depth;
        cfg.train.staging_ring_depth = ring_depth;
        let mut t = HybridTrainer::new(cfg, ds);
        t.set_mapping(
            WorkloadSplit::new(48, 144, 2),
            ThreadAlloc::default_for(128),
        );
        t.train_epochs(3);
        t.model().flatten_params()
    };
    let serial = run(0, 2);
    for ring_depth in [1usize, 2] {
        for depth in [1usize, 2, 4] {
            assert_eq!(
                serial,
                run(depth, ring_depth),
                "prefetch depth {depth} at ring depth {ring_depth} altered training numerics"
            );
        }
    }
}

/// Same bitwise contract with the DRM engine *live*: its balance_work
/// moves change per-trainer quotas mid-epoch, forcing the producer
/// queue to drain and restart — and the weights must still match serial
/// execution exactly, with the re-mapping events themselves identical.
#[test]
fn prefetch_is_bitwise_identical_across_drm_remapping() {
    let run = |depth: usize| {
        let ds = Dataset::toy(31);
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
        cfg.platform.num_accelerators = 2;
        cfg.opt = OptFlags {
            hybrid: true,
            drm: true,
            tfp: true,
        };
        cfg.train.batch_per_trainer = 64;
        cfg.train.fanouts = vec![6, 3];
        cfg.train.hidden_dim = 16;
        cfg.train.max_functional_iters = Some(8);
        cfg.train.prefetch_depth = depth;
        let mut t = HybridTrainer::new(cfg, ds);
        let reports = t.train_epochs(2);
        let remap_events: Vec<(usize, usize)> = reports
            .iter()
            .flat_map(|r| r.trace.iter())
            .map(|it| (it.iter, it.cpu_quota))
            .collect();
        let restarts: usize = reports.iter().map(|r| r.prefetch_restarts).sum();
        (t.model().flatten_params(), remap_events, restarts)
    };
    let (serial_params, serial_events, _) = run(0);
    for depth in [1usize, 2, 4] {
        let (params, events, restarts) = run(depth);
        assert_eq!(
            serial_events, events,
            "depth {depth} saw different DRM re-mapping trajectory"
        );
        assert_eq!(
            serial_params, params,
            "prefetch depth {depth} diverged from serial across DRM re-mapping"
        );
        assert!(
            restarts > 0,
            "depth {depth}: DRM never invalidated the producer queue — \
             the re-mapping path went unexercised"
        );
    }
}

/// Worker-pool widths are pure wall-clock: with the task mapping pinned,
/// two deliberately different `ThreadAlloc` settings (sampler-heavy and
/// loader-heavy) train bitwise-identical weights and losses to each
/// other and to serial execution, at prefetch depths {1, 2}. This is
/// what licenses the executor to apply `balance_thread` moves to the
/// live pools without draining the prefetch queue.
#[test]
fn thread_allocs_are_bitwise_identical_across_depths() {
    use hyscale::core::drm::{ThreadAlloc, WorkloadSplit};
    let run = |depth: usize, alloc: ThreadAlloc| {
        let ds = Dataset::toy(37);
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::GraphSage);
        cfg.platform.num_accelerators = 2;
        cfg.opt = OptFlags {
            hybrid: true,
            drm: false,
            tfp: true,
        };
        cfg.train.batch_per_trainer = 48;
        cfg.train.fanouts = vec![6, 3];
        cfg.train.hidden_dim = 16;
        cfg.train.max_functional_iters = Some(4);
        cfg.train.prefetch_depth = depth;
        let mut t = HybridTrainer::new(cfg, ds);
        t.set_mapping(WorkloadSplit::new(48, 144, 2), alloc);
        let reports = t.train_epochs(2);
        let losses: Vec<f32> = reports.iter().map(|r| r.loss).collect();
        // the producer must have dispatched under exactly this alloc
        for r in &reports {
            assert_eq!(r.wall_stages.threads, alloc, "producer ignored ThreadAlloc");
        }
        (t.model().flatten_params(), losses)
    };
    let sampler_heavy = ThreadAlloc {
        sampler: 96,
        loader: 16,
        trainer: 16,
    };
    let loader_heavy = ThreadAlloc {
        sampler: 8,
        loader: 104,
        trainer: 16,
    };
    let (reference, ref_losses) = run(0, ThreadAlloc::default_for(128));
    for depth in [1usize, 2] {
        for alloc in [sampler_heavy, loader_heavy] {
            let (params, losses) = run(depth, alloc);
            assert_eq!(
                reference, params,
                "depth {depth} under {alloc:?} diverged from serial"
            );
            assert_eq!(
                ref_losses, losses,
                "depth {depth} under {alloc:?} changed the loss trajectory"
            );
        }
    }
}

/// Live DRM with both move kinds firing mid-epoch: `balance_work`
/// re-maps quotas (draining the queue *and* the changed lanes' staging
/// rings) and `balance_thread` re-sizes the worker pools and transfer
/// lane cap in place (draining nothing) — weights, losses, and the DRM
/// trajectory itself must stay bitwise-identical to serial at prefetch
/// depths {1, 2}, for each staging-ring depth {1, 2}, and the
/// measured-wall trace must show the thread shift landing.
///
/// The serial reference is taken *per ring depth*: the overlap-aware
/// DRM legitimately decides differently at ring depth 1 (the wire is
/// fully visible on the accelerator's critical path) than at depth 2
/// (double-buffered), so ring depth steers the trajectory — but
/// *prefetch depth never may*: any real-pipeline depth must reproduce
/// its own ring depth's serial trajectory bitwise.
#[test]
fn thread_rebalance_mid_epoch_is_bitwise_identical() {
    use hyscale::core::drm::DrmAction;
    let run = |depth: usize, ring_depth: usize| {
        let ds = Dataset::toy(31);
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
        cfg.platform.num_accelerators = 2;
        cfg.opt = OptFlags {
            hybrid: true,
            drm: true,
            tfp: true,
        };
        cfg.train.batch_per_trainer = 64;
        cfg.train.fanouts = vec![6, 3];
        cfg.train.hidden_dim = 16;
        cfg.train.max_functional_iters = Some(8);
        cfg.train.prefetch_depth = depth;
        cfg.train.staging_ring_depth = ring_depth;
        let mut t = HybridTrainer::new(cfg, ds);
        let reports = t.train_epochs(2);
        let thread_moves: usize = reports
            .iter()
            .flat_map(|r| r.trace.iter())
            .filter(|it| matches!(it.drm_action, DrmAction::BalanceThread { .. }))
            .count();
        let actions: Vec<(usize, DrmAction, usize)> = reports
            .iter()
            .flat_map(|r| r.trace.iter())
            .map(|it| (it.iter, it.drm_action, it.cpu_quota))
            .collect();
        let observed_allocs: Vec<_> = reports
            .iter()
            .flat_map(|r| r.trace.iter())
            .map(|it| it.wall.threads)
            .collect();
        let losses: Vec<f32> = reports.iter().map(|r| r.loss).collect();
        (
            t.model().flatten_params(),
            losses,
            actions,
            thread_moves,
            observed_allocs,
        )
    };
    let ring2_serial = run(0, 2);
    let (_, _, ref ring2_actions, ring2_moves, ref serial_allocs) = ring2_serial;
    assert!(
        ring2_moves >= 1,
        "config never triggered a balance_thread move — the re-allocation path went unexercised"
    );
    assert!(
        ring2_actions
            .iter()
            .any(|(_, a, _)| matches!(a, DrmAction::BalanceWork { .. })),
        "config never triggered a balance_work move — the ring-drain path went unexercised"
    );
    // The wall-clock trace shows the re-allocation land: the producer's
    // observed widths change across the epoch.
    let distinct: std::collections::HashSet<_> = serial_allocs
        .iter()
        .map(|a| (a.sampler, a.loader, a.trainer))
        .collect();
    assert!(
        distinct.len() >= 2,
        "balance_thread never shifted the widths the producer observed: {serial_allocs:?}"
    );
    for ring_depth in [1usize, 2] {
        // ring 2's serial reference was already computed above
        let (serial_params, serial_losses, serial_actions, serial_moves, _) = if ring_depth == 2 {
            ring2_serial.clone()
        } else {
            run(0, ring_depth)
        };
        for depth in [1usize, 2] {
            let (params, losses, actions, moves, _) = run(depth, ring_depth);
            assert_eq!(
                serial_actions, actions,
                "depth {depth} ring {ring_depth} saw a different DRM trajectory"
            );
            assert_eq!(serial_moves, moves);
            assert_eq!(
                serial_params, params,
                "depth {depth} ring {ring_depth} diverged from serial across live DRM moves"
            );
            assert_eq!(serial_losses, losses);
        }
    }
}

/// DRM re-partitions batches (a different but equally-valid sync-SGD
/// trajectory) — it must not hurt convergence.
#[test]
fn drm_preserves_convergence() {
    let run = |drm: bool| {
        let ds = Dataset::toy(17);
        let test = ds.splits.test.clone();
        let mut cfg = SystemConfig::paper_default(AcceleratorKind::u250(), GnnKind::Gcn);
        cfg.platform.num_accelerators = 2;
        cfg.opt = OptFlags {
            hybrid: true,
            drm,
            tfp: true,
        };
        cfg.train.batch_per_trainer = 96;
        cfg.train.fanouts = vec![8, 4];
        cfg.train.hidden_dim = 32;
        cfg.train.learning_rate = 0.3;
        cfg.train.max_functional_iters = Some(5);
        let mut t = HybridTrainer::new(cfg, ds);
        t.train_epochs(8);
        t.evaluate(&test)
    };
    let with_drm = run(true);
    let without = run(false);
    assert!(with_drm > 0.85, "DRM run accuracy {with_drm}");
    assert!(without > 0.85, "static run accuracy {without}");
    assert!(
        (with_drm - without).abs() < 0.1,
        "DRM changed accuracy band: {with_drm} vs {without}"
    );
}
