//! Vertex relabeling for locality.
//!
//! Degree-descending reordering places hub vertices at low ids — the
//! layout PaGraph-style caches and the FPGA feature duplicator benefit
//! from (hot rows cluster at the front of the feature matrix). Provides
//! the permutation plus graph/feature application.

use crate::csr::CsrGraph;
use crate::degree::vertices_by_degree_desc;
use crate::types::VertexId;
use hyscale_tensor::Matrix;

/// A vertex relabeling: `perm[old] = new`.
#[derive(Clone, Debug)]
pub struct Relabeling {
    /// New id of each old vertex.
    pub perm: Vec<VertexId>,
    /// Old id of each new vertex (inverse permutation).
    pub inv: Vec<VertexId>,
}

impl Relabeling {
    /// Identity relabeling over `n` vertices.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<VertexId> = (0..n as VertexId).collect();
        Self {
            inv: perm.clone(),
            perm,
        }
    }

    /// Degree-descending relabeling: the highest-out-degree vertex
    /// becomes id 0.
    pub fn by_degree_desc(graph: &CsrGraph) -> Self {
        let order = vertices_by_degree_desc(graph); // order[new] = old
        let mut perm = vec![0 as VertexId; order.len()];
        for (new_id, &old) in order.iter().enumerate() {
            perm[old as usize] = new_id as VertexId;
        }
        Self { perm, inv: order }
    }

    /// Apply to a graph: relabel every endpoint.
    pub fn apply_graph(&self, graph: &CsrGraph) -> CsrGraph {
        let n = graph.num_vertices();
        assert_eq!(self.perm.len(), n, "permutation size mismatch");
        let edges: Vec<(VertexId, VertexId)> = graph
            .edges_by_source()
            .into_iter()
            .map(|(s, t)| (self.perm[s as usize], self.perm[t as usize]))
            .collect();
        CsrGraph::from_edges(n, &edges).expect("permutation preserves range")
    }

    /// Apply to a row-per-vertex matrix (features) or label vector.
    pub fn apply_rows(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.perm.len(), "row count mismatch");
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for (old, &new) in self.perm.iter().enumerate() {
            out.row_mut(new as usize).copy_from_slice(x.row(old));
        }
        out
    }

    /// Apply to a per-vertex label vector.
    pub fn apply_labels(&self, labels: &[u32]) -> Vec<u32> {
        assert_eq!(labels.len(), self.perm.len());
        let mut out = vec![0u32; labels.len()];
        for (old, &new) in self.perm.iter().enumerate() {
            out[new as usize] = labels[old];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::preferential_attachment;
    use hyscale_tensor::init::randn;

    #[test]
    fn identity_is_noop() {
        let g = preferential_attachment(100, 3, 1);
        let r = Relabeling::identity(100);
        let g2 = r.apply_graph(&g);
        assert_eq!(g.targets(), g2.targets());
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = preferential_attachment(500, 4, 2).symmetrize();
        let r = Relabeling::by_degree_desc(&g);
        let g2 = r.apply_graph(&g);
        // new id 0 has the max degree
        assert_eq!(g2.out_degree(0), g.max_degree());
        // degrees non-increasing over new ids
        let degs: Vec<usize> = (0..g2.num_vertices() as VertexId)
            .map(|v| g2.out_degree(v))
            .collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn relabeling_preserves_structure() {
        let g = preferential_attachment(200, 3, 5);
        let r = Relabeling::by_degree_desc(&g);
        let g2 = r.apply_graph(&g);
        assert_eq!(g.num_edges(), g2.num_edges());
        // applying the inverse recovers the original edge multiset
        let inv = Relabeling {
            perm: r.inv.clone(),
            inv: r.perm.clone(),
        };
        let g3 = inv.apply_graph(&g2);
        let mut a = g.edges_by_source();
        let mut b = g3.edges_by_source();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rows_follow_vertices() {
        let g = preferential_attachment(50, 2, 7);
        let x = randn(50, 4, 1);
        let labels: Vec<u32> = (0..50).collect();
        let r = Relabeling::by_degree_desc(&g);
        let x2 = r.apply_rows(&x);
        let l2 = r.apply_labels(&labels);
        for old in 0..50usize {
            let new = r.perm[old] as usize;
            assert_eq!(x.row(old), x2.row(new));
            assert_eq!(l2[new], old as u32);
        }
    }

    #[test]
    fn perm_inv_consistent() {
        let g = preferential_attachment(80, 3, 9);
        let r = Relabeling::by_degree_desc(&g);
        for old in 0..80usize {
            assert_eq!(r.inv[r.perm[old] as usize] as usize, old);
        }
    }
}
