//! # hyscale-device
//!
//! Simulated heterogeneous devices — the substitution for the paper's
//! physical testbed (2× EPYC 7763 + 4× RTX A5000 / 4× Alveo U250).
//!
//! Two layers:
//!
//! * **Functional** — [`fpga`] simulates the scatter-gather + systolic
//!   kernel of paper §IV-C edge-for-edge (bit-accurate aggregation plus
//!   cycle/traffic counts); [`gpu_cache`] simulates a set-associative
//!   gather cache to ground the GPU cache-inefficiency factor.
//! * **Analytical** — [`timing`] implements the per-trainer propagation
//!   time models (paper Eq. 10–12) with the ⊕ operator selected per
//!   device (pipelined `max` on FPGA, serial `sum` on CPU/GPU), and
//!   [`stage`] models the CPU-side pipeline stages (sampling, feature
//!   loading) whose thread counts the DRM engine tunes.
//!
//! [`spec`] carries the Table II device specifications; [`pcie`] models
//! effective-bandwidth links (Eq. 8, 13); [`memory`] checks placement
//! feasibility (the paper's motivation: large graphs do not fit device
//! memory); [`calib`] centralizes every constant that is not in the
//! paper (documented in DESIGN.md §7).

#![warn(missing_docs)]

pub mod calib;
pub mod fpga;
pub mod gpu_cache;
pub mod memory;
pub mod pcie;
pub mod spec;
pub mod stage;
pub mod timing;

pub use pcie::{LinkOccupancy, PcieLink, TransferWindow};
pub use spec::{DeviceKind, DeviceSpec, ALVEO_U250, EPYC_7763, RTX_A5000};
pub use stage::StagingModel;
pub use timing::{CpuTiming, FpgaTiming, GpuTiming, TrainerTiming};
